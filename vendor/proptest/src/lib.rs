//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro over `#[test]` functions with `arg in strategy`
//!   bindings,
//! * range strategies over integers and floats, tuple strategies, and
//!   [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! sampled values still bound, and the per-test RNG is seeded from the test
//! name so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Number of cases sampled per property.
pub const CASES: usize = 64;

/// Marker returned by [`prop_assume!`] to skip a sampled case.
#[derive(Debug, Clone, Copy)]
pub struct Reject;

/// Builds the deterministic per-test RNG (seeded from the test name).
pub fn runner_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of the values this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Vectors of `element` values with a length drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn` is expanded to a `#[test]` running
/// [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __ptrng = $crate::runner_for(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __ptrng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::Reject> = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    // A rejected assumption just skips the case.
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Reject);
        }
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 3usize..10,
            f in 0.5f64..1.5,
            v in crate::collection::vec((0u64..4, 1usize..300), 0..50),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
            prop_assert!(v.len() < 50);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((1..300).contains(b));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use rand::Rng;
        let a: u64 = crate::runner_for("t").gen();
        let b: u64 = crate::runner_for("t").gen();
        let c: u64 = crate::runner_for("u").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
