//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small, API-compatible subset of `rand` 0.8 that the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, so streams differ from upstream
//! `rand`, but every use in this workspace only relies on *seeded
//! determinism* and reasonable statistical quality, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start() + u * (self.end() - self.start())
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full-width
    /// integers, a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256\*\*).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl StdRng {
        /// The raw xoshiro256\*\* state words, for checkpointing a stream
        /// mid-flight. Restoring via [`StdRng::from_state`] continues the
        /// stream exactly where [`StdRng::state`] captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&j));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(123);
        for _ in 0..5 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
