//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of criterion 0.5 the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`], the
//! [`Bencher::iter`] timing loop, and the `criterion_group!` /
//! `criterion_main!` macros (both the list form and the
//! `name/config/targets` form). Timing is a simple wall-clock mean over
//! `sample_size` samples — no outlier analysis, plots, or saved baselines —
//! which is enough for `cargo bench` to run and print comparable numbers.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benched value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock duration of one iteration, filled in by [`Bencher::iter`].
    elapsed: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also primes caches/allocations
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = self.samples as u64;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion {
        run_one(self.sample_size, &id.into(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) -> &mut Self {
        run_one(self.criterion.sample_size, &format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(samples: usize, id: &str, mut f: F) {
    let mut b = Bencher { samples, elapsed: Duration::ZERO, iters_done: 0 };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{id:<50} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed / b.iters_done as u32;
    println!("{:<50} time: [{} per iter, {} samples]", id, format_duration(per_iter), b.iters_done);
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick_bench
    }

    #[test]
    fn harness_runs_and_times() {
        benches();
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
