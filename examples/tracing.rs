//! Observability in one place: request-lifecycle tracing, sampled
//! telemetry, and loop self-profiling on a disaggregated serving run with
//! runtime faults — the run with the richest event mix (admissions,
//! chunked prefill, KV migrations, fault remaps, evictions).
//!
//! Tracing is strictly observational: the same scenario runs twice below,
//! once dark and once fully instrumented, and the two `RunReport`s are
//! asserted identical field for field. The instrumented run exports
//!
//! * `target/tracing/chrome_trace.json` — Chrome trace-event JSON; open it
//!   in <https://ui.perfetto.dev> (or `chrome://tracing`) to see one track
//!   per wafer and one span per request phase (queue/prefill/decode),
//! * `target/tracing/telemetry.json` — the sampled per-wafer time series
//!   (batch occupancy, queue depth, KV blocks live/shared, link bytes).
//!
//! ```text
//! cargo run --release --example tracing
//! ```

use ouroboros::model::zoo;
use ouroboros::serve::{
    capacity_rps_estimate, ideal_latencies, EventKind, FaultConfig, Scenario, SloConfig,
    TELEMETRY_SCHEMA_VERSION, TRACE_SCHEMA_VERSION,
};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::trace::TelemetrySample;
use ouroboros::workload::{ArrivalConfig, LengthConfig, TraceGenerator};

const SEED: u64 = 2026;
const WAFERS: usize = 4;
const REQUESTS: usize = 120;

fn main() {
    let model = zoo::llama_13b();
    let mut config = OuroborosConfig::single_wafer();
    config.seed = SEED;
    let system = OuroborosSystem::new(config, &model).expect("LLaMA-13B fits on one wafer");

    let lengths = LengthConfig::fixed(512, 64);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ideal_ttft, ideal_tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ideal_ttft, ideal_tpot, 10.0);
    let rate = 0.8 * capacity * WAFERS as f64;
    let trace_gen = TraceGenerator::new(SEED).generate(&lengths, REQUESTS);
    let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace_gen, SEED);
    let mtbf = timed.last_arrival_s() / 2.0;
    let cadence_s = timed.last_arrival_s() / 64.0;

    let scenario = || {
        Scenario::disaggregated(1, WAFERS - 1)
            .slo(slo)
            .faults(FaultConfig::new(mtbf, SEED))
            .workload(timed.clone())
    };

    // Dark run: no tracing, no telemetry, no profiling.
    let dark = scenario().run(&system).expect("pools build");

    // Instrumented run: everything on.
    let outcome = scenario()
        .trace(true)
        .telemetry_every(cadence_s)
        .profile(true)
        .run_full(&system)
        .expect("pools build");

    // The flagship guarantee: observability never perturbs the simulation.
    assert_eq!(
        dark.json_object().render(),
        outcome.report.json_object().render(),
        "tracing must be strictly observational"
    );
    println!("tracing on vs off: RunReport bit-identical ✓");

    let trace = outcome.trace().expect("tracing was armed");
    assert!(!trace.is_empty(), "a faulty disaggregated run must emit events");
    assert_eq!(trace.dropped(), 0, "default ring capacity must hold a small run");
    println!(
        "\ntrace schema v{TRACE_SCHEMA_VERSION}: {} events, {} request spans, digest {:#018x}",
        trace.len(),
        trace.request_spans().len(),
        trace.digest()
    );
    for kind in ["arrival", "admission", "kv_export", "kv_import", "fault", "complete"] {
        println!("  {:<12} {:>6}", kind, trace.count(kind));
    }
    assert_eq!(trace.count("arrival"), REQUESTS);
    assert_eq!(trace.count("complete"), REQUESTS);
    assert!(trace.count("fault") > 0, "the accelerated MTBF must fire");
    assert!(trace.count("kv_export") > 0, "disaggregation must migrate KV");
    // Every migration shipped by the driver appears as a start/arrive pair.
    let migrations = outcome.report.migration.as_ref().expect("disagg reports migration").migrations;
    assert_eq!(trace.count("migrate_start"), migrations);
    assert_eq!(trace.count("migrate_arrive"), migrations);
    let _ = EventKind::ALL_NAMES; // the taxonomy is public and pinned

    let telemetry: &[TelemetrySample] = outcome.telemetry();
    assert!(!telemetry.is_empty(), "the recorder must sample at the cadence");
    let max_batch = telemetry.iter().map(|s| s.gauges.batch_occupancy).max().unwrap();
    println!(
        "\ntelemetry schema v{TELEMETRY_SCHEMA_VERSION}: {} samples every {:.1}ms, peak batch {}",
        telemetry.len(),
        cadence_s * 1e3,
        max_batch
    );
    assert!(max_batch > 0, "some wafer must batch work at some sample");

    let profile = outcome.profile().expect("profiling was armed");
    println!("\n{}", profile.summarize());

    std::fs::create_dir_all("target/tracing").expect("target dir");
    trace.write_chrome_trace("target/tracing/chrome_trace.json").expect("chrome trace written");
    let rows: Vec<_> = telemetry.iter().map(TelemetrySample::json_object).collect();
    ouroboros::serve::json::write_array("target/tracing/telemetry.json", &rows).expect("telemetry written");
    println!("wrote target/tracing/chrome_trace.json and target/tracing/telemetry.json");
    println!("open the trace in https://ui.perfetto.dev — one track per wafer, one span per phase");

    println!("\n{}", trace.summarize());
}
