//! Online serving: a 4-wafer LLaMA-13B cluster under open-loop Poisson
//! traffic, swept from light load past saturation.
//!
//! For each offered load the cluster serves the same fixed-seed
//! WikiText-2-like request mix through one colocated `Scenario`; the table
//! reports achieved throughput, TTFT and TPOT percentiles, and goodput
//! under a 10x-unloaded-latency SLO. The final section compares routing
//! policies at the highest swept load.
//!
//! ```text
//! cargo run --release --example online_serving
//! ```

use ouroboros::model::zoo;
use ouroboros::serve::{
    capacity_rps_estimate, format_sweep, ideal_latencies, routers, LoadSweep, Router, Scenario, SloConfig,
};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, LengthConfig, TraceGenerator};

const SEED: u64 = 2026;
const WAFERS: usize = 4;

fn main() {
    let model = zoo::llama_13b();
    let mut config = OuroborosConfig::single_wafer();
    config.seed = SEED;
    let system = OuroborosSystem::new(config, &model).expect("LLaMA-13B fits on one wafer");

    let lengths = LengthConfig::wikitext2_like();
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ideal_ttft, ideal_tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ideal_ttft, ideal_tpot, 10.0);

    println!("model: {} on {WAFERS} wafers", model.name);
    println!(
        "estimated per-wafer capacity: {capacity:.1} req/s  (ideal TTFT {:.2} ms, ideal TPOT {:.4} ms)",
        ideal_ttft * 1e3,
        ideal_tpot * 1e3
    );
    println!("SLO: TTFT <= {:.2} ms, TPOT <= {:.4} ms\n", slo.ttft_s * 1e3, slo.tpot_s * 1e3);

    // Poisson load sweep: 20% to 160% of estimated aggregate capacity.
    let mut sweep = LoadSweep::around_capacity(capacity, WAFERS, lengths.clone(), slo);
    sweep.seed = SEED;
    sweep.requests = 200;
    sweep.router = routers::least_kv_load();
    println!("=== Poisson load sweep, {} requests/point, least-kv-load routing ===", sweep.requests);
    let points = sweep.run(&system);
    print!("{}", format_sweep(&points));

    // The throughput-vs-load curve must rise to saturation and then hold.
    for w in points.windows(2) {
        assert!(
            w[1].report.serving.output_tokens_per_s >= w[0].report.serving.output_tokens_per_s * 0.95,
            "throughput-vs-load curve must be monotone (within tolerance): {:.0} tok/s then {:.0} tok/s",
            w[0].report.serving.output_tokens_per_s,
            w[1].report.serving.output_tokens_per_s
        );
    }
    for p in &points {
        assert!(p.report.is_conserved(), "request conservation must hold at every load");
    }

    // Routing-policy shootout at the highest swept load: the same scenario,
    // one builder call different.
    let top_rate = *sweep.rates_rps.last().expect("sweep has points");
    let trace = TraceGenerator::new(SEED).generate(&lengths, sweep.requests);
    let timed = ArrivalConfig::Poisson { rate_rps: top_rate }.assign(&trace, SEED);
    println!("\n=== routing policies at {top_rate:.0} req/s (past saturation) ===");
    println!(
        "{:<22} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "policy", "ttft-p50", "ttft-p99", "tpot-p99", "goodput/s", "evictions"
    );
    let mut by_policy = Vec::new();
    let policies: [Box<dyn Router>; 3] =
        [routers::round_robin(), routers::join_shortest_queue(), routers::least_kv_load()];
    for router in policies {
        let name = router.name();
        let report = Scenario::colocated(WAFERS)
            .router(router)
            .slo(slo)
            .workload(timed.clone())
            .run(&system)
            .expect("cluster builds");
        let s = &report.serving;
        println!(
            "{:<22} {:>9.1}ms {:>9.1}ms {:>9.3}ms {:>9.1} {:>9}",
            name,
            s.ttft.p50_s * 1e3,
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            s.evictions
        );
        by_policy.push(report);
    }
    let rr = &by_policy[0].serving;
    let lkv = &by_policy[2].serving;
    assert!(
        lkv.ttft.p99_s <= rr.ttft.p99_s,
        "least-kv-load routing must match or beat round-robin p99 TTFT at the highest load: {:.1} ms vs {:.1} ms",
        lkv.ttft.p99_s * 1e3,
        rr.ttft.p99_s * 1e3
    );
    println!(
        "\nleast-kv-load p99 TTFT is {:.1}% of round-robin's at {top_rate:.0} req/s",
        100.0 * lkv.ttft.p99_s / rr.ttft.p99_s
    );
}
