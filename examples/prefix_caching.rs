//! Shared-prefix KV caching: a 4-wafer LLaMA-13B cluster serving session
//! traffic (shared system prompts, multi-turn conversations) with the
//! radix-style prefix cache on vs off.
//!
//! The run asserts the headline claims: with a share ratio of 0.7 and the
//! same seed, the prefix-cache-on run shows strictly lower mean TTFT and
//! strictly fewer prefilled tokens than the cache-off run, the whole result
//! is byte-identical per seed, and every wafer's refcount-aware block audit
//! drains conserved.
//!
//! ```text
//! cargo run --release --example prefix_caching
//! ```

use ouroboros::model::zoo;
use ouroboros::serve::{capacity_rps_estimate, ideal_latencies, Router, Scenario, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, SessionConfig};

const SEED: u64 = 2026;
const WAFERS: usize = 4;
const SHARE_RATIO: f64 = 0.7;

fn main() {
    let model = zoo::llama_13b();
    let mut config = OuroborosConfig::single_wafer();
    config.seed = SEED;
    let system = OuroborosSystem::new(config, &model).expect("LLaMA-13B fits on one wafer");

    let session = SessionConfig::chat(4, SHARE_RATIO);
    let lengths = ouroboros::workload::LengthConfig::fixed(
        session.shared_prefix_tokens + session.user_turn_tokens,
        session.decode_tokens,
    );
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = session.shared_prefix_tokens + session.user_turn_tokens + session.decode_tokens;
    let (ideal_ttft, ideal_tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ideal_ttft, ideal_tpot, 10.0);
    let rate = 0.8 * capacity * WAFERS as f64;

    println!("model: {} on {WAFERS} wafers", model.name);
    println!(
        "session mix: {} system prompts x {} tokens, share ratio {SHARE_RATIO}, up to {} turns",
        session.groups, session.shared_prefix_tokens, session.max_turns
    );
    println!("offered load: {rate:.0} req/s (80% of estimated aggregate capacity)\n");

    let trace = session.generate(200, SEED);
    let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, SEED);

    let run = |caching: bool, router: Box<dyn Router>| {
        let outcome = Scenario::colocated(WAFERS)
            .router(router)
            .prefix_caching(caching)
            .slo(slo)
            .workload(timed.clone())
            .run_full(&system)
            .expect("cluster builds");
        for e in outcome.engines() {
            let audit = e.kv_audit();
            assert!(
                audit.is_conserved(),
                "block audit must stay conserved under sharing: allocated {} freed {} live {}",
                audit.allocated,
                audit.freed,
                audit.live
            );
            assert_eq!(audit.live, 0, "a drained wafer frees every block, shared chains included");
        }
        outcome.report.serving
    };

    println!(
        "{:<26} {:>11} {:>11} {:>11} {:>12} {:>12}",
        "configuration", "ttft-mean", "ttft-p99", "goodput/s", "prefilled", "cached"
    );
    let off = run(false, ouroboros::serve::routers::least_kv_load());
    let on = run(true, ouroboros::serve::routers::prefix_affinity());
    for (label, r) in [("cache off, least-kv-load", &off), ("cache on, prefix-affinity", &on)] {
        println!(
            "{:<26} {:>9.2}ms {:>9.2}ms {:>11.1} {:>12} {:>12}",
            label,
            r.ttft.mean_s * 1e3,
            r.ttft.p99_s * 1e3,
            r.goodput_rps,
            r.prefilled_tokens,
            r.cached_prefix_tokens
        );
    }

    assert!(off.is_conserved() && on.is_conserved(), "request conservation must hold in both runs");
    assert!(
        on.ttft.mean_s < off.ttft.mean_s,
        "prefix caching must cut mean TTFT at share ratio {SHARE_RATIO}: {:.3} ms vs {:.3} ms",
        on.ttft.mean_s * 1e3,
        off.ttft.mean_s * 1e3
    );
    assert!(
        on.prefilled_tokens < off.prefilled_tokens,
        "prefix caching must prefill fewer tokens: {} vs {}",
        on.prefilled_tokens,
        off.prefilled_tokens
    );
    assert!(on.cached_prefix_tokens > 0, "sharers must hit the cache");
    assert_eq!(
        run(true, ouroboros::serve::routers::prefix_affinity()),
        on,
        "the run is byte-identical per seed"
    );

    println!(
        "\nprefix caching cut mean TTFT by {:.1}% and prefilled tokens by {:.1}% \
         ({} tokens served from cache)",
        100.0 * (1.0 - on.ttft.mean_s / off.ttft.mean_s),
        100.0 * (1.0 - on.prefilled_tokens as f64 / off.prefilled_tokens as f64),
        on.cached_prefix_tokens
    );
}
