//! Prefill/decode disaggregation vs colocated continuous batching at equal
//! wafer count: a 4-wafer LLaMA-13B deployment under bursty, prefill-heavy
//! traffic.
//!
//! The run demonstrates the three invariants of the disaggregated path:
//!
//! 1. **KV conservation** — every byte exported by a prefill wafer is
//!    imported by a decode wafer once the run drains,
//! 2. **planner optimality** — the pool-ratio planner's chosen split has
//!    goodput at least as high as every other swept split,
//! 3. **decode-tail isolation** — at the same offered load, disaggregated
//!    p99 TPOT beats colocated p99 TPOT, because decode wafers never
//!    interleave prefill chunks into their steps.
//!
//! ```text
//! cargo run --release --example disaggregation
//! ```

use ouroboros::disagg::{best_ratio, format_shootout, head_to_head, RatioPlanner, ShootoutConfig};
use ouroboros::model::zoo;
use ouroboros::serve::{capacity_rps_estimate, ideal_latencies, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, LengthConfig, TraceGenerator};

const SEED: u64 = 2026;
const WAFERS: usize = 4;
const REQUESTS: usize = 200;

fn main() {
    let model = zoo::llama_13b();
    let mut config = OuroborosConfig::single_wafer();
    config.seed = SEED;
    let system = OuroborosSystem::new(config, &model).expect("LLaMA-13B fits on one wafer");

    // Prefill-heavy mix: 512-token prompts, 64-token generations. Bursty
    // Gamma arrivals (cv = 4) cluster the long prompts into flash crowds —
    // exactly what stalls colocated decode steps.
    let lengths = LengthConfig::fixed(512, 64);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ideal_ttft, ideal_tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ideal_ttft, ideal_tpot, 10.0);
    let rate = capacity * WAFERS as f64;

    println!("model: {} on {WAFERS} wafers, LP=512 LD=64, bursty cv=4", model.name);
    println!(
        "per-wafer capacity estimate: {capacity:.1} req/s; SLO: TTFT <= {:.2} ms, TPOT <= {:.4} ms",
        slo.ttft_s * 1e3,
        slo.tpot_s * 1e3
    );
    let kv_mb = system.kv_migration_bytes(512) as f64 / 1e6;
    println!("KV migrated per 512-token prompt: {kv_mb:.1} MB over the optical fabric\n");

    // --- 1. Pool-ratio planner at the aggregate capacity point. ---
    let trace = TraceGenerator::new(SEED).generate(&lengths, REQUESTS);
    let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace, SEED);
    let planner = RatioPlanner::new(WAFERS);
    let plans = planner.sweep(&system, &timed, &slo).expect("pools build");
    println!("=== pool-ratio sweep at {rate:.0} req/s ===");
    println!("{:<10} {:>11} {:>11} {:>11} {:>12}", "split", "ttft-p99", "tpot-p99", "goodput/s", "migr (MB)");
    for p in &plans {
        let s = &p.report.serving;
        let m = p.report.migration.as_ref().expect("disaggregated runs report migration stats");
        println!(
            "{:<10} {:>9.1}ms {:>9.3}ms {:>11.1} {:>12.1}",
            format!("{}p:{}d", p.prefill_wafers, p.decode_wafers),
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            m.exported_kv_bytes as f64 / 1e6,
        );

        // Invariant 1: KV-migration bytes are conserved at every split.
        assert!(p.report.is_conserved(), "request conservation must hold");
        assert!(
            p.report.kv_bytes_conserved(),
            "migration bytes must be conserved: exported {} != imported {} + in-flight {} + dropped {}",
            m.exported_kv_bytes,
            m.imported_kv_bytes,
            m.in_flight_kv_bytes,
            m.dropped_kv_bytes
        );
        assert_eq!(m.exported_kv_bytes, m.imported_kv_bytes, "a drained run imports every exported byte");
    }

    // Invariant 2: the planner's ratio dominates every swept ratio.
    let best = best_ratio(&plans);
    for p in &plans {
        assert!(
            best.goodput_rps() >= p.goodput_rps(),
            "planner picked {}p:{}d ({:.1} req/s) but {}p:{}d achieves {:.1}",
            best.prefill_wafers,
            best.decode_wafers,
            best.goodput_rps(),
            p.prefill_wafers,
            p.decode_wafers,
            p.goodput_rps()
        );
    }
    println!(
        "\ngoodput-optimal split: {}p:{}d at {:.1} req/s goodput\n",
        best.prefill_wafers,
        best.decode_wafers,
        best.goodput_rps()
    );

    // --- 2. Colocated vs disaggregated at equal wafer count. ---
    let mut shootout = ShootoutConfig::new(WAFERS, best.prefill_wafers, vec![0.5 * rate, rate, 1.5 * rate]);
    shootout.requests = REQUESTS;
    shootout.lengths = lengths;
    shootout.seed = SEED;
    shootout.slo = slo;
    let points = head_to_head(&system, &shootout).expect("clusters build");
    println!(
        "=== colocated vs disaggregated ({}p:{}d), equal {WAFERS}-wafer budget ===",
        best.prefill_wafers, best.decode_wafers
    );
    print!("{}", format_shootout(&points));

    for p in &points {
        assert!(p.colocated.is_conserved() && p.disagg.is_conserved());
        assert!(p.disagg.kv_bytes_conserved());

        // Invariant 3: the decode tail is isolated from prefill bursts.
        assert!(
            p.disagg.serving.tpot.p99_s < p.colocated.serving.tpot.p99_s,
            "at {:.0} req/s disaggregated p99 TPOT ({:.3} ms) must beat colocated ({:.3} ms)",
            p.rate_rps,
            p.disagg.serving.tpot.p99_s * 1e3,
            p.colocated.serving.tpot.p99_s * 1e3
        );
    }

    let mid = &points[1];
    let mid_m = mid.disagg.migration.as_ref().expect("disaggregated runs report migration stats");
    println!(
        "\nat {:.0} req/s: disaggregated p99 TPOT is {:.1}% of colocated's \
         ({} migrations, {:.1} MB KV moved, mean migration {:.2} ms, link energy {:.2} J)",
        mid.rate_rps,
        100.0 * mid.disagg.serving.tpot.p99_s / mid.colocated.serving.tpot.p99_s,
        mid_m.migrations,
        mid_m.exported_kv_bytes as f64 / 1e6,
        mid_m.mean_migration_s * 1e3,
        mid_m.link_energy_j
    );
}
