//! The unified `Scenario` API in one place: a single composable builder
//! covering every serving condition the repo evaluates — deployment shape
//! (colocated replicas vs prefill/decode disaggregation), runtime faults,
//! and shared-prefix KV caching — all returning the same `RunReport`.
//!
//! Each cell of the matrix below differs from its neighbour by exactly one
//! builder call. Before this API, each cell needed its own entry point and
//! its own report type; now a new experiment is a new combination, and a
//! new policy is one `Router`/`Placement` impl.
//!
//! ```text
//! cargo run --release --example scenario
//! ```

use ouroboros::model::zoo;
use ouroboros::serve::{
    capacity_rps_estimate, ideal_latencies, placements, routers, FaultConfig, RunReport, Scenario, SloConfig,
    SCHEMA_VERSION,
};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, LengthConfig, SessionConfig, TraceGenerator};

const SEED: u64 = 2026;
const WAFERS: usize = 4;
const REQUESTS: usize = 160;

fn main() {
    let model = zoo::llama_13b();
    let mut config = OuroborosConfig::single_wafer();
    config.seed = SEED;
    let system = OuroborosSystem::new(config, &model).expect("LLaMA-13B fits on one wafer");

    let lengths = LengthConfig::fixed(512, 64);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ideal_ttft, ideal_tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ideal_ttft, ideal_tpot, 10.0);
    let rate = 0.8 * capacity * WAFERS as f64;

    // One trace + arrival realisation shared by the whole matrix, so every
    // cell serves identical traffic.
    let trace = TraceGenerator::new(SEED).generate(&lengths, REQUESTS);
    let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace, SEED);
    let sessions = SessionConfig::chat(4, 0.7).generate(REQUESTS, SEED);
    let session_timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&sessions, SEED);
    let mtbf = timed.last_arrival_s() / 2.0;

    println!("model: {} on {WAFERS} wafers, {REQUESTS} requests/cell at {rate:.0} req/s", model.name);
    println!("RunReport schema v{SCHEMA_VERSION}\n");
    println!(
        "{:<20} {:>11} {:>11} {:>11} {:>7} {:>13} {:>9}",
        "cell", "ttft-p99", "tpot-p99", "goodput/s", "migr", "availability", "cached"
    );

    let print_cell = |label: &str, r: &RunReport| {
        assert!(r.is_conserved(), "{label}: request conservation must hold");
        assert!(r.kv_bytes_conserved(), "{label}: migration bytes must be conserved");
        assert_eq!(r.schema_version, SCHEMA_VERSION);
        let s = &r.serving;
        println!(
            "{:<20} {:>9.1}ms {:>9.3}ms {:>11.1} {:>7} {:>12.4}% {:>9}",
            label,
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            r.migration.as_ref().map_or(0, |m| m.migrations),
            r.faults.as_ref().map_or(100.0, |f| f.availability * 100.0),
            s.cached_prefix_tokens,
        );
    };

    // -- axis 1: deployment shape ---------------------------------------
    let colocated =
        Scenario::colocated(WAFERS).slo(slo).workload(timed.clone()).run(&system).expect("builds");
    print_cell("colocated", &colocated);
    let disagg =
        Scenario::disaggregated(1, WAFERS - 1).slo(slo).workload(timed.clone()).run(&system).expect("builds");
    print_cell("disagg-1p3d", &disagg);

    // -- axis 2: runtime faults (one extra builder call per cell) --------
    let colocated_faulty = Scenario::colocated(WAFERS)
        .slo(slo)
        .faults(FaultConfig::new(mtbf, SEED))
        .workload(timed.clone())
        .run(&system)
        .expect("builds");
    print_cell("colocated+faults", &colocated_faulty);
    let disagg_faulty = Scenario::disaggregated(1, WAFERS - 1)
        .slo(slo)
        .faults(FaultConfig::new(mtbf, SEED))
        .workload(timed)
        .run(&system)
        .expect("builds");
    print_cell("disagg+faults", &disagg_faulty);

    // -- axis 3: shared-prefix caching on session traffic ----------------
    let colocated_prefix = Scenario::colocated(WAFERS)
        .router(routers::prefix_affinity())
        .prefix_caching(true)
        .slo(slo)
        .workload(session_timed.clone())
        .run(&system)
        .expect("builds");
    print_cell("colocated+prefix", &colocated_prefix);
    let disagg_prefix = Scenario::disaggregated(1, WAFERS - 1)
        .placement(placements::prefix_affinity())
        .prefix_caching(true)
        .slo(slo)
        .workload(session_timed)
        .run(&system)
        .expect("builds");
    print_cell("disagg+prefix", &disagg_prefix);

    // The axes behave: faults dent availability, prefix caching hits the
    // cache, disaggregation migrates KV — all visible in one report type.
    for (label, r) in [("colocated", &colocated_faulty), ("disagg", &disagg_faulty)] {
        let f = r.faults.as_ref().expect("fault plan was armed");
        assert!(f.faults_injected > 0, "{label}: the accelerated MTBF must fire");
        assert!(f.availability < 1.0, "{label}: faults must dent availability");
    }
    assert!(colocated_prefix.serving.cached_prefix_tokens > 0, "sharers must hit the prefix cache");
    assert!(
        disagg_prefix.migration.as_ref().unwrap().deduped_kv_bytes > 0,
        "prefix-affine placement must dedup migrated bytes"
    );
    assert!(disagg.migration.as_ref().unwrap().migrations > 0);

    println!("\nall scenario-matrix invariants hold (one API, one report schema)");
}
