//! Fault tolerance: draw a defect map with the Murphy yield model, map a
//! transformer block around the defects, then inject a run-time core failure
//! and repair the mapping with a replacement chain (§4.3.3, Fig. 9).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use ouroboros::hw::{CoreId, DefectMap, WaferGeometry, YieldModel};
use ouroboros::mapping::{remap_with_chain, MappingProblem, Strategy};
use ouroboros::model::zoo;
use ouroboros::noc::route_xy_avoiding;

fn main() {
    let geometry = WaferGeometry::paper();
    let yield_model = YieldModel::paper();
    let defects = DefectMap::generate(&geometry, &yield_model, 2026);
    println!(
        "wafer: {} cores, {} fabrication defects ({:.3}% of cores)",
        geometry.total_cores(),
        defects.defective_count(),
        100.0 * defects.defective_count() as f64 / geometry.total_cores() as f64
    );

    let model = zoo::llama_13b();
    let candidates: Vec<CoreId> = defects.functional_cores().collect();
    let problem = MappingProblem::for_block(
        &model,
        geometry.clone(),
        defects.clone(),
        candidates,
        4 * 1024 * 1024,
        4.0,
    );
    let solution = ouroboros::mapping::solve(&problem, Strategy::Anneal { iterations: 2000 }, 7);
    println!(
        "mapped one transformer block onto {} cores (objective {:.3e}, mean hops {:.2})",
        problem.num_tiles(),
        solution.objective,
        solution.summary.mean_hops
    );

    // Designate some spare cores as KV cores and fail a weight core at run time.
    let kv_cores: Vec<CoreId> =
        defects.functional_cores().filter(|c| !solution.assignment.core.contains(c)).take(64).collect();
    let failed = solution.assignment.core[problem.num_tiles() / 2];
    let outcome = remap_with_chain(&geometry, &solution.assignment, &kv_cores, failed)
        .expect("kv cores are available to absorb the displaced weights");
    println!(
        "run-time failure of {failed}: replacement chain of {} cores, {} tiles moved, evicted KV core {:?}",
        outcome.chain.len(),
        outcome.moved_tiles,
        outcome.evicted_kv_core
    );

    // Interconnect failures are handled by rerouting around the dead core.
    let mut with_fault = defects.clone();
    with_fault.inject_fault(failed);
    let from = outcome.chain.first().copied().unwrap_or(CoreId(0));
    let neighbours = geometry.coord(from);
    let target = geometry.id(ouroboros::hw::CoreCoord {
        row: (neighbours.row + 5).min(geometry.global_rows() - 1),
        col: (neighbours.col + 5).min(geometry.global_cols() - 1),
    });
    match route_xy_avoiding(&geometry, &with_fault, outcome.chain[outcome.chain.len() - 1], target) {
        Ok(path) => println!("rerouted around the failure in {} hops", path.len() - 1),
        Err(e) => println!("rerouting failed: {e}"),
    }
}
