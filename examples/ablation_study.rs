//! Ablation study: walk the Fig. 15 ladder (Baseline → +Wafer → +CIM → +TGP
//! → +Mapping → +KV Cache) on a reduced wafer so it runs in seconds.
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use ouroboros::model::zoo;
use ouroboros::sim::{ablation_ladder, OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{LengthConfig, TraceGenerator};

fn main() {
    let model = zoo::bert_large();
    let base = OuroborosConfig::tiny_for_tests();
    let trace = TraceGenerator::new(3).generate(&LengthConfig::wikitext2_like(), 24);

    println!("{:<12} {:>14} {:>10} {:>14} {:>10}", "step", "tokens/s", "speedup", "uJ/token", "norm. E");
    let mut baseline: Option<(f64, f64)> = None;
    for (label, cfg) in ablation_ladder(&base) {
        let system = match OuroborosSystem::new(cfg, &model) {
            Ok(s) => s,
            Err(e) => {
                println!("{label:<12} skipped ({e})");
                continue;
            }
        };
        let r = system.simulate_labeled(&trace, "WikiText-2");
        let (t0, e0) = *baseline.get_or_insert((r.throughput_tokens_per_s, r.energy_per_token_j()));
        println!(
            "{:<12} {:>14.1} {:>9.2}x {:>14.3} {:>10.3}",
            label,
            r.throughput_tokens_per_s,
            r.throughput_tokens_per_s / t0,
            r.energy_per_token_j() * 1e6,
            r.energy_per_token_j() / e0
        );
    }
}
