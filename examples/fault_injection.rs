//! Runtime fault injection under live traffic: a seeded MTBF process fires
//! mid-run, each fault is healed by a replacement-chain remap (§4.3.3), the
//! absorbed KV is evicted and recomputed, and the run reports availability
//! and tail-latency inflation against the identical fault-free run.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use ouroboros::model::zoo;
use ouroboros::serve::{routers, EngineConfig, FaultComparison, FaultConfig, SloConfig};
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{ArrivalConfig, LengthConfig, TraceGenerator};

fn main() {
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = 7;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;

    let lengths = LengthConfig::wikitext2_like();
    let trace = TraceGenerator::new(7).generate(&lengths, 200);
    let capacity = ouroboros::serve::capacity_rps_estimate(system.stage_times(), &lengths);
    let rate = 0.7 * capacity * wafers as f64;
    let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, 7);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ouroboros::serve::ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);

    // An aggressively accelerated MTBF: several faults per wafer within the
    // arrival span, so the healing path is exercised hard.
    let mtbf = timed.last_arrival_s() / 4.0;
    let fault_cfg = FaultConfig::new(mtbf, 7);
    let cmp = FaultComparison::measure(
        &system,
        wafers,
        routers::least_kv_load(),
        EngineConfig::default(),
        &timed,
        &slo,
        f64::INFINITY,
        fault_cfg,
    )
    .expect("cluster builds");

    let f = &cmp.fault;
    println!(
        "{} wafers, {} requests at {rate:.0} req/s, per-wafer MTBF {:.1} ms",
        wafers,
        timed.len(),
        mtbf * 1e3
    );
    println!(
        "faults: {} injected, {} chains (mean length {:.1}), {} sequences recomputed",
        f.faults_injected,
        f.chains_built,
        f.mean_chain_len(),
        f.sequences_recomputed
    );
    println!(
        "kv evicted: {:.1} MB, stall {:.2} ms total, availability {:.3}%",
        f.kv_bytes_evicted as f64 / 1e6,
        f.total_stall_s * 1e3,
        f.availability * 100.0
    );
    println!(
        "p99 TTFT {:.2} ms -> {:.2} ms ({:.2}x), p99 TPOT {:.3} ms -> {:.3} ms ({:.2}x)",
        cmp.clean.ttft.p99_s * 1e3,
        cmp.faulty.ttft.p99_s * 1e3,
        cmp.ttft_p99_inflation(),
        cmp.clean.tpot.p99_s * 1e3,
        cmp.faulty.tpot.p99_s * 1e3,
        cmp.tpot_p99_inflation()
    );

    // The claims the docs make, asserted on every CI run.
    assert!(f.faults_injected > 0, "the accelerated MTBF must fire");
    assert!(f.chains_built > 0, "weight-core faults must build replacement chains");
    assert!(f.sequences_recomputed > 0, "faults under load must force recompute");
    assert!(f.availability < 1.0, "remap stalls and dead time must dent availability");
    assert!(f.availability > 0.5, "healing must keep the cluster mostly available");
    assert!(cmp.clean.is_conserved() && cmp.faulty.is_conserved(), "no request is lost to a fault");
    println!("\nall fault-injection invariants hold");
}
