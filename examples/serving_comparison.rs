//! Serving comparison: evaluate Ouroboros against the DGX A100, TPUv4,
//! AttAcc and Cerebras WSE-2 baselines on the same workload — a miniature
//! version of Fig. 13/14.
//!
//! ```text
//! cargo run --release --example serving_comparison
//! ```

use ouroboros::baselines;
use ouroboros::model::zoo;
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{LengthConfig, TraceGenerator};

fn main() {
    let model = zoo::llama_13b();
    let trace = TraceGenerator::new(42).generate(&LengthConfig::wikitext2_like(), 100);
    println!("workload: {} WikiText-2-like requests, {} total tokens", trace.len(), trace.total_tokens());

    let mut reports = vec![
        baselines::dgx_a100(8).evaluate(&model, &trace, "WikiText-2"),
        baselines::tpu_v4().evaluate(&model, &trace, "WikiText-2"),
        baselines::attacc().evaluate(&model, &trace, "WikiText-2"),
        baselines::cerebras_wse2().evaluate(&model, &trace, "WikiText-2"),
    ];
    let ours = OuroborosSystem::new(OuroborosConfig::single_wafer(), &model)
        .expect("LLaMA-13B fits on a single wafer");
    reports.push(ours.simulate_labeled(&trace, "WikiText-2"));

    let reference = reports[0].clone();
    println!("{:<12} {:>14} {:>10} {:>14} {:>10}", "system", "tokens/s", "speedup", "mJ/token", "norm. E");
    for r in &reports {
        println!(
            "{:<12} {:>14.1} {:>9.2}x {:>14.3} {:>10.3}",
            r.system,
            r.throughput_tokens_per_s,
            r.speedup_over(&reference),
            r.energy_per_token_j() * 1e3,
            r.energy_ratio_over(&reference)
        );
    }
}
