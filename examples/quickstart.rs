//! Quickstart: build the paper's single-wafer Ouroboros system for
//! LLaMA-13B, run a small request trace through it, and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ouroboros::model::zoo;
use ouroboros::sim::{OuroborosConfig, OuroborosSystem};
use ouroboros::workload::{LengthConfig, TraceGenerator};

fn main() {
    let model = zoo::llama_13b();
    println!("model: {model}");

    let config = OuroborosConfig::single_wafer();
    println!(
        "wafer: {} cores, {:.1} GB of crossbar SRAM",
        config.total_cores(),
        config.total_sram_bytes() as f64 / 1e9
    );

    let system = OuroborosSystem::new(config, &model).expect("LLaMA-13B fits on a single wafer");
    println!(
        "mapping: {} weight cores, {} KV cores per block, mean hop distance {:.2}",
        system.weight_cores(),
        system.kv_cores_per_block(),
        system.mapping().summary.mean_hops
    );

    let trace = TraceGenerator::new(1).generate(&LengthConfig::fixed(128, 2048), 64);
    let report = system.simulate_labeled(&trace, "LP=128 LD=2048");
    println!(
        "throughput: {:.1} output tokens/s over {} requests",
        report.throughput_tokens_per_s,
        trace.len()
    );
    let e = &report.energy_per_token;
    println!(
        "energy/token: {:.3} mJ (compute {:.3}, on-chip {:.3}, off-chip {:.3}, comm {:.3})",
        report.energy_per_token_j() * 1e3,
        e.compute_j * 1e3,
        e.on_chip_j * 1e3,
        e.off_chip_j * 1e3,
        e.communication_j * 1e3
    );
}
