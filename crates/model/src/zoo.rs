//! The model zoo: ready-made configurations for every model evaluated in the
//! paper (§6.1) plus the synthetic sizes used by the "hardware scaling tax"
//! figure (Fig. 1).
//!
//! The shapes follow the published architectures; exact parameter counts may
//! differ by a few percent from vendor reports (layer norms, biases and
//! gated-FFN bookkeeping are folded into `ffn_dim`), which is irrelevant for
//! the simulator — only the relative magnitudes of weight, activation and KV
//! volumes matter.

use crate::config::{Architecture, ModelConfig, Precision};

fn decoder(name: &str, blocks: usize, hidden: usize, heads: usize, ffn: usize, vocab: usize) -> ModelConfig {
    ModelConfig {
        name: name.to_string(),
        architecture: Architecture::DecoderOnly,
        blocks,
        hidden_dim: hidden,
        heads,
        head_dim: hidden / heads,
        ffn_dim: ffn,
        vocab_size: vocab,
        max_context: 4096,
        precision: Precision::Int8,
    }
}

/// LLaMA-7B (32 blocks, d=4096; gated FFN folded into `ffn_dim`). Used by Fig. 1.
pub fn llama_7b() -> ModelConfig {
    decoder("LLaMA-7B", 32, 4096, 32, 16512, 32000)
}

/// LLaMA-13B (40 blocks, d=5120). Primary evaluation model.
pub fn llama_13b() -> ModelConfig {
    decoder("LLaMA-13B", 40, 5120, 40, 20736, 32000)
}

/// The ~19.5B point of Fig. 1 (a GPT-NeoX-20B-like shape).
pub fn gpt_20b() -> ModelConfig {
    decoder("GPT-20B", 44, 6144, 48, 24576, 50432)
}

/// LLaMA-32B (the paper's label for the ~30/33B LLaMA; 60 blocks, d=6656).
pub fn llama_32b() -> ModelConfig {
    decoder("LLaMA-32B", 60, 6656, 52, 26880, 32000)
}

/// LLaMA-65B (80 blocks, d=8192). Used in the multi-wafer scaling study.
pub fn llama_65b() -> ModelConfig {
    decoder("LLaMA-65B", 80, 8192, 64, 33024, 32000)
}

/// The ~130B point of Fig. 1 (a GPT-3-scale dense decoder).
pub fn dense_130b() -> ModelConfig {
    decoder("Dense-130B", 100, 10240, 80, 40960, 50432)
}

/// Baichuan-13B (40 blocks, d=5120, 13696 FFN, 64k vocabulary).
pub fn baichuan_13b() -> ModelConfig {
    decoder("Baichuan-13B", 40, 5120, 40, 20544, 64000)
}

/// Qwen-32B (64 blocks, d=5120, wide FFN, 152k vocabulary).
pub fn qwen_32b() -> ModelConfig {
    decoder("Qwen-32B", 64, 5120, 40, 41088, 152064)
}

/// T5-11B encoder-decoder (24 encoder + 24 decoder blocks, d=1024,
/// 128 heads of size 128, 65536 FFN).
pub fn t5_11b() -> ModelConfig {
    ModelConfig {
        name: "T5-11B".to_string(),
        architecture: Architecture::EncoderDecoder,
        blocks: 48,
        hidden_dim: 1024,
        heads: 128,
        head_dim: 128,
        ffn_dim: 65536,
        vocab_size: 32128,
        max_context: 2048,
        precision: Precision::Int8,
    }
}

/// BERT-Large encoder (24 blocks, d=1024, 16 heads, 4096 FFN).
pub fn bert_large() -> ModelConfig {
    ModelConfig {
        name: "BERT-Large".to_string(),
        architecture: Architecture::EncoderOnly,
        blocks: 24,
        hidden_dim: 1024,
        heads: 16,
        head_dim: 64,
        ffn_dim: 4096,
        vocab_size: 30522,
        max_context: 512,
        precision: Precision::Int8,
    }
}

/// All models used in the paper's main evaluation (Fig. 13–16).
pub fn evaluation_models() -> Vec<ModelConfig> {
    vec![llama_13b(), baichuan_13b(), llama_32b(), qwen_32b(), bert_large(), t5_11b()]
}

/// The model sizes swept by the hardware-scaling-tax study (Fig. 1):
/// roughly 7B, 13B, 19.5B, 32B, 65B and 130B parameters.
pub fn scaling_tax_models() -> Vec<ModelConfig> {
    vec![llama_7b(), llama_13b(), gpt_20b(), llama_32b(), llama_65b(), dense_130b()]
}

/// Looks a model up by its display name (case-insensitive).
pub fn by_name(name: &str) -> Option<ModelConfig> {
    let all = [
        llama_7b(),
        llama_13b(),
        gpt_20b(),
        llama_32b(),
        llama_65b(),
        dense_130b(),
        baichuan_13b(),
        qwen_32b(),
        t5_11b(),
        bert_large(),
    ];
    all.into_iter().find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_13b_is_roughly_13b_params() {
        let p = llama_13b().params_billions();
        assert!(p > 11.0 && p < 15.0, "got {p}");
    }

    #[test]
    fn llama_65b_is_roughly_65b_params() {
        let p = llama_65b().params_billions();
        assert!(p > 58.0 && p < 72.0, "got {p}");
    }

    #[test]
    fn bert_large_is_roughly_330m_params() {
        let p = bert_large().params_billions();
        assert!(p > 0.25 && p < 0.45, "got {p}");
    }

    #[test]
    fn t5_11b_is_roughly_11b_params() {
        let p = t5_11b().params_billions();
        assert!(p > 9.0 && p < 14.0, "got {p}");
    }

    #[test]
    fn scaling_models_are_sorted_by_size() {
        let sizes: Vec<u64> = scaling_tax_models().iter().map(|m| m.total_params()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "scaling tax models must be increasing: {sizes:?}");
        }
    }

    #[test]
    fn head_dim_divides_hidden_dim_for_decoders() {
        for m in [llama_7b(), llama_13b(), llama_32b(), llama_65b(), baichuan_13b(), qwen_32b()] {
            assert_eq!(m.hidden_dim, m.heads * m.head_dim, "{}", m.name);
        }
    }

    #[test]
    fn by_name_finds_models_case_insensitively() {
        assert!(by_name("llama-13b").is_some());
        assert!(by_name("LLAMA-65B").is_some());
        assert!(by_name("bert-large").is_some());
        assert!(by_name("no-such-model").is_none());
    }

    #[test]
    fn evaluation_set_has_decoder_and_encoder_models() {
        let models = evaluation_models();
        assert!(models.iter().any(|m| m.architecture == Architecture::DecoderOnly));
        assert!(models.iter().any(|m| m.architecture == Architecture::EncoderOnly));
        assert!(models.iter().any(|m| m.architecture == Architecture::EncoderDecoder));
    }

    #[test]
    fn int8_weight_bytes_equal_param_count() {
        let m = llama_13b();
        assert_eq!(m.total_weight_bytes(), m.total_params());
    }
}
