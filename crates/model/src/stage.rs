//! The six-stage pipeline partition of a transformer block (Fig. 4).
//!
//! Each transformer block is split into six pipeline stages so that a model
//! with `N` blocks forms a unified `6·N`-stage pipeline. The stages are:
//!
//! 1. **QKV generation** (plus the preceding LayerNorm),
//! 2. **Score** — `S = Q·Kᵀ`,
//! 3. **Softmax** (executed on the SFU),
//! 4. **Context + projection** — `softmax(S)·V` followed by the output
//!    projection (plus the residual add),
//! 5. **FFN1** (plus the second LayerNorm),
//! 6. **FFN2** (plus the residual add).

use crate::config::ModelConfig;

/// Number of pipeline stages a single transformer block is split into.
pub const STAGES_PER_BLOCK: usize = 6;

/// Identity of one of the six pipeline stages within a transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StageKind {
    /// LayerNorm + Q/K/V projections.
    QkvGeneration,
    /// Attention score computation `S = Q·Kᵀ` (reads the K cache in situ).
    Score,
    /// Softmax over the score row (special-function unit).
    Softmax,
    /// Context `softmax(S)·V` (reads the V cache in situ) + output projection.
    ContextProjection,
    /// LayerNorm + first feed-forward layer (up-projection).
    Ffn1,
    /// Second feed-forward layer (down-projection) + residual.
    Ffn2,
}

impl StageKind {
    /// All six stages in pipeline order.
    pub const ALL: [StageKind; STAGES_PER_BLOCK] = [
        StageKind::QkvGeneration,
        StageKind::Score,
        StageKind::Softmax,
        StageKind::ContextProjection,
        StageKind::Ffn1,
        StageKind::Ffn2,
    ];

    /// Position of this stage within a block, `0..6`.
    pub fn index(self) -> usize {
        StageKind::ALL.iter().position(|&k| k == self).expect("stage present in ALL")
    }

    /// Whether the stage holds static model weights in its crossbars
    /// (as opposed to the attention stages that read the dynamic KV cache,
    /// and softmax which runs entirely on the SFU).
    pub fn holds_weights(self) -> bool {
        matches!(
            self,
            StageKind::QkvGeneration | StageKind::ContextProjection | StageKind::Ffn1 | StageKind::Ffn2
        )
    }

    /// Whether the stage performs in-situ computation against the KV cache.
    pub fn uses_kv_cache(self) -> bool {
        matches!(self, StageKind::Score | StageKind::ContextProjection)
    }

    /// Whether the stage's compute grows with the attended context length
    /// (attention score and context stages) rather than being constant per
    /// token (projections and FFN).
    pub fn scales_with_context(self) -> bool {
        matches!(self, StageKind::Score | StageKind::Softmax | StageKind::ContextProjection)
    }

    /// Whether the stage executes primarily on the special-function unit.
    pub fn runs_on_sfu(self) -> bool {
        matches!(self, StageKind::Softmax)
    }
}

impl std::fmt::Display for StageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StageKind::QkvGeneration => "qkv-generation",
            StageKind::Score => "score",
            StageKind::Softmax => "softmax",
            StageKind::ContextProjection => "context-projection",
            StageKind::Ffn1 => "ffn1",
            StageKind::Ffn2 => "ffn2",
        };
        write!(f, "{s}")
    }
}

/// A pipeline stage instantiated for a concrete model: carries the layer
/// shapes needed by the mapping and hardware crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStage {
    /// Which of the six stages this is.
    pub kind: StageKind,
    /// Input feature dimension of the stage's main GEMV/GEMM.
    pub input_dim: usize,
    /// Output feature dimension of the stage's main GEMV/GEMM.
    pub output_dim: usize,
    /// Static weight elements held by the stage (zero for score/softmax,
    /// whose "weights" are the dynamic KV cache).
    pub weight_elems: u64,
    /// Number of attention heads the stage is split across (1 for FFN).
    pub heads: usize,
}

impl PipelineStage {
    /// Builds the stage description for `kind` from a model configuration.
    pub fn new(kind: StageKind, model: &ModelConfig) -> PipelineStage {
        let d = model.hidden_dim;
        let qkv = model.heads * model.head_dim;
        let f = model.ffn_dim;
        let (input_dim, output_dim, weight_elems, heads) = match kind {
            StageKind::QkvGeneration => (d, 3 * qkv, (3 * d * qkv) as u64, model.heads),
            StageKind::Score => (model.head_dim, 0, 0, model.heads),
            StageKind::Softmax => (0, 0, 0, model.heads),
            StageKind::ContextProjection => (qkv, d, (qkv * d) as u64, model.heads),
            StageKind::Ffn1 => (d, f, (d * f) as u64, 1),
            StageKind::Ffn2 => (f, d, (f * d) as u64, 1),
        };
        PipelineStage { kind, input_dim, output_dim, weight_elems, heads }
    }

    /// Static weight bytes of this stage at the model's precision.
    pub fn weight_bytes(&self, model: &ModelConfig) -> u64 {
        self.weight_elems * model.precision.bytes()
    }

    /// Output activation bytes produced for one token.
    pub fn output_bytes(&self, model: &ModelConfig) -> u64 {
        self.output_dim as u64 * model.precision.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn all_contains_six_distinct_stages() {
        assert_eq!(StageKind::ALL.len(), STAGES_PER_BLOCK);
        for (i, k) in StageKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn weight_holding_stages() {
        assert!(StageKind::QkvGeneration.holds_weights());
        assert!(StageKind::Ffn1.holds_weights());
        assert!(StageKind::Ffn2.holds_weights());
        assert!(StageKind::ContextProjection.holds_weights());
        assert!(!StageKind::Score.holds_weights());
        assert!(!StageKind::Softmax.holds_weights());
    }

    #[test]
    fn kv_stages() {
        assert!(StageKind::Score.uses_kv_cache());
        assert!(StageKind::ContextProjection.uses_kv_cache());
        assert!(!StageKind::Ffn1.uses_kv_cache());
    }

    #[test]
    fn stage_weight_sum_matches_block_attention_and_ffn() {
        let m = zoo::llama_13b();
        let total: u64 = StageKind::ALL.iter().map(|&k| PipelineStage::new(k, &m).weight_elems).sum();
        // block_params additionally counts the two layer norms (4 * d).
        assert_eq!(total + 4 * m.hidden_dim as u64, m.block_params());
    }

    #[test]
    fn ffn_dims_are_wired_through() {
        let m = zoo::llama_13b();
        let ffn1 = PipelineStage::new(StageKind::Ffn1, &m);
        let ffn2 = PipelineStage::new(StageKind::Ffn2, &m);
        assert_eq!(ffn1.output_dim, m.ffn_dim);
        assert_eq!(ffn2.input_dim, m.ffn_dim);
        assert_eq!(ffn2.output_dim, m.hidden_dim);
    }

    #[test]
    fn softmax_runs_on_sfu_only() {
        for kind in StageKind::ALL {
            assert_eq!(kind.runs_on_sfu(), kind == StageKind::Softmax);
        }
    }

    #[test]
    fn context_scaling_stages() {
        assert!(StageKind::Score.scales_with_context());
        assert!(StageKind::Softmax.scales_with_context());
        assert!(StageKind::ContextProjection.scales_with_context());
        assert!(!StageKind::QkvGeneration.scales_with_context());
        assert!(!StageKind::Ffn2.scales_with_context());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(StageKind::QkvGeneration.to_string(), "qkv-generation");
        assert_eq!(StageKind::Ffn2.to_string(), "ffn2");
    }
}
