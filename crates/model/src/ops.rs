//! Per-stage operation and data-volume counters.
//!
//! These counters are the contract between the model description and the
//! hardware/pipeline simulators: for a single token flowing through one
//! transformer block, each stage reports how many multiply-accumulate
//! operations it performs, how many weight bytes it touches, how much KV
//! cache it reads and writes, and how large its input/output activations are.
//!
//! Attention stages scale with the number of *attended* positions, which is
//! where the prefill/decode asymmetry and the causal-mask savings of
//! token-grained pipelining come from.

use crate::config::ModelConfig;
use crate::mask::MaskKind;
use crate::stage::{StageKind, STAGES_PER_BLOCK};

/// Operation and data-volume counts for one pipeline stage processing one
/// token that attends to `attended` KV positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCosts {
    /// Multiply–accumulate-equivalent floating point operations (1 MAC = 2 FLOPs).
    pub flops: u64,
    /// Static weight bytes the stage must have resident (and, on non-CIM
    /// hardware, read from memory) to process the token.
    pub weight_bytes: u64,
    /// KV-cache bytes read in situ by the stage.
    pub kv_read_bytes: u64,
    /// KV-cache bytes written (appended) by the stage.
    pub kv_write_bytes: u64,
    /// Input activation bytes consumed.
    pub act_in_bytes: u64,
    /// Output activation bytes produced.
    pub act_out_bytes: u64,
    /// Element-wise / reduction operations executed on the SFU.
    pub sfu_ops: u64,
}

impl StageCosts {
    /// Computes the costs of `kind` for one token of `model` attending to
    /// `attended` KV positions (including itself).
    pub fn for_token(model: &ModelConfig, kind: StageKind, attended: usize) -> StageCosts {
        let d = model.hidden_dim as u64;
        let qkv = (model.heads * model.head_dim) as u64;
        let f = model.ffn_dim as u64;
        let heads = model.heads as u64;
        let att = attended as u64;
        let b = model.precision.bytes();

        match kind {
            StageKind::QkvGeneration => StageCosts {
                flops: 2 * d * 3 * qkv,
                weight_bytes: 3 * d * qkv * b,
                kv_write_bytes: 2 * qkv * b,
                act_in_bytes: d * b,
                act_out_bytes: 3 * qkv * b,
                sfu_ops: 4 * d, // LayerNorm mean/var/normalise
                ..StageCosts::default()
            },
            StageKind::Score => StageCosts {
                // Q·Kᵀ per head: head_dim MACs per attended position.
                flops: 2 * att * qkv,
                kv_read_bytes: att * qkv * b,
                act_in_bytes: qkv * b,
                act_out_bytes: att * heads * b,
                ..StageCosts::default()
            },
            StageKind::Softmax => StageCosts {
                // exp + running max/sum + divide per score entry.
                sfu_ops: 5 * att * heads,
                act_in_bytes: att * heads * b,
                act_out_bytes: att * heads * b,
                ..StageCosts::default()
            },
            StageKind::ContextProjection => StageCosts {
                // softmax(S)·V plus the output projection.
                flops: 2 * att * qkv + 2 * qkv * d,
                weight_bytes: qkv * d * b,
                kv_read_bytes: att * qkv * b,
                act_in_bytes: att * heads * b,
                act_out_bytes: d * b,
                sfu_ops: d, // residual add
                ..StageCosts::default()
            },
            StageKind::Ffn1 => StageCosts {
                flops: 2 * d * f,
                weight_bytes: d * f * b,
                act_in_bytes: d * b,
                act_out_bytes: f * b,
                sfu_ops: 4 * d + f, // LayerNorm + activation function
                ..StageCosts::default()
            },
            StageKind::Ffn2 => StageCosts {
                flops: 2 * f * d,
                weight_bytes: f * d * b,
                act_in_bytes: f * b,
                act_out_bytes: d * b,
                sfu_ops: d, // residual add
                ..StageCosts::default()
            },
        }
    }
}

impl std::ops::Add for StageCosts {
    type Output = StageCosts;

    /// Sum of two cost records, field-wise.
    fn add(self, other: StageCosts) -> StageCosts {
        StageCosts {
            flops: self.flops + other.flops,
            weight_bytes: self.weight_bytes + other.weight_bytes,
            kv_read_bytes: self.kv_read_bytes + other.kv_read_bytes,
            kv_write_bytes: self.kv_write_bytes + other.kv_write_bytes,
            act_in_bytes: self.act_in_bytes + other.act_in_bytes,
            act_out_bytes: self.act_out_bytes + other.act_out_bytes,
            sfu_ops: self.sfu_ops + other.sfu_ops,
        }
    }
}

/// Aggregated costs of one token flowing through one whole transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCosts {
    /// Per-stage costs in pipeline order.
    pub stages: [StageCosts; STAGES_PER_BLOCK],
}

impl BlockCosts {
    /// Costs of one token attending to `attended` positions in one block.
    pub fn for_token(model: &ModelConfig, attended: usize) -> BlockCosts {
        let mut stages = [StageCosts::default(); STAGES_PER_BLOCK];
        for (i, kind) in StageKind::ALL.iter().enumerate() {
            stages[i] = StageCosts::for_token(model, *kind, attended);
        }
        BlockCosts { stages }
    }

    /// Total over all six stages.
    pub fn total(&self) -> StageCosts {
        self.stages.iter().fold(StageCosts::default(), |acc, s| acc + *s)
    }

    /// Costs of the stage with the given kind.
    pub fn stage(&self, kind: StageKind) -> StageCosts {
        self.stages[kind.index()]
    }
}

impl ModelConfig {
    /// FLOPs performed by `kind` for one token attending to `attended`
    /// positions (see [`StageCosts::for_token`]).
    pub fn stage_flops(&self, kind: StageKind, attended: usize) -> u64 {
        StageCosts::for_token(self, kind, attended).flops
    }

    /// Total FLOPs to run one token through the entire model (all blocks)
    /// when it attends to `attended` positions.
    pub fn token_flops(&self, attended: usize) -> u64 {
        BlockCosts::for_token(self, attended).total().flops * self.blocks as u64
    }

    /// Total FLOPs of the prefill phase of a prompt of `prompt_len` tokens
    /// under this model's mask (token *t* attends to `attended_positions(t)`).
    pub fn prefill_flops(&self, prompt_len: usize) -> u64 {
        let mask = self.mask();
        (0..prompt_len).map(|t| self.token_flops(mask.attended_positions(t, prompt_len, prompt_len))).sum()
    }

    /// Total FLOPs of decoding `decode_len` tokens after a prompt of
    /// `prompt_len` tokens (each decode step attends to everything so far).
    pub fn decode_flops(&self, prompt_len: usize, decode_len: usize) -> u64 {
        (0..decode_len).map(|t| self.token_flops(prompt_len + t + 1)).sum()
    }

    /// KV-cache bytes resident after prefill of `prompt_len` plus
    /// `decoded` generated tokens, for one sequence across the whole model.
    pub fn kv_bytes_for_sequence(&self, prompt_len: usize, decoded: usize) -> u64 {
        (prompt_len + decoded) as u64 * self.kv_bytes_per_token()
    }

    /// Number of *valid* score entries of a full prefill under this model's
    /// mask — the attention work that the causal mask saves shows up here.
    pub fn prefill_score_entries(&self, prompt_len: usize) -> u64 {
        MaskKind::valid_score_entries(self.mask(), prompt_len, prompt_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use proptest::prelude::*;

    #[test]
    fn ffn_flops_independent_of_context() {
        let m = zoo::llama_13b();
        let a = StageCosts::for_token(&m, StageKind::Ffn1, 1);
        let b = StageCosts::for_token(&m, StageKind::Ffn1, 4096);
        assert_eq!(a.flops, b.flops);
    }

    #[test]
    fn score_flops_scale_linearly_with_context() {
        let m = zoo::llama_13b();
        let one = StageCosts::for_token(&m, StageKind::Score, 1).flops;
        let thousand = StageCosts::for_token(&m, StageKind::Score, 1000).flops;
        assert_eq!(thousand, one * 1000);
    }

    #[test]
    fn qkv_writes_kv_for_every_head() {
        let m = zoo::llama_13b();
        let c = StageCosts::for_token(&m, StageKind::QkvGeneration, 1);
        assert_eq!(c.kv_write_bytes, m.kv_bytes_per_token_per_block());
    }

    #[test]
    fn only_attention_stages_read_kv() {
        let m = zoo::llama_13b();
        for kind in StageKind::ALL {
            let c = StageCosts::for_token(&m, kind, 128);
            assert_eq!(c.kv_read_bytes > 0, kind.uses_kv_cache());
        }
    }

    #[test]
    fn block_total_is_sum_of_stages() {
        let m = zoo::llama_13b();
        let block = BlockCosts::for_token(&m, 256);
        let manual: u64 = block.stages.iter().map(|s| s.flops).sum();
        assert_eq!(block.total().flops, manual);
    }

    #[test]
    fn softmax_has_no_macs() {
        let m = zoo::llama_13b();
        let c = StageCosts::for_token(&m, StageKind::Softmax, 512);
        assert_eq!(c.flops, 0);
        assert!(c.sfu_ops > 0);
    }

    #[test]
    fn token_flops_multiplies_blocks() {
        let m = zoo::llama_13b();
        let per_block = BlockCosts::for_token(&m, 10).total().flops;
        assert_eq!(m.token_flops(10), per_block * m.blocks as u64);
    }

    #[test]
    fn decode_flops_grow_with_decode_length() {
        let m = zoo::llama_13b();
        assert!(m.decode_flops(128, 256) > m.decode_flops(128, 128));
        assert_eq!(m.decode_flops(128, 0), 0);
    }

    #[test]
    fn prefill_uses_mask_causal_cheaper_than_bidirectional_score() {
        let llama = zoo::llama_13b();
        let bert = zoo::bert_large();
        // Causal prefill touches ~half the score entries of bidirectional.
        let l = llama.prefill_score_entries(512) as f64 / 512.0 / 512.0;
        let b = bert.prefill_score_entries(512) as f64 / 512.0 / 512.0;
        assert!(l < 0.52 && l > 0.49);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kv_bytes_for_sequence_accumulate() {
        let m = zoo::llama_13b();
        assert_eq!(m.kv_bytes_for_sequence(100, 28), 128 * m.kv_bytes_per_token());
    }

    proptest! {
        #[test]
        fn stage_costs_monotone_in_context(att1 in 1usize..2048, extra in 0usize..2048) {
            let m = zoo::llama_13b();
            let att2 = att1 + extra;
            for kind in StageKind::ALL {
                let a = StageCosts::for_token(&m, kind, att1);
                let b = StageCosts::for_token(&m, kind, att2);
                prop_assert!(b.flops >= a.flops);
                prop_assert!(b.kv_read_bytes >= a.kv_read_bytes);
                prop_assert!(b.sfu_ops >= a.sfu_ops);
            }
        }

        #[test]
        fn prefill_plus_decode_matches_stepwise(prompt in 1usize..64, decode in 0usize..64) {
            let m = zoo::llama_13b();
            let total = m.prefill_flops(prompt) + m.decode_flops(prompt, decode);
            let manual: u64 = (0..prompt + decode)
                .map(|t| m.token_flops(t + 1))
                .sum();
            prop_assert_eq!(total, manual);
        }
    }
}
