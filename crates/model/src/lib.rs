//! Architectural descriptions of transformer language models.
//!
//! This crate is the *workload side* of the Ouroboros simulator: it knows the
//! shapes of every layer in a transformer block, how those layers are grouped
//! into the six pipeline stages of the Ouroboros execution model (Fig. 4 of the
//! paper), and how many floating-point operations, weight bytes, activation
//! bytes and KV-cache bytes each stage moves for a given token position.
//!
//! Nothing in this crate knows about hardware; the hardware crates
//! (`ouro-hw`, `ouro-noc`) consume these counts to derive latency and energy.
//!
//! # Example
//!
//! ```
//! use ouro_model::zoo;
//! use ouro_model::stage::StageKind;
//!
//! let llama = zoo::llama_13b();
//! assert_eq!(llama.blocks, 40);
//! // Weight bytes of one whole transformer block at 8-bit precision.
//! let bytes = llama.block_weight_bytes();
//! assert!(bytes > 300_000_000);
//! // FLOPs performed by the QKV-generation stage for one decode token.
//! let flops = llama.stage_flops(StageKind::QkvGeneration, 1);
//! assert!(flops > 0);
//! ```

pub mod config;
pub mod mask;
pub mod ops;
pub mod stage;
pub mod zoo;

pub use config::{Architecture, ModelConfig, Precision};
pub use mask::MaskKind;
pub use ops::{BlockCosts, StageCosts};
pub use stage::{PipelineStage, StageKind, STAGES_PER_BLOCK};
