//! Model configuration: the architectural hyper-parameters of an LLM.

use crate::mask::MaskKind;
use crate::stage::{PipelineStage, StageKind};

/// Numeric precision used for weights and activations on Ouroboros.
///
/// The paper's CIM crossbars store 8-bit weights and consume 8-bit
/// activations, accumulating into 32-bit partial sums; GPU/NPU baselines run
/// 16-bit. The enum carries the byte width used for capacity accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 8-bit integer weights/activations (Ouroboros CIM native format).
    #[default]
    Int8,
    /// 16-bit floating point (GPU / NPU baselines).
    Fp16,
    /// 32-bit floating point (reference).
    Fp32,
}

impl Precision {
    /// Number of bytes per scalar element.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Int8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }

    /// Number of bits per scalar element.
    pub fn bits(self) -> u64 {
        self.bytes() * 8
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Int8 => write!(f, "int8"),
            Precision::Fp16 => write!(f, "fp16"),
            Precision::Fp32 => write!(f, "fp32"),
        }
    }
}

/// High-level transformer architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Decoder-only causal LM (LLaMA, Baichuan, Qwen). Fully token-grained
    /// pipelining applies (causal mask, Fig. 6a).
    DecoderOnly,
    /// Encoder-only bidirectional model (BERT). Attention stages require the
    /// full sequence (bidirectional mask, Fig. 6b); TGP-with-block applies.
    EncoderOnly,
    /// Encoder-decoder / seq2seq model (T5). Prefix mask (Fig. 6c); encoder
    /// blocks are sequence-grained in the attention stages.
    EncoderDecoder,
}

impl Architecture {
    /// The attention mask implied by this architecture family.
    pub fn mask(self) -> MaskKind {
        match self {
            Architecture::DecoderOnly => MaskKind::Causal,
            Architecture::EncoderOnly => MaskKind::Bidirectional,
            Architecture::EncoderDecoder => MaskKind::Prefix,
        }
    }

    /// Whether attention stages can run at token granularity without waiting
    /// for the rest of the sequence (true only for causal masks).
    pub fn supports_token_grained_attention(self) -> bool {
        matches!(self, Architecture::DecoderOnly)
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::DecoderOnly => write!(f, "decoder-only"),
            Architecture::EncoderOnly => write!(f, "encoder-only"),
            Architecture::EncoderDecoder => write!(f, "encoder-decoder"),
        }
    }
}

/// Architectural hyper-parameters of a transformer LLM.
///
/// All size accounting in the simulator derives from these fields; no actual
/// weights are ever materialised.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable model name, e.g. `"LLaMA-13B"`.
    pub name: String,
    /// Architecture family (decoder-only / encoder-only / encoder-decoder).
    pub architecture: Architecture,
    /// Number of transformer blocks (`N` in the paper).
    pub blocks: usize,
    /// Hidden (model) dimension `d_model`.
    pub hidden_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Dimension of each attention head (`hidden_dim / heads` unless the
    /// model uses a non-standard head size).
    pub head_dim: usize,
    /// Feed-forward intermediate dimension (`FFN1` output width).
    pub ffn_dim: usize,
    /// Vocabulary size (used for the LM head / embedding, counted once).
    pub vocab_size: usize,
    /// Maximum context window the model supports.
    pub max_context: usize,
    /// Weight/activation precision assumed when deployed on Ouroboros.
    pub precision: Precision,
}

impl ModelConfig {
    /// Total parameter count of one transformer block (attention + FFN +
    /// layer norms), in scalar elements.
    pub fn block_params(&self) -> u64 {
        let d = self.hidden_dim as u64;
        let qkv_dim = (self.heads * self.head_dim) as u64;
        let f = self.ffn_dim as u64;
        // Q, K, V projections and the output projection.
        let attn = 3 * d * qkv_dim + qkv_dim * d;
        // Two-layer FFN (gate-less; gated variants are folded into ffn_dim by
        // the zoo constructors so that byte counts match published sizes).
        let ffn = d * f + f * d;
        // Two layer norms (gain + bias).
        let norms = 4 * d;
        attn + ffn + norms
    }

    /// Total parameter count of the full model in scalar elements, including
    /// the token embedding and output head.
    pub fn total_params(&self) -> u64 {
        let embed = (self.vocab_size * self.hidden_dim) as u64;
        self.block_params() * self.blocks as u64 + 2 * embed
    }

    /// Weight bytes of one transformer block at the configured precision.
    pub fn block_weight_bytes(&self) -> u64 {
        self.block_params() * self.precision.bytes()
    }

    /// Weight bytes of the full model at the configured precision.
    pub fn total_weight_bytes(&self) -> u64 {
        self.total_params() * self.precision.bytes()
    }

    /// Bytes of KV-cache produced per token per block (K plus V vectors for
    /// every head) at the configured precision.
    pub fn kv_bytes_per_token_per_block(&self) -> u64 {
        2 * (self.heads * self.head_dim) as u64 * self.precision.bytes()
    }

    /// Bytes of KV-cache produced per token across the whole model.
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_bytes_per_token_per_block() * self.blocks as u64
    }

    /// Bytes of the hidden-state activation of a single token.
    pub fn activation_bytes_per_token(&self) -> u64 {
        self.hidden_dim as u64 * self.precision.bytes()
    }

    /// The six pipeline stages of one transformer block in execution order
    /// (Fig. 4): QKV generation, score, softmax, context+projection,
    /// FFN1, FFN2.
    pub fn pipeline_stages(&self) -> Vec<PipelineStage> {
        StageKind::ALL.iter().map(|&kind| PipelineStage::new(kind, self)).collect()
    }

    /// Mask kind used by the attention of this model.
    pub fn mask(&self) -> MaskKind {
        self.architecture.mask()
    }

    /// Returns a copy of this configuration with a different deployment
    /// precision (used when modelling fp16 GPU baselines of the same model).
    pub fn with_precision(&self, precision: Precision) -> ModelConfig {
        ModelConfig { precision, ..self.clone() }
    }

    /// Approximate total parameter count expressed in billions, for display.
    pub fn params_billions(&self) -> f64 {
        self.total_params() as f64 / 1e9
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}, {} blocks, d={}, heads={}, ffn={}, {:.1}B params)",
            self.name,
            self.architecture,
            self.blocks,
            self.hidden_dim,
            self.heads,
            self.ffn_dim,
            self.params_billions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Int8.bytes(), 1);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Fp16.bits(), 16);
    }

    #[test]
    fn architecture_masks() {
        assert_eq!(Architecture::DecoderOnly.mask(), MaskKind::Causal);
        assert_eq!(Architecture::EncoderOnly.mask(), MaskKind::Bidirectional);
        assert_eq!(Architecture::EncoderDecoder.mask(), MaskKind::Prefix);
        assert!(Architecture::DecoderOnly.supports_token_grained_attention());
        assert!(!Architecture::EncoderOnly.supports_token_grained_attention());
    }

    #[test]
    fn block_params_scale_with_dims() {
        let small = zoo::llama_13b();
        let big = zoo::llama_32b();
        assert!(big.block_params() > small.block_params());
        assert!(big.total_params() > small.total_params());
    }

    #[test]
    fn kv_bytes_match_head_layout() {
        let m = zoo::llama_13b();
        assert_eq!(m.kv_bytes_per_token_per_block(), 2 * (m.heads * m.head_dim) as u64);
        assert_eq!(m.kv_bytes_per_token(), m.kv_bytes_per_token_per_block() * m.blocks as u64);
    }

    #[test]
    fn with_precision_scales_bytes() {
        let m = zoo::llama_13b();
        let fp16 = m.with_precision(Precision::Fp16);
        assert_eq!(fp16.total_weight_bytes(), 2 * m.total_weight_bytes());
        assert_eq!(fp16.name, m.name);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", zoo::llama_13b());
        assert!(s.contains("LLaMA-13B"));
        assert!(s.contains("decoder-only"));
    }

    #[test]
    fn six_stages_per_block() {
        let m = zoo::llama_13b();
        assert_eq!(m.pipeline_stages().len(), 6);
    }
}
