//! Attention-mask shapes and their consequences for token-grained pipelining.
//!
//! Fig. 6 of the paper: causal masks (decoder-only models) let every token
//! attend only to itself and earlier tokens, so attention for token *t* can
//! start as soon as K/V for tokens `0..=t` exist — which is exactly when TGP
//! delivers them. Bidirectional and prefix masks need later tokens too, so
//! the attention stages must fall back to sequence granularity ("TGP with
//! block", Fig. 5c).

/// Shape of the attention mask used by a transformer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskKind {
    /// Lower-triangular causal mask: token *t* attends to `0..=t`.
    Causal,
    /// Full bidirectional mask: every token attends to every token.
    Bidirectional,
    /// Prefix mask: a bidirectional prefix followed by a causal suffix
    /// (encoder-decoder models attending over the encoded prompt).
    Prefix,
}

impl MaskKind {
    /// Number of key/value positions token `t` (0-based) of a sequence of
    /// length `seq_len` must attend to under this mask.
    ///
    /// For [`MaskKind::Prefix`], `prefix_len` gives the bidirectional prefix
    /// length; it is ignored for the other variants.
    ///
    /// # Panics
    ///
    /// Panics if `t >= seq_len`.
    pub fn attended_positions(self, t: usize, seq_len: usize, prefix_len: usize) -> usize {
        assert!(t < seq_len, "token index {t} out of range for sequence of length {seq_len}");
        match self {
            MaskKind::Causal => t + 1,
            MaskKind::Bidirectional => seq_len,
            MaskKind::Prefix => {
                if t < prefix_len {
                    // Tokens inside the prefix see the whole prefix.
                    prefix_len.max(t + 1)
                } else {
                    // Suffix tokens are causal over everything before them.
                    t + 1
                }
            }
        }
    }

    /// Whether attention for token `t` can be computed without waiting for
    /// any token scheduled *after* it in the pipeline.
    pub fn token_grained_ready(self, t: usize, seq_len: usize, prefix_len: usize) -> bool {
        self.attended_positions(t, seq_len, prefix_len) <= t + 1
    }

    /// Total number of score-matrix entries that are *valid* (unmasked) for a
    /// sequence of length `seq_len` — the effective attention work.
    pub fn valid_score_entries(self, seq_len: usize, prefix_len: usize) -> u64 {
        (0..seq_len).map(|t| self.attended_positions(t, seq_len, prefix_len) as u64).sum()
    }
}

impl std::fmt::Display for MaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskKind::Causal => write!(f, "causal"),
            MaskKind::Bidirectional => write!(f, "bidirectional"),
            MaskKind::Prefix => write!(f, "prefix"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn causal_attends_to_prefix_inclusive() {
        assert_eq!(MaskKind::Causal.attended_positions(0, 8, 0), 1);
        assert_eq!(MaskKind::Causal.attended_positions(7, 8, 0), 8);
    }

    #[test]
    fn bidirectional_attends_to_everything() {
        for t in 0..8 {
            assert_eq!(MaskKind::Bidirectional.attended_positions(t, 8, 0), 8);
        }
    }

    #[test]
    fn prefix_mixes_both() {
        // prefix of 4, total length 8
        assert_eq!(MaskKind::Prefix.attended_positions(0, 8, 4), 4);
        assert_eq!(MaskKind::Prefix.attended_positions(3, 8, 4), 4);
        assert_eq!(MaskKind::Prefix.attended_positions(4, 8, 4), 5);
        assert_eq!(MaskKind::Prefix.attended_positions(7, 8, 4), 8);
    }

    #[test]
    fn causal_is_always_token_grained_ready() {
        for t in 0..16 {
            assert!(MaskKind::Causal.token_grained_ready(t, 16, 0));
        }
    }

    #[test]
    fn bidirectional_only_ready_at_last_token() {
        assert!(!MaskKind::Bidirectional.token_grained_ready(0, 4, 0));
        assert!(MaskKind::Bidirectional.token_grained_ready(3, 4, 0));
    }

    #[test]
    fn causal_score_entries_are_triangular() {
        // 1 + 2 + ... + n = n(n+1)/2
        assert_eq!(MaskKind::Causal.valid_score_entries(100, 0), 100 * 101 / 2);
    }

    #[test]
    fn bidirectional_score_entries_are_square() {
        assert_eq!(MaskKind::Bidirectional.valid_score_entries(64, 0), 64 * 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn attended_positions_panics_out_of_range() {
        MaskKind::Causal.attended_positions(8, 8, 0);
    }

    proptest! {
        #[test]
        fn attended_positions_never_exceed_seq_len(
            t in 0usize..256,
            extra in 1usize..256,
            prefix in 0usize..256,
        ) {
            let seq_len = t + extra;
            for mask in [MaskKind::Causal, MaskKind::Bidirectional, MaskKind::Prefix] {
                let a = mask.attended_positions(t, seq_len, prefix.min(seq_len));
                prop_assert!(a >= 1);
                prop_assert!(a <= seq_len);
            }
        }

        #[test]
        fn causal_entries_below_bidirectional(seq in 1usize..200) {
            prop_assert!(
                MaskKind::Causal.valid_score_entries(seq, 0)
                    <= MaskKind::Bidirectional.valid_score_entries(seq, 0)
            );
        }

        #[test]
        fn prefix_entries_between_causal_and_bidirectional(
            seq in 1usize..200, prefix in 0usize..200
        ) {
            let prefix = prefix.min(seq);
            let c = MaskKind::Causal.valid_score_entries(seq, 0);
            let p = MaskKind::Prefix.valid_score_entries(seq, prefix);
            let b = MaskKind::Bidirectional.valid_score_entries(seq, 0);
            prop_assert!(c <= p && p <= b);
        }
    }
}
