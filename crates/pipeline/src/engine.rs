//! Generic pipeline timing engines.
//!
//! Two engines are provided:
//!
//! * [`simulate_exact`] — the classical pipeline recurrence
//!   `T[i][s] = max(T[i-1][s], T[i][s-1]) + t(i, s)`, exact but `O(units ×
//!   stages)`. Used for sequence-grained schedules (≤ thousands of units) and
//!   as the oracle in tests.
//! * [`estimate_streaming`] — a streaming estimate for very long unit streams
//!   (token-grained schedules can exceed millions of units): the makespan is
//!   the fill latency of the first unit plus the busy time of the bottleneck
//!   stage. Exact when one stage dominates throughout, and a lower bound in
//!   general; unit tests check it against [`simulate_exact`].

/// Exact pipeline simulation.
///
/// `time(unit, stage)` returns the service time of `unit` in `stage`. Returns
/// `(makespan, per_stage_busy)`.
///
/// # Panics
///
/// Panics if `stages` is zero.
pub fn simulate_exact(
    units: usize,
    stages: usize,
    mut time: impl FnMut(usize, usize) -> f64,
) -> (f64, Vec<f64>) {
    assert!(stages > 0, "a pipeline needs at least one stage");
    let mut busy = vec![0.0f64; stages];
    if units == 0 {
        return (0.0, busy);
    }
    // finish[s] = completion time of the most recent unit in stage s.
    let mut finish = vec![0.0f64; stages];
    for unit in 0..units {
        let mut prev_stage_finish = 0.0f64;
        for stage in 0..stages {
            let t = time(unit, stage);
            let start = prev_stage_finish.max(finish[stage]);
            let end = start + t;
            busy[stage] += t;
            finish[stage] = end;
            prev_stage_finish = end;
        }
    }
    (finish[stages - 1], busy)
}

/// Streaming estimate for long unit streams.
///
/// `stage_totals[s]` is the total busy time of stage `s` over the whole
/// stream and `first_unit_times[s]` the service time of the first unit in
/// stage `s` (the pipeline fill). The makespan estimate is
/// `fill + max_s stage_totals[s] − bottleneck's first-unit time` (the first
/// unit's pass through the bottleneck is already counted in the fill).
///
/// # Panics
///
/// Panics if the two slices have different lengths or are empty.
pub fn estimate_streaming(stage_totals: &[f64], first_unit_times: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(stage_totals.len(), first_unit_times.len(), "stage count mismatch");
    assert!(!stage_totals.is_empty(), "a pipeline needs at least one stage");
    let fill: f64 = first_unit_times.iter().sum();
    let (bottleneck, total) = stage_totals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &t)| (i, t))
        .expect("non-empty");
    let makespan = fill + (total - first_unit_times[bottleneck]).max(0.0);
    (makespan, stage_totals.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_stage_pipeline_serialises() {
        let (makespan, busy) = simulate_exact(5, 1, |_, _| 2.0);
        assert!((makespan - 10.0).abs() < 1e-12);
        assert!((busy[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_pipeline_makespan_is_fill_plus_drain() {
        // n units, s stages, unit time 1: makespan = n + s - 1.
        let (makespan, _) = simulate_exact(10, 4, |_, _| 1.0);
        assert!((makespan - 13.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_takes_no_time() {
        let (makespan, busy) = simulate_exact(0, 3, |_, _| 1.0);
        assert_eq!(makespan, 0.0);
        assert!(busy.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn slow_stage_dominates() {
        // Stage 1 is 3x slower; for long streams makespan ≈ units × 3.
        let (makespan, busy) = simulate_exact(100, 3, |_, s| if s == 1 { 3.0 } else { 1.0 });
        assert!((300.0..310.0).contains(&makespan), "got {makespan}");
        assert!((busy[1] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn variable_unit_times_create_bubbles() {
        // Alternating long/short units on a 2-stage pipeline: the short unit
        // waits behind the long one — classic sequence-length imbalance.
        let times = [5.0, 1.0, 5.0, 1.0, 5.0, 1.0];
        let (makespan, busy) = simulate_exact(times.len(), 2, |u, _| times[u]);
        let busy_total: f64 = busy.iter().sum();
        // With bubbles, total busy < stages × makespan.
        assert!(busy_total < 2.0 * makespan);
    }

    #[test]
    fn streaming_estimate_matches_exact_for_uniform_stream() {
        let units = 500;
        let stages = 6;
        let t = 0.25;
        let (exact, _) = simulate_exact(units, stages, |_, _| t);
        let totals = vec![t * units as f64; stages];
        let firsts = vec![t; stages];
        let (est, _) = estimate_streaming(&totals, &firsts);
        assert!((exact - est).abs() / exact < 1e-9, "exact {exact} vs est {est}");
    }

    #[test]
    fn streaming_estimate_matches_exact_with_a_dominant_stage() {
        let units = 200;
        let stages = 4;
        let stage_time = |s: usize| if s == 2 { 1.0 } else { 0.2 };
        let (exact, _) = simulate_exact(units, stages, |_, s| stage_time(s));
        let totals: Vec<f64> = (0..stages).map(|s| stage_time(s) * units as f64).collect();
        let firsts: Vec<f64> = (0..stages).map(stage_time).collect();
        let (est, _) = estimate_streaming(&totals, &firsts);
        assert!((exact - est).abs() / exact < 0.01, "exact {exact} vs est {est}");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_pipeline_rejected() {
        simulate_exact(1, 0, |_, _| 1.0);
    }

    #[test]
    #[should_panic(expected = "stage count mismatch")]
    fn mismatched_estimate_inputs_rejected() {
        estimate_streaming(&[1.0, 2.0], &[1.0]);
    }

    proptest! {
        #[test]
        fn makespan_at_least_bottleneck_busy_time(
            times in proptest::collection::vec(0.01f64..2.0, 1..40),
            stages in 1usize..8,
        ) {
            let (makespan, busy) = simulate_exact(times.len(), stages, |u, _| times[u]);
            let max_busy = busy.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(makespan + 1e-12 >= max_busy);
            // And at least the time of any single unit through all stages.
            let max_unit: f64 = times.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(makespan + 1e-12 >= max_unit * stages as f64);
        }

        #[test]
        fn streaming_estimate_is_a_lower_bound(
            times in proptest::collection::vec(0.01f64..2.0, 1..60),
            stages in 1usize..6,
        ) {
            // Unit times vary by unit but not by stage.
            let (exact, _) = simulate_exact(times.len(), stages, |u, _| times[u]);
            let total: f64 = times.iter().sum();
            let totals = vec![total; stages];
            let firsts = vec![times[0]; stages];
            let (est, _) = estimate_streaming(&totals, &firsts);
            prop_assert!(est <= exact + 1e-9);
        }
    }
}
