//! Pipeline granularity choices (Fig. 5).

use ouro_model::{Architecture, ModelConfig};

/// The unit of work a pipeline stage advances per slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Conventional sequence-grained pipelining: each stage holds a whole
    /// sequence at a time (Fig. 5a). Subject to bubbles under variable
    /// sequence lengths.
    Sequence,
    /// Token-grained pipelining (TGP, Fig. 5b): each stage holds a single
    /// token. Requires a causal mask so attention for token *t* never waits
    /// for later tokens.
    Token,
    /// Token-grained pipelining with sequence-level blocking of the attention
    /// stages (Fig. 5c): used for bidirectional / prefix-mask models where
    /// attention must see the whole sequence.
    TokenWithBlock,
}

impl Granularity {
    /// The finest granularity legal for a model: decoders get full TGP,
    /// encoder-style models get TGP-with-block.
    pub fn finest_for(model: &ModelConfig) -> Granularity {
        if model.architecture.supports_token_grained_attention() {
            Granularity::Token
        } else {
            Granularity::TokenWithBlock
        }
    }

    /// Whether this granularity is valid for the model's mask: plain TGP is
    /// only correct for causal (decoder-only) models.
    pub fn is_valid_for(&self, model: &ModelConfig) -> bool {
        match self {
            Granularity::Token => model.architecture == Architecture::DecoderOnly,
            Granularity::Sequence | Granularity::TokenWithBlock => true,
        }
    }

    /// Number of tokens of intermediate activation each pipeline stage must
    /// buffer for a maximum sequence length of `max_seq`: one token for
    /// token-grained stages, the whole sequence for sequence-grained ones.
    pub fn activation_tokens_per_stage(&self, max_seq: usize) -> usize {
        match self {
            Granularity::Sequence => max_seq,
            Granularity::Token => 1,
            // Non-attention stages buffer one token; the blocked attention
            // stages buffer the sequence's scores, which is what dominates.
            Granularity::TokenWithBlock => max_seq,
        }
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::Sequence => write!(f, "sequence-grained"),
            Granularity::Token => write!(f, "token-grained"),
            Granularity::TokenWithBlock => write!(f, "token-grained+block"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;

    #[test]
    fn decoders_get_full_tgp() {
        assert_eq!(Granularity::finest_for(&zoo::llama_13b()), Granularity::Token);
        assert_eq!(Granularity::finest_for(&zoo::qwen_32b()), Granularity::Token);
    }

    #[test]
    fn encoders_get_blocked_tgp() {
        assert_eq!(Granularity::finest_for(&zoo::bert_large()), Granularity::TokenWithBlock);
        assert_eq!(Granularity::finest_for(&zoo::t5_11b()), Granularity::TokenWithBlock);
    }

    #[test]
    fn plain_tgp_invalid_for_bidirectional_models() {
        assert!(!Granularity::Token.is_valid_for(&zoo::bert_large()));
        assert!(Granularity::Token.is_valid_for(&zoo::llama_13b()));
        assert!(Granularity::Sequence.is_valid_for(&zoo::bert_large()));
        assert!(Granularity::TokenWithBlock.is_valid_for(&zoo::t5_11b()));
    }

    #[test]
    fn activation_buffer_shrinks_by_seq_len_under_tgp() {
        let max_seq = 4096;
        assert_eq!(Granularity::Sequence.activation_tokens_per_stage(max_seq), 4096);
        assert_eq!(Granularity::Token.activation_tokens_per_stage(max_seq), 1);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Granularity::Token.to_string(), "token-grained");
        assert_eq!(Granularity::Sequence.to_string(), "sequence-grained");
    }
}
