//! Pipeline execution models: sequence-grained, token-grained (TGP) and
//! token-grained-with-block (the encoder adaptation).
//!
//! The paper's first contribution is *token-grained pipelining*: the fully
//! unrolled `6·N`-stage pipeline (Fig. 4) advances one **token** per slot
//! instead of one sequence, which removes the load imbalance caused by
//! variable sequence lengths and mixed prefill/decode batches (Fig. 5) and
//! shrinks the activation working set from whole sequences to single tokens.
//!
//! This crate is hardware-agnostic: callers supply a [`StageTimeModel`] that
//! prices one token (or one sequence) in each of the six stage kinds, and the
//! schedulers here turn a request trace into a [`PipelineReport`] — makespan,
//! per-stage busy time, bubble fraction and activation-buffer footprint. The
//! `ouro-sim` crate provides the hardware-derived stage-time model; tests
//! here use simple synthetic ones.

pub mod engine;
pub mod granularity;
pub mod report;
pub mod schedule;

pub use engine::{estimate_streaming, simulate_exact};
pub use granularity::Granularity;
pub use report::PipelineReport;
pub use schedule::{ConstantStageTimes, PipelineScheduler, RateStageTimes, StageTimeModel};
