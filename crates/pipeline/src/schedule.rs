//! Trace → pipeline schedule construction for the three granularities.
//!
//! The scheduler turns a request trace into per-stage work and feeds the
//! timing engines of [`crate::engine`]:
//!
//! * **Sequence-grained** — one pipeline unit per request; a stage holds the
//!   request for its entire token stream, so long requests stall short ones
//!   (the exact recurrence captures the resulting bubbles).
//! * **Token-grained (TGP)** — one unit per token; thanks to the causal mask
//!   every token's attention runs as soon as its K/V exist, so stage times
//!   are uniform per token and bubbles vanish (streaming engine).
//! * **Token-grained with block** — non-attention stages stay token-grained
//!   while attention degrades to sequence granularity; following §4.2.2 the
//!   only extra bubbles appear when a newly scheduled sequence is longer than
//!   every sequence before it.

use crate::engine::{estimate_streaming, simulate_exact};
use crate::granularity::Granularity;
use crate::report::PipelineReport;
use ouro_model::{ModelConfig, StageCosts, StageKind, STAGES_PER_BLOCK};
use ouro_workload::Trace;

/// Prices one token's work in each pipeline stage on some hardware.
///
/// `attended` is the number of KV positions the token attends to (context
/// length including itself); FFN-class stages ignore it.
pub trait StageTimeModel {
    /// Service time, in seconds, of one token in the given stage kind.
    fn token_time_s(&self, kind: StageKind, attended: usize) -> f64;

    /// Service time of an entire sequence of `len` tokens in the given stage,
    /// when the stage operates at sequence granularity. The default
    /// implementation sums the per-token times under a causal-style context
    /// growth from `start_ctx + 1` to `start_ctx + len`.
    fn sequence_time_s(&self, kind: StageKind, len: usize, start_ctx: usize) -> f64 {
        (0..len).map(|i| self.token_time_s(kind, start_ctx + i + 1)).sum()
    }
}

/// A trivially simple stage-time model: a constant time per token for
/// non-attention stages plus a per-attended-position increment for attention
/// stages. Useful for tests and for reasoning about the pipeline in
/// isolation from real hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantStageTimes {
    /// Base seconds per token per stage.
    pub base_s: f64,
    /// Additional seconds per attended position in the attention stages.
    pub per_context_s: f64,
}

impl StageTimeModel for ConstantStageTimes {
    fn token_time_s(&self, kind: StageKind, attended: usize) -> f64 {
        if kind.scales_with_context() {
            self.base_s + self.per_context_s * attended as f64
        } else {
            self.base_s
        }
    }
}

/// A stage-time model derived from per-stage cost counters and a fixed
/// compute/SFU rate; used by tests that need model-shaped (rather than
/// constant) stage times without pulling in the hardware crates.
#[derive(Debug, Clone, PartialEq)]
pub struct RateStageTimes {
    /// The model whose stage shapes drive the cost counters.
    pub model: ModelConfig,
    /// MAC throughput available to one pipeline stage, MAC/s.
    pub macs_per_s: f64,
    /// SFU throughput available to one pipeline stage, ops/s.
    pub sfu_ops_per_s: f64,
}

impl StageTimeModel for RateStageTimes {
    fn token_time_s(&self, kind: StageKind, attended: usize) -> f64 {
        let c = StageCosts::for_token(&self.model, kind, attended);
        let macs = c.flops / 2;
        macs as f64 / self.macs_per_s + c.sfu_ops as f64 / self.sfu_ops_per_s
    }
}

/// Builds pipeline reports for a model + trace at a chosen granularity.
#[derive(Debug, Clone)]
pub struct PipelineScheduler<'a, T: StageTimeModel> {
    model: &'a ModelConfig,
    times: &'a T,
}

impl<'a, T: StageTimeModel> PipelineScheduler<'a, T> {
    /// Creates a scheduler for `model` with hardware stage times `times`.
    pub fn new(model: &'a ModelConfig, times: &'a T) -> Self {
        PipelineScheduler { model, times }
    }

    /// Total number of pipeline stages (6 stages per transformer block).
    pub fn num_stages(&self) -> usize {
        STAGES_PER_BLOCK * self.model.blocks
    }

    /// Runs the trace at the requested granularity.
    ///
    /// # Panics
    ///
    /// Panics if the granularity is invalid for the model (plain TGP on a
    /// bidirectional-mask model).
    pub fn run(&self, trace: &Trace, granularity: Granularity) -> PipelineReport {
        assert!(granularity.is_valid_for(self.model), "{granularity} is not valid for {}", self.model.name);
        match granularity {
            Granularity::Sequence => self.run_sequence_grained(trace),
            Granularity::Token => self.run_token_grained(trace, 0.0),
            Granularity::TokenWithBlock => {
                let extra = self.blocking_bubble_s(trace);
                self.run_token_grained(trace, extra)
            }
        }
    }

    /// Convenience: run at the finest valid granularity for the model.
    pub fn run_finest(&self, trace: &Trace) -> PipelineReport {
        self.run(trace, Granularity::finest_for(self.model))
    }

    fn stage_kind(stage_index: usize) -> StageKind {
        StageKind::ALL[stage_index % STAGES_PER_BLOCK]
    }

    /// Sequence-grained: exact pipeline recurrence over requests.
    fn run_sequence_grained(&self, trace: &Trace) -> PipelineReport {
        let stages = self.num_stages();
        let units = trace.len();
        let seq_time = |unit: usize, stage: usize| -> f64 {
            let req = &trace.requests[unit];
            let kind = Self::stage_kind(stage);
            // The stage first streams the prompt (context grows from 1 to
            // prompt_len) and then the decode tokens (context keeps growing).
            self.times.sequence_time_s(kind, req.prompt_len, 0)
                + self.times.sequence_time_s(kind, req.decode_len, req.prompt_len)
        };
        let (makespan, busy) = simulate_exact(units, stages, seq_time);
        PipelineReport {
            makespan_s: makespan,
            stage_busy_s: Self::fold_stage_busy(&busy),
            num_stages: stages,
            units,
            total_tokens: trace.total_tokens(),
            output_tokens: trace.total_decode_tokens(),
        }
    }

    /// Token-grained: streaming estimate over the token stream, with an
    /// optional extra serial bubble (used by the blocked encoder variant).
    fn run_token_grained(&self, trace: &Trace, extra_bubble_s: f64) -> PipelineReport {
        let stages = self.num_stages();
        let mut kind_totals = [0.0f64; STAGES_PER_BLOCK];
        let mut first_token_times = [0.0f64; STAGES_PER_BLOCK];
        let mut first = true;
        for req in &trace.requests {
            for t in 0..req.total_tokens() {
                let attended = t + 1;
                for (k, kind) in StageKind::ALL.iter().enumerate() {
                    let time = self.times.token_time_s(*kind, attended);
                    kind_totals[k] += time;
                    if first {
                        first_token_times[k] = time;
                    }
                }
                first = false;
            }
        }
        // Every block repeats the same six stage kinds and every stage of
        // every block sees every token, so each stage's total busy time is
        // its kind's total.
        let stage_totals: Vec<f64> = (0..stages).map(|s| kind_totals[s % STAGES_PER_BLOCK]).collect();
        let firsts: Vec<f64> = (0..stages).map(|s| first_token_times[s % STAGES_PER_BLOCK]).collect();
        let (mut makespan, busy) = estimate_streaming(&stage_totals, &firsts);
        makespan += extra_bubble_s;
        PipelineReport {
            makespan_s: makespan,
            stage_busy_s: Self::fold_stage_busy(&busy),
            num_stages: stages,
            units: trace.total_tokens() as usize,
            total_tokens: trace.total_tokens(),
            output_tokens: trace.total_decode_tokens(),
        }
    }

    /// Extra serial time introduced by sequence-level blocking of the
    /// attention stages (§4.2.2): a newly scheduled sequence only bubbles the
    /// pipeline when it is longer than every previously scheduled sequence,
    /// by the length differential.
    fn blocking_bubble_s(&self, trace: &Trace) -> f64 {
        let mut running_max = 0usize;
        let mut bubble_tokens = 0usize;
        for req in &trace.requests {
            let len = req.total_tokens();
            if len > running_max {
                bubble_tokens += len - running_max;
                running_max = len;
            }
        }
        // Each bubbled token stalls the attention stages for roughly one
        // bottleneck token-slot.
        let bottleneck = StageKind::ALL
            .iter()
            .map(|&k| self.times.token_time_s(k, running_max.max(1)))
            .fold(0.0f64, f64::max);
        bubble_tokens as f64 * bottleneck
    }

    /// Folds the per-stage busy times (6 × blocks entries) into six per-kind
    /// totals summed across blocks.
    fn fold_stage_busy(busy: &[f64]) -> Vec<f64> {
        let mut folded = vec![0.0f64; STAGES_PER_BLOCK];
        for (s, b) in busy.iter().enumerate() {
            folded[s % STAGES_PER_BLOCK] += b;
        }
        folded
    }

    /// Bytes of intermediate-activation buffering required per stage at the
    /// given granularity, for the trace's longest request.
    pub fn activation_buffer_bytes(&self, trace: &Trace, granularity: Granularity) -> u64 {
        let tokens = granularity.activation_tokens_per_stage(trace.max_total_tokens()) as u64;
        tokens * self.model.activation_bytes_per_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_workload::{LengthConfig, TraceGenerator};

    fn constant() -> ConstantStageTimes {
        ConstantStageTimes { base_s: 1e-6, per_context_s: 1e-9 }
    }

    fn small_llama() -> ModelConfig {
        // A LLaMA-shaped model with few blocks so exact simulation stays fast.
        ModelConfig { blocks: 4, ..zoo::llama_13b() }
    }

    #[test]
    fn tgp_outperforms_sequence_grained_on_variable_lengths() {
        let model = small_llama();
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(11).generate(&LengthConfig::wikitext2_like(), 40);
        let seq = sched.run(&trace, Granularity::Sequence);
        let tok = sched.run(&trace, Granularity::Token);
        assert!(
            tok.makespan_s < seq.makespan_s,
            "TGP {} should beat sequence-grained {}",
            tok.makespan_s,
            seq.makespan_s
        );
        assert!(tok.bubble_fraction() < seq.bubble_fraction());
    }

    #[test]
    fn tgp_and_sequence_converge_for_uniform_single_request_stream() {
        // With one request there is no imbalance to exploit; the two
        // granularities should be within the pipeline-fill difference.
        let model = small_llama();
        let times = ConstantStageTimes { base_s: 1e-6, per_context_s: 0.0 };
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(1).generate(&LengthConfig::fixed(64, 64), 1);
        let seq = sched.run(&trace, Granularity::Sequence);
        let tok = sched.run(&trace, Granularity::Token);
        // Token-grained can only be faster.
        assert!(tok.makespan_s <= seq.makespan_s * 1.01);
    }

    #[test]
    fn tgp_utilization_is_near_one_for_long_streams() {
        let model = small_llama();
        let times = ConstantStageTimes { base_s: 1e-6, per_context_s: 0.0 };
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(2).generate(&LengthConfig::fixed(32, 32), 200);
        let rep = sched.run(&trace, Granularity::Token);
        assert!(rep.utilization() > 0.95, "got {}", rep.utilization());
    }

    #[test]
    fn sequence_grained_bubbles_grow_with_length_variability() {
        let model = small_llama();
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let uniform = TraceGenerator::new(3).generate(&LengthConfig::fixed(256, 256), 30);
        let variable = TraceGenerator::new(3).generate(&LengthConfig::wikitext2_like(), 30);
        let u = sched.run(&uniform, Granularity::Sequence);
        let v = sched.run(&variable, Granularity::Sequence);
        assert!(
            v.bubble_fraction() > u.bubble_fraction(),
            "variable {} vs uniform {}",
            v.bubble_fraction(),
            u.bubble_fraction()
        );
    }

    #[test]
    fn plain_tgp_panics_on_encoder_models() {
        let model = zoo::bert_large();
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(4).generate(&LengthConfig::fixed(128, 0), 4);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sched.run(&trace, Granularity::Token)));
        assert!(result.is_err());
    }

    #[test]
    fn blocked_tgp_close_to_plain_tgp_for_decoders() {
        // §6.4: decoder models lose only ~5% with blocking enabled.
        let model = small_llama();
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(5).generate(&LengthConfig::wikitext2_like(), 60);
        let plain = sched.run(&trace, Granularity::Token);
        let blocked = sched.run(&trace, Granularity::TokenWithBlock);
        let ratio = blocked.makespan_s / plain.makespan_s;
        assert!((1.0..1.15).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn blocked_tgp_beats_sequence_grained_for_encoders() {
        // §6.4: TGP-with-block is far better than sequence granularity.
        let model = ModelConfig { blocks: 4, ..zoo::bert_large() };
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(6).generate(&LengthConfig::wikitext2_like(), 40);
        let seq = sched.run(&trace, Granularity::Sequence);
        let blocked = sched.run(&trace, Granularity::TokenWithBlock);
        assert!(blocked.makespan_s < seq.makespan_s);
    }

    #[test]
    fn activation_buffer_shrinks_under_tgp() {
        let model = small_llama();
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(7).generate(&LengthConfig::fixed(1024, 1024), 4);
        let seq = sched.activation_buffer_bytes(&trace, Granularity::Sequence);
        let tok = sched.activation_buffer_bytes(&trace, Granularity::Token);
        assert_eq!(seq / tok, 2048);
    }

    #[test]
    fn run_finest_picks_the_right_granularity() {
        let llama = small_llama();
        let bert = ModelConfig { blocks: 2, ..zoo::bert_large() };
        let times = constant();
        let trace = TraceGenerator::new(8).generate(&LengthConfig::fixed(64, 32), 8);
        let l = PipelineScheduler::new(&llama, &times).run_finest(&trace);
        let b = PipelineScheduler::new(&bert, &times).run_finest(&trace);
        assert!(l.makespan_s > 0.0 && b.makespan_s > 0.0);
    }

    #[test]
    fn rate_stage_times_scale_attention_with_context() {
        let model = zoo::llama_13b();
        let times = RateStageTimes { model: model.clone(), macs_per_s: 1e12, sfu_ops_per_s: 1e11 };
        let short = times.token_time_s(StageKind::Score, 16);
        let long = times.token_time_s(StageKind::Score, 1600);
        assert!(long > short * 50.0);
        let f1 = times.token_time_s(StageKind::Ffn1, 16);
        let f2 = times.token_time_s(StageKind::Ffn1, 1600);
        assert!((f1 - f2).abs() < 1e-15);
    }

    #[test]
    fn throughput_reported_in_output_tokens() {
        let model = small_llama();
        let times = constant();
        let sched = PipelineScheduler::new(&model, &times);
        let trace = TraceGenerator::new(9).generate(&LengthConfig::fixed(128, 128), 16);
        let rep = sched.run(&trace, Granularity::Token);
        assert_eq!(rep.output_tokens, 16 * 128);
        assert!(rep.output_tokens_per_s() > 0.0);
    }
}
