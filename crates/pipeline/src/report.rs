//! Pipeline simulation results.

/// Result of running a trace through a pipeline model.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// End-to-end time to drain the trace, in seconds.
    pub makespan_s: f64,
    /// Busy time accumulated by each of the six stage kinds, summed across
    /// all transformer blocks, in seconds.
    pub stage_busy_s: Vec<f64>,
    /// Total number of pipeline stages (6 × blocks).
    pub num_stages: usize,
    /// Number of work units that flowed through the pipeline (sequences for
    /// sequence-grained, tokens for token-grained).
    pub units: usize,
    /// Total tokens processed (prompt + decode across the trace).
    pub total_tokens: u64,
    /// Output (decode) tokens produced by the trace.
    pub output_tokens: u64,
}

impl PipelineReport {
    /// Fraction of stage-time slots spent idle (pipeline bubbles), averaged
    /// over all stages: `1 − busy / (stages × makespan)`.
    pub fn bubble_fraction(&self) -> f64 {
        if self.makespan_s <= 0.0 || self.num_stages == 0 {
            return 0.0;
        }
        let busy: f64 = self.stage_busy_s.iter().sum();
        (1.0 - busy / (self.num_stages as f64 * self.makespan_s)).clamp(0.0, 1.0)
    }

    /// Average utilisation of the pipeline stages (complement of the bubble
    /// fraction).
    pub fn utilization(&self) -> f64 {
        1.0 - self.bubble_fraction()
    }

    /// Throughput in *output* tokens per second (the paper's throughput
    /// metric).
    pub fn output_tokens_per_s(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.output_tokens as f64 / self.makespan_s
    }

    /// Throughput in total processed tokens (prefill + decode) per second.
    pub fn total_tokens_per_s(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.total_tokens as f64 / self.makespan_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan: f64, busy: Vec<f64>, stages: usize) -> PipelineReport {
        PipelineReport {
            makespan_s: makespan,
            stage_busy_s: busy,
            num_stages: stages,
            units: 10,
            total_tokens: 100,
            output_tokens: 40,
        }
    }

    #[test]
    fn fully_busy_pipeline_has_no_bubbles() {
        let r = report(10.0, vec![10.0, 10.0, 10.0, 10.0], 4);
        assert!(r.bubble_fraction() < 1e-12);
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_idle_pipeline_has_half_bubbles() {
        let r = report(10.0, vec![5.0, 5.0], 2);
        assert!((r.bubble_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_uses_output_tokens() {
        let r = report(4.0, vec![4.0], 1);
        assert!((r.output_tokens_per_s() - 10.0).abs() < 1e-12);
        assert!((r.total_tokens_per_s() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_report_is_safe() {
        let r = report(0.0, vec![], 0);
        assert_eq!(r.bubble_fraction(), 0.0);
        assert_eq!(r.output_tokens_per_s(), 0.0);
    }
}
