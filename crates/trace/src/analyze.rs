//! Post-hoc latency attribution and utilization analysis over a merged
//! [`Trace`].
//!
//! Tracing records *what happened*; this module answers *where the time
//! went*. [`Analysis::from_run`] replays each request's event subsequence
//! through a cursor state machine that attributes every instant between
//! arrival and the terminal event to exactly one of a closed set of
//! phases ([`PHASE_NAMES`]): queue wait, prefill, KV transit (export /
//! link / import), migration stall (landed KV waiting for decode
//! admission), fault/remap stall, decode compute, and decode idle. The
//! phases are exclusive and exhaustive *by construction* — the cursor
//! telescopes from arrival to the terminal event, so per-request phase
//! sums equal E2E latency up to float addition order (a property test
//! pins this across every golden scenario shape).
//!
//! Decode windows are split after the fact: wafer-level `decode_step`
//! events mark compute intervals, `fault`/`remap` events mark stall
//! intervals (an engine's post-fault clock jump leaves a step-free gap
//! that ends at the fault event), and whatever remains is idle. Stalls
//! that strike *mid-prefill* stay inside the prefill phase — the event
//! payloads do not carry stall durations, and prefill is charged as one
//! interval.
//!
//! The same pass derives per-wafer utilization: busy time is the union
//! of resident prefill/decode spans from [`Trace::request_spans`], and
//! the sampled [`TelemetrySample`] series contributes occupancy / queue
//! / KV-pressure statistics when telemetry was armed. Everything is
//! strictly observational — the analysis reads a finished run's trace
//! and telemetry and never feeds back into any report.

use std::collections::BTreeMap;

use crate::chrome::Trace;
use crate::event::EventKind;
use crate::json::{write_array, JsonObject};
use crate::telemetry::TelemetrySample;

/// Version of the flat JSON schema emitted by [`Analysis::json_rows`].
/// Bumped on any key or phase-taxonomy change.
pub const ANALYZE_SCHEMA_VERSION: u32 = 1;

/// Number of exclusive latency phases.
pub const PHASE_COUNT: usize = 7;

/// The closed phase taxonomy, in attribution-table order. Indices match
/// the `phases` arrays of [`RequestPhases`].
pub const PHASE_NAMES: [&str; PHASE_COUNT] =
    ["queue", "prefill", "kv_transit", "migration_stall", "fault_stall", "decode_compute", "decode_idle"];

const QUEUE: usize = 0;
const PREFILL: usize = 1;
const KV_TRANSIT: usize = 2;
const MIGRATION_STALL: usize = 3;
const FAULT_STALL: usize = 4;
const DECODE_COMPUTE: usize = 5;
const DECODE_IDLE: usize = 6;

/// Pinned key list of the `row: "summary"` JSON row.
pub const ANALYZE_SUMMARY_KEYS: &[&str] = &[
    "schema_version",
    "row",
    "requests",
    "completed",
    "dropped",
    "span_s",
    "e2e_p50_s",
    "e2e_p99_s",
    "ttft_p50_s",
    "ttft_p99_s",
];

/// Pinned key list of the `row: "phase"` JSON rows (one per phase).
pub const ANALYZE_PHASE_KEYS: &[&str] = &[
    "schema_version",
    "row",
    "phase",
    "count",
    "total_s",
    "share",
    "mean_s",
    "p50_s",
    "p95_s",
    "p99_s",
    "max_s",
];

/// Pinned key list of the `row: "wafer"` JSON rows (one per wafer).
pub const ANALYZE_WAFER_KEYS: &[&str] = &[
    "schema_version",
    "row",
    "wafer",
    "busy_s",
    "busy_fraction",
    "steps",
    "samples",
    "mean_occupancy",
    "peak_occupancy",
    "mean_queue_depth",
    "peak_kv_utilization",
];

/// Nearest-rank latency statistics of one phase (or one whole metric).
/// The same shape as `ouro_serve::LatencyStats`, duplicated here because
/// the trace crate sits below the serving stack, plus the phase's total
/// (the quantity attribution shares are computed from).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStats {
    /// Number of samples summarised.
    pub count: usize,
    /// Sum of all samples.
    pub total_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl PhaseStats {
    /// Summarises a set of samples: total on every input, non-finite
    /// samples dropped, empty input yields the all-zero summary.
    pub fn from_samples(samples: Vec<f64>) -> PhaseStats {
        let mut samples: Vec<f64> = samples.into_iter().filter(|s| s.is_finite()).collect();
        if samples.is_empty() {
            return PhaseStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len();
        let total_s = samples.iter().sum::<f64>();
        PhaseStats {
            count,
            total_s,
            mean_s: total_s / count as f64,
            p50_s: percentile_sorted(&samples, 50.0),
            p95_s: percentile_sorted(&samples, 95.0),
            p99_s: percentile_sorted(&samples, 99.0),
            max_s: samples[count - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (the same rule
/// the serving metrics use): `rank = ceil(pct/100 · N)` clamped into
/// `[1, N]`.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One request's reconstructed latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestPhases {
    /// Global request id.
    pub req: usize,
    /// Arrival instant (the first event of the request).
    pub arrival_s: f64,
    /// Terminal instant (`complete` or `drop`); `None` when the run's
    /// horizon truncated the request mid-flight.
    pub terminal_s: Option<f64>,
    /// Whether the terminal event was `complete` (vs `drop`/truncation).
    pub completed: bool,
    /// First-token instant, when one was emitted.
    pub first_token_s: Option<f64>,
    /// Exclusive per-phase seconds over `[arrival, terminal]`, indexed by
    /// [`PHASE_NAMES`]. Sums to [`RequestPhases::e2e_s`] for completed
    /// requests (up to float addition order).
    pub phases: [f64; PHASE_COUNT],
    /// The same decomposition clipped to `[arrival, first_token]`; all
    /// zero when no first token was emitted.
    pub ttft_phases: [f64; PHASE_COUNT],
}

impl RequestPhases {
    /// End-to-end latency (`None` until a terminal event exists).
    pub fn e2e_s(&self) -> Option<f64> {
        self.terminal_s.map(|t| t - self.arrival_s)
    }

    /// Time to first token (`None` when no first token was emitted).
    pub fn ttft_s(&self) -> Option<f64> {
        self.first_token_s.map(|t| t - self.arrival_s)
    }

    /// Sum of the exclusive phases (equals E2E for completed requests).
    pub fn phase_sum_s(&self) -> f64 {
        self.phases.iter().sum()
    }

    /// Sum of the TTFT-clipped phases (equals TTFT when one exists).
    pub fn ttft_phase_sum_s(&self) -> f64 {
        self.ttft_phases.iter().sum()
    }
}

/// Per-wafer busy/idle and occupancy statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferUtilization {
    /// Global wafer index.
    pub wafer: usize,
    /// Seconds the wafer held at least one resident prefill/decode span.
    pub busy_s: f64,
    /// `busy_s` over the trace span (0 when the span is empty).
    pub busy_fraction: f64,
    /// `decode_step` iterations the wafer executed.
    pub steps: u64,
    /// Telemetry samples recorded for the wafer (0 when telemetry was
    /// not armed).
    pub samples: usize,
    /// Mean batch occupancy over the telemetry samples.
    pub mean_occupancy: f64,
    /// Peak batch occupancy over the telemetry samples.
    pub peak_occupancy: u64,
    /// Mean admission-queue depth over the telemetry samples.
    pub mean_queue_depth: f64,
    /// Peak KV-cache utilization (used/capacity) over the samples.
    pub peak_kv_utilization: f64,
}

/// The full post-hoc analysis of one run: per-request latency
/// decompositions plus per-wafer utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Per-request decompositions, in request-id order.
    pub requests: Vec<RequestPhases>,
    /// Per-wafer utilization, in wafer order.
    pub wafers: Vec<WaferUtilization>,
    /// First event instant of the trace.
    pub t0_s: f64,
    /// Simulated span of the trace (last event minus first).
    pub span_s: f64,
}

/// Internal cursor mode of the per-request walk. `Decode` windows are
/// split into compute/stall/idle after the walk, against the wafer's
/// step/fault markers.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Queue,
    Prefill,
    KvTransit,
    MigrationStall,
    FaultStall,
    Decode,
}

/// One attributed interval of a request's life.
#[derive(Clone, Copy)]
struct Segment {
    mode: Mode,
    wafer: usize,
    a: f64,
    b: f64,
}

/// Per-request walk state.
struct Walk {
    cursor: f64,
    mode: Mode,
    wafer: usize,
    arrival_s: f64,
    terminal_s: Option<f64>,
    completed: bool,
    first_token_s: Option<f64>,
    segments: Vec<Segment>,
}

impl Walk {
    fn new(t: f64) -> Walk {
        Walk {
            cursor: t,
            mode: Mode::Queue,
            wafer: 0,
            arrival_s: t,
            terminal_s: None,
            completed: false,
            first_token_s: None,
            segments: Vec::new(),
        }
    }

    /// Attributes `[cursor, t]` to the current mode and moves the cursor
    /// — the telescoping step that makes the phases exhaustive.
    fn attribute(&mut self, t: f64) {
        if t > self.cursor {
            self.segments.push(Segment { mode: self.mode, wafer: self.wafer, a: self.cursor, b: t });
        }
        self.cursor = t;
    }
}

/// A wafer-level decode marker: a step end (compute) or a fault/remap
/// event (the end of an engine stall).
#[derive(Clone, Copy)]
struct Marker {
    t_s: f64,
    is_step: bool,
}

/// Splits one decode window `(a, b]` against a wafer's sorted markers:
/// each marker claims the gap back to the previous marker (clamped to
/// the window) — steps as compute, fault/remap as stall — and whatever
/// trails the last marker is idle. The three parts sum to `b - a`
/// exactly, preserving the telescoping property.
fn split_decode(markers: &[Marker], a: f64, b: f64) -> (f64, f64, f64) {
    let (mut compute, mut stall) = (0.0, 0.0);
    let mut prev = a;
    let start = markers.partition_point(|m| m.t_s <= a);
    for m in &markers[start..] {
        if m.t_s > b {
            break;
        }
        let len = m.t_s - prev;
        if m.is_step {
            compute += len;
        } else {
            stall += len;
        }
        prev = m.t_s;
    }
    (compute, stall, b - prev)
}

impl Analysis {
    /// Analyses a trace alone (utilization rows carry no telemetry
    /// statistics).
    pub fn from_trace(trace: &Trace) -> Analysis {
        Analysis::from_run(trace, &[])
    }

    /// Analyses a finished run from its merged trace and (optionally
    /// empty) telemetry series.
    pub fn from_run(trace: &Trace, telemetry: &[TelemetrySample]) -> Analysis {
        let events = trace.events();
        let t0_s = events.first().map(|e| e.t_s).unwrap_or(0.0);
        let span_s = events.last().map(|e| e.t_s - t0_s).unwrap_or(0.0);

        // Wafer-level decode markers, already time-sorted by the merge.
        let mut markers: BTreeMap<usize, Vec<Marker>> = BTreeMap::new();
        for e in events {
            match e.kind {
                EventKind::DecodeStep { .. } => {
                    markers.entry(e.wafer).or_default().push(Marker { t_s: e.t_s, is_step: true })
                }
                EventKind::Fault { .. } | EventKind::Remap { .. } => {
                    markers.entry(e.wafer).or_default().push(Marker { t_s: e.t_s, is_step: false })
                }
                _ => {}
            }
        }

        // Per-request event subsequences. The merge breaks timestamp ties
        // by stream order (engines before the driver), so a driver event
        // that logically precedes a same-instant engine event — an
        // arrival routed and admitted at one instant, a migration landing
        // admitted the instant it arrives — can sort after it. Rank those
        // two driver kinds ahead at equal timestamps; all other ties keep
        // emission order.
        let mut per_req: BTreeMap<usize, Vec<(f64, usize, EventKind)>> = BTreeMap::new();
        for e in events {
            if let Some(req) = e.req {
                per_req.entry(req).or_default().push((e.t_s, e.wafer, e.kind));
            }
        }
        let rank = |kind: &EventKind| match kind {
            EventKind::Arrival { .. } => 0,
            EventKind::MigrateArrive { .. } => 1,
            _ => 2,
        };
        let mut requests = Vec::with_capacity(per_req.len());
        for (req, mut evs) in per_req {
            evs.sort_by(|a, b| a.0.total_cmp(&b.0).then(rank(&a.2).cmp(&rank(&b.2))));
            let mut w = Walk::new(evs[0].0);
            for (t, wafer, kind) in evs {
                match kind {
                    EventKind::Arrival { .. } => {
                        w.attribute(t);
                        w.mode = Mode::Queue;
                    }
                    EventKind::Admission { .. } => {
                        w.attribute(t);
                        w.mode = Mode::Decode;
                        w.wafer = wafer;
                    }
                    EventKind::PrefillStart { .. } => {
                        w.attribute(t);
                        w.mode = Mode::Prefill;
                        w.wafer = wafer;
                    }
                    EventKind::PrefillEnd => {
                        w.attribute(t);
                        w.mode = Mode::Decode;
                        w.wafer = wafer;
                    }
                    EventKind::KvExport { .. } | EventKind::MigrateStart { .. } => {
                        w.attribute(t);
                        w.mode = Mode::KvTransit;
                    }
                    EventKind::MigrateArrive { .. } => {
                        w.attribute(t);
                        w.mode = Mode::MigrationStall;
                        w.wafer = wafer;
                    }
                    EventKind::Evict { fault, .. } => {
                        w.attribute(t);
                        w.mode = if fault { Mode::FaultStall } else { Mode::Queue };
                    }
                    EventKind::Drop => {
                        w.attribute(t);
                        w.terminal_s = Some(t);
                    }
                    EventKind::Complete => {
                        w.attribute(t);
                        w.terminal_s = Some(t);
                        w.completed = true;
                    }
                    EventKind::FirstToken => w.first_token_s = Some(t),
                    // Interior markers: kv_import rides the admission
                    // instant; wafer-level kinds never carry a req id.
                    EventKind::KvImport { .. }
                    | EventKind::DecodeStep { .. }
                    | EventKind::Fault { .. }
                    | EventKind::Remap { .. } => {}
                }
            }
            let empty: Vec<Marker> = Vec::new();
            let mut phases = [0.0; PHASE_COUNT];
            let mut ttft_phases = [0.0; PHASE_COUNT];
            let ft = w.first_token_s;
            for seg in &w.segments {
                let wafer_markers = markers.get(&seg.wafer).unwrap_or(&empty);
                let add = |acc: &mut [f64; PHASE_COUNT], a: f64, b: f64| match seg.mode {
                    Mode::Queue => acc[QUEUE] += b - a,
                    Mode::Prefill => acc[PREFILL] += b - a,
                    Mode::KvTransit => acc[KV_TRANSIT] += b - a,
                    Mode::MigrationStall => acc[MIGRATION_STALL] += b - a,
                    Mode::FaultStall => acc[FAULT_STALL] += b - a,
                    Mode::Decode => {
                        let (compute, stall, idle) = split_decode(wafer_markers, a, b);
                        acc[DECODE_COMPUTE] += compute;
                        acc[FAULT_STALL] += stall;
                        acc[DECODE_IDLE] += idle;
                    }
                };
                add(&mut phases, seg.a, seg.b);
                if let Some(ft) = ft {
                    let b = seg.b.min(ft);
                    if b > seg.a {
                        add(&mut ttft_phases, seg.a, b);
                    }
                }
            }
            requests.push(RequestPhases {
                req,
                arrival_s: w.arrival_s,
                terminal_s: w.terminal_s,
                completed: w.completed,
                first_token_s: w.first_token_s,
                phases,
                ttft_phases,
            });
        }

        // Per-wafer busy time: union of resident prefill/decode spans.
        let mut busy: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
        for span in trace.request_spans() {
            if span.name != "queue" {
                busy.entry(span.wafer).or_default().push((span.start_s, span.end_s));
            }
        }
        let union = |mut iv: Vec<(f64, f64)>| -> f64 {
            iv.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut total = 0.0;
            let mut cur: Option<(f64, f64)> = None;
            for (a, b) in iv {
                match cur {
                    Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
                    Some((ca, cb)) => {
                        total += cb - ca;
                        cur = Some((a, b));
                    }
                    None => cur = Some((a, b)),
                }
            }
            if let Some((ca, cb)) = cur {
                total += cb - ca;
            }
            total
        };

        let mut wafer_ids: Vec<usize> = events.iter().map(|e| e.wafer).collect();
        wafer_ids.extend(telemetry.iter().map(|s| s.wafer));
        wafer_ids.sort_unstable();
        wafer_ids.dedup();
        let wafers = wafer_ids
            .into_iter()
            .map(|wafer| {
                let busy_s = busy.remove(&wafer).map(union).unwrap_or(0.0);
                let steps =
                    markers.get(&wafer).map(|ms| ms.iter().filter(|m| m.is_step).count() as u64).unwrap_or(0);
                let rows: Vec<&TelemetrySample> = telemetry.iter().filter(|s| s.wafer == wafer).collect();
                let samples = rows.len();
                let mean = |f: &dyn Fn(&TelemetrySample) -> f64| {
                    if samples == 0 {
                        0.0
                    } else {
                        rows.iter().map(|s| f(s)).sum::<f64>() / samples as f64
                    }
                };
                WaferUtilization {
                    wafer,
                    busy_s,
                    busy_fraction: if span_s > 0.0 { busy_s / span_s } else { 0.0 },
                    steps,
                    samples,
                    mean_occupancy: mean(&|s| s.gauges.batch_occupancy as f64),
                    peak_occupancy: rows.iter().map(|s| s.gauges.batch_occupancy as u64).max().unwrap_or(0),
                    mean_queue_depth: mean(&|s| s.gauges.queue_depth as f64),
                    peak_kv_utilization: rows
                        .iter()
                        .map(|s| {
                            if s.gauges.kv_capacity_tokens > 0 {
                                s.gauges.kv_used_tokens as f64 / s.gauges.kv_capacity_tokens as f64
                            } else {
                                0.0
                            }
                        })
                        .fold(0.0, f64::max),
                }
            })
            .collect();

        Analysis { requests, wafers, t0_s, span_s }
    }

    /// The completed requests' decompositions.
    pub fn completed(&self) -> impl Iterator<Item = &RequestPhases> {
        self.requests.iter().filter(|r| r.completed)
    }

    /// Number of dropped requests.
    pub fn dropped(&self) -> usize {
        self.requests.iter().filter(|r| r.terminal_s.is_some() && !r.completed).count()
    }

    /// Per-phase statistics over the completed requests, indexed like
    /// [`PHASE_NAMES`].
    pub fn phase_stats(&self) -> [PhaseStats; PHASE_COUNT] {
        let mut out = [PhaseStats::default(); PHASE_COUNT];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = PhaseStats::from_samples(self.completed().map(|r| r.phases[i]).collect());
        }
        out
    }

    /// E2E latency statistics over the completed requests.
    pub fn e2e_stats(&self) -> PhaseStats {
        PhaseStats::from_samples(self.completed().filter_map(RequestPhases::e2e_s).collect())
    }

    /// TTFT statistics over the completed requests that emitted a first
    /// token.
    pub fn ttft_stats(&self) -> PhaseStats {
        PhaseStats::from_samples(self.completed().filter_map(RequestPhases::ttft_s).collect())
    }

    /// The completed request at the nearest-rank `pct` percentile of E2E
    /// latency — the concrete request "where the p99 goes" is read from.
    pub fn e2e_percentile_request(&self, pct: f64) -> Option<&RequestPhases> {
        self.percentile_request(pct, |r| r.e2e_s())
    }

    /// As [`Analysis::e2e_percentile_request`], for TTFT.
    pub fn ttft_percentile_request(&self, pct: f64) -> Option<&RequestPhases> {
        self.percentile_request(pct, |r| r.ttft_s())
    }

    fn percentile_request(
        &self,
        pct: f64,
        metric: impl Fn(&RequestPhases) -> Option<f64>,
    ) -> Option<&RequestPhases> {
        let mut with: Vec<(&RequestPhases, f64)> =
            self.completed().filter_map(|r| metric(r).map(|m| (r, m))).collect();
        if with.is_empty() {
            return None;
        }
        with.sort_by(|a, b| a.1.total_cmp(&b.1));
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0) * with.len() as f64).ceil() as usize;
        Some(with[rank.clamp(1, with.len()) - 1].0)
    }

    /// The attribution report as a text table: per-phase statistics over
    /// completed requests, the concrete p50/p99 requests' breakdowns for
    /// TTFT and E2E, and per-wafer utilization.
    pub fn report(&self) -> String {
        let completed = self.completed().count();
        let mut out = String::new();
        out.push_str(&format!(
            "analysis: {} requests ({} completed, {} dropped, {} unfinished), {:.6} s span \
             (analyze schema v{})\n",
            self.requests.len(),
            completed,
            self.dropped(),
            self.requests.len() - completed - self.dropped(),
            self.span_s,
            ANALYZE_SCHEMA_VERSION
        ));

        out.push_str("\nphase attribution over completed requests (exclusive, sums to E2E):\n");
        out.push_str(&format!(
            "  {:<16} {:>6} {:>10} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "phase", "count", "total_s", "share", "mean_s", "p50_s", "p99_s", "max_s"
        ));
        let stats = self.phase_stats();
        let e2e_total: f64 = stats.iter().map(|s| s.total_s).sum();
        let row = |out: &mut String, name: &str, s: &PhaseStats, share: Option<f64>| {
            let share = match share {
                Some(v) => format!("{:>6.1}%", v * 100.0),
                None => format!("{:>7}", "-"),
            };
            out.push_str(&format!(
                "  {:<16} {:>6} {:>10.6} {share} {:>10.6} {:>10.6} {:>10.6} {:>10.6}\n",
                name, s.count, s.total_s, s.mean_s, s.p50_s, s.p99_s, s.max_s
            ));
        };
        for (name, s) in PHASE_NAMES.iter().zip(&stats) {
            let share = if e2e_total > 0.0 { s.total_s / e2e_total } else { 0.0 };
            row(&mut out, name, s, Some(share));
        }
        row(&mut out, "ttft (total)", &self.ttft_stats(), None);
        row(&mut out, "e2e (total)", &self.e2e_stats(), None);

        out.push_str("\nwhere the latency goes (per-phase share of that request's metric):\n");
        let breakdown = |out: &mut String, label: &str, r: &RequestPhases, total: f64, ttft: bool| {
            let phases = if ttft { &r.ttft_phases } else { &r.phases };
            let mut parts: Vec<String> = PHASE_NAMES
                .iter()
                .zip(phases)
                .filter(|(_, v)| total > 0.0 && **v / total >= 0.001)
                .map(|(n, v)| format!("{n} {:.1}%", v / total * 100.0))
                .collect();
            if parts.is_empty() {
                parts.push("instantaneous".to_string());
            }
            out.push_str(&format!("  {label} (req {:>3}, {:.6} s): {}\n", r.req, total, parts.join(", ")));
        };
        for pct in [50.0, 99.0] {
            if let Some(r) = self.ttft_percentile_request(pct) {
                breakdown(&mut out, &format!("ttft p{pct:<2.0}"), r, r.ttft_s().unwrap_or(0.0), true);
            }
        }
        for pct in [50.0, 99.0] {
            if let Some(r) = self.e2e_percentile_request(pct) {
                breakdown(&mut out, &format!("e2e  p{pct:<2.0}"), r, r.e2e_s().unwrap_or(0.0), false);
            }
        }

        out.push_str("\nwafer utilization (busy = union of resident prefill/decode spans):\n");
        out.push_str(&format!(
            "  {:<6} {:>10} {:>7} {:>8} {:>8} {:>9} {:>9} {:>11} {:>8}\n",
            "wafer", "busy_s", "busy%", "steps", "samples", "occ-mean", "occ-peak", "queue-mean", "kv-peak"
        ));
        for w in &self.wafers {
            out.push_str(&format!(
                "  {:<6} {:>10.6} {:>6.1}% {:>8} {:>8} {:>9.2} {:>9} {:>11.2} {:>7.1}%\n",
                w.wafer,
                w.busy_s,
                w.busy_fraction * 100.0,
                w.steps,
                w.samples,
                w.mean_occupancy,
                w.peak_occupancy,
                w.mean_queue_depth,
                w.peak_kv_utilization * 100.0
            ));
        }
        out
    }

    /// The analysis as flat JSON rows sharing [`ANALYZE_SCHEMA_VERSION`]:
    /// one `summary` row, one `phase` row per phase, one `wafer` row per
    /// wafer. The `row` field discriminates; each variant's key set is
    /// pinned by the schema tests.
    pub fn json_rows(&self) -> Vec<JsonObject> {
        let completed = self.completed().count();
        let e2e = self.e2e_stats();
        let ttft = self.ttft_stats();
        let mut rows = vec![JsonObject::new()
            .int("schema_version", ANALYZE_SCHEMA_VERSION as u64)
            .str("row", "summary")
            .int("requests", self.requests.len() as u64)
            .int("completed", completed as u64)
            .int("dropped", self.dropped() as u64)
            .num("span_s", self.span_s)
            .num("e2e_p50_s", e2e.p50_s)
            .num("e2e_p99_s", e2e.p99_s)
            .num("ttft_p50_s", ttft.p50_s)
            .num("ttft_p99_s", ttft.p99_s)];
        let stats = self.phase_stats();
        let e2e_total: f64 = stats.iter().map(|s| s.total_s).sum();
        for (name, s) in PHASE_NAMES.iter().zip(&stats) {
            rows.push(
                JsonObject::new()
                    .int("schema_version", ANALYZE_SCHEMA_VERSION as u64)
                    .str("row", "phase")
                    .str("phase", name)
                    .int("count", s.count as u64)
                    .num("total_s", s.total_s)
                    .num("share", if e2e_total > 0.0 { s.total_s / e2e_total } else { 0.0 })
                    .num("mean_s", s.mean_s)
                    .num("p50_s", s.p50_s)
                    .num("p95_s", s.p95_s)
                    .num("p99_s", s.p99_s)
                    .num("max_s", s.max_s),
            );
        }
        for w in &self.wafers {
            rows.push(
                JsonObject::new()
                    .int("schema_version", ANALYZE_SCHEMA_VERSION as u64)
                    .str("row", "wafer")
                    .int("wafer", w.wafer as u64)
                    .num("busy_s", w.busy_s)
                    .num("busy_fraction", w.busy_fraction)
                    .int("steps", w.steps)
                    .int("samples", w.samples as u64)
                    .num("mean_occupancy", w.mean_occupancy)
                    .int("peak_occupancy", w.peak_occupancy)
                    .num("mean_queue_depth", w.mean_queue_depth)
                    .num("peak_kv_utilization", w.peak_kv_utilization),
            );
        }
        rows
    }

    /// Writes [`Analysis::json_rows`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        write_array(path, &self.json_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::telemetry::{Counters, WaferGauges};

    fn ev(t_s: f64, wafer: usize, req: Option<usize>, kind: EventKind) -> TraceEvent {
        TraceEvent { t_s, wafer, req, kind }
    }

    const EPS: f64 = 1e-12;

    fn colocated_timeline() -> Trace {
        let wafer0 = vec![
            ev(0.1, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.1, 0, Some(1), EventKind::PrefillStart { tokens: 8 }),
            ev(0.3, 0, None, EventKind::DecodeStep { batch: 1, tokens: 8 }),
            ev(0.3, 0, Some(1), EventKind::PrefillEnd),
            ev(0.4, 0, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.4, 0, Some(1), EventKind::FirstToken),
            ev(0.5, 0, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.5, 0, Some(1), EventKind::Complete),
        ];
        let driver = vec![ev(0.0, 0, Some(1), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 2 })];
        Trace::from_streams(&[(&wafer0, 0), (&driver, 0)])
    }

    #[test]
    fn colocated_request_decomposes_exactly() {
        let a = Analysis::from_trace(&colocated_timeline());
        assert_eq!(a.requests.len(), 1);
        let r = &a.requests[0];
        assert!(r.completed);
        assert!((r.phases[QUEUE] - 0.1).abs() < EPS, "queue {}", r.phases[QUEUE]);
        assert!((r.phases[PREFILL] - 0.2).abs() < EPS);
        assert!((r.phases[DECODE_COMPUTE] - 0.2).abs() < EPS);
        assert!(r.phases[DECODE_IDLE].abs() < EPS);
        assert!((r.phase_sum_s() - r.e2e_s().unwrap()).abs() < EPS);
        // TTFT clip: queue + prefill + one decode step.
        assert!((r.ttft_phase_sum_s() - r.ttft_s().unwrap()).abs() < EPS);
        assert!((r.ttft_phases[DECODE_COMPUTE] - 0.1).abs() < EPS);
    }

    #[test]
    fn migrated_request_charges_transit_and_stall() {
        // Prefill on wafer 0, KV shipped to wafer 1 landing at 0.4, but
        // only admitted at 0.45 — and the admission shares the landing
        // instant's hazard: at equal timestamps the engine's admission
        // sorts before the driver's migrate_arrive.
        let wafer0 = vec![
            ev(0.1, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.1, 0, Some(1), EventKind::PrefillStart { tokens: 8 }),
            ev(0.3, 0, Some(1), EventKind::PrefillEnd),
            ev(0.3, 0, Some(1), EventKind::KvExport { tokens: 8 }),
        ];
        let wafer1 = vec![
            ev(0.45, 1, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.45, 1, Some(1), EventKind::KvImport { wire_tokens: 8, deduped_tokens: 0 }),
            ev(0.5, 1, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.5, 1, Some(1), EventKind::FirstToken),
            ev(0.55, 1, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.55, 1, Some(1), EventKind::Complete),
        ];
        let driver = vec![
            ev(0.0, 0, Some(1), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 2 }),
            ev(0.3, 0, Some(1), EventKind::MigrateStart { to_wafer: 1, bytes: 64 }),
            ev(0.4, 1, Some(1), EventKind::MigrateArrive { from_wafer: 0, bytes: 64 }),
        ];
        let a = Analysis::from_run(&Trace::from_streams(&[(&wafer0, 0), (&wafer1, 0), (&driver, 0)]), &[]);
        let r = &a.requests[0];
        assert!((r.phases[QUEUE] - 0.1).abs() < EPS);
        assert!((r.phases[PREFILL] - 0.2).abs() < EPS);
        assert!((r.phases[KV_TRANSIT] - 0.1).abs() < EPS, "transit {}", r.phases[KV_TRANSIT]);
        assert!((r.phases[MIGRATION_STALL] - 0.05).abs() < EPS, "stall {}", r.phases[MIGRATION_STALL]);
        assert!((r.phases[DECODE_COMPUTE] - 0.1).abs() < EPS);
        assert!((r.phase_sum_s() - r.e2e_s().unwrap()).abs() < EPS);
    }

    #[test]
    fn same_instant_landing_and_admission_stays_in_order() {
        // The real hazard: admission at exactly the landing instant, with
        // the engine stream sorting first. The rank fix must still read
        // migrate_arrive -> admission.
        let wafer1 = vec![
            ev(0.4, 1, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.5, 1, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.5, 1, Some(1), EventKind::Complete),
        ];
        let driver = vec![
            ev(0.0, 1, Some(1), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 1 }),
            ev(0.4, 1, Some(1), EventKind::MigrateArrive { from_wafer: 0, bytes: 64 }),
        ];
        let a = Analysis::from_trace(&Trace::from_streams(&[(&wafer1, 0), (&driver, 0)]));
        let r = &a.requests[0];
        assert!((r.phases[MIGRATION_STALL]).abs() < EPS, "zero-length stall at the shared instant");
        assert!((r.phases[DECODE_COMPUTE] - 0.1).abs() < EPS);
        assert!((r.phase_sum_s() - r.e2e_s().unwrap()).abs() < EPS);
    }

    #[test]
    fn fault_markers_inside_decode_become_stall_time() {
        let wafer0 = vec![
            ev(0.0, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.1, 0, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            // A fault stalls the engine; the clock jump ends at the fault
            // event, leaving a step-free gap (0.1, 0.25].
            ev(0.25, 0, None, EventKind::Fault { kv_core: 3, evicted_seqs: 0 }),
            ev(0.25, 0, None, EventKind::Remap { chain_len: 2, moved_tiles: 4 }),
            ev(0.35, 0, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.35, 0, Some(1), EventKind::Complete),
        ];
        let driver = vec![ev(0.0, 0, Some(1), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 2 })];
        let a = Analysis::from_trace(&Trace::from_streams(&[(&wafer0, 0), (&driver, 0)]));
        let r = &a.requests[0];
        assert!((r.phases[FAULT_STALL] - 0.15).abs() < EPS, "stall {}", r.phases[FAULT_STALL]);
        assert!((r.phases[DECODE_COMPUTE] - 0.2).abs() < EPS, "compute {}", r.phases[DECODE_COMPUTE]);
        assert!((r.phase_sum_s() - r.e2e_s().unwrap()).abs() < EPS);
    }

    #[test]
    fn capacity_evict_requeues_as_queue_and_fault_evict_as_stall() {
        let wafer0 = vec![
            ev(0.1, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.2, 0, Some(1), EventKind::Evict { resident_tokens: 8, fault: false }),
            ev(0.3, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: true }),
            ev(0.4, 0, Some(1), EventKind::Evict { resident_tokens: 8, fault: true }),
            ev(0.6, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: true }),
            ev(0.7, 0, None, EventKind::DecodeStep { batch: 1, tokens: 1 }),
            ev(0.7, 0, Some(1), EventKind::Complete),
        ];
        let driver = vec![ev(0.0, 0, Some(1), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 1 })];
        let a = Analysis::from_trace(&Trace::from_streams(&[(&wafer0, 0), (&driver, 0)]));
        let r = &a.requests[0];
        assert!((r.phases[QUEUE] - 0.2).abs() < EPS, "arrival wait + capacity requeue");
        assert!((r.phases[FAULT_STALL] - 0.2).abs() < EPS, "fault requeue wait");
        assert!((r.phase_sum_s() - r.e2e_s().unwrap()).abs() < EPS);
    }

    #[test]
    fn dropped_and_truncated_requests_are_counted_but_not_summarised() {
        let wafer0 = vec![
            ev(0.2, 0, Some(1), EventKind::Drop),
            ev(0.3, 0, Some(2), EventKind::Admission { cached_tokens: 0, recompute: false }),
        ];
        let driver = vec![
            ev(0.0, 0, Some(1), EventKind::Arrival { prompt_tokens: 999, decode_tokens: 1 }),
            ev(0.1, 0, Some(2), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 1 }),
        ];
        let a = Analysis::from_trace(&Trace::from_streams(&[(&wafer0, 0), (&driver, 0)]));
        assert_eq!(a.requests.len(), 2);
        assert_eq!(a.completed().count(), 0);
        assert_eq!(a.dropped(), 1);
        let dropped = &a.requests[0];
        assert!(!dropped.completed && dropped.terminal_s == Some(0.2));
        assert!((dropped.phases[QUEUE] - 0.2).abs() < EPS, "drop wait is queue time");
        let truncated = &a.requests[1];
        assert!(truncated.terminal_s.is_none());
    }

    #[test]
    fn utilization_unions_spans_and_reads_telemetry() {
        let trace = colocated_timeline();
        let sample = |t_s: f64, occ: usize, queue: usize| TelemetrySample {
            t_s,
            wafer: 0,
            gauges: WaferGauges {
                batch_occupancy: occ,
                queue_depth: queue,
                kv_used_tokens: 50,
                kv_capacity_tokens: 100,
                ..WaferGauges::default()
            },
            counters: Counters::default(),
        };
        let a = Analysis::from_run(&trace, &[sample(0.2, 2, 1), sample(0.4, 4, 3)]);
        assert_eq!(a.wafers.len(), 1);
        let w = &a.wafers[0];
        // Busy from 0.1 (admission) to 0.5 (complete); span is 0.0..0.5.
        assert!((w.busy_s - 0.4).abs() < EPS, "busy {}", w.busy_s);
        assert!((w.busy_fraction - 0.8).abs() < EPS);
        assert_eq!(w.steps, 3);
        assert_eq!(w.samples, 2);
        assert!((w.mean_occupancy - 3.0).abs() < EPS);
        assert_eq!(w.peak_occupancy, 4);
        assert!((w.mean_queue_depth - 2.0).abs() < EPS);
        assert!((w.peak_kv_utilization - 0.5).abs() < EPS);
    }

    #[test]
    fn report_names_every_phase() {
        let text = Analysis::from_trace(&colocated_timeline()).report();
        for name in PHASE_NAMES {
            assert!(text.contains(name), "missing phase {name}");
        }
        assert!(text.contains("wafer utilization"));
        assert!(text.contains("ttft p50"));
        assert!(text.contains("e2e  p99"));
    }

    #[test]
    fn json_rows_match_their_pinned_key_sets() {
        let a = Analysis::from_trace(&colocated_timeline());
        let rows = a.json_rows();
        assert_eq!(rows.len(), 1 + PHASE_COUNT + a.wafers.len());
        assert_eq!(rows[0].keys(), ANALYZE_SUMMARY_KEYS);
        for row in &rows[1..=PHASE_COUNT] {
            assert_eq!(row.keys(), ANALYZE_PHASE_KEYS);
        }
        for row in &rows[1 + PHASE_COUNT..] {
            assert_eq!(row.keys(), ANALYZE_WAFER_KEYS);
        }
        assert!(rows[0].render().starts_with(&format!("{{\"schema_version\": {ANALYZE_SCHEMA_VERSION}")));
    }

    #[test]
    fn empty_trace_analyses_to_nothing() {
        let a = Analysis::from_trace(&Trace::default());
        assert!(a.requests.is_empty() && a.wafers.is_empty());
        assert_eq!(a.json_rows().len(), 1 + PHASE_COUNT);
        assert!(a.report().contains("0 requests"));
    }

    #[test]
    fn phase_stats_mirror_the_serving_percentile_rule() {
        let s = PhaseStats::from_samples(vec![4.0, 1.0, 3.0, 2.0, f64::NAN]);
        assert_eq!(s.count, 4);
        assert!((s.total_s - 10.0).abs() < EPS);
        assert!((s.mean_s - 2.5).abs() < EPS);
        assert!((s.p50_s - 2.0).abs() < EPS, "nearest rank: ceil(0.5*4)=2nd");
        assert!((s.p99_s - 4.0).abs() < EPS);
        assert_eq!(PhaseStats::from_samples(vec![]), PhaseStats::default());
    }
}
