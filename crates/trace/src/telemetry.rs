//! Sampled per-wafer telemetry: gauges and monotonic counters on a fixed
//! simulated-time cadence.
//!
//! Tracing answers "what happened to request N"; telemetry answers "what
//! did the cluster look like at time T". A [`TelemetryRecorder`] is armed
//! with a cadence; the scenario driver polls it as simulated time
//! advances and, at each cadence point, records one [`TelemetrySample`]
//! per wafer — instantaneous gauges ([`WaferGauges`]: batch occupancy, KV
//! blocks live/shared, queue depth, link bytes in flight) plus the
//! cluster-wide monotonic [`Counters`] as of that instant. The result is
//! a flat JSON time series carrying its own `schema_version`.

use crate::json::{write_array, JsonObject};

/// Version of the flat JSON schema emitted by
/// [`TelemetrySample::json_object`]. Bumped on any breaking key change.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Telemetry tuning: how often (in simulated seconds) samples are taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Simulated seconds between samples.
    pub cadence_s: f64,
}

impl TelemetryConfig {
    /// A recorder cadence.
    ///
    /// # Panics
    ///
    /// Panics unless `cadence_s` is finite and positive.
    pub fn every(cadence_s: f64) -> TelemetryConfig {
        assert!(
            cadence_s.is_finite() && cadence_s > 0.0,
            "telemetry cadence must be finite and positive, got {cadence_s}"
        );
        TelemetryConfig { cadence_s }
    }
}

/// Instantaneous per-wafer gauges at one sample instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaferGauges {
    /// Sequences resident in the batch (continuous-batching occupancy).
    pub batch_occupancy: usize,
    /// Requests waiting for admission.
    pub queue_depth: usize,
    /// KV tokens resident in the cache.
    pub kv_used_tokens: usize,
    /// KV token capacity of the cache.
    pub kv_capacity_tokens: usize,
    /// Logical KV blocks currently allocated.
    pub kv_blocks_live: u64,
    /// Of the live blocks, those held by shared prefix chains.
    pub kv_blocks_shared: u64,
    /// Bytes of announced-but-unlanded KV migrations targeting this wafer.
    pub link_bytes_in_flight: u64,
}

/// Cluster-wide monotonic counters as of one sample instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Requests completed so far.
    pub completions: u64,
    /// KV migrations started so far.
    pub migrations: u64,
    /// Runtime faults fired so far.
    pub faults: u64,
    /// Engine iterations executed so far.
    pub steps: u64,
}

/// One `(instant, wafer)` row of the telemetry time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// The sample instant (a cadence point).
    pub t_s: f64,
    /// Global wafer index.
    pub wafer: usize,
    /// Instantaneous gauges of the wafer.
    pub gauges: WaferGauges,
    /// Cluster-wide monotonic counters at the instant.
    pub counters: Counters,
}

impl TelemetrySample {
    /// Flattens the sample into one stable JSON row.
    pub fn json_object(&self) -> JsonObject {
        let g = &self.gauges;
        let c = &self.counters;
        JsonObject::new()
            .int("schema_version", TELEMETRY_SCHEMA_VERSION as u64)
            .num("t_s", self.t_s)
            .int("wafer", self.wafer as u64)
            .int("batch_occupancy", g.batch_occupancy as u64)
            .int("queue_depth", g.queue_depth as u64)
            .int("kv_used_tokens", g.kv_used_tokens as u64)
            .int("kv_capacity_tokens", g.kv_capacity_tokens as u64)
            .int("kv_blocks_live", g.kv_blocks_live)
            .int("kv_blocks_shared", g.kv_blocks_shared)
            .int("link_bytes_in_flight", g.link_bytes_in_flight)
            .int("completions", c.completions)
            .int("migrations", c.migrations)
            .int("faults", c.faults)
            .int("steps", c.steps)
    }
}

/// Collects [`TelemetrySample`]s on a fixed simulated-time cadence.
///
/// The driver owns the polling: call [`TelemetryRecorder::due`] with the
/// current simulated instant, record one sample per wafer at
/// [`TelemetryRecorder::sample_time`], then [`TelemetryRecorder::advance`]
/// — repeating while due, so a large time jump emits every intermediate
/// cadence point instead of skipping them.
#[derive(Debug, Clone)]
pub struct TelemetryRecorder {
    config: TelemetryConfig,
    next_sample_s: f64,
    samples: Vec<TelemetrySample>,
}

impl TelemetryRecorder {
    /// A recorder whose first sample lands one cadence after time zero.
    pub fn new(config: TelemetryConfig) -> TelemetryRecorder {
        TelemetryRecorder { config, next_sample_s: config.cadence_s, samples: Vec::new() }
    }

    /// The configured cadence.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Whether a cadence point is due at or before `now_s`.
    pub fn due(&self, now_s: f64) -> bool {
        now_s >= self.next_sample_s
    }

    /// The pending cadence point.
    pub fn sample_time(&self) -> f64 {
        self.next_sample_s
    }

    /// Appends one sample (stamped by the caller, normally at
    /// [`TelemetryRecorder::sample_time`]).
    pub fn record(&mut self, sample: TelemetrySample) {
        self.samples.push(sample);
    }

    /// Moves to the next cadence point.
    pub fn advance(&mut self) {
        self.next_sample_s += self.config.cadence_s;
    }

    /// Whether the run's final instant `now_s` sits strictly inside the
    /// pending cadence window — i.e. the tail of the run would be
    /// silently dropped unless the caller records one last off-grid
    /// sample stamped at `now_s`. False when the run ends exactly on an
    /// already-drained cadence point (or never advanced past zero), so a
    /// grid-aligned horizon never duplicates its last sample.
    pub fn tail_due(&self, now_s: f64) -> bool {
        now_s > 0.0 && now_s > self.next_sample_s - self.config.cadence_s
    }

    /// The samples recorded so far, in `(time, wafer)` order.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// The time series as flat JSON rows.
    pub fn json_rows(&self) -> Vec<JsonObject> {
        self.samples.iter().map(TelemetrySample::json_object).collect()
    }

    /// Writes the time series to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        write_array(path, &self.json_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_points_are_regular_and_catch_up_after_jumps() {
        let mut r = TelemetryRecorder::new(TelemetryConfig::every(0.5));
        assert!(!r.due(0.4));
        assert!(r.due(0.5));
        // A jump from 0 to 1.7 owes three cadence points.
        let mut points = Vec::new();
        while r.due(1.7) {
            points.push(r.sample_time());
            r.advance();
        }
        assert_eq!(points, vec![0.5, 1.0, 1.5]);
    }

    #[test]
    fn the_final_partial_window_is_owed_a_tail_sample() {
        let mut r = TelemetryRecorder::new(TelemetryConfig::every(0.5));
        // A run ending at 0 sampled nothing and owes nothing; one ending
        // mid-window owes a tail even before the first grid point.
        assert!(!r.tail_due(0.0));
        assert!(r.tail_due(0.3));
        // Drain the grid up to 1.7: points 0.5/1.0/1.5 recorded, next is
        // 2.0. A run ending exactly on the drained point 1.5 owes no
        // tail; one ending at 1.7 owes the partial window (1.5, 1.7].
        while r.due(1.7) {
            r.advance();
        }
        assert!(!r.tail_due(1.5));
        assert!(r.tail_due(1.7));
    }

    #[test]
    fn sample_rows_carry_their_own_schema_version() {
        let s = TelemetrySample {
            t_s: 1.0,
            wafer: 2,
            gauges: WaferGauges { batch_occupancy: 3, kv_blocks_live: 7, ..WaferGauges::default() },
            counters: Counters { completions: 5, ..Counters::default() },
        };
        let row = s.json_object().render();
        assert!(row.contains(&format!("\"schema_version\": {TELEMETRY_SCHEMA_VERSION}")));
        assert!(row.contains("\"batch_occupancy\": 3"));
        assert!(row.contains("\"kv_blocks_live\": 7"));
        assert!(row.contains("\"completions\": 5"));
    }

    #[test]
    #[should_panic(expected = "cadence must be finite and positive")]
    fn zero_cadence_is_rejected() {
        let _ = TelemetryConfig::every(0.0);
    }
}
