//! Minimal JSON emission for perf-trajectory and trace capture.
//!
//! The workspace is fully offline, so there is no serde; the subset here —
//! objects of strings, numbers, nulls, and (for the Chrome trace-event
//! `args` field) one level of nested objects, collected into arrays — is
//! all the `BENCH_*.json` trajectories and trace exporters need. It lives
//! in `ouro-trace` so the report schema and the trace/telemetry schemas
//! share one emitter; `ouro-serve` and `ouro-bench` re-export this module.

/// A flat JSON object under construction.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Adds a string field (escaping quotes, backslashes, and control
    /// characters — JSON strings must not contain raw controls).
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        let mut escaped = String::with_capacity(value.len());
        for c in value.chars() {
            match c {
                '\\' => escaped.push_str("\\\\"),
                '"' => escaped.push_str("\\\""),
                '\n' => escaped.push_str("\\n"),
                '\r' => escaped.push_str("\\r"),
                '\t' => escaped.push_str("\\t"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        self.fields.push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a numeric field; non-finite values become `null` (JSON has no
    /// NaN/Infinity).
    pub fn num(mut self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() { format!("{value}") } else { "null".to_string() };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), format!("{value}")));
        self
    }

    /// Adds an explicit `null` field — sections that do not apply to a run
    /// (no faults, no migration) keep their keys so every row of a dump
    /// shares one schema.
    pub fn null(mut self, key: &str) -> JsonObject {
        self.fields.push((key.to_string(), "null".to_string()));
        self
    }

    /// Adds a nested object field — the Chrome trace-event format carries
    /// per-event metadata in an `args` object, the one place the flat
    /// schema is not enough.
    pub fn obj(mut self, key: &str, value: &JsonObject) -> JsonObject {
        self.fields.push((key.to_string(), value.render()));
        self
    }

    /// Appends every field of `other` after this object's fields, so
    /// callers can prefix report rows with their own labels.
    pub fn extend(mut self, other: JsonObject) -> JsonObject {
        self.fields.extend(other.fields);
        self
    }

    /// The field keys, in insertion order (the schema of the row).
    pub fn keys(&self) -> Vec<&str> {
        self.fields.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Renders the object as one JSON line.
    pub fn render(&self) -> String {
        let body: Vec<String> = self.fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders a slice of objects as a pretty-enough JSON array.
pub fn render_array(objects: &[JsonObject]) -> String {
    let rows: Vec<String> = objects.iter().map(|o| format!("  {}", o.render())).collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Writes the array to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_array(path: &str, objects: &[JsonObject]) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_array(objects))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_objects_render_flat_and_escaped() {
        let o = JsonObject::new()
            .str("name", "a \"quoted\" label")
            .num("rate", 2.5)
            .num("missing", f64::NAN)
            .int("count", 7);
        assert_eq!(
            o.render(),
            "{\"name\": \"a \\\"quoted\\\" label\", \"rate\": 2.5, \"missing\": null, \"count\": 7}"
        );
        let arr = render_array(&[o.clone(), o]);
        assert!(arr.starts_with("[\n") && arr.ends_with("\n]\n"));
        assert_eq!(arr.matches("\"count\": 7").count(), 2);
    }

    #[test]
    fn json_strings_escape_control_characters() {
        let o = JsonObject::new().str("label", "a\nb\tc\rd\u{1}e");
        assert_eq!(o.render(), "{\"label\": \"a\\nb\\tc\\rd\\u0001e\"}");
    }

    #[test]
    fn null_extend_and_keys_compose_rows() {
        let prefix = JsonObject::new().str("experiment", "serving");
        let row = prefix.extend(JsonObject::new().null("placement").int("wafers", 4));
        assert_eq!(row.render(), "{\"experiment\": \"serving\", \"placement\": null, \"wafers\": 4}");
        assert_eq!(row.keys(), vec!["experiment", "placement", "wafers"]);
    }

    #[test]
    fn nested_objects_render_inline() {
        let args = JsonObject::new().int("tokens", 64).str("phase", "prefill");
        let o = JsonObject::new().str("ph", "X").obj("args", &args);
        assert_eq!(o.render(), "{\"ph\": \"X\", \"args\": {\"tokens\": 64, \"phase\": \"prefill\"}}");
    }
}
