//! The typed lifecycle events the serving stack emits.
//!
//! Every observable state change of a request — arrival, admission,
//! prefill progress, KV movement, eviction, fault damage, completion —
//! is one [`TraceEvent`]: a simulated timestamp, the wafer it happened
//! on, the global request id it concerns (when it concerns one), and a
//! typed [`EventKind`] payload. The taxonomy is deliberately closed: a
//! reconstructable span timeline needs every phase edge to be one of a
//! known set of kinds, so exporters and well-formedness checks can match
//! starts to ends without guessing.

use crate::json::JsonObject;

/// Version of the flat JSON schema emitted by [`TraceEvent::json_object`]
/// (and carried by every trace/telemetry dump). Bumped whenever a key or
/// an event kind is renamed, removed, or changes meaning.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// What happened. Payloads carry the quantities that are expensive to
/// reconstruct after the fact; everything else is recoverable from the
/// run's records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A request arrived at the cluster and was routed to this wafer.
    Arrival {
        /// Prompt length of the request.
        prompt_tokens: usize,
        /// Decode budget of the request.
        decode_tokens: usize,
    },
    /// The engine admitted the request into its KV cache.
    Admission {
        /// Prompt tokens served from the shared-prefix cache.
        cached_tokens: usize,
        /// This admission replays an eviction (recompute), not a first
        /// entry.
        recompute: bool,
    },
    /// Admission charged prefill work (the prefill phase opens). Closed by
    /// [`EventKind::PrefillEnd`], or by [`EventKind::Evict`] when the
    /// sequence loses its KV mid-prefill.
    PrefillStart {
        /// Tokens to stream through the pipeline before decode can start.
        tokens: usize,
    },
    /// The sequence's prefill (or recompute) drained.
    PrefillEnd,
    /// The first decode token was emitted (TTFT stamp).
    FirstToken,
    /// One continuous-batching iteration moved tokens (wafer-level; the
    /// request id is absent).
    DecodeStep {
        /// Resident sequences during the step (batch occupancy).
        batch: usize,
        /// Tokens moved through the pipeline this step.
        tokens: usize,
    },
    /// A finished prefill exported its KV for migration (disaggregated
    /// prefill pool; this is the prefill side's terminal event).
    KvExport {
        /// Tokens of KV handed to the migration path.
        tokens: usize,
    },
    /// Imported KV was admitted into this wafer's cache.
    KvImport {
        /// Tokens that actually travelled the link.
        wire_tokens: usize,
        /// Tokens deduplicated against this wafer's prefix cache.
        deduped_tokens: usize,
    },
    /// A KV migration left its prefill wafer.
    MigrateStart {
        /// Global index of the destination decode wafer.
        to_wafer: usize,
        /// Bytes on the wire.
        bytes: u64,
    },
    /// A KV migration landed on this (decode) wafer.
    MigrateArrive {
        /// Global index of the source prefill wafer.
        from_wafer: usize,
        /// Bytes that travelled the wire.
        bytes: u64,
    },
    /// The sequence lost its KV and re-entered the queue for recompute.
    Evict {
        /// Tokens resident at eviction (the recompute debt).
        resident_tokens: usize,
        /// The eviction was forced by a core fault, not capacity pressure.
        fault: bool,
    },
    /// The request was dropped (it cannot fit even an empty cache).
    Drop,
    /// A runtime fault took a KV core on this wafer.
    Fault {
        /// Flat index of the failed KV core (manager index space).
        kv_core: usize,
        /// Sequences evicted by the failure.
        evicted_seqs: usize,
    },
    /// A replacement-chain remap healed a fault on this wafer.
    Remap {
        /// Cores on the replacement chain.
        chain_len: usize,
        /// Weight tiles shifted along the chain.
        moved_tiles: usize,
    },
    /// The request finished decoding (terminal event for the request).
    Complete,
}

impl EventKind {
    /// Stable lowercase name of the kind, used as the JSON `kind` value,
    /// the Chrome trace category, and the profile bucket label.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrival { .. } => "arrival",
            EventKind::Admission { .. } => "admission",
            EventKind::PrefillStart { .. } => "prefill_start",
            EventKind::PrefillEnd => "prefill_end",
            EventKind::FirstToken => "first_token",
            EventKind::DecodeStep { .. } => "decode_step",
            EventKind::KvExport { .. } => "kv_export",
            EventKind::KvImport { .. } => "kv_import",
            EventKind::MigrateStart { .. } => "migrate_start",
            EventKind::MigrateArrive { .. } => "migrate_arrive",
            EventKind::Evict { .. } => "evict",
            EventKind::Drop => "drop",
            EventKind::Fault { .. } => "fault",
            EventKind::Remap { .. } => "remap",
            EventKind::Complete => "complete",
        }
    }

    /// Every kind name, in declaration order — the closed taxonomy the
    /// schema round-trip tests pin.
    pub const ALL_NAMES: [&'static str; 15] = [
        "arrival",
        "admission",
        "prefill_start",
        "prefill_end",
        "first_token",
        "decode_step",
        "kv_export",
        "kv_import",
        "migrate_start",
        "migrate_arrive",
        "evict",
        "drop",
        "fault",
        "remap",
        "complete",
    ];

    /// The payload quantities as `(a, b)` integer slots, matching the
    /// flat JSON columns `arg_a`/`arg_b`. Kinds without a payload emit
    /// zeros.
    fn args(&self) -> (u64, u64) {
        match *self {
            EventKind::Arrival { prompt_tokens, decode_tokens } => {
                (prompt_tokens as u64, decode_tokens as u64)
            }
            EventKind::Admission { cached_tokens, recompute } => (cached_tokens as u64, recompute as u64),
            EventKind::PrefillStart { tokens } => (tokens as u64, 0),
            EventKind::PrefillEnd | EventKind::FirstToken | EventKind::Drop | EventKind::Complete => (0, 0),
            EventKind::DecodeStep { batch, tokens } => (batch as u64, tokens as u64),
            EventKind::KvExport { tokens } => (tokens as u64, 0),
            EventKind::KvImport { wire_tokens, deduped_tokens } => {
                (wire_tokens as u64, deduped_tokens as u64)
            }
            EventKind::MigrateStart { to_wafer, bytes } => (to_wafer as u64, bytes),
            EventKind::MigrateArrive { from_wafer, bytes } => (from_wafer as u64, bytes),
            EventKind::Evict { resident_tokens, fault } => (resident_tokens as u64, fault as u64),
            EventKind::Fault { kv_core, evicted_seqs } => (kv_core as u64, evicted_seqs as u64),
            EventKind::Remap { chain_len, moved_tiles } => (chain_len as u64, moved_tiles as u64),
        }
    }
}

/// One structured lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated instant of the event.
    pub t_s: f64,
    /// Global wafer index the event happened on.
    pub wafer: usize,
    /// Global request id the event concerns (`None` for wafer-level
    /// events: decode steps, faults, remaps).
    pub req: Option<usize>,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Flattens the event into one stable JSON row: `schema_version`,
    /// `t_s`, `wafer`, `req` (null for wafer-level events), `kind`, and
    /// the two payload columns `arg_a`/`arg_b` holding the kind's
    /// integer payload.
    pub fn json_object(&self) -> JsonObject {
        let (a, b) = self.kind.args();
        let o = JsonObject::new()
            .int("schema_version", TRACE_SCHEMA_VERSION as u64)
            .num("t_s", self.t_s)
            .int("wafer", self.wafer as u64);
        let o = match self.req {
            Some(r) => o.int("req", r as u64),
            None => o.null("req"),
        };
        o.str("kind", self.kind.name()).int("arg_a", a).int("arg_b", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_closed_and_stable() {
        let kinds = [
            EventKind::Arrival { prompt_tokens: 1, decode_tokens: 2 },
            EventKind::Admission { cached_tokens: 0, recompute: false },
            EventKind::PrefillStart { tokens: 5 },
            EventKind::PrefillEnd,
            EventKind::FirstToken,
            EventKind::DecodeStep { batch: 3, tokens: 3 },
            EventKind::KvExport { tokens: 7 },
            EventKind::KvImport { wire_tokens: 7, deduped_tokens: 0 },
            EventKind::MigrateStart { to_wafer: 1, bytes: 10 },
            EventKind::MigrateArrive { from_wafer: 0, bytes: 10 },
            EventKind::Evict { resident_tokens: 4, fault: true },
            EventKind::Drop,
            EventKind::Fault { kv_core: 0, evicted_seqs: 1 },
            EventKind::Remap { chain_len: 2, moved_tiles: 9 },
            EventKind::Complete,
        ];
        let names: Vec<&str> = kinds.iter().map(EventKind::name).collect();
        assert_eq!(names, EventKind::ALL_NAMES.to_vec(), "taxonomy must match the pinned name list");
    }

    #[test]
    fn event_rows_share_one_schema() {
        let with_req = TraceEvent {
            t_s: 0.5,
            wafer: 1,
            req: Some(3),
            kind: EventKind::Admission { cached_tokens: 64, recompute: true },
        };
        let wafer_level =
            TraceEvent { t_s: 0.6, wafer: 0, req: None, kind: EventKind::DecodeStep { batch: 2, tokens: 2 } };
        assert_eq!(with_req.json_object().keys(), wafer_level.json_object().keys());
        let row = with_req.json_object().render();
        assert!(row.contains("\"kind\": \"admission\""));
        assert!(row.contains("\"arg_a\": 64"));
        assert!(row.contains("\"arg_b\": 1"));
        assert!(wafer_level.json_object().render().contains("\"req\": null"));
        assert!(row.contains(&format!("\"schema_version\": {TRACE_SCHEMA_VERSION}")));
    }
}
