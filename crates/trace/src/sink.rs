//! Event sinks and the zero-cost-when-disabled [`Tracer`] front-end.
//!
//! The serving stack does not write events anywhere itself: each engine
//! (and the scenario driver) holds a [`Tracer`], which is either *off* —
//! one `Option` discriminant test per emission site, no allocation, no
//! formatting — or wired to a [`TraceSink`]. The default sink is a
//! bounded ring ([`RingSink`]): when a run outgrows the capacity the
//! *oldest* events fall off, so the tail of a long run (usually the part
//! being debugged) survives, and memory stays bounded no matter how long
//! the simulation runs.
//!
//! [`TraceSink`] mirrors the object-safe `clone_box` pattern of the
//! serving policies: engines derive `Clone`, so their sinks must too.

use crate::event::{EventKind, TraceEvent};

/// Receives lifecycle events. Object-safe so engines can hold any sink
/// behind a `Box`, and cloneable through `clone_box` so scenario state
/// stays `Clone`.
pub trait TraceSink: std::fmt::Debug {
    /// Accepts one event.
    fn emit(&mut self, event: TraceEvent);

    /// The events retained so far, in emission order.
    fn events(&self) -> &[TraceEvent];

    /// Events accepted but no longer retained (ring overflow).
    fn dropped(&self) -> u64 {
        0
    }

    /// Boxed clone, so tracers holding a sink stay cloneable.
    fn clone_box(&self) -> Box<dyn TraceSink>;
}

impl Clone for Box<dyn TraceSink> {
    fn clone(&self) -> Box<dyn TraceSink> {
        self.clone_box()
    }
}

/// The default sink: a bounded ring buffer that keeps the newest events.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    /// Retained events in emission order (compacted on overflow).
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Default retained-event capacity (per sink, i.e. per wafer).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "a trace ring needs room for at least one event");
        RingSink { capacity, events: Vec::new(), dropped: 0 }
    }

    /// The retained-event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::new(RingSink::DEFAULT_CAPACITY)
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            // Compact half at once so overflow is amortised O(1), not a
            // per-event memmove of the whole buffer.
            let cut = (self.capacity / 2).max(1);
            self.events.drain(..cut);
            self.dropped += cut as u64;
        }
        self.events.push(event);
    }

    fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn clone_box(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// The emission front-end one engine (or the scenario driver) holds: a
/// wafer context plus an optional sink. A disabled tracer is the default
/// and costs one branch per would-be event.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    wafer: usize,
}

impl Tracer {
    /// A disabled tracer (the zero-cost default).
    pub fn off() -> Tracer {
        Tracer::default()
    }

    /// A tracer writing into `sink`, stamping events with `wafer`.
    pub fn new(wafer: usize, sink: Box<dyn TraceSink>) -> Tracer {
        Tracer { sink: Some(sink), wafer }
    }

    /// A tracer over a default-capacity [`RingSink`].
    pub fn ring(wafer: usize) -> Tracer {
        Tracer::new(wafer, Box::<RingSink>::default())
    }

    /// Whether events are being recorded. Emission sites with non-trivial
    /// payload computation should guard on this.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one event on this tracer's wafer. A no-op when disabled.
    pub fn emit(&mut self, t_s: f64, req: Option<usize>, kind: EventKind) {
        if let Some(sink) = &mut self.sink {
            sink.emit(TraceEvent { t_s, wafer: self.wafer, req, kind });
        }
    }

    /// Records one event on an explicit wafer — for the scenario driver,
    /// whose events (arrivals, migrations) land on the wafer they target
    /// rather than a wafer of its own. A no-op when disabled.
    pub fn emit_for(&mut self, wafer: usize, t_s: f64, req: Option<usize>, kind: EventKind) {
        if let Some(sink) = &mut self.sink {
            sink.emit(TraceEvent { t_s, wafer, req, kind });
        }
    }

    /// The recorded events, in emission order (empty when disabled).
    pub fn events(&self) -> &[TraceEvent] {
        self.sink.as_deref().map(TraceSink::events).unwrap_or(&[])
    }

    /// Events lost to ring overflow (0 when disabled).
    pub fn dropped(&self) -> u64 {
        self.sink.as_deref().map(TraceSink::dropped).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64) -> TraceEvent {
        TraceEvent { t_s, wafer: 0, req: Some(0), kind: EventKind::Complete }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.emit(1.0, Some(0), EventKind::Complete);
        t.emit_for(3, 2.0, None, EventKind::Drop);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn tracer_stamps_its_wafer_and_emit_for_overrides_it() {
        let mut t = Tracer::ring(7);
        t.emit(1.0, Some(4), EventKind::FirstToken);
        t.emit_for(2, 1.5, None, EventKind::DecodeStep { batch: 1, tokens: 1 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].wafer, 7);
        assert_eq!(t.events()[0].req, Some(4));
        assert_eq!(t.events()[1].wafer, 2);
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let mut sink = RingSink::new(4);
        for i in 0..10 {
            sink.emit(ev(i as f64));
        }
        assert!(sink.events().len() <= 4);
        assert_eq!(sink.dropped() as usize + sink.events().len(), 10, "every event is accounted for");
        let last = sink.events().last().unwrap();
        assert_eq!(last.t_s, 9.0, "the newest event survives overflow");
        // The retained window is a contiguous suffix.
        let ts: Vec<f64> = sink.events().iter().map(|e| e.t_s).collect();
        assert!(ts.windows(2).all(|w| w[1] == w[0] + 1.0));
    }

    #[test]
    fn boxed_sinks_clone_deeply() {
        let mut a = Tracer::ring(0);
        a.emit(1.0, None, EventKind::Drop);
        let mut b = a.clone();
        b.emit(2.0, None, EventKind::Drop);
        assert_eq!(a.events().len(), 1, "cloning must not alias the sink");
        assert_eq!(b.events().len(), 2);
    }
}
