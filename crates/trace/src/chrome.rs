//! The merged per-run event timeline and its exporters.
//!
//! After a run, the per-wafer event streams (plus the driver's own) are
//! merged into one [`Trace`]: a deterministically ordered event log with
//! a stable digest for golden tests, a flat-JSON dump sharing the
//! [`crate::event::TRACE_SCHEMA_VERSION`] schema, a Chrome trace-event
//! export loadable in `chrome://tracing` / Perfetto (one track per wafer,
//! one span per request phase, counter tracks for batch occupancy), and a
//! [`Trace::summarize`] text table for terminals.

use crate::event::{EventKind, TraceEvent, TRACE_SCHEMA_VERSION};
use crate::json::{render_array, write_array, JsonObject};

/// One reconstructed request phase: a closed interval of a request's life
/// on one wafer. Phases are derived from the event log — `queue` from
/// arrival to admission, `prefill` from prefill start to its end (or the
/// eviction that killed it), `decode` from prefill end (or an
/// import-style admission) to completion, export, or eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanPhase {
    /// Global request id.
    pub req: usize,
    /// Wafer the phase ran on.
    pub wafer: usize,
    /// `"queue"`, `"prefill"`, or `"decode"`.
    pub name: &'static str,
    /// Phase start instant.
    pub start_s: f64,
    /// Phase end instant (`>= start_s`).
    pub end_s: f64,
}

/// The merged, deterministically ordered event log of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Merges per-source event streams (each in emission order, with its
    /// ring-overflow drop count) into one timeline. Events are stably
    /// sorted by time — ties keep stream order, so passing streams in
    /// wafer order yields one canonical timeline per run.
    pub fn from_streams(streams: &[(&[TraceEvent], u64)]) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(streams.iter().map(|(e, _)| e.len()).sum());
        let mut dropped = 0;
        for (stream, lost) in streams {
            events.extend_from_slice(stream);
            dropped += lost;
        }
        events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        Trace { events, dropped }
    }

    /// The ordered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events in the timeline.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events lost to ring overflow across all merged streams.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events of the given kind name.
    pub fn count(&self, kind_name: &str) -> usize {
        self.events.iter().filter(|e| e.kind.name() == kind_name).count()
    }

    /// FNV-1a digest over the rendered flat-JSON rows — one stable
    /// fingerprint per timeline, pinned by golden tests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.events {
            for b in e.json_object().render().bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The timeline as flat JSON rows (one per event, shared schema).
    pub fn json_rows(&self) -> Vec<JsonObject> {
        self.events.iter().map(TraceEvent::json_object).collect()
    }

    /// Reconstructs the per-request phase spans from the event log. Open
    /// phases at the end of the timeline (horizon truncation) are closed
    /// at the last event's instant so exports stay well-formed.
    pub fn request_spans(&self) -> Vec<SpanPhase> {
        #[derive(Clone, Copy)]
        struct Open {
            wafer: usize,
            name: &'static str,
            start_s: f64,
        }
        let end_of_trace = self.events.last().map(|e| e.t_s).unwrap_or(0.0);
        // BTreeMap, not HashMap: open phases are closed in request order at
        // end-of-trace, so iteration order reaches the exported span list.
        let mut open: std::collections::BTreeMap<usize, Open> = std::collections::BTreeMap::new();
        let mut spans = Vec::new();
        let mut close = |req: usize, open: &mut std::collections::BTreeMap<usize, Open>, t: f64| {
            if let Some(o) = open.remove(&req) {
                spans.push(SpanPhase { req, wafer: o.wafer, name: o.name, start_s: o.start_s, end_s: t });
            }
        };
        for e in &self.events {
            let Some(req) = e.req else { continue };
            match e.kind {
                EventKind::Arrival { .. } => {
                    open.insert(req, Open { wafer: e.wafer, name: "queue", start_s: e.t_s });
                }
                EventKind::Admission { .. } => {
                    close(req, &mut open, e.t_s);
                    // Tentatively a decode phase; a prefill-start at the
                    // same instant narrows it below.
                    open.insert(req, Open { wafer: e.wafer, name: "decode", start_s: e.t_s });
                }
                EventKind::PrefillStart { .. } => {
                    open.insert(req, Open { wafer: e.wafer, name: "prefill", start_s: e.t_s });
                }
                EventKind::PrefillEnd => {
                    close(req, &mut open, e.t_s);
                    open.insert(req, Open { wafer: e.wafer, name: "decode", start_s: e.t_s });
                }
                EventKind::Evict { .. } | EventKind::Drop => close(req, &mut open, e.t_s),
                EventKind::KvExport { .. } | EventKind::Complete => close(req, &mut open, e.t_s),
                _ => {}
            }
        }
        for (req, o) in open {
            spans.push(SpanPhase {
                req,
                wafer: o.wafer,
                name: o.name,
                start_s: o.start_s,
                end_s: end_of_trace.max(o.start_s),
            });
        }
        spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s).then(a.req.cmp(&b.req)));
        spans
    }

    /// Renders the timeline in the Chrome trace-event JSON array format
    /// (loadable in `chrome://tracing` and Perfetto): one process track
    /// per wafer, one `X` complete event per request phase, instant
    /// markers for evictions / drops / faults / remaps / migrations, and
    /// a batch-occupancy counter track per wafer. Timestamps are
    /// microseconds of simulated time.
    pub fn chrome_trace_json(&self) -> String {
        let us = |t_s: f64| t_s * 1e6;
        let mut rows: Vec<JsonObject> = Vec::new();
        let mut wafers: Vec<usize> = self.events.iter().map(|e| e.wafer).collect();
        wafers.sort_unstable();
        wafers.dedup();
        for w in &wafers {
            rows.push(
                JsonObject::new()
                    .str("name", "process_name")
                    .str("ph", "M")
                    .int("pid", *w as u64)
                    .obj("args", &JsonObject::new().str("name", &format!("wafer {w}"))),
            );
        }
        for span in self.request_spans() {
            rows.push(
                JsonObject::new()
                    .str("name", &format!("req {} {}", span.req, span.name))
                    .str("cat", span.name)
                    .str("ph", "X")
                    .num("ts", us(span.start_s))
                    .num("dur", us(span.end_s - span.start_s).max(0.0))
                    .int("pid", span.wafer as u64)
                    .int("tid", span.req as u64),
            );
        }
        for e in &self.events {
            match e.kind {
                EventKind::DecodeStep { batch, tokens } => {
                    rows.push(
                        JsonObject::new()
                            .str("name", "batch")
                            .str("ph", "C")
                            .num("ts", us(e.t_s))
                            .int("pid", e.wafer as u64)
                            .obj(
                                "args",
                                &JsonObject::new()
                                    .int("occupancy", batch as u64)
                                    .int("step_tokens", tokens as u64),
                            ),
                    );
                }
                EventKind::Evict { .. }
                | EventKind::Drop
                | EventKind::Fault { .. }
                | EventKind::Remap { .. }
                | EventKind::MigrateStart { .. }
                | EventKind::MigrateArrive { .. }
                | EventKind::FirstToken => {
                    let (a, b) = match e.kind {
                        EventKind::Evict { resident_tokens, fault } => (resident_tokens as u64, fault as u64),
                        EventKind::Fault { kv_core, evicted_seqs } => (kv_core as u64, evicted_seqs as u64),
                        EventKind::Remap { chain_len, moved_tiles } => (chain_len as u64, moved_tiles as u64),
                        EventKind::MigrateStart { to_wafer, bytes } => (to_wafer as u64, bytes),
                        EventKind::MigrateArrive { from_wafer, bytes } => (from_wafer as u64, bytes),
                        _ => (0, 0),
                    };
                    let o = JsonObject::new()
                        .str("name", e.kind.name())
                        .str("cat", e.kind.name())
                        .str("ph", "i")
                        .num("ts", us(e.t_s))
                        .int("pid", e.wafer as u64);
                    let o = match e.req {
                        Some(r) => o.int("tid", r as u64).str("s", "t"),
                        None => o.int("tid", 0).str("s", "p"),
                    };
                    rows.push(o.obj("args", &JsonObject::new().int("arg_a", a).int("arg_b", b)));
                }
                _ => {}
            }
        }
        render_array(&rows)
    }

    /// Writes the Chrome trace-event JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Writes the flat-JSON event rows to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        write_array(path, &self.json_rows())
    }

    /// A per-run text table: events per kind, per-wafer totals, span, and
    /// the timeline digest.
    pub fn summarize(&self) -> String {
        let mut out = String::new();
        let span_s = match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.t_s - a.t_s,
            _ => 0.0,
        };
        out.push_str(&format!(
            "trace: {} events (schema v{}), {:.6} s simulated span, digest {:016x}\n",
            self.len(),
            TRACE_SCHEMA_VERSION,
            span_s,
            self.digest()
        ));
        if self.dropped > 0 {
            out.push_str(&format!("  ({} oldest events dropped by ring overflow)\n", self.dropped));
        }
        out.push_str(&format!("  {:<16} {:>8}\n", "kind", "events"));
        for name in EventKind::ALL_NAMES {
            let n = self.count(name);
            if n > 0 {
                out.push_str(&format!("  {name:<16} {n:>8}\n"));
            }
        }
        let mut wafers: Vec<usize> = self.events.iter().map(|e| e.wafer).collect();
        wafers.sort_unstable();
        wafers.dedup();
        out.push_str(&format!("  {:<16} {:>8}\n", "wafer", "events"));
        for w in wafers {
            let n = self.events.iter().filter(|e| e.wafer == w).count();
            out.push_str(&format!("  wafer {w:<10} {n:>8}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, wafer: usize, req: Option<usize>, kind: EventKind) -> TraceEvent {
        TraceEvent { t_s, wafer, req, kind }
    }

    fn small_timeline() -> Trace {
        let wafer0 = vec![
            ev(0.0, 0, Some(1), EventKind::Arrival { prompt_tokens: 8, decode_tokens: 2 }),
            ev(0.1, 0, Some(1), EventKind::Admission { cached_tokens: 0, recompute: false }),
            ev(0.1, 0, Some(1), EventKind::PrefillStart { tokens: 8 }),
            ev(0.2, 0, Some(1), EventKind::PrefillEnd),
            ev(0.3, 0, Some(1), EventKind::FirstToken),
            ev(0.4, 0, Some(1), EventKind::Complete),
        ];
        Trace::from_streams(&[(&wafer0, 0)])
    }

    #[test]
    fn merge_orders_by_time_with_stable_ties() {
        let a = vec![ev(1.0, 0, None, EventKind::Drop), ev(3.0, 0, None, EventKind::Drop)];
        let b = vec![ev(1.0, 1, None, EventKind::Drop), ev(2.0, 1, None, EventKind::Drop)];
        let t = Trace::from_streams(&[(&a, 2), (&b, 1)]);
        let order: Vec<(f64, usize)> = t.events().iter().map(|e| (e.t_s, e.wafer)).collect();
        assert_eq!(order, vec![(1.0, 0), (1.0, 1), (2.0, 1), (3.0, 0)], "ties keep stream order");
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let t = small_timeline();
        assert_eq!(t.digest(), small_timeline().digest(), "same events, same digest");
        let mut other = vec![ev(0.0, 0, Some(2), EventKind::Complete)];
        other[0].t_s = 0.5;
        let u = Trace::from_streams(&[(&other, 0)]);
        assert_ne!(t.digest(), u.digest());
    }

    #[test]
    fn spans_reconstruct_queue_prefill_decode() {
        let spans = small_timeline().request_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["queue", "prefill", "decode"]);
        assert_eq!(spans[0].start_s, 0.0);
        assert_eq!(spans[0].end_s, 0.1);
        assert_eq!(spans[1].start_s, 0.1);
        assert_eq!(spans[1].end_s, 0.2);
        assert_eq!(spans[2].start_s, 0.2);
        assert_eq!(spans[2].end_s, 0.4);
        for s in &spans {
            assert!(s.end_s >= s.start_s);
        }
    }

    #[test]
    fn chrome_export_has_process_metadata_and_spans() {
        let json = small_timeline().chrome_trace_json();
        assert!(json.starts_with("[\n") && json.ends_with("\n]\n"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"req 1 prefill\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""), "first-token instants are exported");
    }

    #[test]
    fn summarize_counts_kinds() {
        let s = small_timeline().summarize();
        assert!(s.contains("6 events"));
        assert!(s.contains("arrival"));
        assert!(s.contains("complete"));
        assert!(!s.contains("remap"), "absent kinds are omitted");
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.request_spans(), vec![]);
        assert!(t.chrome_trace_json().contains("[\n"));
        assert!(t.summarize().contains("0 events"));
    }
}
