//! Simulator self-profiling: wall-time per event kind and
//! events-simulated/sec, accumulated inside the scenario loop.
//!
//! Everything else in this crate observes *simulated* time; this module
//! observes the simulator itself — where the host's wall-clock goes while
//! driving a run. The driver buckets its loop work (arrival routing,
//! engine iterations, fault injection, migration handling) into a
//! [`LoopProfile`], which the `experiments bench-report` subcommand turns
//! into the schema-versioned `BENCH_serve.json` perf trajectory.

use crate::json::JsonObject;
use std::time::Duration;

/// Version of the flat JSON schema emitted by `bench-report` rows
/// ([`LoopProfile::json_object`] plus the per-point fields the binary
/// adds). Bumped on any breaking key change.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Wall-time accounting of one loop-work bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileBucket {
    /// Times the bucket's work ran.
    pub count: u64,
    /// Wall-clock nanoseconds spent in the bucket.
    pub wall_ns: u64,
}

impl ProfileBucket {
    /// Adds one timed occurrence.
    pub fn add(&mut self, elapsed: Duration) {
        self.count += 1;
        self.wall_ns += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// The bucket's wall-clock time in seconds.
    pub fn wall_s(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }
}

/// Wall-time profile of one scenario run's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopProfile {
    /// Arrival handling: routing plus submission.
    pub arrivals: ProfileBucket,
    /// Engine iterations ([`count`](ProfileBucket::count) = steps driven).
    pub engine_steps: ProfileBucket,
    /// Fault injections (remap + KV eviction).
    pub faults: ProfileBucket,
    /// Completion handling: migrations shipped or closed-loop releases.
    pub completions: ProfileBucket,
}

impl LoopProfile {
    /// Loop events simulated: every timed occurrence across buckets.
    pub fn total_events(&self) -> u64 {
        self.arrivals.count + self.engine_steps.count + self.faults.count + self.completions.count
    }

    /// Total profiled wall-clock, in seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.arrivals.wall_s() + self.engine_steps.wall_s() + self.faults.wall_s() + self.completions.wall_s()
    }

    /// Simulated loop events per wall-clock second (0 when nothing ran).
    pub fn events_per_s(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall > 0.0 {
            self.total_events() as f64 / wall
        } else {
            0.0
        }
    }

    /// The profile as flat JSON fields (merged into `BENCH_serve.json`
    /// rows by the `experiments` binary).
    pub fn json_object(&self) -> JsonObject {
        JsonObject::new()
            .int("loop_events", self.total_events())
            .num("loop_wall_s", self.total_wall_s())
            .num("loop_events_per_s", self.events_per_s())
            .int("arrival_events", self.arrivals.count)
            .num("arrival_wall_s", self.arrivals.wall_s())
            .int("step_events", self.engine_steps.count)
            .num("step_wall_s", self.engine_steps.wall_s())
            .int("fault_events", self.faults.count)
            .num("fault_wall_s", self.faults.wall_s())
            .int("completion_events", self.completions.count)
            .num("completion_wall_s", self.completions.wall_s())
    }

    /// A terminal-friendly table of the buckets.
    pub fn summarize(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loop profile: {} events in {:.3} ms wall ({:.0} events/s)\n",
            self.total_events(),
            self.total_wall_s() * 1e3,
            self.events_per_s()
        ));
        for (name, b) in [
            ("arrivals", &self.arrivals),
            ("engine steps", &self.engine_steps),
            ("faults", &self.faults),
            ("completions", &self.completions),
        ] {
            out.push_str(&format!("  {:<14} {:>10} events {:>12.3} ms\n", name, b.count, b.wall_s() * 1e3));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_and_rates_follow() {
        let mut p = LoopProfile::default();
        p.engine_steps.add(Duration::from_micros(10));
        p.engine_steps.add(Duration::from_micros(30));
        p.arrivals.add(Duration::from_micros(10));
        assert_eq!(p.total_events(), 3);
        assert!((p.total_wall_s() - 50e-6).abs() < 1e-12);
        assert!((p.events_per_s() - 3.0 / 50e-6).abs() < 1.0);
    }

    #[test]
    fn empty_profile_has_zero_rate() {
        let p = LoopProfile::default();
        assert_eq!(p.total_events(), 0);
        assert_eq!(p.events_per_s(), 0.0);
        assert!(p.summarize().contains("0 events"));
    }

    #[test]
    fn json_fields_cover_every_bucket() {
        let keys = LoopProfile::default().json_object();
        let keys = keys.keys();
        for k in [
            "loop_events",
            "loop_wall_s",
            "loop_events_per_s",
            "arrival_events",
            "step_events",
            "fault_events",
            "completion_events",
        ] {
            assert!(keys.contains(&k), "missing {k}");
        }
    }
}
