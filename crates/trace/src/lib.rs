//! Observability layer for the Ouroboros serving simulator.
//!
//! The serving stack (`ouro-serve` and friends) is a deterministic
//! discrete-event simulator: a run is a pure function of its seeds. This
//! crate adds eyes to that machinery without perturbing it — every
//! facility here is strictly observational, so a traced run produces the
//! same `RunReport` bit-for-bit as an untraced one:
//!
//! - [`event`] / [`sink`] — a closed taxonomy of typed request-lifecycle
//!   events ([`TraceEvent`]/[`EventKind`]) emitted through a
//!   zero-cost-when-disabled [`Tracer`] into a pluggable [`TraceSink`]
//!   (bounded [`RingSink`] by default).
//! - [`chrome`] — a merged [`Trace`] over per-wafer event streams:
//!   per-request span reconstruction, a pinned digest for golden tests,
//!   Chrome trace-event JSON loadable in Perfetto, and a text
//!   [`Trace::summarize`] table.
//! - [`telemetry`] — sampled per-wafer gauges and cluster counters on a
//!   fixed simulated-time cadence ([`TelemetryRecorder`]), dumped as a
//!   flat JSON time series.
//! - [`profile`] — simulator self-profiling ([`LoopProfile`]): wall-time
//!   per loop-work bucket and events-simulated/sec, feeding the
//!   schema-versioned `BENCH_serve.json` perf trajectory.
//! - [`json`] — the dependency-free JSON writer the whole workspace
//!   shares (moved here from `ouro-serve` so exporters and the serving
//!   stack use one implementation).
//!
//! Every JSON artifact carries its own `schema_version`
//! ([`TRACE_SCHEMA_VERSION`], [`TELEMETRY_SCHEMA_VERSION`],
//! [`BENCH_SCHEMA_VERSION`]) so downstream tooling can detect drift.

pub mod analyze;
pub mod chrome;
pub mod event;
pub mod json;
pub mod profile;
pub mod sink;
pub mod telemetry;

pub use analyze::{
    Analysis, PhaseStats, RequestPhases, WaferUtilization, ANALYZE_PHASE_KEYS, ANALYZE_SCHEMA_VERSION,
    ANALYZE_SUMMARY_KEYS, ANALYZE_WAFER_KEYS, PHASE_COUNT, PHASE_NAMES,
};
pub use chrome::{SpanPhase, Trace};
pub use event::{EventKind, TraceEvent, TRACE_SCHEMA_VERSION};
pub use profile::{LoopProfile, ProfileBucket, BENCH_SCHEMA_VERSION};
pub use sink::{RingSink, TraceSink, Tracer};
pub use telemetry::{
    Counters, TelemetryConfig, TelemetryRecorder, TelemetrySample, WaferGauges, TELEMETRY_SCHEMA_VERSION,
};
