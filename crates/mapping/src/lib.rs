//! Communication-aware, fault-tolerant mapping of transformer blocks onto the
//! wafer (§4.3).
//!
//! The mapping stack has three layers:
//!
//! * **Inter-core mapping** — which CIM core holds which weight tile of the
//!   transformer block. The paper formulates this as a Mixed Integer
//!   Quadratic Program (Eq. 1–3): minimise Manhattan-distance-weighted
//!   traffic (inter-layer activations, intra-layer reductions and gathers,
//!   with a penalty for die crossings) subject to one-tile-per-core,
//!   defective-core and per-layer core-count constraints. We keep the exact
//!   objective and constraints ([`problem`], [`objective`]) and solve with a
//!   greedy S-order seed refined by simulated annealing ([`solvers`]); an
//!   exhaustive solver doubles as the test oracle on small instances.
//! * **Intra-core mapping** — how a tile's weight slices are spread over the
//!   32 crossbars behind the core's H-tree so that concatenations happen near
//!   the root (the dynamic program of Eq. 4, [`htree_dp`]).
//! * **Fault tolerance** — replacement-chain remapping that shifts weights
//!   from a failed core towards the nearest KV core whose cache can be
//!   evicted, without re-running the MIQP ([`fault`]).
//!
//! The SUMMA (Cerebras-default) and WaferLLM placement baselines used by the
//! transmission-volume study (Fig. 18) are in [`baselines`].

pub mod baselines;
pub mod fault;
pub mod htree_dp;
pub mod objective;
pub mod problem;
pub mod solvers;

pub use fault::{remap_with_chain, RemapError, RemapOutcome};
pub use htree_dp::{htree_plan, HtreePlan};
pub use objective::{CommSummary, ObjectiveEvaluator};
pub use problem::{Assignment, LayerSpec, MappingProblem, Tile};
pub use solvers::{solve, MappingSolution, Strategy};
