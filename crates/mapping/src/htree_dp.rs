//! Intra-core mapping: placing a tile's weight slices on the 32 crossbars so
//! that H-tree nodes near the leaves perform reductions and concatenations
//! happen near the root (§4.3.2, Eq. 4).
//!
//! The crossbars behind the H-tree form a perfect binary tree. A weight tile
//! is split into *groups*: slices within a group produce partial sums over
//! the same output channels (merging them is a **reduction**, volume stays
//! constant), while slices from different groups produce different output
//! channels (merging them is a **concatenation**, volume doubles).
//! The objective `min Σ depth(node) × weight(node)` with weight 1 for
//! concatenation nodes charges concatenations by how deep (close to the
//! leaves) they happen.
//!
//! With power-of-two-aligned buddy allocation of groups to subtrees, every
//! concatenation is pushed as close to the root as the group sizes allow —
//! which is the optimum of the DP. [`htree_plan`] performs that allocation
//! and also reports the cost of the naive interleaved placement for
//! comparison.

/// The result of intra-core placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtreePlan {
    /// `group[leaf]` is the group the leaf's slice belongs to, or `None` for
    /// an unused crossbar.
    pub leaf_groups: Vec<Option<usize>>,
    /// Eq. 4 cost of this placement.
    pub cost: u64,
    /// Eq. 4 cost of the naive round-robin (interleaved) placement of the
    /// same groups.
    pub naive_cost: u64,
    /// Depth of the tree (log2 of the leaf count).
    pub depth: usize,
}

impl HtreePlan {
    /// Ratio of optimised to naive cost (≤ 1).
    pub fn improvement(&self) -> f64 {
        if self.naive_cost == 0 {
            1.0
        } else {
            self.cost as f64 / self.naive_cost as f64
        }
    }
}

/// Computes the Eq. 4 cost of a leaf→group assignment.
///
/// A node is a concatenation node when its two children's subtrees contain
/// slices from more than one distinct group in total; depth is counted from
/// the root (root = depth 1), so deep concatenations cost more.
pub fn plan_cost(leaf_groups: &[Option<usize>]) -> u64 {
    let leaves = leaf_groups.len();
    assert!(leaves.is_power_of_two() && leaves >= 2, "leaf count must be a power of two ≥ 2");
    let depth_levels = leaves.trailing_zeros() as usize;
    let mut cost = 0u64;
    // Level k (1-based from the root) has 2^k subtrees of size leaves / 2^k.
    // A node at level k merges two subtrees of size leaves / 2^(k) each...
    // Walk internal nodes by their subtree span.
    let mut span = leaves;
    let mut depth = 1usize;
    while span >= 2 {
        for start in (0..leaves).step_by(span) {
            let left: std::collections::HashSet<usize> =
                leaf_groups[start..start + span / 2].iter().flatten().copied().collect();
            let right: std::collections::HashSet<usize> =
                leaf_groups[start + span / 2..start + span].iter().flatten().copied().collect();
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let concat = left.union(&right).count() > 1;
            if concat {
                cost += depth as u64;
            }
        }
        span /= 2;
        depth += 1;
    }
    let _ = depth_levels;
    cost
}

/// Plans the placement of `group_sizes` (number of slices per reduction
/// group) onto `leaves` crossbar leaves.
///
/// # Panics
///
/// Panics if `leaves` is not a power of two, or if the groups do not fit.
pub fn htree_plan(group_sizes: &[usize], leaves: usize) -> HtreePlan {
    assert!(leaves.is_power_of_two() && leaves >= 2, "leaf count must be a power of two ≥ 2");
    let total: usize = group_sizes.iter().sum();
    assert!(total <= leaves, "{total} slices do not fit {leaves} crossbars");

    // Optimised: buddy-allocate each group into an aligned subtree of the
    // next power-of-two size, largest groups first.
    let mut optimised: Vec<Option<usize>> = vec![None; leaves];
    let mut order: Vec<(usize, usize)> = group_sizes.iter().copied().enumerate().collect();
    order.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    for (group, size) in order.iter().copied().filter(|&(_, s)| s > 0) {
        let aligned = size.next_power_of_two();
        let mut placed = false;
        // Find the first aligned window whose slots are all free.
        for start in (0..leaves).step_by(aligned) {
            if start + size <= leaves
                && optimised[start..start + aligned.min(leaves - start)].iter().all(Option::is_none)
            {
                for slot in &mut optimised[start..start + size] {
                    *slot = Some(group);
                }
                placed = true;
                break;
            }
        }
        if !placed {
            // Fall back to first-fit over free slots.
            let mut remaining = size;
            for slot in optimised.iter_mut() {
                if remaining == 0 {
                    break;
                }
                if slot.is_none() {
                    *slot = Some(group);
                    remaining -= 1;
                }
            }
            assert_eq!(remaining, 0, "buddy fallback failed to place group {group}");
        }
    }

    // Naive: round-robin interleaving of groups across the leaves.
    let mut naive: Vec<Option<usize>> = vec![None; leaves];
    let mut cursors: Vec<usize> = group_sizes.to_vec();
    let mut leaf = 0;
    loop {
        let mut progressed = false;
        for (group, remaining) in cursors.iter_mut().enumerate() {
            if *remaining > 0 {
                naive[leaf] = Some(group);
                leaf += 1;
                *remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    HtreePlan {
        cost: plan_cost(&optimised),
        naive_cost: plan_cost(&naive),
        leaf_groups: optimised,
        depth: leaves.trailing_zeros() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_group_never_concatenates() {
        let plan = htree_plan(&[32], 32);
        assert_eq!(plan.cost, 0);
        assert_eq!(plan.improvement(), if plan.naive_cost == 0 { 1.0 } else { 0.0 });
    }

    #[test]
    fn two_equal_groups_concatenate_once_at_the_root() {
        let plan = htree_plan(&[16, 16], 32);
        // Only the root node merges different groups: depth 1, cost 1.
        assert_eq!(plan.cost, 1);
        assert!(plan.naive_cost > plan.cost, "naive interleaving should be worse");
    }

    #[test]
    fn interleaved_placement_is_much_worse() {
        let plan = htree_plan(&[8, 8, 8, 8], 32);
        assert!(plan.cost < plan.naive_cost);
        assert!(plan.improvement() < 0.5, "got {}", plan.improvement());
    }

    #[test]
    fn odd_group_sizes_still_fit() {
        let plan = htree_plan(&[5, 3, 7], 32);
        let placed = plan.leaf_groups.iter().flatten().count();
        assert_eq!(placed, 15);
        assert!(plan.cost <= plan.naive_cost);
    }

    #[test]
    fn empty_groups_are_ignored() {
        let plan = htree_plan(&[0, 16, 0], 32);
        assert_eq!(plan.cost, 0);
    }

    #[test]
    fn cost_function_counts_depth_correctly() {
        // 4 leaves: [A, A, B, B] → only the root concatenates (depth 1).
        assert_eq!(plan_cost(&[Some(0), Some(0), Some(1), Some(1)]), 1);
        // [A, B, A, B] → both depth-2 nodes concatenate plus the root.
        assert_eq!(plan_cost(&[Some(0), Some(1), Some(0), Some(1)]), 2 + 2 + 1);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn overfull_plan_rejected() {
        htree_plan(&[20, 20], 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_leaves_rejected() {
        htree_plan(&[4], 12);
    }

    proptest! {
        #[test]
        fn optimised_never_worse_than_naive(
            sizes in proptest::collection::vec(0usize..9, 1..6)
        ) {
            let total: usize = sizes.iter().sum();
            prop_assume!(total <= 32 && total > 0);
            let plan = htree_plan(&sizes, 32);
            prop_assert!(plan.cost <= plan.naive_cost);
            let placed = plan.leaf_groups.iter().flatten().count();
            prop_assert_eq!(placed, total);
        }
    }
}
