//! Placement baselines used by the transmission-volume comparison (Fig. 18).
//!
//! * **SUMMA (Cerebras default)** — every layer is spread block-cyclically
//!   over the whole candidate region, the way a SUMMA GEMM decomposition
//!   owns the full 2-D fabric; inter-layer hops are short but intra-layer
//!   reductions and gathers cross the entire region.
//! * **WaferLLM** — layers are placed contiguously in plain row-major core
//!   order; better locality than SUMMA but without the S-shaped ordering,
//!   die-crossing awareness or annealing refinement of the Ouroboros mapper.

use crate::problem::{Assignment, MappingProblem};
use ouro_hw::CoreId;

/// SUMMA-style interleaved placement: tile `j` of layer `l` goes to the
/// candidate core at index `j · L + l` (mod the region size), so each layer
/// is strided across the whole region.
pub fn summa_assignment(problem: &MappingProblem, feasible: &[CoreId]) -> Assignment {
    let num_layers = problem.layers.len().max(1);
    let n = feasible.len();
    let mut taken = vec![false; n];
    let mut core = Vec::with_capacity(problem.num_tiles());
    // Per-layer running tile counter.
    let mut per_layer_count = vec![0usize; num_layers];
    for tile in &problem.tiles {
        let j = per_layer_count[tile.layer];
        per_layer_count[tile.layer] += 1;
        let mut idx = (j * num_layers + tile.layer) % n;
        // Linear probing keeps the assignment a permutation even when the
        // stride collides.
        while taken[idx] {
            idx = (idx + 1) % n;
        }
        taken[idx] = true;
        core.push(feasible[idx]);
    }
    Assignment { core }
}

/// WaferLLM-style contiguous row-major placement: tiles are placed in their
/// natural (layer-major) order onto candidate cores sorted by raw core id
/// (row-major), without the serpentine ordering.
pub fn waferllm_assignment(problem: &MappingProblem, feasible: &[CoreId]) -> Assignment {
    let mut ordered: Vec<CoreId> = feasible.to_vec();
    ordered.sort();
    Assignment { core: (0..problem.num_tiles()).map(|t| ordered[t]).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MappingProblem;
    use ouro_hw::{DefectMap, WaferGeometry};
    use ouro_model::zoo;

    fn problem() -> MappingProblem {
        let g = WaferGeometry::tiny(2, 2, 6, 6);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 1024 * 1024, 4.0)
    }

    #[test]
    fn summa_assignment_is_feasible() {
        let p = problem();
        let a = summa_assignment(&p, &p.feasible_cores());
        assert!(p.is_feasible(&a));
    }

    #[test]
    fn waferllm_assignment_is_feasible() {
        let p = problem();
        let a = waferllm_assignment(&p, &p.feasible_cores());
        assert!(p.is_feasible(&a));
    }

    #[test]
    fn summa_spreads_layers_while_waferllm_keeps_them_contiguous() {
        let p = problem();
        let feasible = p.feasible_cores();
        let summa = summa_assignment(&p, &feasible);
        let wll = waferllm_assignment(&p, &feasible);
        // Average pairwise distance of layer 0's tiles.
        let layer0: Vec<usize> =
            p.tiles.iter().enumerate().filter(|(_, t)| t.layer == 0).map(|(i, _)| i).collect();
        let spread = |a: &Assignment| -> f64 {
            let mut total = 0.0;
            let mut pairs = 0.0;
            for (x, &i) in layer0.iter().enumerate() {
                for &j in &layer0[x + 1..] {
                    total += p.geometry.manhattan(a.core_of(i), a.core_of(j)) as f64;
                    pairs += 1.0;
                }
            }
            total / f64::max(pairs, 1.0)
        };
        assert!(
            spread(&summa) > spread(&wll),
            "summa should spread a layer wider than waferllm ({} vs {})",
            spread(&summa),
            spread(&wll)
        );
    }
}
