//! The MIQP objective (Eq. 1): Manhattan-distance-weighted traffic between
//! interacting tiles, with a penalty for die crossings.
//!
//! The evaluator precomputes the sparse set of interacting tile pairs and
//! their per-token traffic volumes, so that full evaluation is
//! `O(pairs)` and the incremental cost of moving a single tile is
//! `O(pairs touching that tile)` — which is what makes simulated annealing
//! over thousands of moves cheap.

use crate::problem::{Assignment, MappingProblem};
use ouro_hw::CoreId;

/// Category of traffic between two tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrafficKind {
    InterLayer,
    Reduction,
    Gather,
}

/// A precomputed interacting pair.
#[derive(Debug, Clone, Copy)]
struct Pair {
    a: usize,
    b: usize,
    bytes: u64,
    kind: TrafficKind,
}

/// Breakdown of the communication implied by an assignment, per token.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommSummary {
    /// Weighted objective value (bytes × hops × die penalty).
    pub objective: f64,
    /// Unweighted byte·hop volume of inter-layer activation traffic.
    pub inter_layer_byte_hops: f64,
    /// Unweighted byte·hop volume of intra-layer reductions.
    pub reduction_byte_hops: f64,
    /// Unweighted byte·hop volume of intra-layer gathers.
    pub gather_byte_hops: f64,
    /// Raw bytes placed on the network per token (independent of placement).
    pub total_bytes: u64,
    /// Average hop count over all pairs, traffic-weighted.
    pub mean_hops: f64,
}

impl CommSummary {
    /// Total unweighted byte·hop volume (the "transmission volume" of
    /// Fig. 18).
    pub fn transmission_volume(&self) -> f64 {
        self.inter_layer_byte_hops + self.reduction_byte_hops + self.gather_byte_hops
    }
}

/// Evaluates Eq. 1 for candidate assignments of a [`MappingProblem`].
#[derive(Debug, Clone)]
pub struct ObjectiveEvaluator {
    pairs: Vec<Pair>,
    pairs_of: Vec<Vec<usize>>,
    geometry: ouro_hw::WaferGeometry,
    cost_inter: f64,
}

impl ObjectiveEvaluator {
    /// Precomputes the interacting pairs of `problem`.
    pub fn new(problem: &MappingProblem) -> ObjectiveEvaluator {
        let mut pairs = Vec::new();
        let tiles = &problem.tiles;
        let layers = &problem.layers;
        // Index tiles by (layer, input, output) for fast lookup.
        let mut index = std::collections::HashMap::new();
        for (t, tile) in tiles.iter().enumerate() {
            index.insert((tile.layer, tile.input, tile.output), t);
        }
        let num_layers = layers.len();
        for (t, tile) in tiles.iter().enumerate() {
            let layer = &layers[tile.layer];
            // Inter-layer: this tile's output feeds the matching input split
            // of every output split of the next layer.
            let next_layer = if tile.layer + 1 < num_layers {
                Some(tile.layer + 1)
            } else if problem.wrap_around {
                Some(0)
            } else {
                None
            };
            if let Some(nl) = next_layer {
                let next = &layers[nl];
                let i2 = tile.output % next.input_splits;
                for o2 in 0..next.output_splits {
                    if let Some(&t2) = index.get(&(nl, i2, o2)) {
                        pairs.push(Pair {
                            a: t,
                            b: t2,
                            bytes: (layer.output_bytes / next.output_splits.max(1) as u64).max(1),
                            kind: TrafficKind::InterLayer,
                        });
                    }
                }
            }
            // Reduction: partial sums flow to the reduction root (the last
            // input split of the same output slice).
            if layer.input_splits > 1 && tile.input != layer.input_splits - 1 {
                if let Some(&root) = index.get(&(tile.layer, layer.input_splits - 1, tile.output)) {
                    pairs.push(Pair {
                        a: t,
                        b: root,
                        bytes: layer.reduction_bytes.max(1),
                        kind: TrafficKind::Reduction,
                    });
                }
            }
            // Gather: reduction roots of every output split gather to the
            // first output split's root.
            if layer.output_splits > 1 && tile.input == layer.input_splits - 1 && tile.output != 0 {
                if let Some(&hub) = index.get(&(tile.layer, layer.input_splits - 1, 0)) {
                    pairs.push(Pair {
                        a: t,
                        b: hub,
                        bytes: layer.gather_bytes.max(1),
                        kind: TrafficKind::Gather,
                    });
                }
            }
        }
        let mut pairs_of = vec![Vec::new(); tiles.len()];
        for (p, pair) in pairs.iter().enumerate() {
            pairs_of[pair.a].push(p);
            pairs_of[pair.b].push(p);
        }
        ObjectiveEvaluator {
            pairs,
            pairs_of,
            geometry: problem.geometry.clone(),
            cost_inter: problem.cost_inter,
        }
    }

    fn edge_cost(&self, a: CoreId, b: CoreId, bytes: u64) -> f64 {
        let hops = self.geometry.manhattan(a, b) as f64;
        let penalty = if self.geometry.same_die(a, b) { 1.0 } else { self.cost_inter };
        bytes as f64 * hops * penalty
    }

    /// Full objective value of an assignment (Eq. 1).
    pub fn cost(&self, assignment: &Assignment) -> f64 {
        self.pairs
            .iter()
            .map(|p| self.edge_cost(assignment.core_of(p.a), assignment.core_of(p.b), p.bytes))
            .sum()
    }

    /// Change in objective if tile `t` moved to `new_core` (negative is an
    /// improvement). `O(pairs touching t)`.
    pub fn move_delta(&self, assignment: &Assignment, t: usize, new_core: CoreId) -> f64 {
        let old_core = assignment.core_of(t);
        if old_core == new_core {
            return 0.0;
        }
        let mut delta = 0.0;
        for &p in &self.pairs_of[t] {
            let pair = self.pairs[p];
            let other = if pair.a == t { pair.b } else { pair.a };
            if other == t {
                continue;
            }
            let other_core = assignment.core_of(other);
            delta += self.edge_cost(new_core, other_core, pair.bytes)
                - self.edge_cost(old_core, other_core, pair.bytes);
        }
        delta
    }

    /// Change in objective if tiles `t1` and `t2` swapped cores.
    pub fn swap_delta(&self, assignment: &Assignment, t1: usize, t2: usize) -> f64 {
        let c1 = assignment.core_of(t1);
        let c2 = assignment.core_of(t2);
        if c1 == c2 || t1 == t2 {
            return 0.0;
        }
        let mut delta = 0.0;
        let mut seen = std::collections::HashSet::new();
        for &p in self.pairs_of[t1].iter().chain(self.pairs_of[t2].iter()) {
            if !seen.insert(p) {
                continue;
            }
            let pair = self.pairs[p];
            let (ca_old, cb_old) = (assignment.core_of(pair.a), assignment.core_of(pair.b));
            let remap = |tile: usize, cur: CoreId| -> CoreId {
                if tile == t1 {
                    c2
                } else if tile == t2 {
                    c1
                } else {
                    cur
                }
            };
            let ca_new = remap(pair.a, ca_old);
            let cb_new = remap(pair.b, cb_old);
            delta += self.edge_cost(ca_new, cb_new, pair.bytes) - self.edge_cost(ca_old, cb_old, pair.bytes);
        }
        delta
    }

    /// Per-token communication breakdown of an assignment.
    pub fn summary(&self, assignment: &Assignment) -> CommSummary {
        let mut s = CommSummary::default();
        let mut weighted_hops = 0.0;
        let mut total_bytes = 0u64;
        for p in &self.pairs {
            let a = assignment.core_of(p.a);
            let b = assignment.core_of(p.b);
            let hops = self.geometry.manhattan(a, b) as f64;
            let byte_hops = p.bytes as f64 * hops;
            s.objective += self.edge_cost(a, b, p.bytes);
            match p.kind {
                TrafficKind::InterLayer => s.inter_layer_byte_hops += byte_hops,
                TrafficKind::Reduction => s.reduction_byte_hops += byte_hops,
                TrafficKind::Gather => s.gather_byte_hops += byte_hops,
            }
            weighted_hops += p.bytes as f64 * hops;
            total_bytes += p.bytes;
        }
        s.total_bytes = total_bytes;
        s.mean_hops = if total_bytes > 0 { weighted_hops / total_bytes as f64 } else { 0.0 };
        s
    }

    /// Number of precomputed interacting pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MappingProblem;
    use ouro_hw::{DefectMap, WaferGeometry};
    use ouro_model::zoo;
    use proptest::prelude::*;

    fn problem() -> MappingProblem {
        let g = WaferGeometry::tiny(2, 2, 6, 6);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 1024 * 1024, 4.0)
    }

    fn sequential_assignment(p: &MappingProblem) -> Assignment {
        Assignment { core: (0..p.num_tiles()).map(CoreId).collect() }
    }

    #[test]
    fn evaluator_finds_interacting_pairs() {
        let p = problem();
        let eval = ObjectiveEvaluator::new(&p);
        assert!(eval.num_pairs() > 0);
    }

    #[test]
    fn identical_placement_of_neighbours_is_cheap() {
        let p = problem();
        let eval = ObjectiveEvaluator::new(&p);
        let compact = sequential_assignment(&p);
        // Spread assignment: place tiles far apart.
        let n = p.feasible_cores().len();
        let spread =
            Assignment { core: (0..p.num_tiles()).map(|t| p.feasible_cores()[(t * 37) % n]).collect() };
        assert!(eval.cost(&compact) < eval.cost(&spread));
    }

    #[test]
    fn move_delta_matches_full_recomputation() {
        let p = problem();
        let eval = ObjectiveEvaluator::new(&p);
        let mut a = sequential_assignment(&p);
        let before = eval.cost(&a);
        let target = CoreId(p.geometry.total_cores() - 1);
        let delta = eval.move_delta(&a, 3, target);
        a.core[3] = target;
        let after = eval.cost(&a);
        assert!((before + delta - after).abs() < 1e-6, "{before} + {delta} != {after}");
    }

    #[test]
    fn swap_delta_matches_full_recomputation() {
        let p = problem();
        let eval = ObjectiveEvaluator::new(&p);
        let mut a = sequential_assignment(&p);
        let before = eval.cost(&a);
        let delta = eval.swap_delta(&a, 2, p.num_tiles() - 1);
        a.core.swap(2, p.num_tiles() - 1);
        let after = eval.cost(&a);
        assert!((before + delta - after).abs() < 1e-6, "{before} + {delta} != {after}");
    }

    #[test]
    fn summary_components_sum_to_transmission_volume() {
        let p = problem();
        let eval = ObjectiveEvaluator::new(&p);
        let a = sequential_assignment(&p);
        let s = eval.summary(&a);
        let sum = s.inter_layer_byte_hops + s.reduction_byte_hops + s.gather_byte_hops;
        assert!((s.transmission_volume() - sum).abs() < 1e-9);
        assert!(s.objective >= s.transmission_volume());
        assert!(s.mean_hops > 0.0);
    }

    #[test]
    fn colocated_assignment_has_zero_cost_but_is_infeasible() {
        let p = problem();
        let eval = ObjectiveEvaluator::new(&p);
        let all_same = Assignment { core: vec![CoreId(0); p.num_tiles()] };
        assert_eq!(eval.cost(&all_same), 0.0);
        assert!(!p.is_feasible(&all_same));
    }

    proptest! {
        #[test]
        fn deltas_are_consistent_for_random_moves(tile in 0usize..20, core in 0usize..100, seed in 0u64..20) {
            let p = problem();
            let eval = ObjectiveEvaluator::new(&p);
            let n = p.num_tiles();
            let tile = tile % n;
            let feasible = p.feasible_cores();
            let core = feasible[core % feasible.len()];
            // Shuffle-ish assignment derived from the seed.
            let mut a = Assignment {
                core: (0..n).map(|t| feasible[(t * 13 + seed as usize * 7) % feasible.len()]).collect(),
            };
            let before = eval.cost(&a);
            let delta = eval.move_delta(&a, tile, core);
            a.core[tile] = core;
            let after = eval.cost(&a);
            prop_assert!((before + delta - after).abs() < 1e-6);
        }
    }
}
