//! Fault-tolerant remapping via replacement chains (§4.3.3, Fig. 9).
//!
//! When a core holding LLM weights fails at run time, Ouroboros does not
//! re-run the MIQP. Instead it configures the cores spanning from the faulty
//! core to the nearest core holding KV cache into a *replacement chain*: the
//! KV core's cache is evicted (those sequences will be recomputed), and every
//! core in the chain hands its weights to the next core, so the faulty core's
//! tile ends up on its neighbour and the last weight core spills into the
//! freed KV core. The whole operation is local and sub-millisecond.

use crate::problem::Assignment;
use ouro_hw::{CoreId, WaferGeometry};

/// Result of a replacement-chain remap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapOutcome {
    /// The chain of cores, starting at the failed core and ending at the KV
    /// core that absorbs the displaced weights.
    pub chain: Vec<CoreId>,
    /// The KV core whose cache was evicted to make room.
    pub evicted_kv_core: Option<CoreId>,
    /// The updated assignment (same tile order as the input).
    pub new_assignment: Assignment,
    /// Number of tiles whose core changed.
    pub moved_tiles: usize,
}

/// Errors from replacement-chain remapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemapError {
    /// There are no KV cores to absorb the displaced weights.
    NoKvCores,
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::NoKvCores => write!(f, "no kv cores available to absorb displaced weights"),
        }
    }
}

impl std::error::Error for RemapError {}

/// Remaps `assignment` around a run-time failure of `failed`.
///
/// If the failed core holds no weights (it was a KV or idle core) the
/// assignment is returned unchanged — only KV recomputation is needed, which
/// is the caller's concern.
///
/// # Errors
///
/// Returns [`RemapError::NoKvCores`] when `kv_cores` is empty but the failed
/// core holds weights.
pub fn remap_with_chain(
    geometry: &WaferGeometry,
    assignment: &Assignment,
    kv_cores: &[CoreId],
    failed: CoreId,
) -> Result<RemapOutcome, RemapError> {
    let holds_weights = assignment.core.contains(&failed);
    if !holds_weights {
        return Ok(RemapOutcome {
            chain: vec![failed],
            evicted_kv_core: kv_cores.contains(&failed).then_some(failed),
            new_assignment: assignment.clone(),
            moved_tiles: 0,
        });
    }
    // Nearest KV core by Manhattan distance (excluding the failed core).
    let target = kv_cores
        .iter()
        .copied()
        .filter(|c| *c != failed)
        .min_by_key(|c| geometry.manhattan(failed, *c))
        .ok_or(RemapError::NoKvCores)?;

    // The chain walks from the failed core to the target along an XY path,
    // restricted to cores that currently hold weights (plus the target): each
    // weight core hands its tile to the next link.
    let weight_cores: std::collections::HashSet<CoreId> = assignment.core.iter().copied().collect();
    let mut chain = vec![failed];
    let mut cur = geometry.coord(failed);
    let goal = geometry.coord(target);
    while cur != goal {
        cur = if cur.row != goal.row {
            ouro_hw::CoreCoord {
                row: if cur.row < goal.row { cur.row + 1 } else { cur.row - 1 },
                col: cur.col,
            }
        } else {
            ouro_hw::CoreCoord {
                row: cur.row,
                col: if cur.col < goal.col { cur.col + 1 } else { cur.col - 1 },
            }
        };
        let id = geometry.id(cur);
        if weight_cores.contains(&id) || id == target {
            chain.push(id);
        }
    }
    if *chain.last().expect("chain contains the failed core") != target {
        chain.push(target);
    }

    // Shift tiles along the chain: the tile on chain[k] moves to chain[k+1].
    let mut new_assignment = assignment.clone();
    let mut moved = 0;
    for k in (0..chain.len() - 1).rev() {
        let from = chain[k];
        let to = chain[k + 1];
        for core in new_assignment.core.iter_mut() {
            if *core == from {
                *core = to;
                moved += 1;
            }
        }
    }
    Ok(RemapOutcome { chain, evicted_kv_core: Some(target), new_assignment, moved_tiles: moved })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::WaferGeometry;

    fn setup() -> (WaferGeometry, Assignment, Vec<CoreId>) {
        let g = WaferGeometry::tiny(1, 1, 4, 4);
        // Weights on cores 0..8, KV cores at 12..16.
        let assignment = Assignment { core: (0..8).map(CoreId).collect() };
        let kv: Vec<CoreId> = (12..16).map(CoreId).collect();
        (g, assignment, kv)
    }

    #[test]
    fn failure_of_a_non_weight_core_is_a_noop() {
        let (g, a, kv) = setup();
        let out = remap_with_chain(&g, &a, &kv, CoreId(10)).unwrap();
        assert_eq!(out.new_assignment, a);
        assert_eq!(out.moved_tiles, 0);
        assert_eq!(out.evicted_kv_core, None);
    }

    #[test]
    fn failure_of_a_kv_core_evicts_only_that_cache() {
        let (g, a, kv) = setup();
        let out = remap_with_chain(&g, &a, &kv, CoreId(13)).unwrap();
        assert_eq!(out.new_assignment, a);
        assert_eq!(out.evicted_kv_core, Some(CoreId(13)));
    }

    #[test]
    fn weight_core_failure_shifts_tiles_to_a_kv_core() {
        let (g, a, kv) = setup();
        let failed = CoreId(5);
        let out = remap_with_chain(&g, &a, &kv, failed).unwrap();
        // The failed core no longer appears in the assignment.
        assert!(!out.new_assignment.core.contains(&failed));
        // Exactly one KV core was sacrificed and now holds weights.
        let evicted = out.evicted_kv_core.unwrap();
        assert!(kv.contains(&evicted));
        assert!(out.new_assignment.core.contains(&evicted));
        assert!(out.moved_tiles >= 1);
        // The chain starts at the failure and ends at the evicted KV core.
        assert_eq!(*out.chain.first().unwrap(), failed);
        assert_eq!(*out.chain.last().unwrap(), evicted);
        // No duplicates were introduced.
        let unique: std::collections::HashSet<_> = out.new_assignment.core.iter().collect();
        assert_eq!(unique.len(), out.new_assignment.core.len());
    }

    #[test]
    fn nearest_kv_core_is_chosen() {
        let (g, a, kv) = setup();
        let out = remap_with_chain(&g, &a, &kv, CoreId(7)).unwrap();
        // Core 7 is at (1,3); the nearest KV core among 12..16 is 15 at (3,3).
        assert_eq!(out.evicted_kv_core, Some(CoreId(15)));
    }

    #[test]
    fn no_kv_cores_is_an_error() {
        let (g, a, _) = setup();
        assert_eq!(remap_with_chain(&g, &a, &[], CoreId(0)).unwrap_err(), RemapError::NoKvCores);
    }

    #[test]
    fn repeated_failures_keep_the_assignment_consistent() {
        let (g, mut a, kv) = setup();
        let mut kv = kv;
        for failed in [CoreId(0), CoreId(3), CoreId(6)] {
            let out = remap_with_chain(&g, &a, &kv, failed).unwrap();
            a = out.new_assignment;
            if let Some(e) = out.evicted_kv_core {
                kv.retain(|c| *c != e);
            }
            assert!(!a.core.contains(&failed));
            let unique: std::collections::HashSet<_> = a.core.iter().collect();
            assert_eq!(unique.len(), a.core.len());
        }
    }
}
