//! Fault-tolerant remapping via replacement chains (§4.3.3, Fig. 9).
//!
//! When a core holding LLM weights fails at run time, Ouroboros does not
//! re-run the MIQP. Instead it configures the cores spanning from the faulty
//! core to the nearest core holding KV cache into a *replacement chain*: the
//! KV core's cache is evicted (those sequences will be recomputed), and every
//! core in the chain hands its weights to the next core, so the faulty core's
//! tile ends up on its neighbour and the last weight core spills into the
//! freed KV core. The whole operation is local and sub-millisecond.

use crate::problem::Assignment;
use ouro_hw::{CoreId, WaferGeometry};

/// Result of a replacement-chain remap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapOutcome {
    /// The chain of cores, starting at the failed core and ending at the KV
    /// core that absorbs the displaced weights.
    pub chain: Vec<CoreId>,
    /// The KV core whose cache was evicted to make room.
    pub evicted_kv_core: Option<CoreId>,
    /// The updated assignment (same tile order as the input).
    pub new_assignment: Assignment,
    /// Number of tiles whose core changed.
    pub moved_tiles: usize,
}

/// Errors from replacement-chain remapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemapError {
    /// There are no KV cores to absorb the displaced weights.
    NoKvCores,
    /// The reported faulty core (or a listed KV core) does not exist on the
    /// wafer at all — a stale or corrupted fault report. Previously this
    /// panicked deep inside the geometry lookup; callers driving remaps from
    /// runtime fault streams need a recoverable error instead.
    CoreNotOnWafer(CoreId),
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::NoKvCores => write!(f, "no kv cores available to absorb displaced weights"),
            RemapError::CoreNotOnWafer(c) => write!(f, "{c} is outside the wafer's core grid"),
        }
    }
}

impl std::error::Error for RemapError {}

/// Remaps `assignment` around a run-time failure of `failed`.
///
/// If the failed core holds no weights (it was a KV or idle core) the
/// assignment is returned unchanged — only KV recomputation is needed, which
/// is the caller's concern.
///
/// # Errors
///
/// Returns [`RemapError::NoKvCores`] when `kv_cores` is empty but the failed
/// core holds weights, and [`RemapError::CoreNotOnWafer`] when the failed
/// core (or any listed KV core) is not a core of `geometry` — a fault
/// report that cannot refer to real hardware must not panic mid-remap.
pub fn remap_with_chain(
    geometry: &WaferGeometry,
    assignment: &Assignment,
    kv_cores: &[CoreId],
    failed: CoreId,
) -> Result<RemapOutcome, RemapError> {
    let total = geometry.total_cores();
    if failed.0 >= total {
        return Err(RemapError::CoreNotOnWafer(failed));
    }
    if let Some(bad) = kv_cores.iter().find(|c| c.0 >= total) {
        return Err(RemapError::CoreNotOnWafer(*bad));
    }
    let holds_weights = assignment.core.contains(&failed);
    if !holds_weights {
        return Ok(RemapOutcome {
            chain: vec![failed],
            evicted_kv_core: kv_cores.contains(&failed).then_some(failed),
            new_assignment: assignment.clone(),
            moved_tiles: 0,
        });
    }
    // Nearest KV core by Manhattan distance (excluding the failed core).
    let target = kv_cores
        .iter()
        .copied()
        .filter(|c| *c != failed)
        .min_by_key(|c| geometry.manhattan(failed, *c))
        .ok_or(RemapError::NoKvCores)?;

    // The chain walks from the failed core to the target along an XY path,
    // restricted to cores that currently hold weights (plus the target): each
    // weight core hands its tile to the next link.
    let weight_cores: std::collections::HashSet<CoreId> = assignment.core.iter().copied().collect();
    let mut chain = vec![failed];
    let mut cur = geometry.coord(failed);
    let goal = geometry.coord(target);
    while cur != goal {
        cur = if cur.row != goal.row {
            ouro_hw::CoreCoord {
                row: if cur.row < goal.row { cur.row + 1 } else { cur.row - 1 },
                col: cur.col,
            }
        } else {
            ouro_hw::CoreCoord {
                row: cur.row,
                col: if cur.col < goal.col { cur.col + 1 } else { cur.col - 1 },
            }
        };
        let id = geometry.id(cur);
        if weight_cores.contains(&id) || id == target {
            chain.push(id);
        }
    }
    if *chain.last().expect("chain contains the failed core") != target {
        chain.push(target);
    }

    // Shift tiles along the chain: the tile on chain[k] moves to chain[k+1].
    let mut new_assignment = assignment.clone();
    let mut moved = 0;
    for k in (0..chain.len() - 1).rev() {
        let from = chain[k];
        let to = chain[k + 1];
        for core in new_assignment.core.iter_mut() {
            if *core == from {
                *core = to;
                moved += 1;
            }
        }
    }
    Ok(RemapOutcome { chain, evicted_kv_core: Some(target), new_assignment, moved_tiles: moved })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::WaferGeometry;

    fn setup() -> (WaferGeometry, Assignment, Vec<CoreId>) {
        let g = WaferGeometry::tiny(1, 1, 4, 4);
        // Weights on cores 0..8, KV cores at 12..16.
        let assignment = Assignment { core: (0..8).map(CoreId).collect() };
        let kv: Vec<CoreId> = (12..16).map(CoreId).collect();
        (g, assignment, kv)
    }

    #[test]
    fn failure_of_a_non_weight_core_is_a_noop() {
        let (g, a, kv) = setup();
        let out = remap_with_chain(&g, &a, &kv, CoreId(10)).unwrap();
        assert_eq!(out.new_assignment, a);
        assert_eq!(out.moved_tiles, 0);
        assert_eq!(out.evicted_kv_core, None);
    }

    #[test]
    fn failure_of_a_kv_core_evicts_only_that_cache() {
        let (g, a, kv) = setup();
        let out = remap_with_chain(&g, &a, &kv, CoreId(13)).unwrap();
        assert_eq!(out.new_assignment, a);
        assert_eq!(out.evicted_kv_core, Some(CoreId(13)));
    }

    #[test]
    fn weight_core_failure_shifts_tiles_to_a_kv_core() {
        let (g, a, kv) = setup();
        let failed = CoreId(5);
        let out = remap_with_chain(&g, &a, &kv, failed).unwrap();
        // The failed core no longer appears in the assignment.
        assert!(!out.new_assignment.core.contains(&failed));
        // Exactly one KV core was sacrificed and now holds weights.
        let evicted = out.evicted_kv_core.unwrap();
        assert!(kv.contains(&evicted));
        assert!(out.new_assignment.core.contains(&evicted));
        assert!(out.moved_tiles >= 1);
        // The chain starts at the failure and ends at the evicted KV core.
        assert_eq!(*out.chain.first().unwrap(), failed);
        assert_eq!(*out.chain.last().unwrap(), evicted);
        // No duplicates were introduced.
        let unique: std::collections::HashSet<_> = out.new_assignment.core.iter().collect();
        assert_eq!(unique.len(), out.new_assignment.core.len());
    }

    #[test]
    fn nearest_kv_core_is_chosen() {
        let (g, a, kv) = setup();
        let out = remap_with_chain(&g, &a, &kv, CoreId(7)).unwrap();
        // Core 7 is at (1,3); the nearest KV core among 12..16 is 15 at (3,3).
        assert_eq!(out.evicted_kv_core, Some(CoreId(15)));
    }

    #[test]
    fn no_kv_cores_is_an_error() {
        let (g, a, _) = setup();
        assert_eq!(remap_with_chain(&g, &a, &[], CoreId(0)).unwrap_err(), RemapError::NoKvCores);
    }

    #[test]
    fn a_faulty_core_outside_the_wafer_is_an_error_not_a_panic() {
        let (g, a, kv) = setup();
        // The tiny wafer has 16 cores; core 99 cannot exist on it.
        assert_eq!(
            remap_with_chain(&g, &a, &kv, CoreId(99)).unwrap_err(),
            RemapError::CoreNotOnWafer(CoreId(99))
        );
    }

    #[test]
    fn a_kv_core_outside_the_wafer_is_an_error_not_a_panic() {
        let (g, a, _) = setup();
        let err = remap_with_chain(&g, &a, &[CoreId(12), CoreId(400)], CoreId(5)).unwrap_err();
        assert_eq!(err, RemapError::CoreNotOnWafer(CoreId(400)));
        assert!(err.to_string().contains("core400"));
    }

    #[test]
    fn repeated_failures_keep_the_assignment_consistent() {
        let (g, mut a, kv) = setup();
        let mut kv = kv;
        for failed in [CoreId(0), CoreId(3), CoreId(6)] {
            let out = remap_with_chain(&g, &a, &kv, failed).unwrap();
            a = out.new_assignment;
            if let Some(e) = out.evicted_kv_core {
                kv.retain(|c| *c != e);
            }
            assert!(!a.core.contains(&failed));
            let unique: std::collections::HashSet<_> = a.core.iter().collect();
            assert_eq!(unique.len(), a.core.len());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds a random but *valid* remap instance on an `rows × cols`
        /// wafer: a duplicate-free weight assignment, a disjoint KV core
        /// set, and the index of the weight core to fail.
        fn instance(
            rows: usize,
            cols: usize,
            pick: u64,
            weights: usize,
            kv: usize,
        ) -> (WaferGeometry, Assignment, Vec<CoreId>, CoreId) {
            let g = WaferGeometry::tiny(1, 1, rows, cols);
            let total = g.total_cores();
            // A seeded permutation of the core ids spreads weight and KV
            // cores over the wafer without clustering artefacts.
            let mut ids: Vec<usize> = (0..total).collect();
            let mut state = pick;
            for i in (1..total).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ids.swap(i, (state % (i as u64 + 1)) as usize);
            }
            let weights = weights.min(total.saturating_sub(kv)).max(1);
            let assignment = Assignment { core: ids[..weights].iter().map(|&i| CoreId(i)).collect() };
            let kv_cores: Vec<CoreId> =
                ids[weights..(weights + kv).min(total)].iter().map(|&i| CoreId(i)).collect();
            let failed = assignment.core[(state % weights as u64) as usize];
            (g, assignment, kv_cores, failed)
        }

        proptest! {
            #[test]
            fn remap_preserves_the_tile_multiset(
                rows in 3usize..8, cols in 3usize..8, pick in 0u64..500,
                weights in 2usize..20, kv in 1usize..8,
            ) {
                let (g, a, kv_cores, failed) = instance(rows, cols, pick, weights, kv);
                prop_assume!(!kv_cores.is_empty());
                let out = remap_with_chain(&g, &a, &kv_cores, failed).unwrap();
                // Same number of tiles, each still on exactly one core, no
                // core hosting two tiles, and the failed core vacated.
                prop_assert_eq!(out.new_assignment.core.len(), a.core.len());
                let unique: std::collections::HashSet<_> = out.new_assignment.core.iter().collect();
                prop_assert_eq!(unique.len(), out.new_assignment.core.len(), "a remap must not stack tiles");
                prop_assert!(!out.new_assignment.core.contains(&failed));
            }

            #[test]
            fn the_chain_is_geometrically_contiguous(
                rows in 3usize..8, cols in 3usize..8, pick in 0u64..500,
                weights in 2usize..20, kv in 1usize..8,
            ) {
                let (g, a, kv_cores, failed) = instance(rows, cols, pick, weights, kv);
                prop_assume!(!kv_cores.is_empty());
                let out = remap_with_chain(&g, &a, &kv_cores, failed).unwrap();
                // The chain walks a monotone XY path from the failure to the
                // absorbed KV core, so link distances are additive: the sum
                // of consecutive Manhattan hops equals the end-to-end
                // distance (any detour or backtrack would exceed it).
                let first = *out.chain.first().unwrap();
                let last = *out.chain.last().unwrap();
                let link_sum: usize =
                    out.chain.windows(2).map(|w| g.manhattan(w[0], w[1])).sum();
                prop_assert_eq!(link_sum, g.manhattan(first, last));
                prop_assert_eq!(first, failed);
                for w in out.chain.windows(2) {
                    prop_assert!(g.manhattan(w[0], w[1]) >= 1, "chain links must be distinct cores");
                }
            }

            #[test]
            fn moved_tiles_equals_chain_length_minus_one(
                rows in 3usize..8, cols in 3usize..8, pick in 0u64..500,
                weights in 2usize..20, kv in 1usize..8,
            ) {
                let (g, a, kv_cores, failed) = instance(rows, cols, pick, weights, kv);
                prop_assume!(!kv_cores.is_empty());
                let out = remap_with_chain(&g, &a, &kv_cores, failed).unwrap();
                // Every link hands exactly one tile forward (the terminal KV
                // core holds none), so the number of moved tiles is the
                // number of links.
                prop_assert_eq!(out.moved_tiles, out.chain.len() - 1);
            }
        }
    }
}
