//! Solvers for the inter-core mapping problem.
//!
//! The paper solves the MIQP with a commercial solver over several hours of
//! offline time; this reproduction keeps the identical objective and
//! constraints but searches with cheaper machinery (see `DESIGN.md`):
//!
//! * [`Strategy::Greedy`] — seeds tiles along the wafer's S-shaped core order
//!   so that consecutive tiles (reduction partners, then consumer layers) sit
//!   on adjacent cores,
//! * [`Strategy::Anneal`] — simulated annealing on top of the greedy seed
//!   using incremental (delta) objective evaluation,
//! * [`Strategy::Exact`] — exhaustive search, only viable for tiny problems;
//!   used as the optimality oracle in tests,
//! * [`Strategy::Summa`] / [`Strategy::WaferLlm`] — the placement baselines
//!   of the Fig. 18 transmission-volume comparison.

use crate::baselines;
use crate::objective::{CommSummary, ObjectiveEvaluator};
use crate::problem::{Assignment, MappingProblem};
use ouro_hw::CoreId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// S-order greedy placement.
    Greedy,
    /// Greedy seed + simulated annealing refinement with the given move
    /// budget.
    Anneal {
        /// Number of proposed moves.
        iterations: usize,
    },
    /// Exhaustive search over all placements (tiny problems only).
    Exact,
    /// Cerebras-default SUMMA-style interleaved placement (baseline).
    Summa,
    /// WaferLLM-style contiguous row-major placement (baseline).
    WaferLlm,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Greedy => write!(f, "greedy"),
            Strategy::Anneal { iterations } => write!(f, "anneal({iterations})"),
            Strategy::Exact => write!(f, "exact"),
            Strategy::Summa => write!(f, "summa"),
            Strategy::WaferLlm => write!(f, "waferllm"),
        }
    }
}

/// A solved mapping.
#[derive(Debug, Clone)]
pub struct MappingSolution {
    /// Tile → core assignment.
    pub assignment: Assignment,
    /// Objective value (Eq. 1) of the assignment.
    pub objective: f64,
    /// Communication breakdown per token.
    pub summary: CommSummary,
    /// The strategy that produced it.
    pub strategy: Strategy,
}

/// Solves `problem` with the chosen strategy.
///
/// # Panics
///
/// Panics if the problem has more tiles than functional candidate cores, or
/// if [`Strategy::Exact`] is requested for a problem with more than 8 tiles.
pub fn solve(problem: &MappingProblem, strategy: Strategy, seed: u64) -> MappingSolution {
    let feasible = problem.feasible_cores();
    assert!(
        feasible.len() >= problem.num_tiles(),
        "not enough functional cores: {} tiles but {} cores",
        problem.num_tiles(),
        feasible.len()
    );
    let evaluator = ObjectiveEvaluator::new(problem);
    let assignment = match strategy {
        Strategy::Greedy => greedy(problem, &feasible),
        Strategy::Anneal { iterations } => anneal(problem, &evaluator, &feasible, iterations, seed),
        Strategy::Exact => exact(problem, &evaluator, &feasible),
        Strategy::Summa => baselines::summa_assignment(problem, &feasible),
        Strategy::WaferLlm => baselines::waferllm_assignment(problem, &feasible),
    };
    debug_assert!(problem.is_feasible(&assignment), "solver produced an infeasible assignment");
    let objective = evaluator.cost(&assignment);
    let summary = evaluator.summary(&assignment);
    MappingSolution { assignment, objective, summary, strategy }
}

/// Greedy seed: walk the wafer's S-order and drop tiles (already ordered
/// layer-major, reduction groups adjacent) onto consecutive functional
/// candidate cores.
fn greedy(problem: &MappingProblem, feasible: &[CoreId]) -> Assignment {
    let candidate_set: std::collections::HashSet<CoreId> = feasible.iter().copied().collect();
    let ordered: Vec<CoreId> =
        problem.geometry.s_order().into_iter().filter(|c| candidate_set.contains(c)).collect();
    Assignment { core: (0..problem.num_tiles()).map(|t| ordered[t]).collect() }
}

/// Simulated annealing refinement.
fn anneal(
    problem: &MappingProblem,
    evaluator: &ObjectiveEvaluator,
    feasible: &[CoreId],
    iterations: usize,
    seed: u64,
) -> Assignment {
    let mut assignment = greedy(problem, feasible);
    let n = problem.num_tiles();
    if n < 2 || iterations == 0 {
        return assignment;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = evaluator.cost(&assignment);
    let mut best = assignment.clone();
    let mut best_cost = cost;
    // Free cores available for relocation moves.
    let used: std::collections::HashSet<CoreId> = assignment.core.iter().copied().collect();
    let mut free: Vec<CoreId> = feasible.iter().copied().filter(|c| !used.contains(c)).collect();
    let t0 = (cost / n as f64).max(1.0);
    let t_end = t0 * 1e-3;
    for it in 0..iterations {
        let temp = t0 * (t_end / t0).powf(it as f64 / iterations as f64);
        let do_swap = free.is_empty() || rng.gen_bool(0.5);
        if do_swap {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let delta = evaluator.swap_delta(&assignment, a, b);
            if delta < 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                assignment.core.swap(a, b);
                cost += delta;
            }
        } else {
            let t = rng.gen_range(0..n);
            let f = rng.gen_range(0..free.len());
            let new_core = free[f];
            let delta = evaluator.move_delta(&assignment, t, new_core);
            if delta < 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                let old = assignment.core[t];
                assignment.core[t] = new_core;
                free[f] = old;
                cost += delta;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best = assignment.clone();
        }
    }
    best
}

/// Exhaustive optimal placement (test oracle). Only for ≤ 8 tiles.
fn exact(problem: &MappingProblem, evaluator: &ObjectiveEvaluator, feasible: &[CoreId]) -> Assignment {
    let n = problem.num_tiles();
    assert!(n <= 8, "exact solver limited to 8 tiles, got {n}");
    let mut best: Option<(f64, Vec<CoreId>)> = None;
    let mut current: Vec<CoreId> = Vec::with_capacity(n);
    let mut used = vec![false; feasible.len()];
    fn recurse(
        depth: usize,
        n: usize,
        feasible: &[CoreId],
        used: &mut Vec<bool>,
        current: &mut Vec<CoreId>,
        evaluator: &ObjectiveEvaluator,
        best: &mut Option<(f64, Vec<CoreId>)>,
    ) {
        if depth == n {
            let a = Assignment { core: current.clone() };
            let c = evaluator.cost(&a);
            if best.as_ref().map(|(bc, _)| c < *bc).unwrap_or(true) {
                *best = Some((c, current.clone()));
            }
            return;
        }
        for (i, &core) in feasible.iter().enumerate() {
            if used[i] {
                continue;
            }
            used[i] = true;
            current.push(core);
            recurse(depth + 1, n, feasible, used, current, evaluator, best);
            current.pop();
            used[i] = false;
        }
    }
    recurse(0, n, feasible, &mut used, &mut current, evaluator, &mut best);
    Assignment { core: best.expect("at least one feasible placement").1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::{DefectMap, WaferGeometry};
    use ouro_model::zoo;

    fn problem() -> MappingProblem {
        let g = WaferGeometry::tiny(2, 2, 8, 8);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 512 * 1024, 4.0)
    }

    #[test]
    fn greedy_produces_a_feasible_assignment() {
        let p = problem();
        let sol = solve(&p, Strategy::Greedy, 0);
        assert!(p.is_feasible(&sol.assignment));
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn anneal_never_worse_than_greedy() {
        let p = problem();
        let greedy = solve(&p, Strategy::Greedy, 0);
        let anneal = solve(&p, Strategy::Anneal { iterations: 3000 }, 42);
        assert!(p.is_feasible(&anneal.assignment));
        assert!(
            anneal.objective <= greedy.objective + 1e-9,
            "anneal {} should not exceed greedy {}",
            anneal.objective,
            greedy.objective
        );
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let p = problem();
        let a = solve(&p, Strategy::Anneal { iterations: 1000 }, 7);
        let b = solve(&p, Strategy::Anneal { iterations: 1000 }, 7);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn our_mapping_beats_the_placement_baselines() {
        let p = problem();
        let ours = solve(&p, Strategy::Anneal { iterations: 4000 }, 1);
        let summa = solve(&p, Strategy::Summa, 1);
        let waferllm = solve(&p, Strategy::WaferLlm, 1);
        assert!(
            ours.summary.transmission_volume() < summa.summary.transmission_volume(),
            "ours {} vs summa {}",
            ours.summary.transmission_volume(),
            summa.summary.transmission_volume()
        );
        assert!(
            ours.summary.transmission_volume() <= waferllm.summary.transmission_volume() + 1e-9,
            "ours {} vs waferllm {}",
            ours.summary.transmission_volume(),
            waferllm.summary.transmission_volume()
        );
        assert!(waferllm.summary.transmission_volume() < summa.summary.transmission_volume());
    }

    #[test]
    fn defective_cores_are_never_used() {
        let g = WaferGeometry::tiny(2, 2, 8, 8);
        let bad: Vec<CoreId> = (0..40).map(|i| CoreId(i * 3)).collect();
        let defects = DefectMap::from_defective(&g, &bad);
        let cores: Vec<CoreId> = g.all_cores().collect();
        let p = MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 512 * 1024, 4.0);
        let sol = solve(&p, Strategy::Anneal { iterations: 1500 }, 3);
        for c in &sol.assignment.core {
            assert!(!p.defects.is_defective(*c));
        }
    }

    #[test]
    fn exact_matches_or_beats_anneal_on_tiny_problems() {
        // Build a problem small enough for the exhaustive solver by using a
        // large per-core capacity (each layer fits one core: 4 tiles).
        let g = WaferGeometry::tiny(1, 1, 3, 3);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        let p = MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 1 << 30, 4.0);
        assert!(p.num_tiles() <= 8, "tiny problem expected, got {}", p.num_tiles());
        let exact = solve(&p, Strategy::Exact, 0);
        let anneal = solve(&p, Strategy::Anneal { iterations: 2000 }, 9);
        assert!(exact.objective <= anneal.objective + 1e-9);
        assert!(p.is_feasible(&exact.assignment));
    }

    #[test]
    #[should_panic(expected = "not enough functional cores")]
    fn too_few_cores_panics() {
        let g = WaferGeometry::tiny(1, 1, 2, 2);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        let p = MappingProblem::for_block(&zoo::llama_13b(), g, defects, cores, 4 * 1024 * 1024, 4.0);
        solve(&p, Strategy::Greedy, 0);
    }
}
