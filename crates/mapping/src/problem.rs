//! The inter-core mapping problem: tiles, layers, constraints.

use ouro_hw::{CoreId, DefectMap, WaferGeometry};
use ouro_model::{ModelConfig, PipelineStage, StageKind};

/// One weight-holding layer of a transformer block, tiled for mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// The pipeline stage this layer belongs to.
    pub kind: StageKind,
    /// Index of the layer in execution order (0..L).
    pub index: usize,
    /// Number of input-channel splits `I(l)`.
    pub input_splits: usize,
    /// Number of output-channel splits `O(l)`.
    pub output_splits: usize,
    /// Bytes of output activation sent to the next layer per token
    /// (`output(l)` in Eq. 1).
    pub output_bytes: u64,
    /// Bytes of partial sums reduced across input splits per token
    /// (`reduction(l)`).
    pub reduction_bytes: u64,
    /// Bytes gathered across output splits per token (`gather(l)`).
    pub gather_bytes: u64,
    /// Weight bytes of one tile.
    pub tile_weight_bytes: u64,
}

impl LayerSpec {
    /// Number of cores this layer needs (`#Core(l)` = `I(l) × O(l)`).
    pub fn cores(&self) -> usize {
        self.input_splits * self.output_splits
    }
}

/// One weight tile: the `(layer, input-split, output-split)` unit a single
/// core is responsible for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Layer index within the block.
    pub layer: usize,
    /// Input-channel split index `i`.
    pub input: usize,
    /// Output-channel split index `o`.
    pub output: usize,
}

/// A candidate assignment of every tile to a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `core[t]` is the core of tile `t` (indexed as in
    /// [`MappingProblem::tiles`]).
    pub core: Vec<CoreId>,
}

impl Assignment {
    /// Core assigned to tile index `t`.
    pub fn core_of(&self, t: usize) -> CoreId {
        self.core[t]
    }

    /// Number of assigned tiles.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// Whether the assignment covers zero tiles.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }
}

/// The full inter-core mapping problem for one transformer block.
#[derive(Debug, Clone)]
pub struct MappingProblem {
    /// The wafer geometry tiles are placed on.
    pub geometry: WaferGeometry,
    /// Defect map: defective cores cannot take tiles (Eq. 2).
    pub defects: DefectMap,
    /// The layers of one block in execution order.
    pub layers: Vec<LayerSpec>,
    /// All tiles in deterministic order (layer-major, then output, then
    /// input).
    pub tiles: Vec<Tile>,
    /// The cores eligible for placement (functional cores, restricted to the
    /// region reserved for this block).
    pub candidate_cores: Vec<CoreId>,
    /// Cross-die penalty `Cost_inter` of the objective.
    pub cost_inter: f64,
    /// Whether the last layer wraps around to feed the first layer of the
    /// next (identically mapped) block.
    pub wrap_around: bool,
}

impl MappingProblem {
    /// Builds the mapping problem for one transformer block of `model`,
    /// placing its tiles among `candidate_cores` with per-core usable weight
    /// capacity `core_capacity_bytes`.
    ///
    /// Tiling follows the paper's constraint (2): output-channel partitioning
    /// is preferred; input channels are split only when a single
    /// output-channel slice of the weights does not fit a core.
    ///
    /// # Panics
    ///
    /// Panics if `core_capacity_bytes` is zero or no candidate cores are
    /// given.
    pub fn for_block(
        model: &ModelConfig,
        geometry: WaferGeometry,
        defects: DefectMap,
        candidate_cores: Vec<CoreId>,
        core_capacity_bytes: u64,
        cost_inter: f64,
    ) -> MappingProblem {
        assert!(core_capacity_bytes > 0, "cores need non-zero weight capacity");
        assert!(!candidate_cores.is_empty(), "at least one candidate core is required");
        let bytes = model.precision.bytes();
        let weight_stages: Vec<PipelineStage> = StageKind::ALL
            .iter()
            .filter(|k| k.holds_weights())
            .map(|&k| PipelineStage::new(k, model))
            .collect();
        let mut layers = Vec::with_capacity(weight_stages.len());
        for (index, stage) in weight_stages.iter().enumerate() {
            let weight_bytes = stage.weight_elems * bytes;
            let needed = weight_bytes.div_ceil(core_capacity_bytes).max(1) as usize;
            // Prefer splitting output channels; cap at the number of output
            // channels, spill the rest onto input splits.
            let output_splits = needed.min(stage.output_dim.max(1));
            let input_splits = needed.div_ceil(output_splits);
            let output_bytes = stage.output_dim as u64 * bytes / output_splits.max(1) as u64;
            let reduction_bytes = if input_splits > 1 {
                // 32-bit partial sums for the tile's share of the outputs.
                (stage.output_dim as u64 * 4) / output_splits.max(1) as u64
            } else {
                0
            };
            let gather_bytes =
                if output_splits > 1 { stage.output_dim as u64 * bytes / output_splits as u64 } else { 0 };
            layers.push(LayerSpec {
                kind: stage.kind,
                index,
                input_splits,
                output_splits,
                output_bytes,
                reduction_bytes,
                gather_bytes,
                tile_weight_bytes: weight_bytes / (input_splits * output_splits) as u64,
            });
        }
        let mut tiles = Vec::new();
        for (l, layer) in layers.iter().enumerate() {
            for o in 0..layer.output_splits {
                for i in 0..layer.input_splits {
                    tiles.push(Tile { layer: l, input: i, output: o });
                }
            }
        }
        MappingProblem { geometry, defects, layers, tiles, candidate_cores, cost_inter, wrap_around: true }
    }

    /// Total number of tiles (cores required by one block).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Functional candidate cores (the feasible placement domain, Eq. 2).
    pub fn feasible_cores(&self) -> Vec<CoreId> {
        self.candidate_cores.iter().copied().filter(|c| !self.defects.is_defective(*c)).collect()
    }

    /// Checks the hard constraints of Eq. 2–3 for an assignment: every tile
    /// on a distinct, functional, candidate core.
    pub fn is_feasible(&self, assignment: &Assignment) -> bool {
        if assignment.len() != self.num_tiles() {
            return false;
        }
        let mut seen = std::collections::HashSet::with_capacity(assignment.len());
        let candidates: std::collections::HashSet<CoreId> = self.candidate_cores.iter().copied().collect();
        assignment
            .core
            .iter()
            .all(|c| !self.defects.is_defective(*c) && candidates.contains(c) && seen.insert(*c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::{DefectMap, WaferGeometry};
    use ouro_model::zoo;

    fn small_problem() -> MappingProblem {
        let g = WaferGeometry::tiny(2, 2, 6, 6);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        MappingProblem::for_block(&zoo::llama_13b(), g, defects, cores, 4 * 1024 * 1024, 4.0)
    }

    #[test]
    fn llama_block_has_four_weight_layers() {
        let p = small_problem();
        assert_eq!(p.layers.len(), 4);
        let kinds: Vec<StageKind> = p.layers.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![StageKind::QkvGeneration, StageKind::ContextProjection, StageKind::Ffn1, StageKind::Ffn2]
        );
    }

    #[test]
    fn tile_count_matches_layer_core_requirements() {
        let p = small_problem();
        let expected: usize = p.layers.iter().map(LayerSpec::cores).sum();
        assert_eq!(p.num_tiles(), expected);
        // LLaMA-13B block is ~300 MB; with 4 MiB cores that needs ~80 cores.
        assert!(p.num_tiles() > 60 && p.num_tiles() < 120, "got {}", p.num_tiles());
    }

    #[test]
    fn tile_weights_fit_core_capacity() {
        let p = small_problem();
        for layer in &p.layers {
            assert!(
                layer.tile_weight_bytes <= 4 * 1024 * 1024,
                "layer {:?} tile of {} bytes exceeds capacity",
                layer.kind,
                layer.tile_weight_bytes
            );
        }
    }

    #[test]
    fn reduction_only_when_input_is_split() {
        let p = small_problem();
        for layer in &p.layers {
            if layer.input_splits == 1 {
                assert_eq!(layer.reduction_bytes, 0);
            }
            if layer.output_splits == 1 {
                assert_eq!(layer.gather_bytes, 0);
            }
        }
    }

    #[test]
    fn feasibility_rejects_duplicates_and_defects() {
        let g = WaferGeometry::tiny(1, 1, 4, 4);
        let defects = DefectMap::from_defective(&g, &[CoreId(0)]);
        let cores: Vec<CoreId> = g.all_cores().collect();
        let mut p = MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 64 * 1024 * 1024, 4.0);
        // Force a tiny problem: keep only the first two tiles.
        p.tiles.truncate(2);
        let ok = Assignment { core: vec![CoreId(1), CoreId(2)] };
        let dup = Assignment { core: vec![CoreId(1), CoreId(1)] };
        let bad = Assignment { core: vec![CoreId(0), CoreId(2)] };
        let short = Assignment { core: vec![CoreId(1)] };
        assert!(p.is_feasible(&ok));
        assert!(!p.is_feasible(&dup));
        assert!(!p.is_feasible(&bad));
        assert!(!p.is_feasible(&short));
    }

    #[test]
    fn feasible_cores_excludes_defects() {
        let g = WaferGeometry::tiny(1, 1, 3, 3);
        let defects = DefectMap::from_defective(&g, &[CoreId(4)]);
        let cores: Vec<CoreId> = g.all_cores().collect();
        let p = MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 64 * 1024 * 1024, 4.0);
        assert_eq!(p.feasible_cores().len(), 8);
        assert!(!p.feasible_cores().contains(&CoreId(4)));
    }

    #[test]
    #[should_panic(expected = "non-zero weight capacity")]
    fn zero_capacity_rejected() {
        let g = WaferGeometry::tiny(1, 1, 2, 2);
        let defects = DefectMap::pristine(&g);
        let cores: Vec<CoreId> = g.all_cores().collect();
        MappingProblem::for_block(&zoo::bert_large(), g, defects, cores, 0, 4.0);
    }
}
