//! An append-only results store with regression gating.
//!
//! `experiments bench-report` measures the simulator; this module
//! remembers the measurements. Runs are grouped by a **config hash** —
//! an FNV-1a digest over the identity fields of a row set
//! (`schema_version`, `experiment`, `label`, `requests`), so runs of the
//! same configuration land in the same history file and runs of
//! different configurations never get diffed against each other. Each
//! [`Store::append`] call re-reads the history file, appends the new
//! rows stamped with a monotonically increasing `store_seq`, and
//! rewrites it — append-only in the sense that prior rows are never
//! edited or dropped.
//!
//! [`compare_rows`] is the gate: it matches current rows to baseline
//! rows by `(experiment, label)` and produces a [`Verdict`] that
//! distinguishes **failures** (schema drift — key sets or schema
//! versions diverged; determinism drift — a simulated metric moved on
//! the same config; a baseline row vanished) from **regressions**
//! (throughput metrics fell more than the threshold). Failures always
//! gate; regressions gate unless the caller runs warn-only (wall-clock
//! throughput is machine-dependent, simulated metrics are not).
//!
//! Everything here is hand-rolled on the workspace's dependency-free
//! JSON: [`parse_flat_rows`] is the reader counterpart of
//! `json::render_array`, restricted to the flat scalar rows every
//! exporter in this workspace emits.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::JsonObject;

/// Version of the flat JSON diff-row schema emitted by
/// [`Verdict::json_rows`]. Bumped on any key change.
pub const COMPARE_SCHEMA_VERSION: u32 = 1;

/// Pinned key list of one comparison diff row.
pub const COMPARE_V1_KEYS: &[&str] =
    &["schema_version", "experiment", "label", "metric", "baseline", "current", "delta_pct", "regression"];

/// Throughput metrics: wall-clock dependent, gated by the relative
/// threshold (and the natural warn-only candidates on shared CI
/// machines).
pub const THROUGHPUT_METRICS: &[&str] = &["requests_per_s", "loop_events_per_s"];

/// Determinism metrics: pure functions of the configuration. Any drift
/// at all on a matching config is a hard failure, not a regression.
pub const DETERMINISM_METRICS: &[&str] = &["completed", "sim_duration_s"];

/// One scalar JSON value of a flat row.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the workspace emitter renders
    /// `f64` shortest-roundtrip, so parse→render is exact).
    Num(f64),
    /// A string, unescaped.
    Str(String),
}

impl JsonValue {
    /// The value as a number, when it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One flat row: key → scalar, ordered by key.
pub type FlatRow = BTreeMap<String, JsonValue>;

/// Parses a JSON array of flat objects (the shape every workspace
/// exporter writes). Nested containers are a deliberate error: the
/// store's schema is flat rows, and anything else means the input is
/// not one of ours.
///
/// # Errors
///
/// Returns a message naming the offending byte offset on malformed
/// input.
pub fn parse_flat_rows(text: &str) -> Result<Vec<FlatRow>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let rows = p.array()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(rows)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn array(&mut self) -> Result<Vec<FlatRow>, String> {
        self.expect(b'[')?;
        let mut rows = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(rows);
        }
        loop {
            self.skip_ws();
            rows.push(self.object()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(rows);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<FlatRow, String> {
        self.expect(b'{')?;
        let mut row = FlatRow::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(row);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.scalar()?;
            row.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(row);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn scalar(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'{') | Some(b'[') => {
                Err(format!("nested container at byte {} — the store holds flat rows only", self.pos))
            }
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }
}

/// FNV-1a over `bytes` — the same digest the trace layer pins its golden
/// with, reused so the store needs no hasher dependency.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fields that identify a configuration (as opposed to measuring
/// it): rows agreeing on all of these are runs of the same experiment
/// and may be diffed.
pub const CONFIG_HASH_FIELDS: &[&str] = &["schema_version", "experiment", "label", "requests"];

/// Content-addresses a row set by its identity fields: FNV-1a over the
/// canonical `key=value` lines of every row's [`CONFIG_HASH_FIELDS`],
/// row-order independent (rows are sorted canonically first).
pub fn config_hash(rows: &[FlatRow]) -> u64 {
    let mut lines: Vec<String> = rows
        .iter()
        .map(|row| {
            CONFIG_HASH_FIELDS
                .iter()
                .map(|&f| match row.get(f) {
                    Some(JsonValue::Str(s)) => format!("{f}={s}"),
                    Some(JsonValue::Num(n)) => format!("{f}={n}"),
                    Some(JsonValue::Bool(b)) => format!("{f}={b}"),
                    Some(JsonValue::Null) | None => format!("{f}="),
                })
                .collect::<Vec<String>>()
                .join("|")
        })
        .collect();
    lines.sort();
    fnv1a(lines.join("\n").as_bytes())
}

/// Renders a parsed row back to the workspace JSON shape (used when the
/// store rewrites a history file; bools become 0/1 like every other
/// workspace flag column).
pub fn row_to_json(row: &FlatRow) -> JsonObject {
    let mut obj = JsonObject::new();
    for (key, value) in row {
        obj = match value {
            JsonValue::Null => obj.null(key),
            JsonValue::Bool(b) => obj.int(key, u64::from(*b)),
            JsonValue::Num(n) => obj.num(key, *n),
            JsonValue::Str(s) => obj.str(key, s),
        };
    }
    obj
}

/// The append-only results store: one JSON history file per config hash
/// under a root directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The history file of one config hash.
    pub fn path_for(&self, hash: u64) -> PathBuf {
        self.root.join(format!("{hash:016x}.json"))
    }

    /// Appends one run's rows to the hash's history, stamping each row
    /// with the run's `store_seq` (0 for the first run). Returns the
    /// sequence number assigned.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and reports unparseable history files.
    pub fn append(&self, hash: u64, rows: &[FlatRow]) -> io::Result<u64> {
        let mut history = self.history(hash)?;
        let seq = history
            .iter()
            .filter_map(|r| r.get("store_seq").and_then(JsonValue::as_num))
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))));
        let seq = seq.map_or(0, |s| s as u64 + 1);
        for row in rows {
            let mut row = row.clone();
            row.insert("store_seq".to_string(), JsonValue::Num(seq as f64));
            history.push(row);
        }
        let objs: Vec<JsonObject> = history.iter().map(row_to_json).collect();
        crate::json::write_array(self.path_for(hash).to_str().expect("utf-8 store path"), &objs)?;
        Ok(seq)
    }

    /// Every row ever stored under the hash, in append order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and reports unparseable history files.
    pub fn history(&self, hash: u64) -> io::Result<Vec<FlatRow>> {
        let path = self.path_for(hash);
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = fs::read_to_string(&path)?;
        parse_flat_rows(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())))
    }

    /// The most recent run's rows under the hash (highest `store_seq`),
    /// with the stamp stripped so they diff cleanly against fresh rows.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and reports unparseable history files.
    pub fn latest(&self, hash: u64) -> io::Result<Option<Vec<FlatRow>>> {
        let history = self.history(hash)?;
        let last = history
            .iter()
            .filter_map(|r| r.get("store_seq").and_then(JsonValue::as_num))
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))));
        let Some(last) = last else { return Ok(None) };
        let rows: Vec<FlatRow> = history
            .into_iter()
            .filter(|r| r.get("store_seq").and_then(JsonValue::as_num) == Some(last))
            .map(|mut r| {
                r.remove("store_seq");
                r
            })
            .collect();
        Ok(Some(rows))
    }
}

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    /// The row's `experiment` tag.
    pub experiment: String,
    /// The row's `label` tag.
    pub label: String,
    /// The metric key compared.
    pub metric: String,
    /// Stored value.
    pub baseline: f64,
    /// Fresh value.
    pub current: f64,
    /// Relative change in percent (positive = current larger; 0 when the
    /// baseline is 0).
    pub delta_pct: f64,
    /// Whether this diff crossed the regression threshold.
    pub regression: bool,
}

/// The outcome of comparing a current run against a stored baseline.
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// Every throughput/determinism metric compared, row by row.
    pub diffs: Vec<MetricDiff>,
    /// Hard failures: schema drift, determinism drift, vanished rows.
    pub failures: Vec<String>,
    /// `(experiment, label)` pairs present now but absent from the
    /// baseline (informational — new coverage is not a regression).
    pub added: Vec<String>,
}

impl Verdict {
    /// Number of threshold regressions.
    pub fn regressions(&self) -> usize {
        self.diffs.iter().filter(|d| d.regression).count()
    }

    /// Whether the gate passes: failures never pass; regressions pass
    /// only in warn-only mode.
    pub fn passed(&self, warn_only: bool) -> bool {
        self.failures.is_empty() && (warn_only || self.regressions() == 0)
    }

    /// The comparison as flat JSON rows sharing
    /// [`COMPARE_SCHEMA_VERSION`] and the pinned [`COMPARE_V1_KEYS`].
    pub fn json_rows(&self) -> Vec<JsonObject> {
        self.diffs
            .iter()
            .map(|d| {
                JsonObject::new()
                    .int("schema_version", COMPARE_SCHEMA_VERSION as u64)
                    .str("experiment", &d.experiment)
                    .str("label", &d.label)
                    .str("metric", &d.metric)
                    .num("baseline", d.baseline)
                    .num("current", d.current)
                    .num("delta_pct", d.delta_pct)
                    .int("regression", u64::from(d.regression))
            })
            .collect()
    }

    /// A human-readable diff table plus the failure list.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<14} {:<18} {:<18} {:>14} {:>14} {:>9}\n",
            "experiment", "label", "metric", "baseline", "current", "delta"
        ));
        for d in &self.diffs {
            out.push_str(&format!(
                "  {:<14} {:<18} {:<18} {:>14.4} {:>14.4} {:>+8.1}%{}\n",
                d.experiment,
                d.label,
                d.metric,
                d.baseline,
                d.current,
                d.delta_pct,
                if d.regression { "  << REGRESSION" } else { "" }
            ));
        }
        for a in &self.added {
            out.push_str(&format!("  added (no baseline): {a}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("  FAILURE: {f}\n"));
        }
        out.push_str(&format!(
            "  {} metrics compared, {} regressions, {} failures\n",
            self.diffs.len(),
            self.regressions(),
            self.failures.len()
        ));
        out
    }
}

/// Key of one row for matching: its `(experiment, label)` tags.
fn row_key(row: &FlatRow) -> String {
    let tag = |f: &str| row.get(f).and_then(JsonValue::as_str).unwrap_or("?").to_string();
    format!("{}/{}", tag("experiment"), tag("label"))
}

/// Diffs `current` rows against `baseline` rows matched by
/// `(experiment, label)`. Schema drift (diverging key sets or
/// `schema_version`) and vanished baseline rows are failures;
/// determinism metrics drifting on a matching `requests` count are
/// failures; throughput metrics falling more than `threshold`
/// (relative, e.g. `0.10` = 10%) are regressions.
pub fn compare_rows(current: &[FlatRow], baseline: &[FlatRow], threshold: f64) -> Verdict {
    let mut verdict = Verdict::default();
    let by_key: BTreeMap<String, &FlatRow> = baseline.iter().map(|r| (row_key(r), r)).collect();
    let current_keys: Vec<String> = current.iter().map(row_key).collect();

    for base in baseline {
        let key = row_key(base);
        if !current_keys.contains(&key) {
            verdict.failures.push(format!("baseline row {key} missing from the current run"));
        }
    }

    for row in current {
        let key = row_key(row);
        let Some(base) = by_key.get(&key) else {
            verdict.added.push(key);
            continue;
        };
        let row_keys: Vec<&String> = row.keys().collect();
        let base_keys: Vec<&String> = base.keys().collect();
        if row_keys != base_keys {
            verdict.failures.push(format!(
                "schema drift on {key}: baseline keys {base_keys:?} != current keys {row_keys:?}"
            ));
            continue;
        }
        if row.get("schema_version") != base.get("schema_version") {
            verdict.failures.push(format!("schema drift on {key}: schema_version changed"));
            continue;
        }
        let (experiment, label) = {
            let tag = |f: &str| row.get(f).and_then(JsonValue::as_str).unwrap_or("?").to_string();
            (tag("experiment"), tag("label"))
        };
        let num = |r: &FlatRow, f: &str| r.get(f).and_then(JsonValue::as_num);
        let same_config = num(row, "requests") == num(base, "requests");

        for &metric in THROUGHPUT_METRICS {
            let (Some(b), Some(c)) = (num(base, metric), num(row, metric)) else { continue };
            let delta_pct = if b != 0.0 { (c - b) / b * 100.0 } else { 0.0 };
            let regression = b > 0.0 && c < b * (1.0 - threshold);
            verdict.diffs.push(MetricDiff {
                experiment: experiment.clone(),
                label: label.clone(),
                metric: metric.to_string(),
                baseline: b,
                current: c,
                delta_pct,
                regression,
            });
        }
        if same_config {
            for &metric in DETERMINISM_METRICS {
                let (Some(b), Some(c)) = (num(base, metric), num(row, metric)) else { continue };
                let drift = (c - b).abs() > b.abs().max(1.0) * 1e-9;
                if drift {
                    verdict.failures.push(format!(
                        "determinism drift on {key}: {metric} moved from {b} to {c} on the same config"
                    ));
                }
            }
        }
    }
    verdict
}

/// Reads and parses one flat-row JSON file.
///
/// # Errors
///
/// Propagates I/O failures and reports parse failures with the path.
pub fn read_rows(path: &Path) -> io::Result<Vec<FlatRow>> {
    let text = fs::read_to_string(path)?;
    parse_flat_rows(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::render_array;

    fn row(experiment: &str, label: &str, requests: f64, rps: f64) -> FlatRow {
        let mut r = FlatRow::new();
        r.insert("schema_version".into(), JsonValue::Num(1.0));
        r.insert("experiment".into(), JsonValue::Str(experiment.into()));
        r.insert("label".into(), JsonValue::Str(label.into()));
        r.insert("requests".into(), JsonValue::Num(requests));
        r.insert("completed".into(), JsonValue::Num(requests));
        r.insert("sim_duration_s".into(), JsonValue::Num(2.5));
        r.insert("requests_per_s".into(), JsonValue::Num(rps));
        r
    }

    #[test]
    fn parse_round_trips_the_workspace_emitter() {
        let objs = vec![
            JsonObject::new().int("schema_version", 1).str("label", "a \"quoted\"\nline").num("x", 0.125),
            JsonObject::new().null("req").num("t_s", 8.0).int("big", u64::MAX),
        ];
        let rows = parse_flat_rows(&render_array(&objs)).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["label"], JsonValue::Str("a \"quoted\"\nline".into()));
        assert_eq!(rows[0]["x"], JsonValue::Num(0.125));
        assert_eq!(rows[1]["req"], JsonValue::Null);
        assert_eq!(rows[1]["t_s"], JsonValue::Num(8.0));
        // Render→parse→render is exact for workspace rows.
        let rendered: Vec<JsonObject> = rows.iter().map(row_to_json).collect();
        assert_eq!(parse_flat_rows(&render_array(&rendered)).unwrap(), rows);
    }

    #[test]
    fn parser_rejects_nested_containers_and_garbage() {
        assert!(parse_flat_rows("[{\"a\": {\"b\": 1}}]").unwrap_err().contains("nested"));
        assert!(parse_flat_rows("[{\"a\": [1]}]").unwrap_err().contains("nested"));
        assert!(parse_flat_rows("[{\"a\": 1}] trailing").unwrap_err().contains("trailing"));
        assert!(parse_flat_rows("[{\"a\": nope}]").is_err());
        assert!(parse_flat_rows("").is_err());
        assert_eq!(parse_flat_rows("[]").unwrap(), Vec::<FlatRow>::new());
    }

    #[test]
    fn config_hash_tracks_identity_not_measurements() {
        let a = vec![row("serve", "colocated", 100.0, 50.0)];
        let b = vec![row("serve", "colocated", 100.0, 99.0)];
        assert_eq!(config_hash(&a), config_hash(&b), "measurements must not shift the address");
        let c = vec![row("serve", "colocated", 200.0, 50.0)];
        assert_ne!(config_hash(&a), config_hash(&c), "request count is identity");
        let d = vec![row("serve", "disagg", 100.0, 50.0)];
        assert_ne!(config_hash(&a), config_hash(&d), "label is identity");
        // Row order does not matter.
        let two = vec![row("serve", "a", 1.0, 1.0), row("serve", "b", 1.0, 1.0)];
        let rev = vec![row("serve", "b", 1.0, 1.0), row("serve", "a", 1.0, 1.0)];
        assert_eq!(config_hash(&two), config_hash(&rev));
    }

    #[test]
    fn store_appends_and_returns_the_latest_run() {
        let dir = std::env::temp_dir().join(format!("ouro-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let first = vec![row("serve", "colocated", 100.0, 50.0)];
        let second = vec![row("serve", "colocated", 100.0, 60.0)];
        let hash = config_hash(&first);
        assert_eq!(store.latest(hash).unwrap(), None);
        assert_eq!(store.append(hash, &first).unwrap(), 0);
        assert_eq!(store.append(hash, &second).unwrap(), 1);
        assert_eq!(store.history(hash).unwrap().len(), 2, "append-only: both runs retained");
        let latest = store.latest(hash).unwrap().unwrap();
        assert_eq!(latest, second, "latest run, store_seq stripped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn throughput_drops_gate_and_warn_only_waives_them() {
        let baseline = vec![row("serve", "colocated", 100.0, 50.0)];
        let mut slower = row("serve", "colocated", 100.0, 40.0);
        slower.insert("requests_per_s".into(), JsonValue::Num(40.0));
        let verdict = compare_rows(&[slower], &baseline, 0.10);
        assert_eq!(verdict.regressions(), 1, "a 20% drop crosses the 10% threshold");
        assert!(verdict.failures.is_empty());
        assert!(!verdict.passed(false));
        assert!(verdict.passed(true), "warn-only waives throughput regressions");
        let ok = compare_rows(&[row("serve", "colocated", 100.0, 47.0)], &baseline, 0.10);
        assert_eq!(ok.regressions(), 0, "a 6% drop stays inside the threshold");
        assert!(ok.passed(false));
    }

    #[test]
    fn schema_and_determinism_drift_always_fail() {
        let baseline = vec![row("serve", "colocated", 100.0, 50.0)];
        // A new key is schema drift.
        let mut extra = row("serve", "colocated", 100.0, 50.0);
        extra.insert("new_metric".into(), JsonValue::Num(1.0));
        let verdict = compare_rows(&[extra], &baseline, 0.10);
        assert!(!verdict.passed(true), "schema drift fails even warn-only");
        assert!(verdict.failures[0].contains("schema drift"));
        // A simulated metric moving on the same config is determinism drift.
        let mut moved = row("serve", "colocated", 100.0, 50.0);
        moved.insert("sim_duration_s".into(), JsonValue::Num(2.6));
        let verdict = compare_rows(&[moved], &baseline, 0.10);
        assert!(!verdict.passed(true));
        assert!(verdict.failures[0].contains("determinism drift"));
        // A vanished row fails; an added row does not.
        let verdict = compare_rows(&[], &baseline, 0.10);
        assert!(!verdict.passed(true));
        let verdict = compare_rows(
            &[row("serve", "colocated", 100.0, 50.0), row("serve", "new", 10.0, 1.0)],
            &baseline,
            0.10,
        );
        assert!(verdict.passed(false));
        assert_eq!(verdict.added, vec!["serve/new".to_string()]);
    }

    #[test]
    fn diff_rows_match_their_pinned_key_set() {
        let baseline = vec![row("serve", "colocated", 100.0, 50.0)];
        let verdict = compare_rows(&baseline.clone(), &baseline, 0.10);
        assert!(!verdict.diffs.is_empty());
        for row in verdict.json_rows() {
            assert_eq!(row.keys(), COMPARE_V1_KEYS);
            assert!(row.render().starts_with(&format!("{{\"schema_version\": {COMPARE_SCHEMA_VERSION}")));
        }
        assert!(verdict.report().contains("metrics compared"));
    }
}
