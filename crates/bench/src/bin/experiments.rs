//! Regenerates every table and figure of the Ouroboros evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ouro-bench --release --bin experiments -- all
//! cargo run -p ouro-bench --release --bin experiments -- fig13 --requests 1000
//! ```
//!
//! Available experiments: `fig1`, `fig11`, `fig13`, `fig14`, `fig15`,
//! `fig16`, `fig17`, `fig18`, `fig19`, `fig20`, `fig21`, `table2`,
//! `serving`, `disagg`, `faults`, `prefix`, `all`.
//!
//! `serving` goes beyond the paper: an online load sweep (open-loop Poisson
//! and bursty arrivals) against a multi-wafer cluster, reporting TTFT/TPOT
//! percentiles and SLO goodput per routing policy. `disagg` compares that
//! colocated cluster against prefill/decode disaggregation at equal wafer
//! count, including the pool-ratio sweep. `faults` injects a seeded
//! MTBF-driven runtime fault process (replacement-chain remaps under live
//! traffic, §4.3.3) and reports availability and tail-latency inflation
//! versus the identical fault-free run, plus a fault-enabled
//! disagg-vs-colocated shootout. `prefix` sweeps the shared-system-prompt
//! ratio of a session workload and compares the radix-style prefix cache
//! (with prefix-affinity routing) against cold prompts on identical
//! traffic.
//!
//! The serving-style subcommands accept `--json <path>` to dump their
//! points as a JSON array for perf-trajectory capture in CI:
//!
//! ```text
//! cargo run -p ouro-bench --release --bin experiments -- serving --json BENCH_serving.json
//! cargo run -p ouro-bench --release --bin experiments -- disagg --json BENCH_disagg.json
//! cargo run -p ouro-bench --release --bin experiments -- faults --json BENCH_faults.json
//! ```

use ouro_baselines::SystemReport;
use ouro_bench::{
    build_ouroboros, compare_all, decoder_models, encoder_models, format_energy_breakdown, format_normalized,
    trace_for, DEFAULT_REQUESTS, SEED,
};
use ouro_hw::{CircuitPoint, CoreConfig, CrossbarConfig};
use ouro_mapping::{MappingProblem, Strategy};
use ouro_model::zoo;
use ouro_sim::{ablation_ladder, OuroborosConfig, OuroborosSystem};
use ouro_workload::LengthConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let requests = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_REQUESTS);
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let run = |name: &str| which == "all" || which == name;

    if run("fig1") {
        fig1(requests);
    }
    if run("fig11") {
        fig11(requests);
    }
    if run("fig13") || run("fig14") {
        fig13_14(requests, which == "fig14" || which == "all");
    }
    if run("fig15") {
        fig15(requests);
    }
    if run("fig16") {
        fig16(requests);
    }
    if run("fig17") {
        fig17(requests);
    }
    if run("fig18") {
        fig18();
    }
    if run("fig19") || run("fig20") {
        fig19_20(requests);
    }
    if run("fig21") {
        fig21(requests);
    }
    if run("table2") {
        table2();
    }
    // Serving-style experiments collect JSON rows; `all --json` merges the
    // rows of every collecting subcommand into one file (the `experiment`
    // field disambiguates) instead of overwriting it per subcommand.
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();
    if run("serving") {
        rows.extend(serving(requests));
    }
    if run("disagg") {
        rows.extend(disagg(requests));
    }
    if run("faults") {
        rows.extend(faults(requests));
    }
    if run("prefix") {
        rows.extend(prefix(requests));
    }
    if let Some(path) = json_path.as_deref() {
        if run("serving") || run("disagg") || run("faults") || run("prefix") {
            match ouro_bench::json::write_array(path, &rows) {
                Ok(()) => println!("\nwrote {} points to {path}", rows.len()),
                Err(e) => eprintln!("\nfailed to write {path}: {e}"),
            }
        } else {
            // Writing an empty [] here would let a misconfigured CI capture
            // "succeed" with no data.
            eprintln!(
                "\n--json is only produced by the serving/disagg/faults/prefix subcommands; nothing written"
            );
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Fig. 1 — hardware scaling tax: energy on 1/2/4/8× A100 vs model size,
/// compute vs total.
fn fig1(requests: usize) {
    header("Fig. 1: hardware scaling tax (A100 nodes, WikiText-2-like workload)");
    let trace = trace_for(&LengthConfig::wikitext2_like(), requests);
    println!("{:<12} {:>6} {:>14} {:>14} {:>8}", "model", "GPUs", "compute (J)", "total (J)", "ratio");
    for model in zoo::scaling_tax_models() {
        for gpus in [1usize, 2, 4, 8] {
            let sys = ouro_baselines::dgx_a100(gpus);
            let r = sys.evaluate(&model, &trace, "WikiText-2");
            let compute = r.energy_per_token.compute_j * r.output_tokens as f64;
            let total = r.total_energy_j();
            println!(
                "{:<12} {:>6} {:>14.1} {:>14.1} {:>8.2}",
                model.name,
                gpus,
                compute,
                total,
                total / compute.max(1e-12)
            );
        }
    }
}

/// Fig. 11 — throughput under different crossbar row-activation ratios.
fn fig11(requests: usize) {
    header("Fig. 11: throughput vs row-activation ratio (LLaMA-13B)");
    let model = zoo::llama_13b();
    let trace = trace_for(&LengthConfig::fixed(2048, 2048), requests.min(100));
    println!("{:>12} {:>12} {:>16} {:>14}", "ratio", "crossbars", "SRAM/core (MiB)", "tokens/s");
    for denom in [128u32, 64, 32, 16, 8, 4] {
        let ratio = 1.0 / denom as f64;
        let core = CoreConfig::with_crossbar(CrossbarConfig::with_row_activation(ratio));
        let mut cfg = OuroborosConfig::single_wafer();
        cfg.core = core.clone();
        cfg.seed = SEED;
        match OuroborosSystem::new(cfg, &model) {
            Ok(sys) => {
                let r = sys.simulate_labeled(&trace, "LP=2048 LD=2048");
                println!(
                    "{:>12} {:>12} {:>16.2} {:>14.1}",
                    format!("1/{denom}"),
                    core.crossbars,
                    core.crossbars as f64 * core.crossbar.capacity_bytes() as f64 / (1024.0 * 1024.0),
                    r.throughput_tokens_per_s
                );
            }
            Err(e) => println!(
                "{:>12} {:>12} {:>16} capacity-bound ({e})",
                format!("1/{denom}"),
                core.crossbars,
                "-"
            ),
        }
    }
}

/// Fig. 13/14 — normalised throughput and energy vs baselines for the four
/// decoder models and four workloads.
fn fig13_14(requests: usize, with_energy: bool) {
    header("Fig. 13: normalized throughput vs baselines");
    for model in decoder_models() {
        for (label, config) in LengthConfig::paper_suite() {
            println!("\n--- {} / {label} ---", model.name);
            let reports = compare_all(&model, &label, &config, requests);
            print!("{}", format_normalized(&reports));
            if with_energy {
                println!("(Fig. 14 energy breakdown, J/token)");
                print!("{}", format_energy_breakdown(&reports));
            }
        }
    }
}

/// Fig. 15 — cumulative ablation over Wafer/CIM/TGP/Mapping/KV cache.
fn fig15(requests: usize) {
    header("Fig. 15: ablation ladder (normalized to Baseline)");
    let workloads =
        [("WikiText-2", LengthConfig::wikitext2_like()), ("LP=128 LD=2048", LengthConfig::fixed(128, 2048))];
    for model in [zoo::llama_13b(), zoo::llama_32b()] {
        for (label, config) in &workloads {
            let trace = trace_for(config, requests.min(200));
            println!("\n--- {} / {label} ---", model.name);
            println!(
                "{:<12} {:>12} {:>12} {:>12} {:>12}",
                "step", "tokens/s", "speedup", "J/token", "norm. E"
            );
            let mut reference: Option<SystemReport> = None;
            for (step, cfg) in ablation_ladder(&OuroborosConfig::single_wafer()) {
                let mut cfg = cfg;
                cfg.seed = SEED;
                cfg.mapping_iterations = 1_500;
                match OuroborosSystem::new(cfg, &model) {
                    Ok(sys) => {
                        let r = sys.simulate_labeled(&trace, label);
                        let (speedup, norm_e) = match &reference {
                            Some(base) => (r.speedup_over(base), r.energy_ratio_over(base)),
                            None => (1.0, 1.0),
                        };
                        println!(
                            "{:<12} {:>12.1} {:>11.2}x {:>12.6} {:>12.3}",
                            step,
                            r.throughput_tokens_per_s,
                            speedup,
                            r.energy_per_token_j(),
                            norm_e
                        );
                        if reference.is_none() {
                            reference = Some(r);
                        }
                    }
                    Err(e) => println!("{step:<12} does not build: {e}"),
                }
            }
        }
    }
}

/// Fig. 16 — encoder-style models (BERT-Large, T5-11B).
fn fig16(requests: usize) {
    header("Fig. 16: encoder-based models (throughput and energy vs baselines)");
    for model in encoder_models() {
        let config = LengthConfig::fixed(512, 64);
        let reports = compare_all(&model, "encoder", &config, requests);
        println!("\n--- {} ---", model.name);
        print!("{}", format_normalized(&reports));
        print!("{}", format_energy_breakdown(&reports));
    }
}

/// Fig. 17 — KV-cache admission threshold sweep.
fn fig17(requests: usize) {
    header("Fig. 17: throughput and energy vs KV admission threshold");
    for model in [zoo::llama_13b(), zoo::t5_11b()] {
        println!("\n--- {} ---", model.name);
        println!("{:>10} {:>14} {:>14}", "threshold", "norm. tokens/s", "norm. J/token");
        let trace = trace_for(&LengthConfig::wikitext2_like(), requests.min(200));
        let mut base: Option<SystemReport> = None;
        for threshold in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let mut cfg = OuroborosConfig::single_wafer();
            cfg.kv_threshold = threshold;
            cfg.seed = SEED;
            cfg.mapping_iterations = 1_000;
            let sys = build_with(cfg, &model);
            let r = sys.simulate_labeled(&trace, "WikiText-2");
            let (t, e) = match &base {
                Some(b) => (
                    r.throughput_tokens_per_s / b.throughput_tokens_per_s,
                    r.energy_per_token_j() / b.energy_per_token_j(),
                ),
                None => (1.0, 1.0),
            };
            println!("{threshold:>10.1} {t:>14.3} {e:>14.3}");
            if base.is_none() {
                base = Some(r);
            }
        }
    }
}

fn build_with(mut cfg: OuroborosConfig, model: &ouro_model::ModelConfig) -> OuroborosSystem {
    loop {
        match OuroborosSystem::new(cfg.clone(), model) {
            Ok(sys) => return sys,
            Err(_) if cfg.wafers < 4 => cfg.wafers += 1,
            Err(e) => panic!("cannot build system for {}: {e}", model.name),
        }
    }
}

/// Fig. 18 — normalised transmission volume of the mapping strategies.
fn fig18() {
    header("Fig. 18: normalized transmission volume (Cerebras-SUMMA / WaferLLM / Ours)");
    println!("{:<12} {:>12} {:>12} {:>12}", "model", "Cerebras", "WaferLLM", "Ours");
    for model in [zoo::llama_13b(), zoo::llama_32b(), zoo::llama_65b()] {
        let geometry = ouro_hw::WaferGeometry::paper();
        let defects = ouro_hw::DefectMap::pristine(&geometry);
        let cores: Vec<ouro_hw::CoreId> = geometry.all_cores().collect();
        let problem = MappingProblem::for_block(&model, geometry, defects, cores, 4 * 1024 * 1024, 4.0);
        let summa = ouro_mapping::solve(&problem, Strategy::Summa, SEED);
        let wll = ouro_mapping::solve(&problem, Strategy::WaferLlm, SEED);
        let ours = ouro_mapping::solve(&problem, Strategy::Anneal { iterations: 4_000 }, SEED);
        let norm = summa.summary.transmission_volume();
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            model.name,
            1.0,
            wll.summary.transmission_volume() / norm,
            ours.summary.transmission_volume() / norm
        );
    }
}

/// Fig. 19/20 — multi-wafer scaling on LLaMA-65B.
fn fig19_20(requests: usize) {
    header("Fig. 19/20: multi-wafer scaling (LLaMA-65B on two wafers)");
    let model = zoo::llama_65b();
    for (label, config) in LengthConfig::paper_suite() {
        println!("\n--- {label} ---");
        let reports = compare_all(&model, &label, &config, requests.min(200));
        print!("{}", format_normalized(&reports));
        print!("{}", format_energy_breakdown(&reports));
    }
}

/// Fig. 21 — swapping the CIM core implementation inside the system.
fn fig21(requests: usize) {
    header("Fig. 21: CIM core implementations at the system level");
    let trace_cfg = LengthConfig::fixed(2048, 2048);
    for model in decoder_models() {
        println!("\n--- {} ---", model.name);
        let trace = trace_for(&trace_cfg, requests.min(200));
        let mut reports = Vec::new();
        // Ours and Ours+LUT run the full Ouroboros simulator.
        let ours = build_ouroboros(&model).simulate_labeled(&trace, "LP=2048 LD=2048");
        reports.push(ours.clone());
        for point in [CircuitPoint::vlsi22(), CircuitPoint::isscc22()] {
            let sys = ouro_baselines::hbm_cim_system(
                point.name,
                point.scaled_tops_per_watt,
                point.scaled_tops_per_mm2,
                point.wafer_capacity_gb * 1e9,
            );
            reports.push(sys.evaluate(&model, &trace, "LP=2048 LD=2048"));
        }
        let mut lut_cfg = OuroborosConfig::single_wafer();
        lut_cfg.lut_compute = true;
        lut_cfg.seed = SEED;
        reports.push(build_with(lut_cfg, &model).simulate_labeled(&trace, "LP=2048 LD=2048"));
        // Normalise to "Ours".
        println!("{:<16} {:>12} {:>14}", "core", "norm. tput", "norm. J/token");
        for r in &reports {
            println!(
                "{:<16} {:>12.3} {:>14.3}",
                r.system,
                r.throughput_tokens_per_s / ours.throughput_tokens_per_s,
                r.energy_per_token_j() / ours.energy_per_token_j()
            );
        }
    }
}

/// Flattens one serving report into a JSON row shared by the `serving` and
/// `disagg` dumps.
fn serving_row(
    experiment: &str,
    label: &str,
    offered_rps: f64,
    r: &ouro_serve::ServingReport,
) -> ouro_bench::json::JsonObject {
    ouro_bench::json::JsonObject::new()
        .str("experiment", experiment)
        .str("label", label)
        .num("offered_rps", offered_rps)
        .num("achieved_rps", r.achieved_rps)
        .num("goodput_rps", r.goodput_rps)
        .num("output_tokens_per_s", r.output_tokens_per_s)
        .num("ttft_p50_s", r.ttft.p50_s)
        .num("ttft_p99_s", r.ttft.p99_s)
        .num("tpot_p50_s", r.tpot.p50_s)
        .num("tpot_p99_s", r.tpot.p99_s)
        .num("slo_attainment", r.slo_attainment)
        .num("utilization", r.utilization)
        .int("completed", r.completed as u64)
        .int("evictions", r.evictions)
}

/// Online serving — load sweeps and routing policies on a 4-wafer cluster.
/// Returns the JSON rows of every printed point.
fn serving(requests: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_serve::{
        capacity_rps_estimate, format_sweep, ideal_latencies, Cluster, EngineConfig, LoadSweep, RoutePolicy,
        SloConfig,
    };
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Serving: online load sweep (4-wafer LLaMA-13B, WikiText-2-like)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let lengths = LengthConfig::wikitext2_like();
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);

    let mut sweep = LoadSweep::around_capacity(capacity, wafers, lengths.clone(), slo);
    sweep.seed = SEED;
    sweep.requests = requests.min(400);
    let points = sweep.run(&system);
    print!("{}", format_sweep(&points));
    let mut rows: Vec<ouro_bench::json::JsonObject> =
        points.iter().map(|p| serving_row("serving", "poisson-sweep", p.offered_rps, &p.report)).collect();

    println!("\n--- routing policies at {:.0} req/s ---", sweep.rates_rps[sweep.rates_rps.len() - 1]);
    let trace = TraceGenerator::new(SEED).generate(&lengths, sweep.requests);
    println!("{:<22} {:>11} {:>11} {:>11} {:>10}", "policy", "ttft-p99", "tpot-p99", "goodput/s", "slo-att");
    for policy in [RoutePolicy::RoundRobin, RoutePolicy::JoinShortestQueue, RoutePolicy::LeastKvLoad] {
        let timed = ArrivalConfig::Poisson { rate_rps: sweep.rates_rps[sweep.rates_rps.len() - 1] }
            .assign(&trace, SEED);
        let mut cluster =
            Cluster::replicate(&system, wafers, policy, EngineConfig::default()).expect("cluster builds");
        let r = cluster.run(&timed, &slo, f64::INFINITY);
        println!(
            "{:<22} {:>9.1}ms {:>9.3}ms {:>11.1} {:>9.1}%",
            policy.to_string(),
            r.ttft.p99_s * 1e3,
            r.tpot.p99_s * 1e3,
            r.goodput_rps,
            r.slo_attainment * 100.0
        );
        rows.push(serving_row(
            "serving",
            &format!("policy-{policy}"),
            sweep.rates_rps[sweep.rates_rps.len() - 1],
            &r,
        ));
    }

    println!("\n--- bursty arrivals (Gamma, cv=4) vs Poisson at the saturation point ---");
    let rate = sweep.rates_rps[3];
    println!(
        "{:<12} {:>11} {:>11} {:>11} {:>10}",
        "arrivals", "ttft-p50", "ttft-p99", "goodput/s", "slo-att"
    );
    for (label, arrival) in [
        ("poisson", ArrivalConfig::Poisson { rate_rps: rate }),
        ("bursty", ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }),
    ] {
        let timed = arrival.assign(&trace, SEED);
        let mut cluster =
            Cluster::replicate(&system, wafers, RoutePolicy::LeastKvLoad, EngineConfig::default())
                .expect("cluster builds");
        let r = cluster.run(&timed, &slo, f64::INFINITY);
        println!(
            "{:<12} {:>9.1}ms {:>9.1}ms {:>11.1} {:>9.1}%",
            label,
            r.ttft.p50_s * 1e3,
            r.ttft.p99_s * 1e3,
            r.goodput_rps,
            r.slo_attainment * 100.0
        );
        rows.push(serving_row("serving", &format!("arrivals-{label}"), rate, &r));
    }
    rows
}

/// Disaggregated serving — the pool-ratio sweep and the colocated-vs-
/// disaggregated shootout at equal wafer count. Returns the JSON rows of
/// every printed point.
fn disagg(requests: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_disagg::{
        best_ratio, format_shootout, head_to_head, DecodePlacement, RatioPlanner, ShootoutConfig,
    };
    use ouro_serve::{capacity_rps_estimate, ideal_latencies, EngineConfig, RoutePolicy, SloConfig};
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Disaggregation: prefill/decode pools vs colocated (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    // A prefill-heavy mix: long prompts, short generations — the regime
    // where prefill bursts hurt colocated decode tails the most.
    let lengths = LengthConfig::fixed(512, 64);
    let requests = requests.min(300);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = capacity * wafers as f64;
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();

    println!("\n--- pool-ratio sweep at {rate:.0} req/s (bursty cv=4, LP=512 LD=64) ---");
    let trace = TraceGenerator::new(SEED).generate(&lengths, requests);
    let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace, SEED);
    let planner = RatioPlanner::new(wafers);
    let plans = planner.sweep(&system, &timed, &slo).expect("pools build");
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>12}",
        "split", "ttft-p99", "tpot-p99", "goodput/s", "migr (MB)", "migr-mean"
    );
    for p in &plans {
        let s = &p.report.serving;
        println!(
            "{:<10} {:>9.1}ms {:>9.3}ms {:>11.1} {:>11.1} {:>10.2}ms",
            format!("{}p:{}d", p.prefill_wafers, p.decode_wafers),
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            p.report.exported_kv_bytes as f64 / 1e6,
            p.report.mean_migration_s * 1e3,
        );
        rows.push(
            serving_row("disagg", &format!("ratio-{}p{}d", p.prefill_wafers, p.decode_wafers), rate, s)
                .int("migrations", p.report.migrations as u64)
                .int("exported_kv_bytes", p.report.exported_kv_bytes)
                .num("mean_migration_s", p.report.mean_migration_s),
        );
    }
    let best = best_ratio(&plans);
    println!("goodput-optimal split: {}p:{}d", best.prefill_wafers, best.decode_wafers);

    println!(
        "\n--- colocated vs disaggregated ({}p:{}d) over offered load ---",
        best.prefill_wafers, best.decode_wafers
    );
    let shootout = ShootoutConfig {
        wafers,
        prefill_wafers: best.prefill_wafers,
        rates_rps: [0.5, 1.0, 1.5].iter().map(|f| f * rate).collect(),
        cv: 4.0,
        requests,
        lengths,
        seed: SEED,
        slo,
        colocated_policy: RoutePolicy::LeastKvLoad,
        placement: DecodePlacement::LeastKvLoad,
        engine: EngineConfig::default(),
        horizon_s: f64::INFINITY,
        fault: None,
    };
    let points = head_to_head(&system, &shootout).expect("clusters build");
    print!("{}", format_shootout(&points));
    for p in &points {
        rows.push(serving_row("disagg", "colocated", p.rate_rps, &p.colocated));
        rows.push(
            serving_row("disagg", "disaggregated", p.rate_rps, &p.disagg.serving)
                .int("migrations", p.disagg.migrations as u64)
                .int("exported_kv_bytes", p.disagg.exported_kv_bytes)
                .num("mean_migration_s", p.disagg.mean_migration_s)
                .num("link_energy_j", p.disagg.link_energy_j),
        );
    }
    rows
}

/// Runtime fault injection — availability and tail-latency inflation under
/// a seeded MTBF process, plus a fault-enabled disagg-vs-colocated
/// shootout. Returns the JSON rows of every printed point.
fn faults(requests: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_disagg::{format_shootout, head_to_head, DecodePlacement, ShootoutConfig};
    use ouro_serve::{
        capacity_rps_estimate, ideal_latencies, EngineConfig, FaultComparison, FaultConfig, RoutePolicy,
        SloConfig,
    };
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Faults: replacement-chain remaps under live traffic (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let lengths = LengthConfig::wikitext2_like();
    let requests = requests.min(300);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = 0.7 * capacity * wafers as f64;
    let trace = TraceGenerator::new(SEED).generate(&lengths, requests);
    let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, SEED);
    // MTBF chosen so several faults strike within the arrival span — far
    // above real hardware rates, as resilience studies accelerate ageing.
    let span = timed.last_arrival_s();
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();

    println!("\n--- MTBF sweep at {rate:.0} req/s (Poisson, WikiText-2-like) ---");
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>12} {:>13} {:>11} {:>11}",
        "mtbf", "faults", "chains", "recomp", "kv-evict", "availability", "ttft-p99", "tpot-p99"
    );
    // The fault-free baseline runs once and is shared by every swept MTBF
    // (FaultComparison::measure would re-simulate it per point).
    let mut clean_cluster =
        ouro_serve::Cluster::replicate(&system, wafers, RoutePolicy::LeastKvLoad, EngineConfig::default())
            .expect("cluster builds");
    let clean = clean_cluster.run(&timed, &slo, f64::INFINITY);
    let fault_window = ouro_serve::FaultInjector::run_window_s(f64::INFINITY, &timed);
    for (label, divisor) in [("none", 0.0), ("span/2", 2.0), ("span/6", 6.0)] {
        let fault_cfg = FaultConfig::new(if divisor > 0.0 { span / divisor } else { 1e18 }, SEED);
        let cmp = if divisor > 0.0 {
            let mut cluster = ouro_serve::Cluster::replicate(
                &system,
                wafers,
                RoutePolicy::LeastKvLoad,
                EngineConfig::default(),
            )
            .expect("cluster builds");
            let mut injector = ouro_serve::FaultInjector::new(&system, wafers, fault_cfg, fault_window);
            let (faulty, fault) = cluster.run_with_faults(&timed, &slo, f64::INFINITY, &mut injector);
            FaultComparison { clean: clean.clone(), faulty, fault }
        } else {
            // Zero fault rate: the faulty run is the clean run by
            // definition; only the (empty) fault report is fresh.
            let injector = ouro_serve::FaultInjector::new(&system, wafers, fault_cfg, fault_window);
            FaultComparison {
                clean: clean.clone(),
                faulty: clean.clone(),
                fault: injector.report(clean.duration_s),
            }
        };
        let f = &cmp.fault;
        println!(
            "{:<12} {:>7} {:>7} {:>9} {:>10.2}MB {:>12.4}% {:>9.1}ms {:>9.3}ms",
            label,
            f.faults_injected,
            f.chains_built,
            f.sequences_recomputed,
            f.kv_bytes_evicted as f64 / 1e6,
            f.availability * 100.0,
            cmp.faulty.ttft.p99_s * 1e3,
            cmp.faulty.tpot.p99_s * 1e3,
        );
        rows.push(
            serving_row("faults", &format!("mtbf-{label}"), rate, &cmp.faulty)
                .int("faults_injected", f.faults_injected)
                .int("chains_built", f.chains_built)
                .int("sequences_recomputed", f.sequences_recomputed)
                .int("kv_bytes_evicted", f.kv_bytes_evicted)
                .num("availability", f.availability)
                .num("mean_chain_len", f.mean_chain_len())
                .num("ttft_p99_inflation", cmp.ttft_p99_inflation())
                .num("tpot_p99_inflation", cmp.tpot_p99_inflation()),
        );
    }

    println!("\n--- colocated vs disaggregated with faults enabled (MTBF = span/4) ---");
    let shootout = ShootoutConfig {
        wafers,
        prefill_wafers: 1,
        rates_rps: vec![rate],
        cv: 4.0,
        requests,
        lengths,
        seed: SEED,
        slo,
        colocated_policy: RoutePolicy::LeastKvLoad,
        placement: DecodePlacement::LeastKvLoad,
        engine: EngineConfig::default(),
        horizon_s: f64::INFINITY,
        fault: Some(FaultConfig::new(span / 4.0, SEED)),
    };
    let points = head_to_head(&system, &shootout).expect("clusters build");
    print!("{}", format_shootout(&points));
    for p in &points {
        for (label, report, fr) in [
            ("colocated-faulty", &p.colocated, p.colocated_faults.as_ref()),
            ("disaggregated-faulty", &p.disagg.serving, p.disagg_faults.as_ref()),
        ] {
            let f = fr.expect("faults were enabled");
            println!(
                "{label:<22} availability {:.4}% ({} faults, {} recomputed sequences)",
                f.availability * 100.0,
                f.faults_injected,
                f.sequences_recomputed
            );
            rows.push(
                serving_row("faults", label, p.rate_rps, report)
                    .int("faults_injected", f.faults_injected)
                    .int("sequences_recomputed", f.sequences_recomputed)
                    .num("availability", f.availability),
            );
        }
    }
    rows
}

/// Shared-prefix KV caching — a share-ratio sweep of the session workload,
/// comparing the radix-style prefix cache (prefix-affinity routing) against
/// cold prompts on identical traffic. Returns the JSON rows of every
/// printed point.
fn prefix(requests: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_serve::{capacity_rps_estimate, ideal_latencies, Cluster, EngineConfig, RoutePolicy, SloConfig};
    use ouro_workload::{ArrivalConfig, SessionConfig};

    header("Prefix caching: shared system prompts and session traffic (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let requests = requests.min(300);
    // SLO anchored on the session workload's typical request shape.
    let session = SessionConfig::chat(4, 0.7);
    let typical = session.shared_prefix_tokens + session.user_turn_tokens + session.decode_tokens;
    let lengths = ouro_workload::LengthConfig::fixed(
        session.shared_prefix_tokens + session.user_turn_tokens,
        session.decode_tokens,
    );
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = 0.8 * capacity * wafers as f64;
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();

    println!("\n--- share-ratio sweep at {rate:.0} req/s (Poisson, {requests} requests/point) ---");
    println!(
        "{:<14} {:>7} {:>11} {:>11} {:>11} {:>12} {:>12}",
        "cache", "share", "ttft-mean", "ttft-p99", "goodput/s", "prefilled", "cached"
    );
    for share in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let trace = SessionConfig::chat(4, share).generate(requests, SEED);
        let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, SEED);
        for (label, caching, policy) in
            [("off", false, RoutePolicy::LeastKvLoad), ("on", true, RoutePolicy::PrefixAffinity)]
        {
            let engine = EngineConfig { prefix_caching: caching, ..EngineConfig::default() };
            let mut cluster = Cluster::replicate(&system, wafers, policy, engine).expect("cluster builds");
            let r = cluster.run(&timed, &slo, f64::INFINITY);
            println!(
                "{:<14} {:>7.2} {:>9.2}ms {:>9.2}ms {:>11.1} {:>12} {:>12}",
                label,
                share,
                r.ttft.mean_s * 1e3,
                r.ttft.p99_s * 1e3,
                r.goodput_rps,
                r.prefilled_tokens,
                r.cached_prefix_tokens,
            );
            rows.push(
                serving_row("prefix", &format!("share-{share:.2}-{label}"), rate, &r)
                    .num("share_ratio", share)
                    .num("ttft_mean_s", r.ttft.mean_s)
                    .int("prefilled_tokens", r.prefilled_tokens)
                    .int("cached_prefix_tokens", r.cached_prefix_tokens),
            );
        }
    }
    rows
}

/// Table 2 — circuit-level comparison.
fn table2() {
    header("Table 2: CIM core circuit-level comparison");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>14}",
        "design", "node", "array", "TOPS/W", "TOPS/mm2", "wafer capacity"
    );
    for p in ouro_hw::CIRCUIT_BASELINES() {
        println!(
            "{:<16} {:>6}nm {:>8}Kb {:>10.2} {:>12.2} {:>11.2} GB",
            p.name, p.technology_nm, p.array_size_kb, p.tops_per_watt, p.tops_per_mm2, p.wafer_capacity_gb
        );
    }
}
