//! Regenerates every table and figure of the Ouroboros evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p ouro-bench --release --bin experiments -- all
//! cargo run -p ouro-bench --release --bin experiments -- fig13 --requests 1000
//! ```
//!
//! Available experiments: `fig1`, `fig11`, `fig13`, `fig14`, `fig15`,
//! `fig16`, `fig17`, `fig18`, `fig19`, `fig20`, `fig21`, `table2`,
//! `serving`, `disagg`, `faults`, `prefix`, `scenario`, `bench-report`,
//! `analyze`, `compare`, `regress`, `audit`, `all`.
//! Unknown subcommands and flags are rejected (exit 2) rather than
//! silently ignored, so a typoed CI invocation cannot "succeed" with
//! nothing run. Progress and section headers go to stderr; result tables
//! go to stdout; machine-readable JSON goes to the `--out` file.
//!
//! The serving-style experiments all drive `ouro_serve::Scenario`, the one
//! composable run API: `serving` sweeps open-loop load against a colocated
//! multi-wafer deployment per routing policy; `disagg` compares colocated
//! vs prefill/decode disaggregation at equal wafer count, including the
//! pool-ratio sweep; `faults` injects a seeded MTBF-driven runtime fault
//! process (replacement-chain remaps under live traffic, §4.3.3) and
//! reports availability and tail-latency inflation versus the identical
//! fault-free run, plus a fault-enabled shootout; `prefix` sweeps the
//! shared-system-prompt ratio of a session workload with the radix-style
//! prefix cache on vs off; `scenario` is the smoke matrix — one builder
//! composed four ways (colocated/disaggregated × clean/faulty × prefix
//! caching) — exercising every axis of the API in one run.
//!
//! The serving-style subcommands accept `--out <path>` (alias: `--json`)
//! to dump their points as a JSON array for perf-trajectory capture in CI.
//! Every row is one flattened `ouro_serve::RunReport` (one schema for
//! every experiment, `schema_version` included) prefixed with
//! `experiment`/`label` tags:
//!
//! ```text
//! cargo run -p ouro-bench --release --bin experiments -- serving --out BENCH_serving.json
//! cargo run -p ouro-bench --release --bin experiments -- scenario --out BENCH_scenario.json
//! ```
//!
//! Two observability hooks ride on top (`crates/trace`):
//!
//! * `scenario --trace <path>` re-runs the richest matrix cell with
//!   request-lifecycle tracing armed and writes a Chrome trace-event JSON
//!   loadable in Perfetto / `chrome://tracing` (one track per wafer, one
//!   span per request phase). Tracing is observational: the cell's report
//!   row is bit-identical with or without it.
//! * `bench-report` runs pinned scenario points with loop self-profiling
//!   on and writes `BENCH_serve.json`: schema-versioned rows with
//!   requests-simulated/sec, wall-time per loop event kind, and
//!   events-simulated/sec — the simulator's own perf trajectory. It is
//!   deliberately excluded from `all` so wall-clock noise never lands in
//!   the deterministic report dumps.
//!
//! Three post-hoc consumers close the loop from collection to
//! interpretation:
//!
//! * `analyze` runs the golden observability scenario with tracing and
//!   telemetry armed and prints the latency-attribution report — each
//!   request's E2E decomposed into exclusive phases (queue, prefill, KV
//!   transit, migration stall, fault stall, decode compute, decode idle)
//!   — plus per-wafer utilization; `--out` writes the schema-versioned
//!   analyze JSON rows.
//! * `compare` diffs a current `bench-report` row set against a baseline
//!   (a file via `--baseline`, or the latest same-config run in an
//!   append-only `--store` directory) and reports throughput deltas,
//!   schema drift, and determinism drift.
//! * `regress` is `compare` with teeth: exit 1 on threshold regressions
//!   (default 10%, `--threshold`) or any drift failure. `--warn-only`
//!   waives throughput regressions (for shared CI machines) but never
//!   schema or determinism drift.
//!
//! `audit` runs the `ouro-audit` determinism & invariant lint over the
//! workspace sources (see `crates/audit`): exit 1 on any unsuppressed
//! violation or stale allow directive, `--out` dumps the finding rows as
//! schema-versioned JSON, `--fix-list` prints `path:line rule` per open
//! violation instead of the full table.

use ouro_baselines::SystemReport;
use ouro_bench::{
    build_ouroboros, compare_all, decoder_models, encoder_models, format_energy_breakdown, format_normalized,
    labeled_row, trace_for, DEFAULT_REQUESTS, SEED,
};
use ouro_hw::{CircuitPoint, CoreConfig, CrossbarConfig};
use ouro_mapping::{MappingProblem, Strategy};
use ouro_model::zoo;
use ouro_sim::{ablation_ladder, OuroborosConfig, OuroborosSystem};
use ouro_workload::LengthConfig;

const SUBCOMMANDS: &[&str] = &[
    "all",
    "fig1",
    "fig11",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "table2",
    "serving",
    "disagg",
    "faults",
    "prefix",
    "scenario",
    "bench-report",
    "analyze",
    "compare",
    "regress",
    "audit",
];

/// Rejects a malformed invocation: print the problem and the full usage,
/// exit non-zero so CI catches it.
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: experiments [<subcommand>] [--requests N] [--threads N] [--out PATH] [--trace PATH]");
    eprintln!("       experiments compare|regress [--requests N] [--baseline PATH] [--current PATH]");
    eprintln!("                                   [--store DIR] [--threshold F] [--warn-only] [--out PATH]");
    eprintln!("flags: --out writes the subcommand's JSON rows to PATH (--json is an alias);");
    eprintln!("       --threads sets sweep worker threads (serving/disagg/faults; default: all cores;");
    eprintln!("                 output is identical at any thread count);");
    eprintln!("       --trace writes a Chrome trace-event JSON (scenario subcommand only);");
    eprintln!("       --via-snapshot routes every scenario cell through a midpoint checkpoint →");
    eprintln!("                 JSON → parse → resume round trip (scenario subcommand only; the");
    eprintln!("                 rows must be byte-identical to a straight run);");
    eprintln!("       --baseline/--current/--store/--threshold/--warn-only gate compare/regress;");
    eprintln!("       --fix-list prints path:line rule per open violation (audit subcommand only)");
    eprintln!("subcommands: {}", SUBCOMMANDS.join(", "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut requests = DEFAULT_REQUESTS;
    let mut threads = ouro_serve::default_threads();
    let mut threads_set = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut via_snapshot = false;
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut threshold = 0.10;
    let mut threshold_set = false;
    let mut warn_only = false;
    let mut fix_list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                let value =
                    args.get(i + 1).unwrap_or_else(|| usage_error("--requests expects a positive integer"));
                requests = match value.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => usage_error(&format!("--requests expects a positive integer, got {value:?}")),
                };
                i += 2;
            }
            "--threads" => {
                let value =
                    args.get(i + 1).unwrap_or_else(|| usage_error("--threads expects a positive integer"));
                threads = match value.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => usage_error(&format!("--threads expects a positive integer, got {value:?}")),
                };
                threads_set = true;
                i += 2;
            }
            // `--json` predates `--out` and stays as an alias so existing
            // CI invocations keep working.
            flag @ ("--out" | "--json") => {
                let value =
                    args.get(i + 1).unwrap_or_else(|| usage_error(&format!("{flag} expects a file path")));
                out_path = Some(value.clone());
                i += 2;
            }
            "--trace" => {
                let value = args.get(i + 1).unwrap_or_else(|| usage_error("--trace expects a file path"));
                trace_path = Some(value.clone());
                i += 2;
            }
            "--via-snapshot" => {
                via_snapshot = true;
                i += 1;
            }
            "--baseline" => {
                let value = args.get(i + 1).unwrap_or_else(|| usage_error("--baseline expects a file path"));
                baseline_path = Some(value.clone());
                i += 2;
            }
            "--current" => {
                let value = args.get(i + 1).unwrap_or_else(|| usage_error("--current expects a file path"));
                current_path = Some(value.clone());
                i += 2;
            }
            "--store" => {
                let value = args.get(i + 1).unwrap_or_else(|| usage_error("--store expects a directory"));
                store_dir = Some(value.clone());
                i += 2;
            }
            "--threshold" => {
                let value = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage_error("--threshold expects a fraction like 0.10"));
                threshold = match value.parse::<f64>() {
                    Ok(t) if t.is_finite() && (0.0..1.0).contains(&t) => t,
                    _ => usage_error(&format!("--threshold expects a fraction in [0, 1), got {value:?}")),
                };
                threshold_set = true;
                i += 2;
            }
            "--warn-only" => {
                warn_only = true;
                i += 1;
            }
            "--fix-list" => {
                fix_list = true;
                i += 1;
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag {flag:?}")),
            name => {
                if which.is_some() {
                    usage_error(&format!("unexpected extra argument {name:?}"));
                }
                if !SUBCOMMANDS.contains(&name) {
                    usage_error(&format!("unknown subcommand {name:?}"));
                }
                which = Some(name.to_string());
                i += 1;
            }
        }
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    if trace_path.is_some() && which != "scenario" && which != "all" {
        usage_error("--trace is only honored by the scenario subcommand (or all)");
    }
    if via_snapshot && which != "scenario" {
        usage_error("--via-snapshot is only honored by the scenario subcommand");
    }
    if via_snapshot && trace_path.is_some() {
        // Lifecycle tracing is observational and restarts empty on resume,
        // so a --via-snapshot Chrome trace would silently cover only the
        // second half of the run.
        usage_error("--via-snapshot cannot be combined with --trace");
    }
    let sweeping = which == "serving" || which == "disagg" || which == "faults" || which == "all";
    if threads_set && !sweeping {
        usage_error("--threads only applies to the sweep subcommands (serving/disagg/faults, or all)");
    }
    let gating = which == "compare" || which == "regress";
    if !gating
        && (baseline_path.is_some()
            || current_path.is_some()
            || store_dir.is_some()
            || threshold_set
            || warn_only)
    {
        usage_error("--baseline/--current/--store/--threshold/--warn-only only apply to compare/regress");
    }
    if fix_list && which != "audit" {
        usage_error("--fix-list only applies to the audit subcommand");
    }

    // The audit is a source-level gate, not an experiment: it runs alone.
    if which == "audit" {
        audit(out_path.as_deref(), fix_list);
        return;
    }

    // bench-report measures wall clock, so it never joins the deterministic
    // `all` dump; it runs alone and writes its own schema-versioned file.
    if which == "bench-report" {
        let rows = bench_report_rows(requests);
        write_rows(out_path.as_deref().unwrap_or("BENCH_serve.json"), &rows, "bench rows");
        return;
    }
    // The analysis and gating subcommands are post-hoc consumers — they
    // never join `all` either.
    if which == "analyze" {
        analyze(requests, out_path.as_deref());
        return;
    }
    if gating {
        let gate = which == "regress";
        compare(
            requests,
            baseline_path.as_deref(),
            current_path.as_deref(),
            store_dir.as_deref(),
            threshold,
            warn_only,
            out_path.as_deref(),
            gate,
        );
        return;
    }

    let run = |name: &str| which == "all" || which == name;

    if run("fig1") {
        fig1(requests);
    }
    if run("fig11") {
        fig11(requests);
    }
    if run("fig13") || run("fig14") {
        fig13_14(requests, which == "fig14" || which == "all");
    }
    if run("fig15") {
        fig15(requests);
    }
    if run("fig16") {
        fig16(requests);
    }
    if run("fig17") {
        fig17(requests);
    }
    if run("fig18") {
        fig18();
    }
    if run("fig19") || run("fig20") {
        fig19_20(requests);
    }
    if run("fig21") {
        fig21(requests);
    }
    if run("table2") {
        table2();
    }
    // Serving-style experiments collect JSON rows; `all --json` merges the
    // rows of every collecting subcommand into one file (the `experiment`
    // field disambiguates) instead of overwriting it per subcommand.
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();
    if run("serving") {
        rows.extend(serving(requests, threads));
    }
    if run("disagg") {
        rows.extend(disagg(requests, threads));
    }
    if run("faults") {
        rows.extend(faults(requests, threads));
    }
    if run("prefix") {
        rows.extend(prefix(requests));
    }
    if run("scenario") {
        rows.extend(scenario_matrix(requests, trace_path.as_deref(), via_snapshot));
    }
    if let Some(path) = out_path.as_deref() {
        if rows.is_empty() {
            // Writing an empty [] here would let a misconfigured CI capture
            // "succeed" with no data.
            eprintln!(
                "\n--out is only produced by the serving/disagg/faults/prefix/scenario subcommands; \
                 nothing written"
            );
            std::process::exit(2);
        }
        match ouro_bench::json::write_array(path, &rows) {
            Ok(()) => eprintln!("\nwrote {} points to {path}", rows.len()),
            Err(e) => {
                eprintln!("\nfailed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `audit` — the workspace determinism & invariant lint (`crates/audit`).
/// Exits 1 on any unsuppressed violation or stale allow directive so CI
/// can gate on it; exits 2 when the workspace root cannot be scanned.
fn audit(out_path: Option<&str>, fix_list: bool) {
    let cwd = std::env::current_dir().unwrap_or_else(|e| usage_error(&format!("audit: no cwd: {e}")));
    let root = ouro_audit::find_root(&cwd)
        .unwrap_or_else(|| usage_error("audit: no workspace root (Cargo.toml + crates/) above the cwd"));
    let report = match ouro_audit::audit_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: audit: scanning {} failed: {e}", root.display());
            std::process::exit(2);
        }
    };
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(path, report.json()) {
            eprintln!("error: audit: writing {path} failed: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {} finding row(s) to {path}", report.findings.len());
    }
    if fix_list {
        print!("{}", report.fix_list());
    } else {
        print!("{}", report.table());
    }
    if report.violations() > 0 || !report.unused_allows.is_empty() {
        std::process::exit(1);
    }
}

/// Section headers are progress, not data — they go to stderr so stdout
/// stays a clean stream of result tables.
fn header(title: &str) {
    eprintln!("\n=== {title} ===");
}

/// Fig. 1 — hardware scaling tax: energy on 1/2/4/8× A100 vs model size,
/// compute vs total.
fn fig1(requests: usize) {
    header("Fig. 1: hardware scaling tax (A100 nodes, WikiText-2-like workload)");
    let trace = trace_for(&LengthConfig::wikitext2_like(), requests);
    println!("{:<12} {:>6} {:>14} {:>14} {:>8}", "model", "GPUs", "compute (J)", "total (J)", "ratio");
    for model in zoo::scaling_tax_models() {
        for gpus in [1usize, 2, 4, 8] {
            let sys = ouro_baselines::dgx_a100(gpus);
            let r = sys.evaluate(&model, &trace, "WikiText-2");
            let compute = r.energy_per_token.compute_j * r.output_tokens as f64;
            let total = r.total_energy_j();
            println!(
                "{:<12} {:>6} {:>14.1} {:>14.1} {:>8.2}",
                model.name,
                gpus,
                compute,
                total,
                total / compute.max(1e-12)
            );
        }
    }
}

/// Fig. 11 — throughput under different crossbar row-activation ratios.
fn fig11(requests: usize) {
    header("Fig. 11: throughput vs row-activation ratio (LLaMA-13B)");
    let model = zoo::llama_13b();
    let trace = trace_for(&LengthConfig::fixed(2048, 2048), requests.min(100));
    println!("{:>12} {:>12} {:>16} {:>14}", "ratio", "crossbars", "SRAM/core (MiB)", "tokens/s");
    for denom in [128u32, 64, 32, 16, 8, 4] {
        let ratio = 1.0 / denom as f64;
        let core = CoreConfig::with_crossbar(CrossbarConfig::with_row_activation(ratio));
        let mut cfg = OuroborosConfig::single_wafer();
        cfg.core = core.clone();
        cfg.seed = SEED;
        match OuroborosSystem::new(cfg, &model) {
            Ok(sys) => {
                let r = sys.simulate_labeled(&trace, "LP=2048 LD=2048");
                println!(
                    "{:>12} {:>12} {:>16.2} {:>14.1}",
                    format!("1/{denom}"),
                    core.crossbars,
                    core.crossbars as f64 * core.crossbar.capacity_bytes() as f64 / (1024.0 * 1024.0),
                    r.throughput_tokens_per_s
                );
            }
            Err(e) => println!(
                "{:>12} {:>12} {:>16} capacity-bound ({e})",
                format!("1/{denom}"),
                core.crossbars,
                "-"
            ),
        }
    }
}

/// Fig. 13/14 — normalised throughput and energy vs baselines for the four
/// decoder models and four workloads.
fn fig13_14(requests: usize, with_energy: bool) {
    header("Fig. 13: normalized throughput vs baselines");
    for model in decoder_models() {
        for (label, config) in LengthConfig::paper_suite() {
            println!("\n--- {} / {label} ---", model.name);
            let reports = compare_all(&model, &label, &config, requests);
            print!("{}", format_normalized(&reports));
            if with_energy {
                println!("(Fig. 14 energy breakdown, J/token)");
                print!("{}", format_energy_breakdown(&reports));
            }
        }
    }
}

/// Fig. 15 — cumulative ablation over Wafer/CIM/TGP/Mapping/KV cache.
fn fig15(requests: usize) {
    header("Fig. 15: ablation ladder (normalized to Baseline)");
    let workloads =
        [("WikiText-2", LengthConfig::wikitext2_like()), ("LP=128 LD=2048", LengthConfig::fixed(128, 2048))];
    for model in [zoo::llama_13b(), zoo::llama_32b()] {
        for (label, config) in &workloads {
            let trace = trace_for(config, requests.min(200));
            println!("\n--- {} / {label} ---", model.name);
            println!(
                "{:<12} {:>12} {:>12} {:>12} {:>12}",
                "step", "tokens/s", "speedup", "J/token", "norm. E"
            );
            let mut reference: Option<SystemReport> = None;
            for (step, cfg) in ablation_ladder(&OuroborosConfig::single_wafer()) {
                let mut cfg = cfg;
                cfg.seed = SEED;
                cfg.mapping_iterations = 1_500;
                match OuroborosSystem::new(cfg, &model) {
                    Ok(sys) => {
                        let r = sys.simulate_labeled(&trace, label);
                        let (speedup, norm_e) = match &reference {
                            Some(base) => (r.speedup_over(base), r.energy_ratio_over(base)),
                            None => (1.0, 1.0),
                        };
                        println!(
                            "{:<12} {:>12.1} {:>11.2}x {:>12.6} {:>12.3}",
                            step,
                            r.throughput_tokens_per_s,
                            speedup,
                            r.energy_per_token_j(),
                            norm_e
                        );
                        if reference.is_none() {
                            reference = Some(r);
                        }
                    }
                    Err(e) => println!("{step:<12} does not build: {e}"),
                }
            }
        }
    }
}

/// Fig. 16 — encoder-style models (BERT-Large, T5-11B).
fn fig16(requests: usize) {
    header("Fig. 16: encoder-based models (throughput and energy vs baselines)");
    for model in encoder_models() {
        let config = LengthConfig::fixed(512, 64);
        let reports = compare_all(&model, "encoder", &config, requests);
        println!("\n--- {} ---", model.name);
        print!("{}", format_normalized(&reports));
        print!("{}", format_energy_breakdown(&reports));
    }
}

/// Fig. 17 — KV-cache admission threshold sweep.
fn fig17(requests: usize) {
    header("Fig. 17: throughput and energy vs KV admission threshold");
    for model in [zoo::llama_13b(), zoo::t5_11b()] {
        println!("\n--- {} ---", model.name);
        println!("{:>10} {:>14} {:>14}", "threshold", "norm. tokens/s", "norm. J/token");
        let trace = trace_for(&LengthConfig::wikitext2_like(), requests.min(200));
        let mut base: Option<SystemReport> = None;
        for threshold in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let mut cfg = OuroborosConfig::single_wafer();
            cfg.kv_threshold = threshold;
            cfg.seed = SEED;
            cfg.mapping_iterations = 1_000;
            let sys = build_with(cfg, &model);
            let r = sys.simulate_labeled(&trace, "WikiText-2");
            let (t, e) = match &base {
                Some(b) => (
                    r.throughput_tokens_per_s / b.throughput_tokens_per_s,
                    r.energy_per_token_j() / b.energy_per_token_j(),
                ),
                None => (1.0, 1.0),
            };
            println!("{threshold:>10.1} {t:>14.3} {e:>14.3}");
            if base.is_none() {
                base = Some(r);
            }
        }
    }
}

fn build_with(mut cfg: OuroborosConfig, model: &ouro_model::ModelConfig) -> OuroborosSystem {
    loop {
        match OuroborosSystem::new(cfg.clone(), model) {
            Ok(sys) => return sys,
            Err(_) if cfg.wafers < 4 => cfg.wafers += 1,
            Err(e) => panic!("cannot build system for {}: {e}", model.name),
        }
    }
}

/// Fig. 18 — normalised transmission volume of the mapping strategies.
fn fig18() {
    header("Fig. 18: normalized transmission volume (Cerebras-SUMMA / WaferLLM / Ours)");
    println!("{:<12} {:>12} {:>12} {:>12}", "model", "Cerebras", "WaferLLM", "Ours");
    for model in [zoo::llama_13b(), zoo::llama_32b(), zoo::llama_65b()] {
        let geometry = ouro_hw::WaferGeometry::paper();
        let defects = ouro_hw::DefectMap::pristine(&geometry);
        let cores: Vec<ouro_hw::CoreId> = geometry.all_cores().collect();
        let problem = MappingProblem::for_block(&model, geometry, defects, cores, 4 * 1024 * 1024, 4.0);
        let summa = ouro_mapping::solve(&problem, Strategy::Summa, SEED);
        let wll = ouro_mapping::solve(&problem, Strategy::WaferLlm, SEED);
        let ours = ouro_mapping::solve(&problem, Strategy::Anneal { iterations: 4_000 }, SEED);
        let norm = summa.summary.transmission_volume();
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3}",
            model.name,
            1.0,
            wll.summary.transmission_volume() / norm,
            ours.summary.transmission_volume() / norm
        );
    }
}

/// Fig. 19/20 — multi-wafer scaling on LLaMA-65B.
fn fig19_20(requests: usize) {
    header("Fig. 19/20: multi-wafer scaling (LLaMA-65B on two wafers)");
    let model = zoo::llama_65b();
    for (label, config) in LengthConfig::paper_suite() {
        println!("\n--- {label} ---");
        let reports = compare_all(&model, &label, &config, requests.min(200));
        print!("{}", format_normalized(&reports));
        print!("{}", format_energy_breakdown(&reports));
    }
}

/// Fig. 21 — swapping the CIM core implementation inside the system.
fn fig21(requests: usize) {
    header("Fig. 21: CIM core implementations at the system level");
    let trace_cfg = LengthConfig::fixed(2048, 2048);
    for model in decoder_models() {
        println!("\n--- {} ---", model.name);
        let trace = trace_for(&trace_cfg, requests.min(200));
        let mut reports = Vec::new();
        // Ours and Ours+LUT run the full Ouroboros simulator.
        let ours = build_ouroboros(&model).simulate_labeled(&trace, "LP=2048 LD=2048");
        reports.push(ours.clone());
        for point in [CircuitPoint::vlsi22(), CircuitPoint::isscc22()] {
            let sys = ouro_baselines::hbm_cim_system(
                point.name,
                point.scaled_tops_per_watt,
                point.scaled_tops_per_mm2,
                point.wafer_capacity_gb * 1e9,
            );
            reports.push(sys.evaluate(&model, &trace, "LP=2048 LD=2048"));
        }
        let mut lut_cfg = OuroborosConfig::single_wafer();
        lut_cfg.lut_compute = true;
        lut_cfg.seed = SEED;
        reports.push(build_with(lut_cfg, &model).simulate_labeled(&trace, "LP=2048 LD=2048"));
        // Normalise to "Ours".
        println!("{:<16} {:>12} {:>14}", "core", "norm. tput", "norm. J/token");
        for r in &reports {
            println!(
                "{:<16} {:>12.3} {:>14.3}",
                r.system,
                r.throughput_tokens_per_s / ours.throughput_tokens_per_s,
                r.energy_per_token_j() / ours.energy_per_token_j()
            );
        }
    }
}

/// Online serving — load sweeps and routing policies on a 4-wafer cluster.
/// Returns the JSON rows of every printed point.
fn serving(requests: usize, threads: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_serve::{
        capacity_rps_estimate, format_sweep, ideal_latencies, routers, LoadSweep, Scenario, SloConfig,
    };
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Serving: online load sweep (4-wafer LLaMA-13B, WikiText-2-like)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let lengths = LengthConfig::wikitext2_like();
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);

    let mut sweep = LoadSweep::around_capacity(capacity, wafers, lengths.clone(), slo);
    sweep.seed = SEED;
    sweep.requests = requests.min(400);
    sweep.threads = threads;
    let points = sweep.run(&system);
    print!("{}", format_sweep(&points));
    let mut rows: Vec<ouro_bench::json::JsonObject> =
        points.iter().map(|p| labeled_row("serving", "poisson-sweep", &p.report)).collect();

    let top_rate = sweep.rates_rps[sweep.rates_rps.len() - 1];
    eprintln!("\n--- routing policies at {top_rate:.0} req/s ---");
    let trace = TraceGenerator::new(SEED).generate(&lengths, sweep.requests);
    println!("{:<22} {:>11} {:>11} {:>11} {:>10}", "policy", "ttft-p99", "tpot-p99", "goodput/s", "slo-att");
    for router in [routers::round_robin(), routers::join_shortest_queue(), routers::least_kv_load()] {
        let name = router.name();
        let timed = ArrivalConfig::Poisson { rate_rps: top_rate }.assign(&trace, SEED);
        let r = Scenario::colocated(wafers)
            .router(router)
            .slo(slo)
            .workload(timed)
            .run(&system)
            .expect("cluster builds");
        let s = &r.serving;
        println!(
            "{:<22} {:>9.1}ms {:>9.3}ms {:>11.1} {:>9.1}%",
            name,
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            s.slo_attainment * 100.0
        );
        rows.push(labeled_row("serving", &format!("policy-{name}"), &r));
    }

    eprintln!("\n--- bursty arrivals (Gamma, cv=4) vs Poisson at the saturation point ---");
    let rate = sweep.rates_rps[3];
    println!(
        "{:<12} {:>11} {:>11} {:>11} {:>10}",
        "arrivals", "ttft-p50", "ttft-p99", "goodput/s", "slo-att"
    );
    for (label, arrival) in [
        ("poisson", ArrivalConfig::Poisson { rate_rps: rate }),
        ("bursty", ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }),
    ] {
        let timed = arrival.assign(&trace, SEED);
        let r = Scenario::colocated(wafers)
            .router(routers::least_kv_load())
            .slo(slo)
            .workload(timed)
            .run(&system)
            .expect("cluster builds");
        let s = &r.serving;
        println!(
            "{:<12} {:>9.1}ms {:>9.1}ms {:>11.1} {:>9.1}%",
            label,
            s.ttft.p50_s * 1e3,
            s.ttft.p99_s * 1e3,
            s.goodput_rps,
            s.slo_attainment * 100.0
        );
        rows.push(labeled_row("serving", &format!("arrivals-{label}"), &r));
    }
    rows
}

/// Disaggregated serving — the pool-ratio sweep and the colocated-vs-
/// disaggregated shootout at equal wafer count. Returns the JSON rows of
/// every printed point.
fn disagg(requests: usize, threads: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_disagg::{best_ratio, format_shootout, head_to_head, RatioPlanner, ShootoutConfig};
    use ouro_serve::{capacity_rps_estimate, ideal_latencies, SloConfig};
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Disaggregation: prefill/decode pools vs colocated (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    // A prefill-heavy mix: long prompts, short generations — the regime
    // where prefill bursts hurt colocated decode tails the most.
    let lengths = LengthConfig::fixed(512, 64);
    let requests = requests.min(300);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = capacity * wafers as f64;
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();

    eprintln!("\n--- pool-ratio sweep at {rate:.0} req/s (bursty cv=4, LP=512 LD=64) ---");
    let trace = TraceGenerator::new(SEED).generate(&lengths, requests);
    let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace, SEED);
    let mut planner = RatioPlanner::new(wafers);
    planner.threads = threads;
    let plans = planner.sweep(&system, &timed, &slo).expect("pools build");
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11} {:>12}",
        "split", "ttft-p99", "tpot-p99", "goodput/s", "migr (MB)", "migr-mean"
    );
    for p in &plans {
        let s = &p.report.serving;
        let m = p.report.migration.as_ref().expect("disaggregated runs report migration stats");
        println!(
            "{:<10} {:>9.1}ms {:>9.3}ms {:>11.1} {:>11.1} {:>10.2}ms",
            format!("{}p:{}d", p.prefill_wafers, p.decode_wafers),
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            m.exported_kv_bytes as f64 / 1e6,
            m.mean_migration_s * 1e3,
        );
        rows.push(labeled_row(
            "disagg",
            &format!("ratio-{}p{}d", p.prefill_wafers, p.decode_wafers),
            &p.report,
        ));
    }
    let best = best_ratio(&plans);
    println!("goodput-optimal split: {}p:{}d", best.prefill_wafers, best.decode_wafers);

    eprintln!(
        "\n--- colocated vs disaggregated ({}p:{}d) over offered load ---",
        best.prefill_wafers, best.decode_wafers
    );
    let mut shootout =
        ShootoutConfig::new(wafers, best.prefill_wafers, [0.5, 1.0, 1.5].iter().map(|f| f * rate).collect());
    shootout.requests = requests;
    shootout.lengths = lengths;
    shootout.seed = SEED;
    shootout.slo = slo;
    shootout.threads = threads;
    let points = head_to_head(&system, &shootout).expect("clusters build");
    print!("{}", format_shootout(&points));
    for p in &points {
        rows.push(labeled_row("disagg", "colocated", &p.colocated));
        rows.push(labeled_row("disagg", "disaggregated", &p.disagg));
    }
    rows
}

/// Runtime fault injection — availability and tail-latency inflation under
/// a seeded MTBF process, plus a fault-enabled disagg-vs-colocated
/// shootout. Returns the JSON rows of every printed point.
fn faults(requests: usize, threads: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_disagg::{format_shootout, head_to_head, ShootoutConfig};
    use ouro_serve::{capacity_rps_estimate, ideal_latencies, routers, FaultConfig, Scenario, SloConfig};
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Faults: replacement-chain remaps under live traffic (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let lengths = LengthConfig::wikitext2_like();
    let requests = requests.min(300);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = 0.7 * capacity * wafers as f64;
    let trace = TraceGenerator::new(SEED).generate(&lengths, requests);
    let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, SEED);
    // MTBF chosen so several faults strike within the arrival span — far
    // above real hardware rates, as resilience studies accelerate ageing.
    let span = timed.last_arrival_s();
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();

    eprintln!("\n--- MTBF sweep at {rate:.0} req/s (Poisson, WikiText-2-like) ---");
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>12} {:>13} {:>11} {:>11}",
        "mtbf", "faults", "chains", "recomp", "kv-evict", "availability", "ttft-p99", "tpot-p99"
    );
    // One scenario, re-armed per swept MTBF; the fault-free baseline runs
    // once and anchors the inflation columns. The swept points are
    // independent seeded runs, so they fan out across the worker threads
    // and reassemble in input order.
    let base = Scenario::colocated(wafers).router(routers::least_kv_load()).slo(slo).workload(timed.clone());
    let clean = base.clone().run(&system).expect("cluster builds");
    let mtbf_points = [("none", 0.0), ("span/2", 2.0), ("span/6", 6.0)];
    let swept = ouro_serve::parallel_map_indexed(mtbf_points.to_vec(), threads, |_, (label, divisor)| {
        let faulty = if divisor > 0.0 {
            base.clone().faults(FaultConfig::new(span / divisor, SEED)).run(&system).expect("cluster builds")
        } else {
            // Zero fault rate: the faulty run is the clean run by
            // definition; only the (empty) fault report is fresh.
            let mut r = clean.clone();
            let injector = ouro_serve::FaultInjector::new(
                &system,
                wafers,
                FaultConfig::new(1e18, SEED),
                ouro_serve::FaultInjector::run_window_s(f64::INFINITY, &timed),
            );
            r.faults = Some(injector.report(clean.serving.duration_s));
            r
        };
        (label, faulty)
    });
    for (label, faulty) in swept {
        let f = faulty.faults.as_ref().expect("fault section populated");
        println!(
            "{:<12} {:>7} {:>7} {:>9} {:>10.2}MB {:>12.4}% {:>9.1}ms {:>9.3}ms",
            label,
            f.faults_injected,
            f.chains_built,
            f.sequences_recomputed,
            f.kv_bytes_evicted as f64 / 1e6,
            f.availability * 100.0,
            faulty.serving.ttft.p99_s * 1e3,
            faulty.serving.tpot.p99_s * 1e3,
        );
        let inflation = |faulty_s: f64, clean_s: f64| if clean_s > 0.0 { faulty_s / clean_s } else { 1.0 };
        rows.push(
            labeled_row("faults", &format!("mtbf-{label}"), &faulty)
                .num("ttft_p99_inflation", inflation(faulty.serving.ttft.p99_s, clean.serving.ttft.p99_s))
                .num("tpot_p99_inflation", inflation(faulty.serving.tpot.p99_s, clean.serving.tpot.p99_s)),
        );
    }

    eprintln!("\n--- colocated vs disaggregated with faults enabled (MTBF = span/4) ---");
    let mut shootout = ShootoutConfig::new(wafers, 1, vec![rate]);
    shootout.requests = requests;
    shootout.lengths = lengths;
    shootout.seed = SEED;
    shootout.slo = slo;
    shootout.threads = threads;
    shootout.fault = Some(FaultConfig::new(span / 4.0, SEED));
    let points = head_to_head(&system, &shootout).expect("clusters build");
    print!("{}", format_shootout(&points));
    for p in &points {
        for (label, report) in [("colocated-faulty", &p.colocated), ("disaggregated-faulty", &p.disagg)] {
            let f = report.faults.as_ref().expect("faults were enabled");
            println!(
                "{label:<22} availability {:.4}% ({} faults, {} recomputed sequences)",
                f.availability * 100.0,
                f.faults_injected,
                f.sequences_recomputed
            );
            rows.push(labeled_row("faults", label, report));
        }
    }
    rows
}

/// Shared-prefix KV caching — a share-ratio sweep of the session workload,
/// comparing the radix-style prefix cache (prefix-affinity routing) against
/// cold prompts on identical traffic. Returns the JSON rows of every
/// printed point.
fn prefix(requests: usize) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_serve::{capacity_rps_estimate, ideal_latencies, routers, Router, Scenario, SloConfig};
    use ouro_workload::{ArrivalConfig, SessionConfig};

    header("Prefix caching: shared system prompts and session traffic (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let requests = requests.min(300);
    // SLO anchored on the session workload's typical request shape.
    let session = SessionConfig::chat(4, 0.7);
    let typical = session.shared_prefix_tokens + session.user_turn_tokens + session.decode_tokens;
    let lengths = ouro_workload::LengthConfig::fixed(
        session.shared_prefix_tokens + session.user_turn_tokens,
        session.decode_tokens,
    );
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = 0.8 * capacity * wafers as f64;
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();

    eprintln!("\n--- share-ratio sweep at {rate:.0} req/s (Poisson, {requests} requests/point) ---");
    println!(
        "{:<14} {:>7} {:>11} {:>11} {:>11} {:>12} {:>12}",
        "cache", "share", "ttft-mean", "ttft-p99", "goodput/s", "prefilled", "cached"
    );
    for share in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let trace = SessionConfig::chat(4, share).generate(requests, SEED);
        let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, SEED);
        let configs: [(&str, bool, Box<dyn Router>); 2] =
            [("off", false, routers::least_kv_load()), ("on", true, routers::prefix_affinity())];
        for (label, caching, router) in configs {
            let r = Scenario::colocated(wafers)
                .router(router)
                .prefix_caching(caching)
                .slo(slo)
                .workload(timed.clone())
                .run(&system)
                .expect("cluster builds");
            let s = &r.serving;
            println!(
                "{:<14} {:>7.2} {:>9.2}ms {:>9.2}ms {:>11.1} {:>12} {:>12}",
                label,
                share,
                s.ttft.mean_s * 1e3,
                s.ttft.p99_s * 1e3,
                s.goodput_rps,
                s.prefilled_tokens,
                s.cached_prefix_tokens,
            );
            rows.push(
                labeled_row("prefix", &format!("share-{share:.2}-{label}"), &r).num("share_ratio", share),
            );
        }
    }
    rows
}

/// The scenario smoke matrix: one `ouro_serve::Scenario` builder composed
/// four ways — colocated/disaggregated × clean/fault-injected × prefix
/// caching — so a single fast run exercises every axis and emits one
/// `RunReport` row per cell. Returns the JSON rows of every printed point;
/// with `trace_path` set, also exports a Chrome trace of the richest cell.
/// With `via_snapshot`, every cell runs through a midpoint checkpoint →
/// JSON → parse → resume round trip instead of straight to the end — the
/// CI smoke diffs the two row files to prove the snapshot is complete.
fn scenario_matrix(
    requests: usize,
    trace_path: Option<&str>,
    via_snapshot: bool,
) -> Vec<ouro_bench::json::JsonObject> {
    use ouro_serve::{
        capacity_rps_estimate, ideal_latencies, placements, routers, FaultConfig, Scenario, SloConfig,
        Snapshot,
    };
    use ouro_workload::{ArrivalConfig, SessionConfig, TraceGenerator};

    header("Scenario matrix: deployment x faults x prefix caching (4-wafer LLaMA-13B)");
    let model = zoo::llama_13b();
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let wafers = 4;
    let requests = requests.min(200);
    let lengths = LengthConfig::fixed(512, 64);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let typical = lengths.nominal_total_tokens();
    let (ttft, tpot) = ideal_latencies(system.stage_times(), typical / 2, typical);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = 0.8 * capacity * wafers as f64;
    let trace = TraceGenerator::new(SEED).generate(&lengths, requests);
    let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 4.0 }.assign(&trace, SEED);
    let session = SessionConfig::chat(4, 0.7).generate(requests, SEED);
    let session_timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&session, SEED);
    let mtbf = timed.last_arrival_s() / 2.0;
    // Midpoint checkpoints for --via-snapshot: any event boundary is a
    // valid checkpoint, the arrival midpoint just maximizes in-flight state.
    let mid_s = timed.last_arrival_s() * 0.5;

    let cells: Vec<(&str, Scenario)> = vec![
        ("colocated", Scenario::colocated(wafers).slo(slo).workload(timed.clone())),
        (
            "colocated-faults",
            Scenario::colocated(wafers).slo(slo).faults(FaultConfig::new(mtbf, SEED)).workload(timed.clone()),
        ),
        ("disagg", Scenario::disaggregated(1, wafers - 1).slo(slo).workload(timed.clone())),
        (
            "disagg-faults",
            Scenario::disaggregated(1, wafers - 1)
                .slo(slo)
                .faults(FaultConfig::new(mtbf, SEED))
                .workload(timed),
        ),
        (
            "colocated-prefix",
            Scenario::colocated(wafers)
                .router(routers::prefix_affinity())
                .prefix_caching(true)
                .slo(slo)
                .workload(session_timed.clone()),
        ),
        (
            "disagg-prefix",
            Scenario::disaggregated(1, wafers - 1)
                .placement(placements::prefix_affinity())
                .prefix_caching(true)
                .slo(slo)
                .workload(session_timed),
        ),
    ];

    eprintln!("\n--- {requests} requests/cell at {rate:.0} req/s ---");
    println!(
        "{:<18} {:>11} {:>11} {:>11} {:>9} {:>13} {:>10}",
        "cell", "ttft-p99", "tpot-p99", "goodput/s", "migr", "availability", "cached"
    );
    // `--trace` arms lifecycle tracing on the disagg-faults cell — the one
    // exercising the most event kinds (migrations, faults, evictions) —
    // and exports it as Chrome trace-event JSON. Tracing is observational,
    // so the cell's report row is unchanged.
    const TRACED_CELL: &str = "disagg-faults";
    let cadence_s = (mtbf / 32.0).max(1e-6);
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();
    for (label, scenario) in cells {
        let scenario = if trace_path.is_some() && label == TRACED_CELL {
            scenario.trace(true).telemetry_every(cadence_s)
        } else {
            scenario
        };
        let outcome = if via_snapshot {
            let mut run = scenario.start(&system).expect("deployment builds");
            run.run_until(mid_s);
            let json = scenario.checkpoint(&run).to_json();
            let parsed = Snapshot::parse(&json).expect("snapshot JSON parses back");
            let mut resumed = scenario.resume(&system, &parsed).expect("snapshot resumes");
            resumed.run_to_end();
            resumed.finish()
        } else {
            scenario.run_full(&system).expect("deployment builds")
        };
        let r = &outcome.report;
        assert!(r.is_conserved(), "{label}: request conservation must hold");
        assert!(r.kv_bytes_conserved(), "{label}: migration bytes must be conserved");
        let s = &r.serving;
        println!(
            "{:<18} {:>9.1}ms {:>9.3}ms {:>11.1} {:>9} {:>12.4}% {:>10}",
            label,
            s.ttft.p99_s * 1e3,
            s.tpot.p99_s * 1e3,
            s.goodput_rps,
            r.migration.as_ref().map_or(0, |m| m.migrations),
            r.faults.as_ref().map_or(100.0, |f| f.availability * 100.0),
            s.cached_prefix_tokens,
        );
        rows.push(labeled_row("scenario", label, r));
        if let (Some(path), Some(trace)) = (trace_path, outcome.trace()) {
            match trace.write_chrome_trace(path) {
                Ok(()) => eprintln!(
                    "wrote Chrome trace for {label} ({} events, {} spans) to {path}",
                    trace.len(),
                    trace.request_spans().len()
                ),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    rows
}

/// Table 2 — circuit-level comparison.
fn table2() {
    header("Table 2: CIM core circuit-level comparison");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>14}",
        "design", "node", "array", "TOPS/W", "TOPS/mm2", "wafer capacity"
    );
    for p in ouro_hw::CIRCUIT_BASELINES() {
        println!(
            "{:<16} {:>6}nm {:>8}Kb {:>10.2} {:>12.2} {:>11.2} GB",
            p.name, p.technology_nm, p.array_size_kb, p.tops_per_watt, p.tops_per_mm2, p.wafer_capacity_gb
        );
    }
}

/// `bench-report` — simulator self-profiling for the pinned perf
/// trajectory: end-to-end requests-simulated/sec plus wall-time per loop
/// event kind (arrival routing, engine steps, fault injection, completion
/// handling) on pinned scenario points. Rows carry their own
/// `schema_version` and land in `BENCH_serve.json` by default.
///
/// The points run on the tiny test system so the measurement is about the
/// discrete-event loop itself, not the mapping anneal that builds the big
/// evaluation systems; the traced point doubles as an always-on check that
/// the observability layer stays cheap enough to leave enabled.
fn bench_report_rows(requests: usize) -> Vec<ouro_bench::json::JsonObject> {
    use std::time::Instant;

    use ouro_serve::{capacity_rps_estimate, ideal_latencies, Scenario, SloConfig};
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Bench report: simulator self-profiling (pinned perf trajectory)");
    let model = zoo::bert_large();
    let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &model).expect("tiny system builds");
    let requests = requests.min(DEFAULT_REQUESTS);
    let lengths = LengthConfig::fixed(64, 32);
    let capacity = capacity_rps_estimate(system.stage_times(), &lengths);
    let (ttft, tpot) = ideal_latencies(system.stage_times(), 64, 96);
    let slo = SloConfig::with_slack(ttft, tpot, 10.0);
    let rate = 0.8 * capacity * 2.0;
    let trace = TraceGenerator::new(SEED).generate(&lengths, requests);
    let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, SEED);
    let cadence_s = (timed.last_arrival_s() / 64.0).max(1e-6);

    let points: Vec<(&str, Scenario)> = vec![
        ("colocated", Scenario::colocated(2).slo(slo).workload(timed.clone())),
        (
            "colocated-traced",
            Scenario::colocated(2).slo(slo).workload(timed.clone()).trace(true).telemetry_every(cadence_s),
        ),
        ("disagg", Scenario::disaggregated(1, 1).slo(slo).workload(timed)),
    ];

    eprintln!("\n--- {requests} requests/point ---");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "point", "completed", "wall (s)", "req/s", "events", "events/s"
    );
    let mut rows: Vec<ouro_bench::json::JsonObject> = Vec::new();
    for (label, scenario) in points {
        let t0 = Instant::now();
        let outcome = scenario.profile(true).run_full(&system).expect("deployment builds");
        let wall_s = t0.elapsed().as_secs_f64();
        let profile = outcome.profile().expect("profiling was enabled");
        let completed = outcome.report.serving.completed as u64;
        println!(
            "{:<18} {:>10} {:>10.3} {:>12.1} {:>12} {:>14.0}",
            label,
            completed,
            wall_s,
            if wall_s > 0.0 { completed as f64 / wall_s } else { 0.0 },
            profile.total_events(),
            profile.events_per_s(),
        );
        rows.push(ouro_bench::bench_report_row(
            label,
            requests,
            completed,
            outcome.report.serving.duration_s,
            wall_s,
            profile,
        ));
    }
    rows
}

/// Writes JSON rows to `path` or exits non-zero — the shared tail of the
/// perf-trajectory subcommands.
fn write_rows(path: &str, rows: &[ouro_bench::json::JsonObject], what: &str) {
    match ouro_bench::json::write_array(path, rows) {
        Ok(()) => eprintln!("\nwrote {} {what} to {path}", rows.len()),
        Err(e) => {
            eprintln!("\nfailed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `analyze` — post-hoc latency attribution on the golden observability
/// scenario: runs the disaggregated+faults shape with tracing and
/// telemetry armed, reconstructs per-request timelines, and prints where
/// p50/p99 TTFT/E2E go, phase by phase, plus per-wafer utilization.
/// `--out` writes the schema-versioned analyze JSON rows.
fn analyze(requests: usize, out: Option<&str>) {
    use ouro_serve::{FaultConfig, Scenario, SloConfig};
    use ouro_workload::{ArrivalConfig, TraceGenerator};

    header("Analyze: latency attribution and wafer utilization (golden scenario)");
    let model = zoo::bert_large();
    let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &model).expect("tiny system builds");
    let requests = requests.min(DEFAULT_REQUESTS);
    let lengths = LengthConfig::fixed(64, 32);
    let trace = TraceGenerator::new(8).generate(&lengths, requests);
    let timed = ArrivalConfig::Poisson { rate_rps: 400.0 }.assign(&trace, 8);
    let outcome = Scenario::disaggregated(2, 2)
        .slo(SloConfig { ttft_s: 0.5, tpot_s: 0.05 })
        .faults(FaultConfig::new(0.02, 8))
        .workload(timed)
        .trace(true)
        .telemetry_every(0.005)
        .run_full(&system)
        .expect("deployment builds");
    let analysis = outcome.analysis().expect("tracing was armed");
    eprintln!("\n--- {requests} requests, disaggregated 2+2, faults armed ---");
    print!("{}", analysis.report());
    if let Some(path) = out {
        write_rows(path, &analysis.json_rows(), "analyze rows");
    }
}

/// `compare` / `regress` — the regression gate. Produces current bench
/// rows (from `--current`, or by running `bench-report` afresh), finds a
/// baseline (the latest run of the same config hash in `--store`, or the
/// `--baseline` file, default `BENCH_serve.json`), and diffs them.
/// `regress` exits 1 when the verdict fails; `compare` always reports
/// and exits 0. Schema drift fails even under `--warn-only`.
#[allow(clippy::too_many_arguments)]
fn compare(
    requests: usize,
    baseline_path: Option<&str>,
    current_path: Option<&str>,
    store_dir: Option<&str>,
    threshold: f64,
    warn_only: bool,
    out: Option<&str>,
    gate: bool,
) {
    use ouro_bench::store::{self, Store};

    header(if gate {
        "Regress: gate against the stored baseline"
    } else {
        "Compare: diff against the stored baseline"
    });
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(1);
    };

    let current: Vec<store::FlatRow> = match current_path {
        Some(path) => store::read_rows(std::path::Path::new(path))
            .unwrap_or_else(|e| fail(&format!("cannot read --current: {e}"))),
        None => {
            // A fresh measurement, round-tripped through the parser so
            // both sides of the diff took the same path.
            let rows = bench_report_rows(requests);
            store::parse_flat_rows(&ouro_bench::json::render_array(&rows))
                .unwrap_or_else(|e| fail(&format!("fresh bench rows failed to parse: {e}")))
        }
    };
    let hash = store::config_hash(&current);
    eprintln!("\nconfig hash: {hash:016x} ({} current rows)", current.len());

    let baseline: Option<Vec<store::FlatRow>> = match store_dir {
        Some(dir) => {
            let store = Store::open(dir).unwrap_or_else(|e| fail(&format!("cannot open --store: {e}")));
            let previous =
                store.latest(hash).unwrap_or_else(|e| fail(&format!("cannot read store history: {e}")));
            let seq = store
                .append(hash, &current)
                .unwrap_or_else(|e| fail(&format!("cannot append to store: {e}")));
            eprintln!("stored run {seq} under {}", store.path_for(hash).display());
            previous
        }
        None => {
            let path = baseline_path.unwrap_or("BENCH_serve.json");
            Some(
                store::read_rows(std::path::Path::new(path))
                    .unwrap_or_else(|e| fail(&format!("cannot read baseline {path}: {e}"))),
            )
        }
    };
    let Some(baseline) = baseline else {
        eprintln!("no stored history for this config hash yet — baseline seeded, nothing to diff");
        return;
    };

    let verdict = store::compare_rows(&current, &baseline, threshold);
    println!("{}", verdict.report());
    if let Some(path) = out {
        write_rows(path, &verdict.json_rows(), "diff rows");
    }
    if verdict.passed(warn_only) {
        eprintln!("gate: PASS");
    } else if gate {
        eprintln!("gate: FAIL");
        std::process::exit(1);
    } else {
        eprintln!("gate: FAIL (compare is informational; run `regress` to gate)");
    }
}
