//! Shared experiment harness: builds systems, runs workloads, and formats the
//! rows that regenerate every table and figure of the paper's evaluation.
//!
//! The `experiments` binary (`cargo run -p ouro-bench --release --bin
//! experiments -- <figure>`) prints the text tables; the Criterion benches
//! under `benches/` time the underlying computations.

use ouro_baselines::{RooflineSystem, SystemReport};
use ouro_model::ModelConfig;
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{LengthConfig, Trace, TraceGenerator};

/// Default number of requests per trace used by the experiment runner.
/// The paper uses 1000; the default here keeps the full sweep tractable on a
/// laptop and can be overridden with `--requests N`.
pub const DEFAULT_REQUESTS: usize = 200;

/// Deterministic seed used by every experiment.
pub const SEED: u64 = 2026;

/// Generates the trace for a workload configuration.
pub fn trace_for(config: &LengthConfig, requests: usize) -> Trace {
    TraceGenerator::new(SEED).generate(config, requests)
}

/// The decoder models of the main evaluation (Fig. 13–15).
pub fn decoder_models() -> Vec<ModelConfig> {
    vec![
        ouro_model::zoo::llama_13b(),
        ouro_model::zoo::baichuan_13b(),
        ouro_model::zoo::llama_32b(),
        ouro_model::zoo::qwen_32b(),
    ]
}

/// The encoder-style models of §6.4 (Fig. 16).
pub fn encoder_models() -> Vec<ModelConfig> {
    vec![ouro_model::zoo::bert_large(), ouro_model::zoo::t5_11b()]
}

/// The baseline systems of the main comparison, in figure order.
pub fn baseline_systems() -> Vec<RooflineSystem> {
    vec![
        ouro_baselines::dgx_a100(8),
        ouro_baselines::tpu_v4(),
        ouro_baselines::attacc(),
        ouro_baselines::cerebras_wse2(),
    ]
}

/// Builds the Ouroboros system for a model, spilling to a second wafer when a
/// single wafer cannot hold the weights (the paper does the same for
/// LLaMA-65B).
pub fn build_ouroboros(model: &ModelConfig) -> OuroborosSystem {
    for wafers in 1..=4 {
        let mut cfg =
            if wafers == 1 { OuroborosConfig::single_wafer() } else { OuroborosConfig::multi_wafer(wafers) };
        cfg.mapping_iterations = 2_000;
        cfg.seed = SEED;
        if let Ok(sys) = OuroborosSystem::new(cfg, model) {
            return sys;
        }
    }
    panic!("model {} does not fit on four wafers", model.name);
}

/// Evaluates every baseline plus Ouroboros on one model and workload.
pub fn compare_all(
    model: &ModelConfig,
    label: &str,
    config: &LengthConfig,
    requests: usize,
) -> Vec<SystemReport> {
    let trace = trace_for(config, requests);
    let mut reports: Vec<SystemReport> =
        baseline_systems().iter().map(|sys| sys.evaluate(model, &trace, label)).collect();
    let ours = build_ouroboros(model);
    reports.push(ours.simulate_labeled(&trace, label));
    reports
}

/// Formats a set of reports as a normalised-throughput / normalised-energy
/// table (normalised to the first report, which is the DGX A100 reference in
/// the main comparisons).
pub fn format_normalized(reports: &[SystemReport]) -> String {
    let mut out = String::new();
    let reference = &reports[0];
    out.push_str(&format!(
        "{:<16} {:>14} {:>12} {:>14} {:>10}\n",
        "system", "tokens/s", "speedup", "J/token", "norm. E"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<16} {:>14.1} {:>11.2}x {:>14.6} {:>10.3}\n",
            r.system,
            r.throughput_tokens_per_s,
            r.speedup_over(reference),
            r.energy_per_token_j(),
            r.energy_ratio_over(reference),
        ));
    }
    out
}

/// Formats the energy breakdown columns of a set of reports.
pub fn format_energy_breakdown(reports: &[SystemReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "system", "compute", "on-chip", "off-chip", "comm", "total (J/tok)"
    ));
    for r in reports {
        let e = &r.energy_per_token;
        out.push_str(&format!(
            "{:<16} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
            r.system,
            e.compute_j,
            e.on_chip_j,
            e.off_chip_j,
            e.communication_j,
            e.total_j()
        ));
    }
    out
}

/// Minimal JSON emission for perf-trajectory capture (`--json <path>` on the
/// `experiments` binary). The workspace is fully offline, so there is no
/// serde; the subset here — flat objects of strings and numbers collected
/// into one array — is all the BENCH_*.json trajectories need.
pub mod json {
    /// A flat JSON object under construction.
    #[derive(Debug, Clone, Default)]
    pub struct JsonObject {
        fields: Vec<(String, String)>,
    }

    impl JsonObject {
        /// An empty object.
        pub fn new() -> JsonObject {
            JsonObject::default()
        }

        /// Adds a string field (escaping quotes, backslashes, and control
        /// characters — JSON strings must not contain raw controls).
        pub fn str(mut self, key: &str, value: &str) -> JsonObject {
            let mut escaped = String::with_capacity(value.len());
            for c in value.chars() {
                match c {
                    '\\' => escaped.push_str("\\\\"),
                    '"' => escaped.push_str("\\\""),
                    '\n' => escaped.push_str("\\n"),
                    '\r' => escaped.push_str("\\r"),
                    '\t' => escaped.push_str("\\t"),
                    c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                    c => escaped.push(c),
                }
            }
            self.fields.push((key.to_string(), format!("\"{escaped}\"")));
            self
        }

        /// Adds a numeric field; non-finite values become `null` (JSON has
        /// no NaN/Infinity).
        pub fn num(mut self, key: &str, value: f64) -> JsonObject {
            let rendered = if value.is_finite() { format!("{value}") } else { "null".to_string() };
            self.fields.push((key.to_string(), rendered));
            self
        }

        /// Adds an integer field.
        pub fn int(mut self, key: &str, value: u64) -> JsonObject {
            self.fields.push((key.to_string(), format!("{value}")));
            self
        }

        /// Renders the object as one JSON line.
        pub fn render(&self) -> String {
            let body: Vec<String> = self.fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
            format!("{{{}}}", body.join(", "))
        }
    }

    /// Renders a slice of objects as a pretty-enough JSON array.
    pub fn render_array(objects: &[JsonObject]) -> String {
        let rows: Vec<String> = objects.iter().map(|o| format!("  {}", o.render())).collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// Writes the array to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_array(path: &str, objects: &[JsonObject]) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, render_array(objects))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generation_is_deterministic() {
        let a = trace_for(&LengthConfig::fixed(128, 128), 16);
        let b = trace_for(&LengthConfig::fixed(128, 128), 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn model_lists_cover_the_paper() {
        assert_eq!(decoder_models().len(), 4);
        assert_eq!(encoder_models().len(), 2);
        assert_eq!(baseline_systems().len(), 4);
    }

    #[test]
    fn json_objects_render_flat_and_escaped() {
        let o = crate::json::JsonObject::new()
            .str("name", "a \"quoted\" label")
            .num("rate", 2.5)
            .num("missing", f64::NAN)
            .int("count", 7);
        assert_eq!(
            o.render(),
            "{\"name\": \"a \\\"quoted\\\" label\", \"rate\": 2.5, \"missing\": null, \"count\": 7}"
        );
        let arr = crate::json::render_array(&[o.clone(), o]);
        assert!(arr.starts_with("[\n") && arr.ends_with("\n]\n"));
        assert_eq!(arr.matches("\"count\": 7").count(), 2);
    }

    #[test]
    fn json_strings_escape_control_characters() {
        let o = crate::json::JsonObject::new().str("label", "a\nb\tc\rd\u{1}e");
        assert_eq!(o.render(), "{\"label\": \"a\\nb\\tc\\rd\\u0001e\"}");
    }

    #[test]
    fn formatting_contains_every_system() {
        let model = ouro_model::zoo::llama_13b();
        let trace = trace_for(&LengthConfig::fixed(64, 64), 4);
        let reports: Vec<SystemReport> =
            baseline_systems().iter().map(|s| s.evaluate(&model, &trace, "t")).collect();
        let table = format_normalized(&reports);
        for r in &reports {
            assert!(table.contains(&r.system));
        }
        let energy = format_energy_breakdown(&reports);
        assert!(energy.contains("off-chip"));
    }
}
