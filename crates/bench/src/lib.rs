//! Shared experiment harness: builds systems, runs workloads, and formats the
//! rows that regenerate every table and figure of the paper's evaluation.
//!
//! The `experiments` binary (`cargo run -p ouro-bench --release --bin
//! experiments -- <figure>`) prints the text tables; the Criterion benches
//! under `benches/` time the underlying computations.

use ouro_baselines::{RooflineSystem, SystemReport};
use ouro_model::ModelConfig;
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{LengthConfig, Trace, TraceGenerator};

/// Default number of requests per trace used by the experiment runner.
/// The paper uses 1000; the default here keeps the full sweep tractable on a
/// laptop and can be overridden with `--requests N`.
pub const DEFAULT_REQUESTS: usize = 200;

/// Deterministic seed used by every experiment.
pub const SEED: u64 = 2026;

/// Generates the trace for a workload configuration.
pub fn trace_for(config: &LengthConfig, requests: usize) -> Trace {
    TraceGenerator::new(SEED).generate(config, requests)
}

/// The decoder models of the main evaluation (Fig. 13–15).
pub fn decoder_models() -> Vec<ModelConfig> {
    vec![
        ouro_model::zoo::llama_13b(),
        ouro_model::zoo::baichuan_13b(),
        ouro_model::zoo::llama_32b(),
        ouro_model::zoo::qwen_32b(),
    ]
}

/// The encoder-style models of §6.4 (Fig. 16).
pub fn encoder_models() -> Vec<ModelConfig> {
    vec![ouro_model::zoo::bert_large(), ouro_model::zoo::t5_11b()]
}

/// The baseline systems of the main comparison, in figure order.
pub fn baseline_systems() -> Vec<RooflineSystem> {
    vec![
        ouro_baselines::dgx_a100(8),
        ouro_baselines::tpu_v4(),
        ouro_baselines::attacc(),
        ouro_baselines::cerebras_wse2(),
    ]
}

/// Builds the Ouroboros system for a model, spilling to a second wafer when a
/// single wafer cannot hold the weights (the paper does the same for
/// LLaMA-65B).
pub fn build_ouroboros(model: &ModelConfig) -> OuroborosSystem {
    for wafers in 1..=4 {
        let mut cfg =
            if wafers == 1 { OuroborosConfig::single_wafer() } else { OuroborosConfig::multi_wafer(wafers) };
        cfg.mapping_iterations = 2_000;
        cfg.seed = SEED;
        if let Ok(sys) = OuroborosSystem::new(cfg, model) {
            return sys;
        }
    }
    panic!("model {} does not fit on four wafers", model.name);
}

/// Evaluates every baseline plus Ouroboros on one model and workload.
pub fn compare_all(
    model: &ModelConfig,
    label: &str,
    config: &LengthConfig,
    requests: usize,
) -> Vec<SystemReport> {
    let trace = trace_for(config, requests);
    let mut reports: Vec<SystemReport> =
        baseline_systems().iter().map(|sys| sys.evaluate(model, &trace, label)).collect();
    let ours = build_ouroboros(model);
    reports.push(ours.simulate_labeled(&trace, label));
    reports
}

/// Formats a set of reports as a normalised-throughput / normalised-energy
/// table (normalised to the first report, which is the DGX A100 reference in
/// the main comparisons).
pub fn format_normalized(reports: &[SystemReport]) -> String {
    let mut out = String::new();
    let reference = &reports[0];
    out.push_str(&format!(
        "{:<16} {:>14} {:>12} {:>14} {:>10}\n",
        "system", "tokens/s", "speedup", "J/token", "norm. E"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<16} {:>14.1} {:>11.2}x {:>14.6} {:>10.3}\n",
            r.system,
            r.throughput_tokens_per_s,
            r.speedup_over(reference),
            r.energy_per_token_j(),
            r.energy_ratio_over(reference),
        ));
    }
    out
}

/// Formats the energy breakdown columns of a set of reports.
pub fn format_energy_breakdown(reports: &[SystemReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "system", "compute", "on-chip", "off-chip", "comm", "total (J/tok)"
    ));
    for r in reports {
        let e = &r.energy_per_token;
        out.push_str(&format!(
            "{:<16} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
            r.system,
            e.compute_j,
            e.on_chip_j,
            e.off_chip_j,
            e.communication_j,
            e.total_j()
        ));
    }
    out
}

/// Minimal JSON emission for perf-trajectory capture (`--out <path>` on
/// the `experiments` binary). The emitter lives in `ouro-trace` (shared by
/// the observability exporters and [`ouro_serve::RunReport`] — the one
/// report schema every serving-style dump shares) and is re-exported here
/// for the harness.
pub use ouro_serve::json;

/// The append-only results store and regression gate behind
/// `experiments compare` / `experiments regress`.
pub mod store;

pub use store::{
    compare_rows, config_hash, parse_flat_rows, FlatRow, JsonValue, MetricDiff, Store, Verdict,
    COMPARE_SCHEMA_VERSION, COMPARE_V1_KEYS,
};

/// Prefixes one flattened [`ouro_serve::RunReport`] row with its experiment
/// and label tags — the shared shape of every serving-style JSON dump the
/// `experiments` binary emits.
pub fn labeled_row(experiment: &str, label: &str, report: &ouro_serve::RunReport) -> json::JsonObject {
    json::JsonObject::new().str("experiment", experiment).str("label", label).extend(report.json_object())
}

/// The tag keys [`labeled_row`] prepends to the flattened report schema.
pub const EXPERIMENT_TAG_KEYS: &[&str] = &["experiment", "label"];

/// Every key a serving-style subcommand may append beyond [`labeled_row`]'s
/// output: the fault experiment's tail-inflation ratios and the prefix
/// sweep's share ratio. The schema round-trip test pins every emitted row
/// against tag keys + the `RunReport` schema + this list, so extending a
/// subcommand's rows means extending this list (and the test) deliberately.
pub const EXPERIMENT_EXTRA_KEYS: &[&str] = &["ttft_p99_inflation", "tpot_p99_inflation", "share_ratio"];

/// One row of `experiments bench-report`: simulator self-profiling for the
/// pinned perf trajectory (`BENCH_serve.json`). Carries its own
/// `schema_version` ([`ouro_serve::BENCH_SCHEMA_VERSION`]) plus the
/// [`ouro_serve::LoopProfile`] wall-time breakdown per loop event kind.
pub fn bench_report_row(
    label: &str,
    requests: usize,
    completed: u64,
    sim_duration_s: f64,
    wall_s: f64,
    profile: &ouro_serve::LoopProfile,
) -> json::JsonObject {
    let requests_per_s = if wall_s > 0.0 { completed as f64 / wall_s } else { 0.0 };
    json::JsonObject::new()
        .int("schema_version", u64::from(ouro_serve::BENCH_SCHEMA_VERSION))
        .str("experiment", "bench-report")
        .str("label", label)
        .int("requests", requests as u64)
        .int("completed", completed)
        .num("sim_duration_s", sim_duration_s)
        .num("wall_s", wall_s)
        .num("requests_per_s", requests_per_s)
        .extend(profile.json_object())
}

/// The pinned key list of a [`bench_report_row`] — the `BENCH_serve.json`
/// schema, version [`ouro_serve::BENCH_SCHEMA_VERSION`].
pub const BENCH_REPORT_V1_KEYS: &[&str] = &[
    "schema_version",
    "experiment",
    "label",
    "requests",
    "completed",
    "sim_duration_s",
    "wall_s",
    "requests_per_s",
    "loop_events",
    "loop_wall_s",
    "loop_events_per_s",
    "arrival_events",
    "arrival_wall_s",
    "step_events",
    "step_wall_s",
    "fault_events",
    "fault_wall_s",
    "completion_events",
    "completion_wall_s",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generation_is_deterministic() {
        let a = trace_for(&LengthConfig::fixed(128, 128), 16);
        let b = trace_for(&LengthConfig::fixed(128, 128), 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn model_lists_cover_the_paper() {
        assert_eq!(decoder_models().len(), 4);
        assert_eq!(encoder_models().len(), 2);
        assert_eq!(baseline_systems().len(), 4);
    }

    #[test]
    fn bench_report_row_matches_pinned_schema() {
        let profile = ouro_serve::LoopProfile::default();
        let row = bench_report_row("colocated", 8, 8, 1.5, 0.25, &profile);
        assert_eq!(row.keys(), BENCH_REPORT_V1_KEYS);
        assert_eq!(ouro_serve::BENCH_SCHEMA_VERSION, 1, "bump the pinned key list with the schema");
        assert!(row.render().contains("\"requests_per_s\": 32"));
    }

    #[test]
    fn bench_report_row_guards_zero_wall_time() {
        let profile = ouro_serve::LoopProfile::default();
        let row = bench_report_row("colocated", 8, 8, 1.5, 0.0, &profile);
        assert!(row.render().contains("\"requests_per_s\": 0"));
    }

    #[test]
    fn formatting_contains_every_system() {
        let model = ouro_model::zoo::llama_13b();
        let trace = trace_for(&LengthConfig::fixed(64, 64), 4);
        let reports: Vec<SystemReport> =
            baseline_systems().iter().map(|s| s.evaluate(&model, &trace, "t")).collect();
        let table = format_normalized(&reports);
        for r in &reports {
            assert!(table.contains(&r.system));
        }
        let energy = format_energy_breakdown(&reports);
        assert!(energy.contains("off-chip"));
    }
}
