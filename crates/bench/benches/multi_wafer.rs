//! Fig. 19/20 — multi-wafer scaling of LLaMA-65B across two wafers.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::{trace_for, SEED};
use ouro_model::zoo;
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::LengthConfig;

fn bench_multi_wafer(c: &mut Criterion) {
    let model = zoo::llama_65b();
    let mut cfg = OuroborosConfig::multi_wafer(2);
    cfg.seed = SEED;
    cfg.mapping_iterations = 500;
    let sys = OuroborosSystem::new(cfg, &model).expect("65B fits on two wafers");
    let trace = trace_for(&LengthConfig::fixed(2048, 128), 16);
    let mut group = c.benchmark_group("fig19_multi_wafer");
    group.bench_function("simulate_llama65b_2_wafers", |b| {
        b.iter(|| sys.simulate_labeled(&trace, "LP=2048 LD=128"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multi_wafer
}
criterion_main!(benches);
