//! Timing of the online serving simulator itself: how fast the
//! discrete-event scenario driver chews through open-loop traffic, per
//! routing policy and arrival process.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::SEED;
use ouro_model::zoo;
use ouro_serve::{routers, Scenario, SloConfig};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

fn bench_serving(c: &mut Criterion) {
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &zoo::llama_13b()).expect("LLaMA-13B fits on one wafer");
    let trace = TraceGenerator::new(SEED).generate(&LengthConfig::wikitext2_like(), 100);
    let timed = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, SEED);
    let bursty = ArrivalConfig::Bursty { rate_rps: 2_000.0, cv: 4.0 }.assign(&trace, SEED);
    let slo = SloConfig { ttft_s: 0.02, tpot_s: 0.005 };

    let mut group = c.benchmark_group("online_serving");
    for router in [routers::round_robin(), routers::least_kv_load(), routers::join_shortest_queue()] {
        let name = router.name();
        let scenario = Scenario::colocated(4).router(router).slo(slo).workload(timed.clone());
        group.bench_function(format!("poisson_4_wafers_{name}"), |b| {
            b.iter(|| scenario.run(&system).expect("cluster builds"))
        });
    }
    let scenario = Scenario::colocated(4).router(routers::least_kv_load()).slo(slo).workload(bursty);
    group.bench_function("bursty_4_wafers_least-kv-load", |b| {
        b.iter(|| scenario.run(&system).expect("cluster builds"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serving
}
criterion_main!(benches);
