//! Fig. 11 — crossbar row-activation-ratio sweep (capacity vs compute).

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_hw::{CimCore, CoreConfig, CrossbarConfig};

fn bench_row_activation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_row_activation");
    group.bench_function("sweep_ratios", |b| {
        b.iter(|| {
            [128u32, 64, 32, 16, 8, 4]
                .iter()
                .map(|&d| {
                    let core = CimCore::new(CoreConfig::with_crossbar(CrossbarConfig::with_row_activation(
                        1.0 / d as f64,
                    )));
                    core.tops() / core.sram_capacity_bytes() as f64
                })
                .sum::<f64>()
        })
    });
    group.bench_function("gemv_latency_at_paper_ratio", |b| {
        let core = CimCore::paper();
        b.iter(|| core.gemv_latency_s(5120, 5120))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_row_activation
}
criterion_main!(benches);
