//! Timing of shared-prefix KV caching: how fast the serving simulator
//! drains a session workload with the radix-style prefix cache on vs off,
//! and with prefix-affinity vs load-based routing.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::SEED;
use ouro_model::zoo;
use ouro_serve::{routers, Router, Scenario, SloConfig};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, SessionConfig};

fn bench_prefix(c: &mut Criterion) {
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &zoo::llama_13b()).expect("LLaMA-13B fits on one wafer");
    let trace = SessionConfig::chat(4, 0.7).generate(100, SEED);
    let timed = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, SEED);
    let slo = SloConfig { ttft_s: 0.02, tpot_s: 0.005 };

    let mut group = c.benchmark_group("prefix_caching");
    let configs: [(&str, bool, Box<dyn Router>); 3] = [
        ("off_least-kv-load", false, routers::least_kv_load()),
        ("on_least-kv-load", true, routers::least_kv_load()),
        ("on_prefix-affinity", true, routers::prefix_affinity()),
    ];
    for (label, caching, router) in configs {
        let scenario =
            Scenario::colocated(4).router(router).prefix_caching(caching).slo(slo).workload(timed.clone());
        group.bench_function(format!("sessions_4_wafers_{label}"), |b| {
            b.iter(|| scenario.run(&system).expect("cluster builds"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prefix
}
criterion_main!(benches);
