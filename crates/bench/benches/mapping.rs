//! Fig. 18 — transmission volume of the mapping strategies on a LLaMA-13B
//! transformer block.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_hw::{DefectMap, WaferGeometry};
use ouro_mapping::{MappingProblem, Strategy};
use ouro_model::zoo;

fn problem() -> MappingProblem {
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::pristine(&geometry);
    let cores = geometry.all_cores().collect();
    MappingProblem::for_block(&zoo::llama_13b(), geometry, defects, cores, 4 * 1024 * 1024, 4.0)
}

fn bench_mapping(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("fig18_mapping");
    group.bench_function("summa", |b| b.iter(|| ouro_mapping::solve(&p, Strategy::Summa, 1).objective));
    group.bench_function("waferllm", |b| b.iter(|| ouro_mapping::solve(&p, Strategy::WaferLlm, 1).objective));
    group.bench_function("ours_anneal_1k", |b| {
        b.iter(|| ouro_mapping::solve(&p, Strategy::Anneal { iterations: 1_000 }, 1).objective)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mapping
}
criterion_main!(benches);
