//! Overhead of the observability layer on the scenario driver itself.
//!
//! Four variants of the same seed-pinned faulty disaggregated run:
//!
//! * `dark` — the plain [`Scenario::run`] path, no instrumentation code
//!   reachable,
//! * `disabled` — the [`Scenario::run_full`] path with every collector
//!   off: the shape every pre-observability caller now takes,
//! * `trace` — request-lifecycle tracing armed,
//! * `trace+telemetry+profile` — everything on.
//!
//! Besides the Criterion timings, the harness asserts the zero-cost-when-
//! disabled claim directly: the median `disabled` run must stay within
//! noise of the median `dark` run (the two are interleaved sample for
//! sample so drift hits both equally). The enabled variants are reported
//! but unasserted — they are allowed to cost what they cost.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ouro_bench::SEED;
use ouro_model::zoo;
use ouro_serve::{FaultConfig, Scenario, SloConfig};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, TimedTrace, TraceGenerator};

/// Wall time of one closure call, in seconds.
fn time_s(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn workload() -> TimedTrace {
    let trace = TraceGenerator::new(SEED).generate(&LengthConfig::fixed(64, 32), 120);
    ArrivalConfig::Poisson { rate_rps: 400.0 }.assign(&trace, SEED)
}

fn scenario(timed: &TimedTrace) -> Scenario {
    Scenario::disaggregated(2, 2)
        .slo(SloConfig { ttft_s: 0.5, tpot_s: 0.05 })
        .faults(FaultConfig::new(0.02, SEED))
        .workload(timed.clone())
}

fn bench_trace_overhead(c: &mut Criterion) {
    let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
    let timed = workload();
    let cadence_s = timed.last_arrival_s() / 64.0;

    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("dark", |b| b.iter(|| black_box(scenario(&timed).run(&system).unwrap())));
    group.bench_function("disabled", |b| b.iter(|| black_box(scenario(&timed).run_full(&system).unwrap())));
    group.bench_function("trace", |b| {
        b.iter(|| black_box(scenario(&timed).trace(true).run_full(&system).unwrap()))
    });
    group.bench_function("trace+telemetry+profile", |b| {
        b.iter(|| {
            black_box(
                scenario(&timed)
                    .trace(true)
                    .telemetry_every(cadence_s)
                    .profile(true)
                    .run_full(&system)
                    .unwrap(),
            )
        })
    });
    group.finish();

    // The zero-cost-when-disabled assertion. Interleaved rounds: each
    // round times one dark and one disabled run back to back, so clock
    // drift and cache state perturb both sides alike.
    const ROUNDS: usize = 15;
    // Generous CI slack — a shared runner can easily jitter 2x on
    // millisecond-scale sections; a real always-on cost would show up far
    // beyond this once the medians settle.
    const SLACK: f64 = 1.5;
    let mut dark = Vec::with_capacity(ROUNDS);
    let mut disabled = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        dark.push(time_s(|| {
            black_box(scenario(&timed).run(&system).unwrap());
        }));
        disabled.push(time_s(|| {
            black_box(scenario(&timed).run_full(&system).unwrap());
        }));
    }
    dark.sort_by(f64::total_cmp);
    disabled.sort_by(f64::total_cmp);
    let (dark_med, disabled_med) = (dark[ROUNDS / 2], disabled[ROUNDS / 2]);
    let ratio = disabled_med / dark_med;
    println!(
        "trace_overhead/zero-cost-when-disabled: dark {:.3} ms, disabled {:.3} ms, ratio {ratio:.3} (slack {SLACK})",
        dark_med * 1e3,
        disabled_med * 1e3,
    );
    assert!(
        disabled_med <= dark_med * SLACK + Duration::from_micros(200).as_secs_f64(),
        "run_full with collectors off must stay within noise of run \
         (dark {dark_med:.6}s, disabled {disabled_med:.6}s, ratio {ratio:.3})"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_overhead
}
criterion_main!(benches);
