//! Cost of the resilience machinery itself: how fast a replacement-chain
//! remap heals a failure on the paper wafer (the paper claims the repair is
//! sub-millisecond *on hardware*; here we time the simulator's remap), and
//! what fault injection adds to a discrete-event serving run.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::SEED;
use ouro_hw::{CoreId, DefectMap, WaferGeometry, YieldModel};
use ouro_mapping::{remap_with_chain, MappingProblem, Strategy};
use ouro_model::zoo;
use ouro_serve::{routers, FaultConfig, Scenario, SloConfig};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_injection");

    // Replacement-chain remap on the full paper wafer.
    let geometry = WaferGeometry::paper();
    let defects = DefectMap::generate(&geometry, &YieldModel::paper(), SEED);
    let model = zoo::llama_13b();
    let candidates: Vec<CoreId> = defects.functional_cores().collect();
    let problem = MappingProblem::for_block(
        &model,
        geometry.clone(),
        defects.clone(),
        candidates,
        4 * 1024 * 1024,
        4.0,
    );
    let solution = ouro_mapping::solve(&problem, Strategy::WaferLlm, SEED);
    let kv_cores: Vec<CoreId> =
        defects.functional_cores().filter(|c| !solution.assignment.core.contains(c)).take(128).collect();
    let failed = solution.assignment.core[problem.num_tiles() / 2];
    group.bench_function("remap_with_chain_paper_wafer", |b| {
        b.iter(|| remap_with_chain(&geometry, &solution.assignment, &kv_cores, failed).unwrap())
    });

    // Fault-injected serving run vs. the clean run on the same traffic.
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &model).expect("LLaMA-13B fits on one wafer");
    let trace = TraceGenerator::new(SEED).generate(&LengthConfig::wikitext2_like(), 100);
    let timed = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, SEED);
    let slo = SloConfig { ttft_s: 0.02, tpot_s: 0.005 };
    let span = timed.last_arrival_s();
    let clean = Scenario::colocated(4).router(routers::least_kv_load()).slo(slo).workload(timed);
    group
        .bench_function("serving_4_wafers_clean", |b| b.iter(|| clean.run(&system).expect("cluster builds")));
    let faulty = clean.clone().faults(FaultConfig::new(span / 4.0, SEED));
    group.bench_function("serving_4_wafers_faulty", |b| {
        b.iter(|| faulty.run(&system).expect("cluster builds"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_faults
}
criterion_main!(benches);
