//! Fig. 15 — the cumulative ablation ladder (Baseline → +KV Cache).

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::trace_for;
use ouro_model::zoo;
use ouro_sim::{ablation_ladder, OuroborosConfig, OuroborosSystem};
use ouro_workload::LengthConfig;

fn bench_ablation(c: &mut Criterion) {
    // A reduced wafer and an encoder-sized model keep each ladder rung cheap
    // while exercising the identical code paths as the full study.
    let model = zoo::bert_large();
    let base = OuroborosConfig::tiny_for_tests();
    let trace = trace_for(&LengthConfig::wikitext2_like(), 16);
    let mut group = c.benchmark_group("fig15_ablation");
    group.bench_function("full_ladder", |b| {
        b.iter(|| {
            ablation_ladder(&base)
                .into_iter()
                .filter_map(|(_, cfg)| OuroborosSystem::new(cfg, &model).ok())
                .map(|sys| sys.simulate(&trace).throughput_tokens_per_s)
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
