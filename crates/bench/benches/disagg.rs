//! Timing of the disaggregated serving simulator: the discrete-event cost
//! of running split prefill/decode pools with KV migration, per placement
//! policy, against the colocated deployment as the reference.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::SEED;
use ouro_model::zoo;
use ouro_serve::{placements, routers, Scenario, SloConfig};
use ouro_sim::{OuroborosConfig, OuroborosSystem};
use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

fn bench_disagg(c: &mut Criterion) {
    let mut cfg = OuroborosConfig::single_wafer();
    cfg.seed = SEED;
    let system = OuroborosSystem::new(cfg, &zoo::llama_13b()).expect("LLaMA-13B fits on one wafer");
    let trace = TraceGenerator::new(SEED).generate(&LengthConfig::fixed(512, 64), 100);
    let timed = ArrivalConfig::Bursty { rate_rps: 2_000.0, cv: 4.0 }.assign(&trace, SEED);
    let slo = SloConfig { ttft_s: 0.05, tpot_s: 0.005 };

    let mut group = c.benchmark_group("disaggregation");
    for placement in
        [placements::least_kv_load(), placements::most_free_blocks(), placements::locality_aware()]
    {
        let name = placement.name();
        let scenario = Scenario::disaggregated(1, 3).placement(placement).slo(slo).workload(timed.clone());
        group.bench_function(format!("disagg_1p3d_{name}"), |b| {
            b.iter(|| scenario.run(&system).expect("pools build"))
        });
    }
    let colocated = Scenario::colocated(4).router(routers::least_kv_load()).slo(slo).workload(timed);
    group.bench_function("colocated_4_wafers_reference", |b| {
        b.iter(|| colocated.run(&system).expect("cluster builds"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_disagg
}
criterion_main!(benches);
