//! Fig. 21 / Table 2 — CIM core implementations compared at the system level.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::trace_for;
use ouro_hw::CircuitPoint;
use ouro_model::zoo;
use ouro_workload::LengthConfig;

fn bench_cim_core(c: &mut Criterion) {
    let model = zoo::llama_13b();
    let trace = trace_for(&LengthConfig::fixed(2048, 2048), 16);
    let vlsi = CircuitPoint::vlsi22();
    let isscc = CircuitPoint::isscc22();
    let mut group = c.benchmark_group("fig21_cim_core");
    group.bench_function("hbm_backed_macros", |b| {
        b.iter(|| {
            [&vlsi, &isscc]
                .iter()
                .map(|p| {
                    ouro_baselines::hbm_cim_system(
                        p.name,
                        p.scaled_tops_per_watt,
                        p.scaled_tops_per_mm2,
                        p.wafer_capacity_gb * 1e9,
                    )
                    .evaluate(&model, &trace, "LP=2048 LD=2048")
                    .energy_per_token_j()
                })
                .sum::<f64>()
        })
    });
    group.bench_function("table2_rows", |b| {
        b.iter(|| {
            ouro_hw::CIRCUIT_BASELINES()
                .iter()
                .map(|p| p.energy_per_op_j() * p.wafer_tops(41_351.0))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cim_core
}
criterion_main!(benches);
