//! Fig. 13 — end-to-end throughput of Ouroboros and the baselines on
//! LLaMA-13B.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::{build_ouroboros, trace_for};
use ouro_model::zoo;
use ouro_workload::LengthConfig;

fn bench_throughput(c: &mut Criterion) {
    let model = zoo::llama_13b();
    let trace = trace_for(&LengthConfig::fixed(128, 2048), 32);
    let ours = build_ouroboros(&model);
    let dgx = ouro_baselines::dgx_a100(8);
    let mut group = c.benchmark_group("fig13_throughput");
    group
        .bench_function("ouroboros_llama13b", |b| b.iter(|| ours.simulate_labeled(&trace, "LP=128 LD=2048")));
    group.bench_function("dgx_a100_llama13b", |b| b.iter(|| dgx.evaluate(&model, &trace, "LP=128 LD=2048")));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
