//! Fig. 5 / §6.2 — token-grained vs sequence-grained pipelining.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::trace_for;
use ouro_model::{zoo, ModelConfig};
use ouro_pipeline::{ConstantStageTimes, Granularity, PipelineScheduler};
use ouro_workload::LengthConfig;

fn bench_pipeline(c: &mut Criterion) {
    let model = ModelConfig { blocks: 8, ..zoo::llama_13b() };
    let times = ConstantStageTimes { base_s: 1e-6, per_context_s: 1e-9 };
    let sched = PipelineScheduler::new(&model, &times);
    let trace = trace_for(&LengthConfig::wikitext2_like(), 64);
    let mut group = c.benchmark_group("pipeline_granularity");
    group.bench_function("sequence_grained", |b| {
        b.iter(|| sched.run(&trace, Granularity::Sequence).makespan_s)
    });
    group.bench_function("token_grained", |b| b.iter(|| sched.run(&trace, Granularity::Token).makespan_s));
    group.bench_function("token_grained_with_block", |b| {
        b.iter(|| sched.run(&trace, Granularity::TokenWithBlock).makespan_s)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
