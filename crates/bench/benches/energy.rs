//! Fig. 14 — energy-per-token evaluation of every system on Baichuan-13B.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::{baseline_systems, build_ouroboros, trace_for};
use ouro_model::zoo;
use ouro_workload::LengthConfig;

fn bench_energy(c: &mut Criterion) {
    let model = zoo::baichuan_13b();
    let trace = trace_for(&LengthConfig::wikitext2_like(), 32);
    let baselines = baseline_systems();
    let ours = build_ouroboros(&model);
    let mut group = c.benchmark_group("fig14_energy");
    group.bench_function("ouroboros_energy_breakdown", |b| {
        b.iter(|| ours.simulate_labeled(&trace, "WikiText-2").energy_per_token_j())
    });
    group.bench_function("baselines_energy_breakdown", |b| {
        b.iter(|| {
            baselines
                .iter()
                .map(|s| s.evaluate(&model, &trace, "WikiText-2").energy_per_token_j())
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_energy
}
criterion_main!(benches);
