//! Fig. 17 — distributed KV-cache scheduling under different admission
//! thresholds.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::trace_for;
use ouro_hw::CoreId;
use ouro_kvcache::{KvManagerConfig, KvScheduler};
use ouro_workload::LengthConfig;

fn bench_kv(c: &mut Criterion) {
    let trace = trace_for(&LengthConfig::fixed(256, 512), 32);
    let mut group = c.benchmark_group("fig17_kv_cache");
    for threshold in [0.0f64, 0.3] {
        group.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| {
                let mut cfg = KvManagerConfig::new((0..4).map(CoreId).collect(), 2, 128);
                cfg.threshold = threshold;
                let mut sched = KvScheduler::new(cfg).expect("kv cores available");
                sched.run_trace(&trace).stats.completed
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kv
}
criterion_main!(benches);
