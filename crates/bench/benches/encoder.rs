//! Fig. 16 — encoder-based models (BERT-Large, T5-11B) under TGP-with-block.

use criterion::{criterion_group, criterion_main, Criterion};
use ouro_bench::{build_ouroboros, trace_for};
use ouro_model::zoo;
use ouro_workload::LengthConfig;

fn bench_encoder(c: &mut Criterion) {
    let trace = trace_for(&LengthConfig::fixed(512, 64), 32);
    let bert = build_ouroboros(&zoo::bert_large());
    let t5 = build_ouroboros(&zoo::t5_11b());
    let mut group = c.benchmark_group("fig16_encoder");
    group.bench_function("bert_large", |b| b.iter(|| bert.simulate_labeled(&trace, "encoder")));
    group.bench_function("t5_11b", |b| b.iter(|| t5.simulate_labeled(&trace, "encoder")));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encoder
}
criterion_main!(benches);
