//! The disaggregated cluster: separate prefill and decode wafer pools with
//! KV migration over the inter-wafer optical fabric.
//!
//! Every arrival is routed to a *prefill* wafer (join-shortest-queue, ties
//! toward the lowest index), which runs the prompt through the pipeline in
//! prefill-only mode. When prefill finishes, the sequence's KV — priced at
//! the model's full per-token KV footprint across all blocks — is exported
//! and migrated to a *decode* wafer chosen by the configured
//! [`DecodePlacement`] policy. The migration is charged from the shared
//! [`InterWaferLink`] model and overlaps decode: the target engine keeps
//! stepping its resident sequences and only admits the migrated sequence
//! once the transfer lands. Decode wafers then generate tokens without ever
//! paying a prefill pass, so their step times — and hence TPOT — stay
//! decoupled from prefill bursts.
//!
//! Wafers sit on a line: prefill wafers at global positions
//! `0..prefill_wafers`, decode wafers after them. A migration crosses one
//! optical boundary per position it travels, which is what makes
//! [`DecodePlacement::LocalityAware`] meaningful.

use crate::report::{DisaggReport, Migration};
use ouro_kvcache::KvError;
use ouro_noc::InterWaferLink;
use ouro_serve::{
    pick_min_index, pick_prefix_affine_index, pick_serviceable_min_index, release_gated, Engine,
    EngineConfig, FaultInjector, FaultReport, RequestRecord, RunTotals, ServingReport, SloConfig,
};
use ouro_sim::OuroborosSystem;
use ouro_workload::TimedTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// How a finished prefill picks the decode wafer its KV migrates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodePlacement {
    /// The decode wafer whose KV cache (resident plus queued demand,
    /// including announced migrations) is least loaded.
    LeastKvLoad,
    /// The decode wafer with the most free KV tokens net of queued demand
    /// (block-level headroom rather than relative load).
    MostFreeBlocks,
    /// Prefers nearby decode wafers (fewer optical boundary crossings) but
    /// yields to load: the score is `kv_load + 0.1 · wafer_hops`, so a hop
    /// of distance is worth 10% of a cache of load.
    LocalityAware,
    /// Prefers the decode wafer already holding the longest cached run of
    /// the sequence's shared prefix — the migration then ships only the
    /// uncached bytes. Ties (and untagged sequences) fall back to least KV
    /// load.
    PrefixAffinity,
}

impl std::fmt::Display for DecodePlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodePlacement::LeastKvLoad => write!(f, "least-kv-load"),
            DecodePlacement::MostFreeBlocks => write!(f, "most-free-blocks"),
            DecodePlacement::LocalityAware => write!(f, "locality-aware"),
            DecodePlacement::PrefixAffinity => write!(f, "prefix-affinity"),
        }
    }
}

/// Configuration of a disaggregated deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisaggConfig {
    /// Wafers dedicated to prefill.
    pub prefill_wafers: usize,
    /// Wafers dedicated to decode.
    pub decode_wafers: usize,
    /// Decode-placement policy for migrated KV.
    pub placement: DecodePlacement,
    /// Per-engine tuning (shared by both pools).
    pub engine: EngineConfig,
}

impl DisaggConfig {
    /// A pool split with the default engine tuning and least-KV-load
    /// placement.
    pub fn new(prefill_wafers: usize, decode_wafers: usize) -> DisaggConfig {
        DisaggConfig {
            prefill_wafers,
            decode_wafers,
            placement: DecodePlacement::LeastKvLoad,
            engine: EngineConfig::default(),
        }
    }

    /// Total wafer count of the deployment.
    pub fn total_wafers(&self) -> usize {
        self.prefill_wafers + self.decode_wafers
    }
}

/// Which pool an engine belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Prefill,
    Decode,
}

/// A disaggregated serving cluster over one model deployment.
#[derive(Debug, Clone)]
pub struct DisaggCluster {
    prefill: Vec<Engine>,
    decode: Vec<Engine>,
    config: DisaggConfig,
    link: InterWaferLink,
    kv_bytes_per_token: u64,
    migrations: Vec<Migration>,
}

impl DisaggCluster {
    /// Builds the two pools from replicas of `system`'s deployment; the
    /// migration link and per-token KV footprint come from the same system,
    /// so colocated and disaggregated runs price inter-wafer bytes
    /// identically.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] when the deployment leaves no KV
    /// cores.
    pub fn new(system: &OuroborosSystem, config: DisaggConfig) -> Result<DisaggCluster, KvError> {
        assert!(config.prefill_wafers > 0, "disaggregation needs at least one prefill wafer");
        assert!(config.decode_wafers > 0, "disaggregation needs at least one decode wafer");
        let mk_pool = |n: usize| -> Result<Vec<Engine>, KvError> {
            (0..n)
                .map(|_| Engine::new(system.stage_times().clone(), system.serve_kv_config(), config.engine))
                .collect()
        };
        Ok(DisaggCluster {
            prefill: mk_pool(config.prefill_wafers)?,
            decode: mk_pool(config.decode_wafers)?,
            config,
            link: system.stage_times().inter_wafer_link(),
            kv_bytes_per_token: system.kv_migration_bytes(1),
            migrations: Vec::new(),
        })
    }

    /// The pool split and policies this cluster was built with.
    pub fn config(&self) -> &DisaggConfig {
        &self.config
    }

    /// Read access to the prefill-pool engines.
    pub fn prefill_engines(&self) -> &[Engine] {
        &self.prefill
    }

    /// Read access to the decode-pool engines.
    pub fn decode_engines(&self) -> &[Engine] {
        &self.decode
    }

    /// Every KV migration performed so far, in prefill-completion order.
    pub fn migrations(&self) -> &[Migration] {
        &self.migrations
    }

    /// Optical distance between a prefill wafer and a decode wafer on the
    /// line: one boundary per position travelled.
    fn wafer_hops(&self, prefill_idx: usize, decode_idx: usize) -> usize {
        (self.config.prefill_wafers - prefill_idx) + decode_idx
    }

    /// Routes an arrival to the prefill pool: join-shortest-queue over the
    /// serviceable wafers (faults can kill a wafer; traffic routes around
    /// it), ties toward the lowest wafer index.
    fn route_prefill(&self) -> usize {
        pick_serviceable_min_index(&self.prefill, |e| (e.queue_len() + e.resident()) as f64)
    }

    /// Picks the decode wafer for KV prefilled on wafer `from` under the
    /// configured placement policy (ties toward the lowest index); wafers
    /// faults have killed are skipped while any healthy one remains.
    fn place_decode(&self, from: usize, request: &ouro_workload::Request) -> usize {
        match self.config.placement {
            DecodePlacement::LeastKvLoad => pick_serviceable_min_index(&self.decode, Engine::kv_load),
            DecodePlacement::MostFreeBlocks => {
                pick_serviceable_min_index(&self.decode, |e| -(e.kv_free_tokens() as f64))
            }
            DecodePlacement::LocalityAware => {
                // Same filter-then-pick shape as `pick_serviceable_min_index`,
                // with the locality term needing the wafer index.
                let any_alive = self.decode.iter().any(Engine::is_serviceable);
                let candidates: Vec<usize> = (0..self.decode.len())
                    .filter(|&j| !any_alive || self.decode[j].is_serviceable())
                    .collect();
                candidates[pick_min_index(&candidates, |&j| {
                    self.decode[j].kv_load() + 0.1 * self.wafer_hops(from, j) as f64
                })]
            }
            DecodePlacement::PrefixAffinity => pick_prefix_affine_index(&self.decode, request),
        }
    }

    /// Serves a timed trace to completion (or to `horizon_s`). Mirrors
    /// [`ouro_serve::Cluster::run`]'s event loop, with prefill completions
    /// spawning KV migrations instead of retiring requests, and closed-loop
    /// releases fed by *decode* completions.
    pub fn run(&mut self, timed: &TimedTrace, slo: &SloConfig, horizon_s: f64) -> DisaggReport {
        self.run_inner(timed, slo, horizon_s, None)
    }

    /// Serves a timed trace with runtime faults interleaved on the shared
    /// timeline. The injector's wafer index space is *global*: wafers
    /// `0..prefill_wafers` are the prefill pool, the rest decode — a fault
    /// can therefore strike either side of the disaggregation split.
    /// Returns the disaggregated report plus the fault accounting.
    pub fn run_with_faults(
        &mut self,
        timed: &TimedTrace,
        slo: &SloConfig,
        horizon_s: f64,
        injector: &mut FaultInjector,
    ) -> (DisaggReport, FaultReport) {
        assert_eq!(
            injector.wafer_count(),
            self.config.total_wafers(),
            "the fault injector must cover exactly this deployment's wafers (prefill + decode)"
        );
        let report = self.run_inner(timed, slo, horizon_s, Some(injector));
        let faults = injector.report(report.serving.duration_s);
        (report, faults)
    }

    fn run_inner(
        &mut self,
        timed: &TimedTrace,
        slo: &SloConfig,
        horizon_s: f64,
        mut injector: Option<&mut FaultInjector>,
    ) -> DisaggReport {
        let mut arrivals: VecDeque<(f64, usize)> = timed
            .arrivals
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_gated())
            .map(|(i, r)| (r.arrival_s, i))
            .collect();
        let mut gated: VecDeque<usize> =
            timed.arrivals.iter().enumerate().filter(|(_, r)| r.is_gated()).map(|(i, _)| i).collect();
        let think_time_s = match timed.config {
            ouro_workload::ArrivalConfig::ClosedLoop { think_time_s, .. } => think_time_s,
            _ => 0.0,
        };
        let mut think_rng = StdRng::seed_from_u64(timed.seed ^ 0x7417_1e5e_ed00_0002);

        loop {
            let next_arrival = arrivals.front().map(|&(t, _)| t);
            let next_engine = self.min_event_engine(horizon_s);

            // Faults share the timeline with arrivals; the arbitration
            // protocol is the shared [`FaultInjector::poll`], so both
            // deployment shapes order the same fault schedule identically.
            if let Some(inj) = injector.as_deref_mut() {
                let next_event = next_engine.map(|(_, _, event_s)| event_s);
                match inj.poll(next_arrival, next_event, horizon_s) {
                    ouro_serve::fault::FaultPoll::Fire(wafer) => {
                        let engine = if wafer < self.config.prefill_wafers {
                            &mut self.prefill[wafer]
                        } else {
                            &mut self.decode[wafer - self.config.prefill_wafers]
                        };
                        inj.inject(engine);
                        continue;
                    }
                    ouro_serve::fault::FaultPoll::Drained => break,
                    ouro_serve::fault::FaultPoll::Wait => {}
                }
            }

            match (next_arrival, next_engine) {
                (None, None) => break,
                (Some(t_arr), engine) => {
                    if t_arr >= horizon_s {
                        let Some((pool, i, _)) = engine else { break };
                        self.step_engine(pool, i, &mut arrivals, &mut gated, think_time_s, &mut think_rng);
                        continue;
                    }
                    match engine {
                        Some((pool, i, event_s)) if event_s < t_arr => {
                            self.step_engine(
                                pool,
                                i,
                                &mut arrivals,
                                &mut gated,
                                think_time_s,
                                &mut think_rng,
                            );
                        }
                        _ => {
                            let (t, idx) = arrivals.pop_front().expect("peeked above");
                            let wafer = self.route_prefill();
                            self.prefill[wafer].submit_prefill_only(
                                timed.arrivals[idx].request,
                                t,
                                idx,
                                wafer,
                            );
                        }
                    }
                }
                (None, Some((pool, i, _))) => {
                    self.step_engine(pool, i, &mut arrivals, &mut gated, think_time_s, &mut think_rng);
                }
            }
        }

        self.report(timed, slo, horizon_s)
    }

    /// The engine whose next event is earliest (and below the horizon);
    /// ties resolve prefill-pool-first, lowest index, so runs are
    /// deterministic. Ordering by next event — not raw clock — matters:
    /// stepping an idle decode engine commits its clock to the earliest
    /// *currently announced* migration, so it must wait its global turn or
    /// a prefill engine at an earlier simulated time could still announce a
    /// migration that lands sooner, which would then be admitted late.
    fn min_event_engine(&self, horizon_s: f64) -> Option<(Pool, usize, f64)> {
        let mut best: Option<(Pool, usize, f64)> = None;
        let pools = [(Pool::Prefill, &self.prefill), (Pool::Decode, &self.decode)];
        for (pool, engines) in pools {
            for (i, e) in engines.iter().enumerate() {
                let event_s = e.next_event_s();
                if !e.has_work() || event_s >= horizon_s {
                    continue;
                }
                if best.is_none_or(|(_, _, c)| event_s.total_cmp(&c).is_lt()) {
                    best = Some((pool, i, event_s));
                }
            }
        }
        best
    }

    /// Advances one engine by one iteration; prefill completions become KV
    /// migrations, decode completions feed closed-loop releases.
    fn step_engine(
        &mut self,
        pool: Pool,
        i: usize,
        arrivals: &mut VecDeque<(f64, usize)>,
        gated: &mut VecDeque<usize>,
        think_time_s: f64,
        think_rng: &mut StdRng,
    ) {
        match pool {
            Pool::Prefill => {
                let completions = self.prefill[i].step();
                for (rec, t_done) in completions {
                    self.migrate(i, rec, t_done);
                }
            }
            Pool::Decode => {
                let completions = self.decode[i].step();
                for (_, t_done) in completions {
                    release_gated(arrivals, gated, t_done, think_time_s, think_rng);
                }
            }
        }
    }

    /// Ships one finished prefill's KV to a decode wafer: places the
    /// sequence (prefix-aware policies steer toward resident prefixes),
    /// deduplicates the bytes already cached on the target, charges the
    /// remaining transfer from the link model, and submits it for
    /// imported-KV decode gated on the migration's landing time.
    fn migrate(&mut self, from: usize, rec: usize, t_done: f64) {
        let record = self.prefill[from].records()[rec];
        let mut request = ouro_workload::Request::new(record.id, record.prompt_len, record.decode_len);
        if let Some(p) = record.shared_prefix {
            request = request.with_shared_prefix(p.group, p.tokens);
        }
        let to = self.place_decode(from, &request);
        // Bytes already resident on the target's prefix cache never touch
        // the wire; `Engine::submit_imported` performs the identical lookup
        // at this same instant, so the wire accounting matches.
        let deduped = self.decode[to].prefix_cached_tokens(&request).min(record.prompt_len);
        let wire_tokens = record.prompt_len - deduped;
        let bytes = wire_tokens as u64 * self.kv_bytes_per_token;
        let hops = self.wafer_hops(from, to);
        let arrive_s = t_done + self.link.transfer_time_s(bytes, hops);
        self.decode[to].submit_imported(
            request,
            record.arrival_s,
            arrive_s,
            record.id,
            self.config.prefill_wafers + to,
        );
        self.migrations.push(Migration {
            id: record.id,
            from_wafer: from,
            to_wafer: self.config.prefill_wafers + to,
            tokens: wire_tokens as u64,
            deduped_tokens: deduped as u64,
            bytes,
            start_s: t_done,
            arrive_s,
            wafer_hops: hops,
            energy_j: self.link.transfer_energy_j(bytes, hops),
        });
    }

    /// Assembles the disaggregated serving report: per-request records are
    /// merged across pools (arrival and prefill admission from the prefill
    /// side, first-token and completion from the decode side), and KV
    /// migration accounting is reconciled against both pools' managers.
    fn report(&self, timed: &TimedTrace, slo: &SloConfig, horizon_s: f64) -> DisaggReport {
        let mut merged: Vec<RequestRecord> =
            self.prefill.iter().flat_map(|e| e.records().iter().copied()).collect();
        let decode_by_id: HashMap<usize, &RequestRecord> =
            self.decode.iter().flat_map(|e| e.records().iter()).map(|r| (r.id, r)).collect();
        for r in &mut merged {
            match decode_by_id.get(&r.id) {
                Some(d) => {
                    // A completed prefill is not a completed request: the
                    // decode side owns first-token and completion.
                    r.wafer = d.wafer;
                    r.first_token_s = d.first_token_s;
                    r.completed_s = d.completed_s;
                    r.evictions += d.evictions;
                }
                None => {
                    r.completed_s = f64::NAN;
                }
            }
        }
        merged.sort_by_key(|r| r.id);

        let all = self.prefill.iter().chain(self.decode.iter());
        let queued: usize = all.clone().map(Engine::queue_len).sum();
        let in_flight: usize = all.clone().map(Engine::resident).sum();
        let dropped: usize = all.clone().map(|e| e.stats().dropped as usize).sum();
        let evictions: u64 = all.clone().map(|e| e.stats().evictions).sum();
        let prefilled_tokens: u64 = all.clone().map(|e| e.stats().prefilled_tokens).sum();
        let cached_prefix_tokens: u64 = all.clone().map(|e| e.stats().cached_prefix_tokens).sum();
        let end_s = all.clone().map(Engine::clock_s).fold(timed.last_arrival_s(), f64::max).min(horizon_s);
        let util = |engines: &[Engine]| -> f64 {
            if end_s > 0.0 {
                engines.iter().map(|e| e.busy_s().min(end_s) / end_s).sum::<f64>() / engines.len() as f64
            } else {
                0.0
            }
        };
        let prefill_utilization = util(&self.prefill);
        let decode_utilization = util(&self.decode);
        let total = self.config.total_wafers();
        let utilization = (prefill_utilization * self.prefill.len() as f64
            + decode_utilization * self.decode.len() as f64)
            / total as f64;

        let serving = ServingReport::from_records(
            &merged,
            slo,
            timed.config.offered_rps(),
            RunTotals {
                queued_at_horizon: queued,
                in_flight_at_horizon: in_flight,
                dropped,
                evictions,
                prefilled_tokens,
                cached_prefix_tokens,
                duration_s: end_s,
                utilization,
            },
        );

        let exported_tokens: u64 = self.prefill.iter().map(|e| e.kv_transfers().exported_tokens).sum();
        let imported_tokens: u64 = self.decode.iter().map(|e| e.kv_transfers().imported_tokens).sum();
        let in_flight_tokens: u64 = self.decode.iter().map(|e| e.pending_imported_tokens() as u64).sum();
        let dropped_tokens: u64 = self.decode.iter().map(|e| e.stats().dropped_imported_tokens).sum();
        let deduped_tokens: u64 = self.migrations.iter().map(|m| m.deduped_tokens).sum();
        let migration_times: Vec<f64> = self.migrations.iter().map(|m| m.arrive_s - m.start_s).collect();
        DisaggReport {
            serving,
            prefill_wafers: self.config.prefill_wafers,
            decode_wafers: self.config.decode_wafers,
            placement: self.config.placement,
            migrations: self.migrations.len(),
            migrated_tokens: self.migrations.iter().map(|m| m.tokens).sum(),
            exported_kv_bytes: exported_tokens * self.kv_bytes_per_token,
            imported_kv_bytes: imported_tokens * self.kv_bytes_per_token,
            in_flight_kv_bytes: in_flight_tokens * self.kv_bytes_per_token,
            dropped_kv_bytes: dropped_tokens * self.kv_bytes_per_token,
            deduped_kv_bytes: deduped_tokens * self.kv_bytes_per_token,
            mean_migration_s: if migration_times.is_empty() {
                0.0
            } else {
                migration_times.iter().sum::<f64>() / migration_times.len() as f64
            },
            max_migration_s: migration_times.iter().fold(0.0, |a: f64, &b| a.max(b)),
            link_energy_j: self.migrations.iter().map(|m| m.energy_j).sum(),
            prefill_utilization,
            decode_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_sim::{OuroborosConfig, OuroborosSystem};
    use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    fn slo() -> SloConfig {
        SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
    }

    fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
        let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
        ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
    }

    #[test]
    fn disagg_cluster_serves_a_light_workload() {
        let sys = tiny_system();
        let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(1, 1)).unwrap();
        let report = cluster.run(&timed(30, 50.0, 1), &slo(), f64::INFINITY);
        assert_eq!(report.serving.injected, 30);
        assert_eq!(report.serving.completed, 30);
        assert!(report.serving.is_conserved());
        assert_eq!(report.migrations, 30, "every request migrates exactly once");
        assert!(
            report.kv_bytes_conserved(),
            "exported {} != imported {}",
            report.exported_kv_bytes,
            report.imported_kv_bytes
        );
        assert_eq!(report.exported_kv_bytes, report.imported_kv_bytes);
        assert!(report.mean_migration_s > 0.0, "migrations take link time");
        assert!(report.link_energy_j > 0.0);
    }

    #[test]
    fn ttft_includes_prefill_queueing_and_migration() {
        let sys = tiny_system();
        let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(1, 1)).unwrap();
        let report = cluster.run(&timed(10, 100.0, 2), &slo(), f64::INFINITY);
        // First token can only appear after the migration lands.
        for m in cluster.migrations() {
            assert!(m.arrive_s > m.start_s);
        }
        assert!(report.serving.ttft.count > 0);
        assert!(
            report.serving.ttft.mean_s > cluster.migrations()[0].arrive_s - cluster.migrations()[0].start_s
        );
    }

    #[test]
    fn prefix_affinity_placement_dedupes_migration_bytes() {
        use ouro_workload::SessionConfig;
        let sys = tiny_system();
        let cfg_trace = SessionConfig {
            groups: 1,
            shared_prefix_tokens: 256,
            share_ratio: 1.0,
            max_turns: 1,
            user_turn_tokens: 32,
            decode_tokens: 16,
        };
        let trace = cfg_trace.generate(20, 31);
        let t = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, 31);
        let run = |placement| {
            let mut cfg = DisaggConfig::new(1, 2);
            cfg.placement = placement;
            let mut cluster = DisaggCluster::new(&sys, cfg).unwrap();
            cluster.run(&t, &slo(), f64::INFINITY)
        };
        let affinity = run(DecodePlacement::PrefixAffinity);
        let spread = run(DecodePlacement::LeastKvLoad);
        assert!(affinity.serving.is_conserved() && spread.serving.is_conserved());
        assert!(affinity.kv_bytes_conserved(), "dedup must keep the byte identity closed");
        assert!(spread.kv_bytes_conserved());
        assert!(
            affinity.deduped_kv_bytes > 0,
            "overlapping sharers placed on one wafer must skip resident prefix bytes"
        );
        assert!(
            affinity.imported_kv_bytes < affinity.exported_kv_bytes,
            "deduplicated migrations ship fewer bytes than were exported"
        );
        assert!(
            affinity.deduped_kv_bytes >= spread.deduped_kv_bytes,
            "prefix-affinity placement cannot dedup less than load-based placement: {} vs {}",
            affinity.deduped_kv_bytes,
            spread.deduped_kv_bytes
        );
        // Determinism of the prefix-aware run.
        assert_eq!(run(DecodePlacement::PrefixAffinity), affinity);
    }

    #[test]
    fn same_seed_same_disagg_report() {
        let sys = tiny_system();
        for placement in [
            DecodePlacement::LeastKvLoad,
            DecodePlacement::MostFreeBlocks,
            DecodePlacement::LocalityAware,
            DecodePlacement::PrefixAffinity,
        ] {
            let run = || {
                let mut cfg = DisaggConfig::new(2, 2);
                cfg.placement = placement;
                let mut cluster = DisaggCluster::new(&sys, cfg).unwrap();
                cluster.run(&timed(60, 400.0, 3), &slo(), f64::INFINITY)
            };
            assert_eq!(run(), run(), "{placement} must be deterministic under a fixed seed");
        }
    }

    #[test]
    fn horizon_truncates_and_conserves_requests_and_bytes() {
        let sys = tiny_system();
        let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(1, 1)).unwrap();
        let t = timed(300, 20_000.0, 4);
        let report = cluster.run(&t, &slo(), 0.004);
        assert!(
            report.serving.is_conserved(),
            "injected {} != completed {} + queued {} + in-flight {} + dropped {}",
            report.serving.injected,
            report.serving.completed,
            report.serving.queued_at_horizon,
            report.serving.in_flight_at_horizon,
            report.serving.dropped
        );
        assert!(report.kv_bytes_conserved());
        assert!(report.serving.duration_s <= 0.004 + 1e-9);
    }

    #[test]
    fn closed_loop_disagg_serves_every_request() {
        let sys = tiny_system();
        let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(1, 2)).unwrap();
        let trace = TraceGenerator::new(9).generate(&LengthConfig::fixed(32, 16), 24);
        let t = ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.01 }.assign(&trace, 9);
        let report = cluster.run(&t, &slo(), f64::INFINITY);
        assert_eq!(report.serving.injected, 24);
        assert_eq!(report.serving.completed, 24);
        assert!(report.serving.is_conserved());
        assert!(report.kv_bytes_conserved());
    }

    #[test]
    fn locality_aware_prefers_near_decode_wafers() {
        let sys = tiny_system();
        let mut cfg = DisaggConfig::new(1, 3);
        cfg.placement = DecodePlacement::LocalityAware;
        let mut cluster = DisaggCluster::new(&sys, cfg).unwrap();
        cluster.run(&timed(12, 30.0, 5), &slo(), f64::INFINITY);
        // Light load: every placement lands on the nearest decode wafer.
        let near: usize = cluster.migrations().iter().filter(|m| m.to_wafer == 1).count();
        assert!(
            near > cluster.migrations().len() / 2,
            "locality-aware must favour the nearest decode wafer under light load"
        );
        let hops: Vec<usize> = cluster.migrations().iter().map(|m| m.wafer_hops).collect();
        assert!(hops.iter().all(|&h| h >= 1), "every migration crosses at least one boundary");
    }

    #[test]
    fn placement_policies_spread_load_under_pressure() {
        let sys = tiny_system();
        for placement in [DecodePlacement::LeastKvLoad, DecodePlacement::MostFreeBlocks] {
            let mut cfg = DisaggConfig::new(1, 2);
            cfg.placement = placement;
            let mut cluster = DisaggCluster::new(&sys, cfg).unwrap();
            let report = cluster.run(&timed(80, 2_000.0, 6), &slo(), f64::INFINITY);
            assert!(report.serving.is_conserved());
            let counts: Vec<usize> = cluster.decode_engines().iter().map(|e| e.records().len()).collect();
            assert!(
                counts.iter().all(|&c| c > 0),
                "{placement} must use every decode wafer under sustained load: {counts:?}"
            );
        }
    }

    #[test]
    fn early_landing_migration_is_not_stranded_by_a_prior_announcement() {
        use ouro_workload::{Request, TimedRequest};
        let sys = tiny_system();
        let mk_trace = |arrivals: Vec<TimedRequest>| TimedTrace {
            arrivals,
            config: ArrivalConfig::Poisson { rate_rps: 1.0 },
            seed: 0,
        };
        // Probe: when does a lone 1500-token prefill announce its migration?
        let mut probe = DisaggCluster::new(&sys, DisaggConfig::new(2, 1)).unwrap();
        probe.run(
            &mk_trace(vec![TimedRequest { request: Request::new(0, 1500, 4), arrival_s: 0.0 }]),
            &slo(),
            f64::INFINITY,
        );
        let announce_s = probe.migrations()[0].start_s;

        // A tiny request arrives just after the bulk migration is announced:
        // its prefill finishes — and its small migration lands — while the
        // 1500-token transfer is still serialising. The decode engine must
        // not have committed its clock to the bulk landing in the meantime.
        let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(2, 1)).unwrap();
        cluster.run(
            &mk_trace(vec![
                TimedRequest { request: Request::new(0, 1500, 4), arrival_s: 0.0 },
                TimedRequest { request: Request::new(1, 32, 4), arrival_s: announce_s * 1.000_001 },
            ]),
            &slo(),
            f64::INFINITY,
        );
        let bulk = cluster.migrations().iter().find(|m| m.id == 0).copied().unwrap();
        let small = cluster.migrations().iter().find(|m| m.id == 1).copied().unwrap();
        assert!(
            small.arrive_s < bulk.arrive_s,
            "scenario guard: the small migration ({} s) must land before the bulk one ({} s)",
            small.arrive_s,
            bulk.arrive_s
        );
        let records = cluster.decode_engines()[0].records();
        let b = records.iter().find(|r| r.id == 1).unwrap();
        assert!(
            b.admitted_s < bulk.arrive_s,
            "the early-landing migration (landed {}) must be admitted before the bulk one lands \
             ({}), not at the decode engine's pre-committed clock: admitted {}",
            small.arrive_s,
            bulk.arrive_s,
            b.admitted_s
        );
    }

    #[test]
    fn faults_on_either_pool_conserve_requests_and_bytes() {
        use ouro_serve::{FaultConfig, FaultInjector};
        let sys = tiny_system();
        let t = timed(50, 400.0, 8);
        let run = || {
            let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(2, 2)).unwrap();
            let mut inj = FaultInjector::new(&sys, 4, FaultConfig::new(0.02, 8), t.last_arrival_s() + 0.5);
            cluster.run_with_faults(&t, &slo(), f64::INFINITY, &mut inj)
        };
        let (report, faults) = run();
        assert!(faults.faults_injected > 0, "a 20ms MTBF must fire during this run");
        assert!(faults.availability < 1.0);
        assert!(
            report.serving.is_conserved(),
            "faults must not lose requests: injected {} completed {} queued {} in-flight {} dropped {}",
            report.serving.injected,
            report.serving.completed,
            report.serving.queued_at_horizon,
            report.serving.in_flight_at_horizon,
            report.serving.dropped
        );
        assert!(report.kv_bytes_conserved(), "migration bytes stay conserved under faults");
        // Identical seeds reproduce the whole degraded run.
        assert_eq!(run(), (report, faults));
    }

    #[test]
    fn decode_wafers_never_recompute_unless_evicted() {
        let sys = tiny_system();
        let mut cluster = DisaggCluster::new(&sys, DisaggConfig::new(1, 1)).unwrap();
        let report = cluster.run(&timed(20, 100.0, 7), &slo(), f64::INFINITY);
        assert!(report.serving.is_conserved());
        if report.serving.evictions == 0 {
            for e in cluster.decode_engines() {
                assert_eq!(e.stats().recomputed_tokens, 0, "imported KV must not be recomputed");
            }
        }
    }
}
