//! Head-to-head driver: colocated continuous batching vs. disaggregation at
//! equal wafer count.
//!
//! Both deployments get the same wafer budget, the same request mix, and
//! the same arrival timestamps; only the organisation differs. Colocated
//! wafers each run prefill and decode interleaved in one continuous batch
//! (so a prefill burst inflates every resident sequence's step time, and
//! with it TPOT); disaggregated wafers specialise, paying KV migration over
//! the optical fabric to keep decode steps free of prefill chunks. The
//! driver sweeps offered load — each side one [`Scenario`] run — and
//! reports both sides' unified [`RunReport`] at every point: the curves
//! that locate where migration cost buys tail latency. An optional fault
//! plan is applied identically (same MTBF, same seed, same wafer streams)
//! to both deployments so the comparison also answers "which organisation
//! degrades more gracefully when cores die".

use ouro_kvcache::KvError;
use ouro_serve::{
    parallel_map_indexed, placements, routers, EngineConfig, FaultConfig, Placement, Router, RunReport,
    Scenario, SloConfig,
};
use ouro_sim::OuroborosSystem;
use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

/// Configuration of one colocated-vs-disaggregated comparison.
#[derive(Debug, Clone)]
pub struct ShootoutConfig {
    /// Total wafers given to each deployment.
    pub wafers: usize,
    /// Prefill wafers of the disaggregated side (decode gets the rest).
    pub prefill_wafers: usize,
    /// Offered loads to sweep, requests per second.
    pub rates_rps: Vec<f64>,
    /// Coefficient of variation of the Gamma inter-arrival gaps (1 =
    /// Poisson-like, >1 = bursty).
    pub cv: f64,
    /// Requests per point.
    pub requests: usize,
    /// Sequence-length mix (prefill-heavy mixes favour disaggregation).
    pub lengths: LengthConfig,
    /// Trace / arrival seed shared by both sides.
    pub seed: u64,
    /// Latency SLO for goodput.
    pub slo: SloConfig,
    /// Routing policy of the colocated side.
    pub colocated_router: Box<dyn Router>,
    /// Decode placement of the disaggregated side.
    pub placement: Box<dyn Placement>,
    /// Per-engine tuning, shared by both sides.
    pub engine: EngineConfig,
    /// Simulation horizon per point.
    pub horizon_s: f64,
    /// Optional runtime fault process, applied identically (same MTBF,
    /// same seed, same wafer streams) to both deployments.
    pub fault: Option<FaultConfig>,
    /// Worker threads for the load sweep (each point is an independent
    /// pair of runs; results return in input order, so any thread count
    /// produces identical output). `1` runs inline.
    pub threads: usize,
}

impl ShootoutConfig {
    /// A comparison with the default policies (least-KV-load on both
    /// sides) over the given loads.
    pub fn new(wafers: usize, prefill_wafers: usize, rates_rps: Vec<f64>) -> ShootoutConfig {
        ShootoutConfig {
            wafers,
            prefill_wafers,
            rates_rps,
            cv: 4.0,
            requests: 200,
            lengths: LengthConfig::fixed(512, 64),
            seed: 2026,
            slo: SloConfig { ttft_s: 0.5, tpot_s: 0.05 },
            colocated_router: routers::least_kv_load(),
            placement: placements::least_kv_load(),
            engine: EngineConfig::default(),
            horizon_s: f64::INFINITY,
            fault: None,
            threads: 1,
        }
    }
}

/// One swept load with both deployments' outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct ShootoutPoint {
    /// Offered load in requests per second.
    pub rate_rps: f64,
    /// The colocated deployment's unified report (fault section populated
    /// when faults were enabled).
    pub colocated: RunReport,
    /// The disaggregated deployment's unified report.
    pub disagg: RunReport,
}

/// Runs the comparison over every configured load.
///
/// # Errors
///
/// Propagates [`KvError::NoKvCores`] from engine construction.
pub fn head_to_head(
    system: &OuroborosSystem,
    config: &ShootoutConfig,
) -> Result<Vec<ShootoutPoint>, KvError> {
    assert!(
        config.prefill_wafers > 0 && config.prefill_wafers < config.wafers,
        "the disaggregated split must leave wafers in both pools"
    );
    let trace = TraceGenerator::new(config.seed).generate(&config.lengths, config.requests);
    parallel_map_indexed(config.rates_rps.clone(), config.threads, |_, rate| {
        let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: config.cv }.assign(&trace, config.seed);
        // Both sides see the identical fault realisation: same wafer
        // count, same seed, same window (the scenario derives the
        // window from the shared horizon and trace).
        let mut colocated = Scenario::colocated(config.wafers)
            .router(config.colocated_router.clone())
            .engine(config.engine)
            .slo(config.slo)
            .horizon(config.horizon_s)
            .workload(timed.clone());
        let mut disagg =
            Scenario::disaggregated(config.prefill_wafers, config.wafers - config.prefill_wafers)
                .placement(config.placement.clone())
                .engine(config.engine)
                .slo(config.slo)
                .horizon(config.horizon_s)
                .workload(timed);
        if let Some(fcfg) = config.fault {
            colocated = colocated.faults(fcfg);
            disagg = disagg.faults(fcfg);
        }
        Ok(ShootoutPoint { rate_rps: rate, colocated: colocated.run(system)?, disagg: disagg.run(system)? })
    })
    .into_iter()
    .collect()
}

/// Formats the comparison as a fixed-width table: one row per load and
/// side, with TTFT/TPOT tails and goodput side by side.
pub fn format_shootout(points: &[ShootoutPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:<14} {:>11} {:>11} {:>11} {:>11} {:>11} {:>8}\n",
        "offered/s", "deployment", "ttft-p50", "ttft-p99", "tpot-p50", "tpot-p99", "goodput/s", "util"
    ));
    for p in points {
        for (label, r) in [("colocated", &p.colocated.serving), ("disaggregated", &p.disagg.serving)] {
            out.push_str(&format!(
                "{:>10.1} {:<14} {:>10.2}ms {:>10.2}ms {:>10.3}ms {:>10.3}ms {:>11.1} {:>7.1}%\n",
                p.rate_rps,
                label,
                r.ttft.p50_s * 1e3,
                r.ttft.p99_s * 1e3,
                r.tpot.p50_s * 1e3,
                r.tpot.p99_s * 1e3,
                r.goodput_rps,
                r.utilization * 100.0,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_sim::{OuroborosConfig, OuroborosSystem};

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    fn config(rates: Vec<f64>) -> ShootoutConfig {
        let mut cfg = ShootoutConfig::new(2, 1, rates);
        cfg.requests = 40;
        cfg.lengths = LengthConfig::fixed(192, 16);
        cfg.seed = 13;
        cfg
    }

    #[test]
    fn both_sides_serve_the_same_workload() {
        let sys = tiny_system();
        let points = head_to_head(&sys, &config(vec![100.0, 300.0])).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.colocated.serving.injected, p.disagg.serving.injected);
            assert_eq!(p.colocated.deployment.kind, "colocated");
            assert_eq!(p.disagg.deployment.kind, "disaggregated");
            assert!(p.colocated.is_conserved());
            assert!(p.disagg.is_conserved());
            assert!(p.disagg.kv_bytes_conserved());
            assert!(p.colocated.migration.is_none());
        }
        let table = format_shootout(&points);
        assert!(table.contains("colocated") && table.contains("disaggregated"));
    }

    #[test]
    fn the_shootout_runs_cleanly_with_faults_enabled() {
        let sys = tiny_system();
        let mut cfg = config(vec![200.0]);
        cfg.fault = Some(FaultConfig::new(0.05, 21));
        let points = head_to_head(&sys, &cfg).unwrap();
        let p = &points[0];
        // Both sides stay conserved and both report the fault process.
        assert!(p.colocated.is_conserved());
        assert!(p.disagg.is_conserved());
        assert!(p.disagg.kv_bytes_conserved());
        let cf = p.colocated.faults.as_ref().expect("faults were enabled");
        let df = p.disagg.faults.as_ref().expect("faults were enabled");
        // Both deployments draw from the identical fault schedule, though
        // each only observes the prefix up to its own drain time.
        assert!(cf.faults_injected > 0, "a 50ms MTBF must fire during the colocated run");
        assert!(df.faults_injected > 0, "a 50ms MTBF must fire during the disaggregated run");
        assert_eq!(cf.config, df.config);
        assert!(cf.availability < 1.0 && df.availability < 1.0);
        // And the comparison is reproducible.
        let again = head_to_head(&sys, &cfg).unwrap();
        assert_eq!(points, again);
    }

    #[test]
    fn the_migration_path_traces_every_kv_handoff() {
        // Tracing the disaggregated side must surface the KV migration
        // path event for event: one export on the prefill pool and one
        // import on the decode pool per shipped migration, paired with
        // the start/arrive markers the byte-conservation stats count.
        let sys = tiny_system();
        let cfg = config(vec![250.0]);
        let trace_src = TraceGenerator::new(cfg.seed).generate(&cfg.lengths, cfg.requests);
        let timed = ArrivalConfig::Bursty { rate_rps: 250.0, cv: cfg.cv }.assign(&trace_src, cfg.seed);
        let outcome =
            Scenario::disaggregated(1, 1).slo(cfg.slo).workload(timed).trace(true).run_full(&sys).unwrap();
        let trace = outcome.trace().expect("tracing was armed");
        let m = outcome.report.migration.as_ref().expect("disagg reports migration");
        assert!(m.migrations > 0, "a prefill-heavy mix must migrate KV");
        assert_eq!(trace.count("migrate_start"), m.migrations);
        assert_eq!(trace.count("migrate_arrive"), m.migrations);
        assert_eq!(trace.count("kv_export"), m.migrations);
        assert_eq!(trace.count("kv_import"), m.migrations);
        assert!(outcome.report.kv_bytes_conserved());
    }

    #[test]
    fn disagg_decode_tail_resists_prefill_bursts() {
        // A bursty, prefill-heavy mix at saturating load: colocated wafers
        // interleave prefill chunks with every decode step, disaggregated
        // decode wafers never see a prefill chunk. The decode-side tail
        // must be at least as good under disaggregation.
        let sys = tiny_system();
        let points = head_to_head(&sys, &config(vec![500.0])).unwrap();
        let p = &points[0];
        assert!(
            p.disagg.serving.tpot.p99_s <= p.colocated.serving.tpot.p99_s,
            "disaggregated p99 TPOT {} must beat colocated {}",
            p.disagg.serving.tpot.p99_s,
            p.colocated.serving.tpot.p99_s
        );
    }
}
