//! Prefill/decode disaggregated serving for Ouroboros multi-wafer
//! deployments.
//!
//! The colocated cluster (`ouro-serve`) runs every wafer as a full replica:
//! prefill chunks and decode tokens share each continuous-batching step, so
//! a burst of long prompts inflates the step time — and therefore the TPOT —
//! of every resident sequence on that wafer. Because Ouroboros has no HBM,
//! the KV cache lives inside the compute crossbars: handing a sequence from
//! one wafer to another is an explicit, modelable bulk transfer over the
//! optical inter-wafer fabric, not a pointer swap. This crate builds the
//! DistServe-style alternative on that substrate:
//!
//! * **phase-specialised pools** ([`DisaggCluster`]): prefill wafers run
//!   prompts in prefill-only mode and export the finished KV; decode wafers
//!   import migrated KV and generate tokens without ever paying a prefill
//!   pass,
//! * **KV migration** over the shared [`ouro_noc::InterWaferLink`] model
//!   (the same link the colocated multi-wafer path charges per-token), with
//!   byte conservation checked end to end
//!   ([`DisaggReport::kv_bytes_conserved`]),
//! * **decode placement** ([`DecodePlacement`]): least-KV-load,
//!   most-free-blocks, or locality-aware (fewer optical crossings),
//! * **a pool-ratio planner** ([`RatioPlanner`]): sweeps the prefill:decode
//!   split of a wafer budget and finds the goodput-optimal ratio for a
//!   model + arrival process,
//! * **a head-to-head driver** ([`head_to_head`]): colocated vs.
//!   disaggregated at equal wafer count, producing TTFT/TPOT/goodput curves
//!   over offered load.
//!
//! # Example
//!
//! ```
//! use ouro_disagg::{DisaggCluster, DisaggConfig};
//! use ouro_model::zoo;
//! use ouro_serve::SloConfig;
//! use ouro_sim::{OuroborosConfig, OuroborosSystem};
//! use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};
//!
//! let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
//! let trace = TraceGenerator::new(7).generate(&LengthConfig::fixed(64, 32), 20);
//! let timed = ArrivalConfig::Bursty { rate_rps: 100.0, cv: 4.0 }.assign(&trace, 7);
//! let mut cluster = DisaggCluster::new(&system, DisaggConfig::new(1, 1)).unwrap();
//! let report = cluster.run(&timed, &SloConfig { ttft_s: 0.5, tpot_s: 0.05 }, f64::INFINITY);
//! assert_eq!(report.serving.completed, 20);
//! assert!(report.kv_bytes_conserved());
//! ```

pub mod cluster;
pub mod planner;
pub mod report;
pub mod shootout;

pub use cluster::{DecodePlacement, DisaggCluster, DisaggConfig};
pub use planner::{best_ratio, PoolPlan, RatioPlanner};
pub use report::{DisaggReport, Migration};
pub use shootout::{format_shootout, head_to_head, ShootoutConfig, ShootoutPoint};
