//! Disaggregated-serving experiment drivers for Ouroboros multi-wafer
//! deployments.
//!
//! The deployment machinery itself — phase-specialised prefill/decode
//! pools, KV migration over the [`ouro_noc::InterWaferLink`] optical
//! fabric, decode-placement policies, byte-conservation accounting — lives
//! in `ouro-serve`'s unified [`Scenario`] driver
//! ([`Scenario::disaggregated`]); this crate keeps the experiment designs
//! built on top of it:
//!
//! * **a pool-ratio planner** ([`RatioPlanner`]): sweeps the
//!   prefill:decode split of a wafer budget and finds the goodput-optimal
//!   ratio for a model + arrival process,
//! * **a head-to-head driver** ([`head_to_head`]): colocated vs.
//!   disaggregated at equal wafer count — optionally under an identical
//!   runtime fault process — producing TTFT/TPOT/goodput curves over
//!   offered load.
//!
//! Because Ouroboros has no HBM, the KV cache lives inside the compute
//! crossbars: handing a sequence from one wafer to another is an explicit,
//! modelable bulk transfer, not a pointer swap — which is what makes the
//! DistServe-style comparison meaningful on this substrate.
//!
//! # Example
//!
//! ```
//! use ouro_disagg::Scenario;
//! use ouro_model::zoo;
//! use ouro_serve::SloConfig;
//! use ouro_sim::{OuroborosConfig, OuroborosSystem};
//! use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};
//!
//! let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
//! let trace = TraceGenerator::new(7).generate(&LengthConfig::fixed(64, 32), 20);
//! let timed = ArrivalConfig::Bursty { rate_rps: 100.0, cv: 4.0 }.assign(&trace, 7);
//! let report = Scenario::disaggregated(1, 1)
//!     .slo(SloConfig { ttft_s: 0.5, tpot_s: 0.05 })
//!     .workload(timed)
//!     .run(&system)
//!     .unwrap();
//! assert_eq!(report.serving.completed, 20);
//! assert!(report.kv_bytes_conserved());
//! ```

pub mod planner;
pub mod shootout;

pub use ouro_serve::{
    placements, Deployment, DisaggConfig, Migration, MigrationStats, Placement, RunOutcome, RunReport,
    Scenario,
};
pub use planner::{best_ratio, PoolPlan, RatioPlanner};
pub use shootout::{format_shootout, head_to_head, ShootoutConfig, ShootoutPoint};
