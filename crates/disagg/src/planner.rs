//! The pool-ratio planner: given a total wafer budget, which prefill:decode
//! split maximises goodput for a model and arrival process?
//!
//! Prefill work scales with prompt tokens, decode work with generated
//! tokens, and the two phases have different arithmetic intensity on the
//! token-grained pipeline — so the goodput-optimal split depends on the
//! workload mix, not just the wafer count. The planner runs the *same* timed
//! trace against every split `p : (total - p)` for `p in 1..total` — each
//! split one disaggregated [`Scenario`] — and reports each split's
//! [`RunReport`]; because the trace and seed are shared, the sweep is
//! deterministic and the argmax is meaningful.

use ouro_kvcache::KvError;
use ouro_serve::{parallel_map_indexed, placements, EngineConfig, Placement, RunReport, Scenario, SloConfig};
use ouro_sim::OuroborosSystem;
use ouro_workload::TimedTrace;

/// One swept split and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolPlan {
    /// Wafers assigned to prefill.
    pub prefill_wafers: usize,
    /// Wafers assigned to decode.
    pub decode_wafers: usize,
    /// The disaggregated run at this split.
    pub report: RunReport,
}

impl PoolPlan {
    /// The planner's objective: SLO goodput in requests per second.
    pub fn goodput_rps(&self) -> f64 {
        self.report.serving.goodput_rps
    }
}

/// Configuration of one pool-ratio sweep.
#[derive(Debug, Clone)]
pub struct RatioPlanner {
    /// Total wafer budget split between the pools.
    pub total_wafers: usize,
    /// Decode-placement policy used at every split.
    pub placement: Box<dyn Placement>,
    /// Per-engine tuning used at every split.
    pub engine: EngineConfig,
    /// Simulation horizon per split (bounds overloaded tails).
    pub horizon_s: f64,
    /// Worker threads for the sweep (each split is an independent run on
    /// the shared trace; results return in ascending-split order, so any
    /// thread count produces identical output). `1` runs inline.
    pub threads: usize,
}

impl RatioPlanner {
    /// A planner over `total_wafers` with default tuning.
    pub fn new(total_wafers: usize) -> RatioPlanner {
        assert!(total_wafers >= 2, "a split needs at least one wafer per pool");
        RatioPlanner {
            total_wafers,
            placement: placements::least_kv_load(),
            engine: EngineConfig::default(),
            horizon_s: f64::INFINITY,
            threads: 1,
        }
    }

    /// Runs every split of the wafer budget against the same timed trace,
    /// in ascending prefill-wafer order, on [`RatioPlanner::threads`]
    /// workers.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] from engine construction.
    pub fn sweep(
        &self,
        system: &OuroborosSystem,
        timed: &TimedTrace,
        slo: &SloConfig,
    ) -> Result<Vec<PoolPlan>, KvError> {
        let splits: Vec<usize> = (1..self.total_wafers).collect();
        parallel_map_indexed(splits, self.threads, |_, prefill| {
            let report = Scenario::disaggregated(prefill, self.total_wafers - prefill)
                .placement(self.placement.clone())
                .engine(self.engine)
                .slo(*slo)
                .horizon(self.horizon_s)
                .workload(timed.clone())
                .run(system)?;
            Ok(PoolPlan { prefill_wafers: prefill, decode_wafers: self.total_wafers - prefill, report })
        })
        .into_iter()
        .collect()
    }
}

/// The goodput-optimal plan of a sweep; ties break toward fewer prefill
/// wafers (decode capacity is the scarcer resource for TPOT), regardless of
/// the slice's order.
pub fn best_ratio(plans: &[PoolPlan]) -> &PoolPlan {
    assert!(!plans.is_empty(), "the sweep produced no plans");
    let mut best = &plans[0];
    for p in &plans[1..] {
        let cmp = p.goodput_rps().total_cmp(&best.goodput_rps());
        if cmp.is_gt() || (cmp.is_eq() && p.prefill_wafers < best.prefill_wafers) {
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_sim::{OuroborosConfig, OuroborosSystem};
    use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    #[test]
    fn sweep_covers_every_split_and_best_is_argmax() {
        let sys = tiny_system();
        let trace = TraceGenerator::new(11).generate(&LengthConfig::fixed(96, 24), 40);
        let timed = ArrivalConfig::Bursty { rate_rps: 400.0, cv: 4.0 }.assign(&trace, 11);
        let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
        let planner = RatioPlanner::new(4);
        let plans = planner.sweep(&sys, &timed, &slo).unwrap();
        assert_eq!(plans.len(), 3);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.prefill_wafers, i + 1);
            assert_eq!(p.prefill_wafers + p.decode_wafers, 4);
            assert_eq!(p.report.deployment.prefill_wafers, p.prefill_wafers);
            assert!(p.report.is_conserved());
            assert!(p.report.kv_bytes_conserved());
        }
        let best = best_ratio(&plans);
        for p in &plans {
            assert!(
                best.goodput_rps() >= p.goodput_rps(),
                "best ratio {}:{} must dominate {}:{}",
                best.prefill_wafers,
                best.decode_wafers,
                p.prefill_wafers,
                p.decode_wafers
            );
        }
    }

    #[test]
    fn planner_is_deterministic() {
        let sys = tiny_system();
        let trace = TraceGenerator::new(3).generate(&LengthConfig::fixed(64, 16), 30);
        let timed = ArrivalConfig::Poisson { rate_rps: 300.0 }.assign(&trace, 3);
        let slo = SloConfig { ttft_s: 0.5, tpot_s: 0.05 };
        let planner = RatioPlanner::new(3);
        let a = planner.sweep(&sys, &timed, &slo).unwrap();
        let b = planner.sweep(&sys, &timed, &slo).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ties_break_toward_fewer_prefill_wafers() {
        let mk = |prefill: usize, goodput: f64| -> PoolPlan {
            let sys = tiny_system();
            let trace = TraceGenerator::new(1).generate(&LengthConfig::fixed(32, 8), 2);
            let timed = ArrivalConfig::Poisson { rate_rps: 10.0 }.assign(&trace, 1);
            let slo = SloConfig { ttft_s: 10.0, tpot_s: 1.0 };
            let mut report = Scenario::disaggregated(prefill, 1).slo(slo).workload(timed).run(&sys).unwrap();
            report.serving.goodput_rps = goodput;
            PoolPlan { prefill_wafers: prefill, decode_wafers: 1, report }
        };
        let plans = vec![mk(1, 5.0), mk(2, 5.0), mk(3, 4.0)];
        assert_eq!(best_ratio(&plans).prefill_wafers, 1);
        // The tie-break is on the plan, not the slice order.
        let reversed = vec![mk(3, 4.0), mk(2, 5.0), mk(1, 5.0)];
        assert_eq!(best_ratio(&reversed).prefill_wafers, 1);
    }
}
