//! Reports of disaggregated runs: serving metrics plus KV-migration
//! accounting.
//!
//! Byte conservation is the core invariant: every byte of KV a prefill
//! wafer exports is either imported into a decode wafer's cache, still on
//! the wire (announced but not admitted) at the horizon, discarded because
//! the sequence could not fit even an empty decode cache, or deduplicated
//! against the target's shared-prefix cache at announce time (it never
//! touched the wire). The identity
//! `exported = imported + in_flight + dropped + deduped` must hold at any
//! observation instant; after a run drains completely the in-flight and
//! dropped terms are zero.

use crate::cluster::DecodePlacement;
use ouro_serve::ServingReport;

/// One KV migration from a prefill wafer to a decode wafer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    /// Global request id.
    pub id: usize,
    /// Global index of the source (prefill) wafer.
    pub from_wafer: usize,
    /// Global index of the destination (decode) wafer.
    pub to_wafer: usize,
    /// Tokens that actually travelled the wire (the prompt at prefill
    /// completion minus the prefix tokens already resident on the target).
    pub tokens: u64,
    /// Prompt tokens deduplicated against the target's shared-prefix cache
    /// at announce time (skipped on the wire).
    pub deduped_tokens: u64,
    /// Bytes on the wire: wire tokens × the model's full per-token KV
    /// footprint.
    pub bytes: u64,
    /// Prefill-completion instant (migration start).
    pub start_s: f64,
    /// Instant the KV lands on the decode wafer and becomes admissible.
    pub arrive_s: f64,
    /// Optical wafer boundaries crossed.
    pub wafer_hops: usize,
    /// Link energy of the transfer.
    pub energy_j: f64,
}

/// Aggregate outcome of one disaggregated serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct DisaggReport {
    /// SLO metrics over merged per-request records (arrival on the prefill
    /// side, first token and completion on the decode side).
    pub serving: ServingReport,
    /// Wafers in the prefill pool.
    pub prefill_wafers: usize,
    /// Wafers in the decode pool.
    pub decode_wafers: usize,
    /// Decode-placement policy used.
    pub placement: DecodePlacement,
    /// KV migrations started.
    pub migrations: usize,
    /// Whole-sequence tokens migrated.
    pub migrated_tokens: u64,
    /// KV bytes exported by prefill wafers.
    pub exported_kv_bytes: u64,
    /// KV bytes imported (admitted) into decode caches.
    pub imported_kv_bytes: u64,
    /// KV bytes announced but still in flight (not admitted) at the horizon.
    pub in_flight_kv_bytes: u64,
    /// KV bytes discarded because the sequence could not fit an empty
    /// decode cache.
    pub dropped_kv_bytes: u64,
    /// KV bytes that never touched the wire because the target decode wafer
    /// already held the sequence's shared prefix at announce time.
    pub deduped_kv_bytes: u64,
    /// Mean migration wall-clock (setup + head latency + serialisation).
    pub mean_migration_s: f64,
    /// Slowest migration of the run.
    pub max_migration_s: f64,
    /// Total optical link energy spent on KV migration.
    pub link_energy_j: f64,
    /// Mean busy fraction of the prefill pool.
    pub prefill_utilization: f64,
    /// Mean busy fraction of the decode pool.
    pub decode_utilization: f64,
}

impl DisaggReport {
    /// The migration-byte conservation identity: every exported byte is
    /// imported, in flight, accounted as dropped, or deduplicated against
    /// the target's prefix cache.
    pub fn kv_bytes_conserved(&self) -> bool {
        self.exported_kv_bytes
            == self.imported_kv_bytes
                + self.in_flight_kv_bytes
                + self.dropped_kv_bytes
                + self.deduped_kv_bytes
    }

    /// Mean migrated KV per request, in bytes (0 with no migrations).
    pub fn mean_migration_bytes(&self) -> f64 {
        if self.migrations == 0 {
            0.0
        } else {
            self.exported_kv_bytes as f64 / self.migrations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_serve::{RunTotals, ServingReport, SloConfig};

    fn report(exported: u64, imported: u64, in_flight: u64, dropped: u64) -> DisaggReport {
        DisaggReport {
            serving: ServingReport::from_records(
                &[],
                &SloConfig { ttft_s: 1.0, tpot_s: 0.1 },
                Some(1.0),
                RunTotals::default(),
            ),
            prefill_wafers: 1,
            decode_wafers: 1,
            placement: DecodePlacement::LeastKvLoad,
            migrations: 2,
            migrated_tokens: 100,
            exported_kv_bytes: exported,
            imported_kv_bytes: imported,
            in_flight_kv_bytes: in_flight,
            dropped_kv_bytes: dropped,
            deduped_kv_bytes: 0,
            mean_migration_s: 0.001,
            max_migration_s: 0.002,
            link_energy_j: 0.1,
            prefill_utilization: 0.5,
            decode_utilization: 0.5,
        }
    }

    #[test]
    fn conservation_identity() {
        assert!(report(100, 100, 0, 0).kv_bytes_conserved());
        assert!(report(100, 60, 30, 10).kv_bytes_conserved());
        assert!(!report(100, 60, 30, 0).kv_bytes_conserved());
    }

    #[test]
    fn deduped_bytes_close_the_conservation_identity() {
        let mut r = report(100, 60, 10, 0);
        assert!(!r.kv_bytes_conserved());
        r.deduped_kv_bytes = 30;
        assert!(r.kv_bytes_conserved(), "prefix-deduplicated bytes complete the identity");
    }

    #[test]
    fn mean_migration_bytes_averages_over_migrations() {
        assert_eq!(report(100, 100, 0, 0).mean_migration_bytes(), 50.0);
        let mut r = report(0, 0, 0, 0);
        r.migrations = 0;
        assert_eq!(r.mean_migration_bytes(), 0.0);
    }
}
