//! Standalone entry point for the workspace audit — `experiments audit`
//! drives the same library; this binary exists so the lint pass can run
//! before (or without) building the simulator crates.
//!
//! ```text
//! cargo run -p ouro-audit --bin ouro-audit -- [--root DIR] [--out PATH] [--fix-list]
//! ```
//!
//! Exit status: 0 when every finding is suppressed, 1 on unsuppressed
//! violations, 2 on usage or I/O errors.

use std::path::PathBuf;

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: ouro-audit [--root DIR] [--out PATH] [--fix-list]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut out: Option<String> = None;
    let mut fix_list = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage("--root needs a path"))))
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--fix-list" => fix_list = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = root
        .or_else(|| ouro_audit::find_root(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))))
        .unwrap_or_else(|| usage("no workspace root found (run inside the repo or pass --root)"));
    let report = match ouro_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => usage(&format!("cannot scan {}: {e}", root.display())),
    };
    if fix_list {
        print!("{}", report.fix_list());
    } else {
        print!("{}", report.table());
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {} finding row(s) to {path}", report.findings.len());
    }
    std::process::exit(if report.violations() == 0 { 0 } else { 1 });
}
