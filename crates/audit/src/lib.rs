//! `ouro-audit` — the workspace determinism & invariant lint pass.
//!
//! The reproduction's value rests on contracts the compiler cannot see:
//! bit-identical seed-pinned runs, checkpoint/resume byte-identity,
//! thread-count-invariant sweeps, and pinned JSON schemas. This crate
//! makes those contracts machine-checked: it lexes every Rust source in
//! the workspace token-accurately (comments, strings, raw strings, and
//! char literals can never trigger a rule) and runs the rule catalog in
//! [`rules::RULES`] over the token streams, producing file/line findings,
//! a human table, and a pinned flat-JSON report
//! ([`AUDIT_SCHEMA_VERSION`] 1, [`AUDIT_V1_KEYS`]).
//!
//! # Suppressions
//!
//! A finding is suppressed per site with a plain line comment on the same
//! line or the line directly above:
//!
//! ```text
//! // audit: allow(wall-clock, "profile-gated; never reaches simulated results")
//! let t0 = self.profile.is_some().then(Instant::now);
//! ```
//!
//! The rule id must be one of the catalog's and the reason must be
//! non-empty — anything else is itself reported under `allow-syntax`.
//! Doc comments (`///`, `//!`) never parse as directives, so rule
//! documentation can show the syntax without arming it. Suppressed
//! findings stay in the report (marked, with their reason); only
//! unsuppressed ones fail the run.
//!
//! # Entry points
//!
//! [`audit_workspace`] walks a workspace root (skipping `vendor/`,
//! `target/`, and VCS metadata) and is what `experiments audit` and the
//! `ouro-audit` binary call; [`audit_sources`] runs the same engine over
//! in-memory `(path, text)` pairs and is what the per-rule fixture tests
//! drive.

pub mod lexer;
pub mod rules;

use rules::{Allow, RawFinding, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the flat JSON finding-row schema. Bumped on any key change.
pub const AUDIT_SCHEMA_VERSION: u32 = 1;

/// Pinned key list of one finding row (null-padded: `reason` is `null`
/// unless the finding is suppressed).
pub const AUDIT_V1_KEYS: &[&str] =
    &["schema_version", "rule", "path", "line", "message", "suppressed", "reason"];

/// One rule hit, after suppression matching.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id from [`rules::RULES`].
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What is wrong and what to use instead.
    pub message: String,
    /// `Some(reason)` when an `audit: allow` directive covers the site.
    pub suppressed: Option<String>,
}

/// An `audit: allow` directive that matched no finding — surfaced so
/// stale suppressions get cleaned up rather than silently armed.
#[derive(Debug, Clone)]
pub struct UnusedAllow {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The rule the directive names.
    pub rule: String,
}

/// The audit's complete result over one file set.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every finding (suppressed and not), sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Directives that suppressed nothing.
    pub unused_allows: Vec<UnusedAllow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Findings not covered by a suppression — the CI-gating count.
    pub fn violations(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed.is_none()).count()
    }

    /// Suppressed findings.
    pub fn suppressed(&self) -> usize {
        self.findings.len() - self.violations()
    }

    /// The human report: one row per finding, then the per-rule tally.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<52} {}\n{:-<18} {:-<52} {:-<40}\n",
            "rule", "site", "finding", "", "", ""
        ));
        for f in &self.findings {
            let site = format!("{}:{}", f.path, f.line);
            let mark = if f.suppressed.is_some() { " [allowed]" } else { "" };
            out.push_str(&format!("{:<18} {:<52} {}{}\n", f.rule, site, f.message, mark));
            if let Some(reason) = &f.suppressed {
                out.push_str(&format!("{:<18} {:<52}   reason: {}\n", "", "", reason));
            }
        }
        for &(rule, _) in rules::RULES {
            let hits = self.findings.iter().filter(|f| f.rule == rule).count();
            let open = self.findings.iter().filter(|f| f.rule == rule && f.suppressed.is_none()).count();
            out.push_str(&format!("{rule:<18} {hits:>3} finding(s), {open} unsuppressed\n"));
        }
        out.push_str(&format!(
            "{} file(s) scanned: {} violation(s), {} allowed\n",
            self.files_scanned,
            self.violations(),
            self.suppressed()
        ));
        for u in &self.unused_allows {
            out.push_str(&format!("note: unused allow({}) at {}:{}\n", u.rule, u.path, u.line));
        }
        out
    }

    /// `path:line rule` per unsuppressed finding — pipeable to an editor.
    pub fn fix_list(&self) -> String {
        self.findings
            .iter()
            .filter(|f| f.suppressed.is_none())
            .map(|f| format!("{}:{} {}\n", f.path, f.line, f.rule))
            .collect()
    }

    /// One flat JSON row per finding, keys pinned to [`AUDIT_V1_KEYS`].
    pub fn json_rows(&self) -> Vec<String> {
        self.findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"schema_version\": {}, \"rule\": {}, \"path\": {}, \"line\": {}, \
                     \"message\": {}, \"suppressed\": {}, \"reason\": {}}}",
                    AUDIT_SCHEMA_VERSION,
                    json_str(f.rule),
                    json_str(&f.path),
                    f.line,
                    json_str(&f.message),
                    f.suppressed.is_some(),
                    f.suppressed.as_deref().map_or_else(|| "null".to_string(), json_str),
                )
            })
            .collect()
    }

    /// The rows as one JSON array document.
    pub fn json(&self) -> String {
        let rows: Vec<String> = self.json_rows().iter().map(|r| format!("  {r}")).collect();
        if rows.is_empty() {
            "[]\n".to_string()
        } else {
            format!("[\n{}\n]\n", rows.join(",\n"))
        }
    }
}

/// JSON string escaping, matching the house emitter exactly.
fn json_str(s: &str) -> String {
    let mut escaped = String::with_capacity(s.len() + 2);
    escaped.push('"');
    for c in s.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped.push('"');
    escaped
}

/// Runs the whole rule catalog over in-memory `(relative path, source)`
/// pairs — the pure core behind [`audit_workspace`] and the fixture tests.
pub fn audit_sources(sources: &[(String, String)]) -> AuditReport {
    let files: Vec<SourceFile<'_>> = sources.iter().map(|(rel, text)| SourceFile::new(rel, text)).collect();

    // Per-file raw findings and directives.
    let mut raw: Vec<Vec<RawFinding>> = Vec::with_capacity(files.len());
    let mut allows: Vec<Vec<Allow>> = Vec::with_capacity(files.len());
    for f in &files {
        let mut file_raw = Vec::new();
        rules::check_file(f, &mut file_raw);
        let file_allows = rules::parse_allows(f, &mut file_raw);
        raw.push(file_raw);
        allows.push(file_allows);
    }
    // The cross-file registry rule.
    for (fi, finding) in rules::schema_pin(&files) {
        raw[fi].push(finding);
    }

    // Suppression matching: a trailing directive covers its own line, a
    // standalone directive covers the line directly below.
    let mut report = AuditReport { files_scanned: files.len(), ..AuditReport::default() };
    for (fi, file) in files.iter().enumerate() {
        for r in &raw[fi] {
            let covering = allows[fi].iter_mut().find(|a| a.rule == r.rule && a.target == r.line);
            let suppressed = covering.map(|a| {
                a.used = true;
                a.reason.clone()
            });
            report.findings.push(Finding {
                rule: r.rule,
                path: file.rel.to_string(),
                line: r.line,
                message: r.message.clone(),
                suppressed,
            });
        }
        for a in &allows[fi] {
            if !a.used {
                report.unused_allows.push(UnusedAllow {
                    path: file.rel.to_string(),
                    line: a.line,
                    rule: a.rule.clone(),
                });
            }
        }
    }
    report.findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Collects every `.rs` file under `root`, skipping `vendor/`, `target/`,
/// and VCS/CI metadata. Paths are returned workspace-relative with `/`
/// separators, sorted, so the report order is machine-independent.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk and file reads.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, fs::read_to_string(&path)?));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Audits the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from [`collect_workspace_files`].
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    Ok(audit_sources(&collect_workspace_files(root)?))
}

/// Finds the workspace root at or above `start`: the nearest ancestor
/// holding both a `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn suppression_covers_same_line_and_line_above_only() {
        let text = "// audit: allow(default-hash-map, \"above\")\n\
                    let a: HashMap<u32, u32> = HashMap::new();\n\
                    let b: HashMap<u32, u32> = HashMap::new(); // audit: allow(default-hash-map, \"trailing\")\n\
                    let c: HashMap<u32, u32> = HashMap::new();\n";
        let r = audit_sources(&[src("crates/serve/src/x.rs", text)]);
        // Lines 2 and 3 hold two HashMap tokens each; one allow covers both
        // on its line. Line 4 is uncovered.
        assert_eq!(r.findings.len(), 6, "{:?}", r.findings);
        assert_eq!(r.violations(), 2);
        assert!(r.findings.iter().filter(|f| f.line == 2).all(|f| f.suppressed.as_deref() == Some("above")));
        assert!(r
            .findings
            .iter()
            .filter(|f| f.line == 3)
            .all(|f| f.suppressed.as_deref() == Some("trailing")));
        assert!(r.findings.iter().filter(|f| f.line == 4).all(|f| f.suppressed.is_none()));
        assert!(r.unused_allows.is_empty());
    }

    #[test]
    fn unused_allows_are_surfaced_not_silently_armed() {
        let text = "// audit: allow(wall-clock, \"nothing here\")\nlet x = 1;\n";
        let r = audit_sources(&[src("crates/serve/src/x.rs", text)]);
        assert_eq!(r.violations(), 0);
        assert_eq!(r.unused_allows.len(), 1);
        assert_eq!(r.unused_allows[0].rule, "wall-clock");
    }

    #[test]
    fn json_rows_follow_the_pinned_key_set() {
        let r = audit_sources(&[src("crates/serve/src/x.rs", "let a: HashSet<u32> = HashSet::new();\n")]);
        for row in r.json_rows() {
            let mut at = 0usize;
            for key in AUDIT_V1_KEYS {
                let needle = format!("\"{key}\": ");
                let pos = row[at..].find(&needle).unwrap_or_else(|| panic!("{key} missing in {row}"));
                at += pos;
            }
            assert!(row.starts_with(&format!("{{\"schema_version\": {AUDIT_SCHEMA_VERSION}")));
        }
        assert_eq!(r.json(), format!("[\n  {},\n  {}\n]\n", r.json_rows()[0], r.json_rows()[1]));
    }

    #[test]
    fn empty_report_renders_an_empty_array() {
        let r = audit_sources(&[src("crates/serve/src/x.rs", "fn main() {}\n")]);
        assert_eq!(r.violations(), 0);
        assert_eq!(r.json(), "[]\n");
    }
}
