//! A token-accurate lexer for the subset of Rust the audit rules need.
//!
//! The rules match identifier/punctuation shapes (`Instant :: now`,
//! `. partial_cmp (`), so the one thing this lexer must get exactly right
//! is *what is code and what is not*: line comments, nested block
//! comments, cooked strings with escapes, raw strings with arbitrary hash
//! fences (`r##"…"##`, `br#"…"#`, `c"…"`), char literals, and the
//! char-vs-lifetime ambiguity (`'a'` vs `'a`). Everything else — numbers,
//! identifiers (including `r#raw` identifiers), single-byte punctuation —
//! is tokenized loosely; a lint never needs to evaluate a literal, only to
//! know its span.
//!
//! Guarantees (property-tested in `tests/lexer_props.rs`): lexing never
//! panics on any input, token spans are in-bounds and strictly ascending,
//! adjacent tokens never overlap, and every non-whitespace byte of the
//! input is covered by exactly one token.

/// What a token is — exactly as much classification as the rules consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including `r#raw` identifiers).
    Ident,
    /// A numeric literal (loosely consumed; suffixes included).
    Num,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// One byte of punctuation (`::` is two `Punct(b':')` tokens).
    Punct(u8),
    /// `// …` to end of line.
    LineComment,
    /// `/* … */`, nesting handled; unterminated runs to end of input.
    BlockComment,
    /// A cooked string or byte/C string (`"…"`, `b"…"`, `c"…"`).
    Str,
    /// A raw string of any fence width (`r"…"`, `br##"…"##`).
    RawStr,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
}

/// One token: kind plus byte span plus the 1-based line it starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Total: every input, however malformed, produces a
/// token stream (unterminated literals and comments extend to the end of
/// the input rather than failing).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' => self.slash(),
                b'"' => self.cooked_string(self.pos),
                b'\'' => self.quote(),
                b'r' | b'b' | b'c' => self.maybe_prefixed_literal(),
                _ if is_ident_start(b) => self.ident(self.pos),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokKind::Punct(b), self.pos, self.pos + 1);
                    self.pos += 1;
                }
            }
        }
        self.toks
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        self.toks.push(Tok { kind, start, end, line: self.line });
    }

    /// Emits a token and advances `line` past the newlines it contains.
    fn push_multiline(&mut self, kind: TokKind, start: usize, end: usize) {
        self.toks.push(Tok { kind, start, end, line: self.line });
        self.line += self.src[start..end].iter().filter(|&&b| b == b'\n').count() as u32;
    }

    fn at(&self, pos: usize) -> Option<u8> {
        self.src.get(pos).copied()
    }

    fn slash(&mut self) {
        let start = self.pos;
        match self.at(start + 1) {
            Some(b'/') => {
                let end =
                    self.src[start..].iter().position(|&b| b == b'\n').map_or(self.src.len(), |i| start + i);
                self.push(TokKind::LineComment, start, end);
                self.pos = end;
            }
            Some(b'*') => {
                let mut depth = 1usize;
                let mut i = start + 2;
                while i < self.src.len() && depth > 0 {
                    match (self.src[i], self.at(i + 1)) {
                        (b'/', Some(b'*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (b'*', Some(b'/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        _ => i += 1,
                    }
                }
                self.push_multiline(TokKind::BlockComment, start, i);
                self.pos = i;
            }
            _ => {
                self.push(TokKind::Punct(b'/'), start, start + 1);
                self.pos = start + 1;
            }
        }
    }

    /// A cooked string starting at the opening `"` (which may be preceded
    /// by a `b`/`c` prefix — `start` is the prefix position then).
    fn cooked_string(&mut self, start: usize) {
        let mut i = self.pos + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2,
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        let end = i.min(self.src.len());
        self.push_multiline(TokKind::Str, start, end);
        self.pos = end;
    }

    /// A raw string starting at its `r` (possibly after a `b` prefix at
    /// `start`): `r`, zero or more `#`, `"`, body, `"`, same `#` count.
    fn raw_string(&mut self, start: usize, r_pos: usize) {
        let mut hashes = 0usize;
        let mut i = r_pos + 1;
        while self.at(i) == Some(b'#') {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(self.at(i), Some(b'"'));
        i += 1;
        let end = loop {
            match self.at(i) {
                None => break self.src.len(),
                Some(b'"')
                    if self.src[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes =>
                {
                    break i + 1 + hashes;
                }
                _ => i += 1,
            }
        };
        self.push_multiline(TokKind::RawStr, start, end);
        self.pos = end;
    }

    /// `'` starts either a lifetime or a char literal. A lifetime is `'`
    /// followed by an identifier run *not* closed by another `'`.
    fn quote(&mut self) {
        let start = self.pos;
        if self.at(start + 1).is_some_and(is_ident_start) && self.at(start + 1) != Some(b'\\') {
            let mut i = start + 2;
            while self.at(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.at(i) != Some(b'\'') {
                self.push(TokKind::Lifetime, start, i);
                self.pos = i;
                return;
            }
        }
        // A char literal; it cannot span a line, so an unterminated one
        // ends at the newline rather than swallowing the file.
        let mut i = start + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2,
                b'\'' => {
                    i += 1;
                    break;
                }
                b'\n' => break,
                _ => i += 1,
            }
        }
        let end = i.min(self.src.len());
        self.push(TokKind::Char, start, end);
        self.pos = end;
    }

    /// `r`/`b`/`c` may prefix a literal (`r"…"`, `r#"…"#`, `b"…"`, `b'x'`,
    /// `br#"…"#`, `c"…"`) or just start an identifier (`rate`). `r#ident`
    /// is a raw identifier.
    fn maybe_prefixed_literal(&mut self) {
        let start = self.pos;
        let b = self.src[start];
        let next = self.at(start + 1);
        match (b, next) {
            (b'r', Some(b'"')) => {
                self.raw_string(start, start);
            }
            (b'r', Some(b'#')) => {
                // r#… — raw string (hashes then `"`) or raw identifier.
                let mut i = start + 1;
                while self.at(i) == Some(b'#') {
                    i += 1;
                }
                if self.at(i) == Some(b'"') {
                    self.raw_string(start, start);
                } else {
                    self.ident(start);
                }
            }
            (b'b' | b'c', Some(b'"')) => {
                self.pos = start + 1;
                self.cooked_string(start);
            }
            (b'b', Some(b'\'')) => {
                self.pos = start + 1;
                self.quote();
                // Re-stamp the token to include the `b` prefix.
                if let Some(t) = self.toks.last_mut() {
                    t.start = start;
                }
            }
            (b'b', Some(b'r')) if matches!(self.at(start + 2), Some(b'"' | b'#')) => {
                // br"…" / br#"…"# — but `br#ident` would be `br` + raw
                // ident; only treat as raw string when hashes end in `"`.
                let mut i = start + 2;
                while self.at(i) == Some(b'#') {
                    i += 1;
                }
                if self.at(i) == Some(b'"') {
                    self.raw_string(start, start + 1);
                } else {
                    self.ident(start);
                }
            }
            _ => self.ident(start),
        }
    }

    fn ident(&mut self, start: usize) {
        let mut i = start;
        if self.at(i) == Some(b'r') && self.at(i + 1) == Some(b'#') {
            i += 2; // raw identifier prefix
        }
        while self.at(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        let end = i.max(start + 1).min(self.src.len());
        self.push(TokKind::Ident, start, end);
        self.pos = end;
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut i = start;
        while let Some(b) = self.at(i) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                i += 1;
            } else if b == b'.' && self.at(i + 1).is_some_and(|d| d.is_ascii_digit()) && i > start {
                // `1.5` consumes the dot; `0..5` leaves `..` as punctuation.
                i += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.src[i - 1], b'e' | b'E')
                && self.at(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                i += 1; // exponent sign: 1e-5
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, i);
        self.pos = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn comments_strings_and_chars_are_not_code() {
        let src = r##"let x = "HashMap"; // HashMap
/* HashMap /* nested */ still comment */ 'H' r#"HashMap"# 'a"##;
        let idents: Vec<String> =
            lex(src).iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text(src).to_string()).collect();
        assert_eq!(idents, vec!["let", "x"], "HashMap only appears in non-code tokens");
        let has = |k: TokKind| lex(src).iter().any(|t| t.kind == k);
        assert!(has(TokKind::LineComment));
        assert!(has(TokKind::BlockComment));
        assert!(has(TokKind::Str));
        assert!(has(TokKind::RawStr));
        assert!(has(TokKind::Char));
        assert!(has(TokKind::Lifetime));
    }

    #[test]
    fn char_vs_lifetime_disambiguation() {
        let one = |src: &str| {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?} lexes to {toks:?}");
            toks[0].kind
        };
        assert_eq!(one("'a'"), TokKind::Char);
        assert_eq!(one("'\\''"), TokKind::Char);
        assert_eq!(one("'\\u{1F600}'"), TokKind::Char);
        assert_eq!(one("'static"), TokKind::Lifetime);
        assert_eq!(one("b'x'"), TokKind::Char);
        let src = "&'a str";
        assert!(lex(src).iter().any(|t| t.kind == TokKind::Lifetime && t.text(src) == "'a"));
    }

    #[test]
    fn raw_strings_respect_hash_fences() {
        let src = r####"r###"inner "# quote "## still"### after"####;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::RawStr);
        assert!(toks[0].1.ends_with("\"###"));
        assert_eq!(toks[1], (TokKind::Ident, "after".to_string()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "r#match rate";
        assert_eq!(
            kinds(src),
            vec![(TokKind::Ident, "r#match".to_string()), (TokKind::Ident, "rate".to_string())]
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* x\n y */\nb \"s\nt\" c";
        let at = |name: &str| lex(src).iter().find(|t| t.text(src) == name).unwrap().line;
        assert_eq!(at("a"), 1);
        assert_eq!(at("b"), 4);
        assert_eq!(at("c"), 5, "the newline inside the string advances the count");
    }

    #[test]
    fn unterminated_literals_run_to_end_without_panicking() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"", "'\\"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert!(toks.iter().all(|t| t.end <= src.len()));
        }
    }

    #[test]
    fn ranges_do_not_merge_into_float_literals() {
        let src = "0..5 1.5 1e-5 0x1f";
        let nums: Vec<String> =
            lex(src).iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text(src).to_string()).collect();
        assert_eq!(nums, vec!["0", "5", "1.5", "1e-5", "0x1f"]);
    }
}
