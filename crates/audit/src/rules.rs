//! The rule catalog: every contract in this workspace that the compiler
//! cannot see, checked token-accurately.
//!
//! Each rule is a pure function over the lexed code-token stream of one
//! file (or, for the cross-file `schema-pin` registry, of the whole
//! workspace). Comments, strings, and char literals are already stripped
//! by the lexer, so a rule matching `HashMap` can never fire on prose or
//! on a fixture embedded in a string literal.

use crate::lexer::{lex, Tok, TokKind};

/// Rule identifiers with one-line rationales, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "default-hash-map",
        "simulator crates must not use randomly-seeded std HashMap/HashSet: iteration order can \
         reach reports; use kvcache::fasthash::FastMap or BTreeMap/BTreeSet",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime outside bench code breaks seed-pinned bit-identity unless the \
         site is profile-gated and allow-tagged",
    ),
    (
        "deprecated-submit",
        "the deprecated submit/submit_prefill_only/submit_imported wrappers must not be called \
         in-tree; use submit_with(Admission::…)",
    ),
    (
        "stage-emit",
        "trace emissions in crates/serve/src/stage/ must route through Stage::emit so the \
         EVENT_OWNERS table cannot drift from the code",
    ),
    (
        "float-sort",
        "partial_cmp().unwrap()/expect() ordering in simulator crates panics on NaN and hides \
         total-order intent; use f64::total_cmp or F64Key",
    ),
    (
        "schema-pin",
        "every *SCHEMA_VERSION const must be referenced by a test (a tests/ file or a \
         #[cfg(test)] module) pinning its key set against silent drift",
    ),
    (
        "allow-syntax",
        "a comment that looks like an audit directive but does not parse as \
         `audit: allow(<known-rule>, \"<non-empty reason>\")` is reported, never ignored",
    ),
];

/// Crates whose simulated results must be bit-identical per seed — the
/// scope of the `default-hash-map` and `float-sort` rules.
pub const SIM_CRATES: &[&str] = &["serve", "kvcache", "disagg", "workload", "trace"];

/// One raw rule hit, before suppression matching.
#[derive(Debug, Clone)]
pub(crate) struct RawFinding {
    pub(crate) rule: &'static str,
    pub(crate) line: u32,
    pub(crate) message: String,
}

/// A parsed `// audit: allow(rule, "reason")` directive.
#[derive(Debug, Clone)]
pub(crate) struct Allow {
    /// Line of the directive comment itself.
    pub(crate) line: u32,
    /// The line the directive covers: its own when it trails code, the
    /// one below when it stands alone.
    pub(crate) target: u32,
    pub(crate) rule: String,
    pub(crate) reason: String,
    pub(crate) used: bool,
}

/// One lexed source file plus its code-token view (comments, strings,
/// chars, and lifetimes filtered out — what the shape rules scan).
pub(crate) struct SourceFile<'a> {
    pub(crate) rel: &'a str,
    pub(crate) text: &'a str,
    pub(crate) toks: Vec<Tok>,
    /// Indices into `toks` of code tokens (idents, numbers, punctuation).
    pub(crate) code: Vec<usize>,
}

impl<'a> SourceFile<'a> {
    pub(crate) fn new(rel: &'a str, text: &'a str) -> SourceFile<'a> {
        let toks = lex(text);
        let code = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Punct(_)))
            .map(|(i, _)| i)
            .collect();
        SourceFile { rel, text, toks, code }
    }

    /// The `i`-th code token's text, when it is an identifier.
    fn ident(&self, i: usize) -> Option<&str> {
        let t = self.toks.get(*self.code.get(i)?)?;
        (t.kind == TokKind::Ident).then(|| t.text(self.text))
    }

    /// Whether the `i`-th code token is the punctuation byte `b`.
    fn punct(&self, i: usize, b: u8) -> bool {
        self.code.get(i).and_then(|&j| self.toks.get(j)).is_some_and(|t| t.kind == TokKind::Punct(b))
    }

    /// 1-based line of the `i`-th code token.
    fn line(&self, i: usize) -> u32 {
        self.toks[self.code[i]].line
    }

    /// The crate this file belongs to (`crates/<name>/…`), if any.
    pub(crate) fn crate_name(&self) -> Option<&str> {
        self.rel.strip_prefix("crates/")?.split('/').next()
    }

    /// Bench code is exempt from the wall-clock rule: the bench crate and
    /// any `benches/` directory measure wall time on purpose.
    fn is_bench_context(&self) -> bool {
        self.crate_name() == Some("bench") || self.rel.split('/').any(|c| c == "benches")
    }

    fn is_sim_crate(&self) -> bool {
        self.crate_name().is_some_and(|c| SIM_CRATES.contains(&c))
    }

    fn is_stage_file(&self) -> bool {
        self.rel.starts_with("crates/serve/src/stage/")
    }

    /// Whether this file is test code by path (`tests/` anywhere).
    fn is_test_file(&self) -> bool {
        self.rel.split('/').any(|c| c == "tests")
    }

    /// The code index of the first `mod tests` in this file, if any —
    /// everything after it counts as test context for `schema-pin`.
    fn mod_tests_start(&self) -> Option<usize> {
        (0..self.code.len()).find(|&i| {
            self.ident(i) == Some("mod") && self.ident(i + 1).is_some_and(|n| n.starts_with("test"))
        })
    }
}

/// Runs every per-file rule over `file`, appending raw findings.
pub(crate) fn check_file(file: &SourceFile<'_>, out: &mut Vec<RawFinding>) {
    default_hash_map(file, out);
    wall_clock(file, out);
    deprecated_submit(file, out);
    stage_emit(file, out);
    float_sort(file, out);
}

fn default_hash_map(f: &SourceFile<'_>, out: &mut Vec<RawFinding>) {
    if !f.is_sim_crate() {
        return;
    }
    for i in 0..f.code.len() {
        if let Some(name @ ("HashMap" | "HashSet")) = f.ident(i) {
            out.push(RawFinding {
                rule: "default-hash-map",
                line: f.line(i),
                message: format!(
                    "{name} in simulator crate `{}`: SipHash is randomly seeded per process, so \
                     iteration order can reach output; use kvcache::fasthash::FastMap or BTreeMap/BTreeSet",
                    f.crate_name().unwrap_or("?")
                ),
            });
        }
    }
}

fn wall_clock(f: &SourceFile<'_>, out: &mut Vec<RawFinding>) {
    if f.is_bench_context() {
        return;
    }
    for i in 0..f.code.len() {
        if f.ident(i) == Some("Instant")
            && f.punct(i + 1, b':')
            && f.punct(i + 2, b':')
            && f.ident(i + 3) == Some("now")
        {
            out.push(RawFinding {
                rule: "wall-clock",
                line: f.line(i),
                message: "Instant::now outside bench code: wall time must never reach simulated \
                          results; gate behind the profiler and allow-tag, or move to bench code"
                    .to_string(),
            });
        }
        if f.ident(i) == Some("SystemTime") {
            out.push(RawFinding {
                rule: "wall-clock",
                line: f.line(i),
                message: "SystemTime outside bench code: simulated time is the only clock".to_string(),
            });
        }
    }
}

const DEPRECATED_SUBMIT: &[&str] = &["submit", "submit_prefill_only", "submit_imported"];

fn deprecated_submit(f: &SourceFile<'_>, out: &mut Vec<RawFinding>) {
    for i in 1..f.code.len() {
        let Some(name) = f.ident(i) else { continue };
        if !DEPRECATED_SUBMIT.contains(&name) || !f.punct(i + 1, b'(') {
            continue;
        }
        // A call shape: `.name(` or `::name(` — `fn name(` definitions and
        // bare words do not match.
        let method = f.punct(i - 1, b'.');
        let path = i >= 2 && f.punct(i - 1, b':') && f.punct(i - 2, b':');
        if method || path {
            out.push(RawFinding {
                rule: "deprecated-submit",
                line: f.line(i),
                message: format!(
                    "call to removed submit wrapper `{name}`; use submit_with(request, arrival_s, \
                     Admission::…, id, wafer)"
                ),
            });
        }
    }
}

fn stage_emit(f: &SourceFile<'_>, out: &mut Vec<RawFinding>) {
    if !f.is_stage_file() {
        return;
    }
    for i in 1..f.code.len() {
        let Some(name @ ("emit" | "emit_for")) = f.ident(i) else { continue };
        if !f.punct(i - 1, b'.') || !f.punct(i + 1, b'(') {
            continue;
        }
        // Blessed shape: `Stage::<Variant>.emit(…)` — receiver is a Stage
        // variant path, which debug-asserts the EVENT_OWNERS table.
        let blessed = i >= 5
            && f.ident(i - 2).is_some()
            && f.punct(i - 3, b':')
            && f.punct(i - 4, b':')
            && f.ident(i - 5) == Some("Stage");
        if !blessed {
            out.push(RawFinding {
                rule: "stage-emit",
                line: f.line(i),
                message: format!(
                    "raw `.{name}(` in a stage file bypasses the EVENT_OWNERS ownership table; \
                     emit through Stage::<Variant>.{name}(…)"
                ),
            });
        }
    }
}

fn float_sort(f: &SourceFile<'_>, out: &mut Vec<RawFinding>) {
    if !f.is_sim_crate() {
        return;
    }
    for i in 1..f.code.len() {
        if f.ident(i) != Some("partial_cmp") || !f.punct(i - 1, b'.') || !f.punct(i + 1, b'(') {
            continue;
        }
        // Walk to the matching `)` of the call, then look for a chained
        // `.unwrap(` / `.expect(` — the NaN-panicking comparator shape.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < f.code.len() {
            if f.punct(j, b'(') {
                depth += 1;
            } else if f.punct(j, b')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if f.punct(j + 1, b'.') {
            if let Some(next @ ("unwrap" | "expect")) = f.ident(j + 2) {
                out.push(RawFinding {
                    rule: "float-sort",
                    line: f.line(i),
                    message: format!(
                        "partial_cmp(..).{next}() comparator in simulator crate `{}`: panics on NaN \
                         and hides ordering intent; use f64::total_cmp or arena::F64Key",
                        f.crate_name().unwrap_or("?")
                    ),
                });
            }
        }
    }
}

/// The cross-file `schema-pin` registry: collect every `const *SCHEMA_VERSION`
/// definition and require at least one reference from test context (a file
/// under `tests/`, or code after `mod tests` in any file).
pub(crate) fn schema_pin(files: &[SourceFile<'_>]) -> Vec<(usize, RawFinding)> {
    struct Def {
        file: usize,
        line: u32,
        name: String,
    }
    let mut defs: Vec<Def> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for i in 0..f.code.len() {
            if f.ident(i) == Some("const") {
                if let Some(name) = f.ident(i + 1) {
                    if name.ends_with("SCHEMA_VERSION") {
                        defs.push(Def { file: fi, line: f.line(i), name: name.to_string() });
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for def in &defs {
        let pinned = files.iter().any(|f| {
            let test_start = if f.is_test_file() { Some(0) } else { f.mod_tests_start() };
            let Some(start) = test_start else { return false };
            (start..f.code.len()).any(|i| f.ident(i) == Some(def.name.as_str()))
        });
        if !pinned {
            out.push((
                def.file,
                RawFinding {
                    rule: "schema-pin",
                    line: def.line,
                    message: format!(
                        "`{}` has no key-set golden: no test (tests/ file or #[cfg(test)] module) \
                         references it, so the schema can drift silently",
                        def.name
                    ),
                },
            ));
        }
    }
    out
}

/// Parses the audit directives of one file: plain `//` line comments (not
/// doc comments) containing `audit:`. Well-formed directives become
/// [`Allow`]s; malformed ones become `allow-syntax` findings.
pub(crate) fn parse_allows(f: &SourceFile<'_>, out: &mut Vec<RawFinding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in &f.toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text(f.text);
        // Doc comments (`///`, `//!`) are prose — the syntax examples in
        // rustdoc must not parse as live directives.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let body = text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("audit:") else { continue };
        match parse_allow_body(rest.trim()) {
            Ok((rule, reason)) => {
                if RULES.iter().any(|&(r, _)| r == rule) {
                    let trails_code = f.code.iter().any(|&j| f.toks[j].line == t.line);
                    let target = if trails_code { t.line } else { t.line + 1 };
                    allows.push(Allow { line: t.line, target, rule: rule.to_string(), reason, used: false });
                } else {
                    out.push(RawFinding {
                        rule: "allow-syntax",
                        line: t.line,
                        message: format!("audit directive names unknown rule `{rule}`"),
                    });
                }
            }
            Err(why) => out.push(RawFinding {
                rule: "allow-syntax",
                line: t.line,
                message: format!(
                    "malformed audit directive ({why}); expected audit: allow(<rule>, \"<reason>\")"
                ),
            }),
        }
    }
    allows
}

fn parse_allow_body(body: &str) -> Result<(&str, String), &'static str> {
    let inner = body.strip_prefix("allow(").ok_or("missing allow(")?;
    let (rule, rest) = inner.split_once(',').ok_or("missing `, \"reason\"`")?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-') {
        return Err("rule id must be kebab-case");
    }
    let rest = rest.trim();
    let quoted = rest.strip_prefix('"').ok_or("reason must be quoted")?;
    let (reason, tail) = quoted.split_once('"').ok_or("unterminated reason")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty");
    }
    if !tail.trim_start().starts_with(')') {
        return Err("missing closing )");
    }
    Ok((rule, reason.trim().to_string()))
}
