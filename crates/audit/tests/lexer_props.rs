//! Lexer property tests: `lex` is total over arbitrary input.
//!
//! The vendored proptest stand-in has no string strategies, so inputs are
//! built two ways: random compositions of adversarial Rust fragments
//! (comment openers, quote kinds, raw-string fences, escapes), and raw
//! byte soup pushed through `from_utf8_lossy`. Either way the lexer must
//! not panic, must cover every byte with in-bounds, char-aligned,
//! non-overlapping spans, and must number lines consistently.

use ouro_audit::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Fragments chosen to maximise nesting/termination trouble: every one is
/// a prefix, suffix, or confusable of some literal or comment form.
const FRAGMENTS: &[&str] = &[
    "// line\n",
    "//",
    "/* block */",
    "/* /* nested */",
    "*/",
    "/*",
    "\"str\"",
    "\"unterminated",
    "\"esc \\\" \\\\ \\n\"",
    "r\"raw\"",
    "r#\"fenced\"#",
    "r##\"double \"# still\"##",
    "r#\"unterminated",
    "br#\"bytes\"#",
    "b\"bytes\"",
    "'c'",
    "'\\n'",
    "'\\''",
    "'lifetime",
    "'a ",
    "r#match",
    "ident_0",
    "0..5",
    "1.5e-3",
    "\n",
    "\r\n",
    "#",
    "r",
    "b",
    "'",
    "\"",
    "\\",
    "{}()[];,.::->=>",
    "é∂字",
];

fn check_invariants(src: &str) {
    let toks = lex(src);
    let lines = src.split('\n').count() as u32;
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for t in &toks {
        assert!(t.start <= t.end && t.end <= src.len(), "span {}..{} out of {}", t.start, t.end, src.len());
        assert!(src.get(t.start..t.end).is_some(), "span {}..{} splits a char", t.start, t.end);
        assert!(t.start >= prev_end, "tokens overlap at {}", t.start);
        assert!(t.kind != TokKind::Ident || t.start < t.end, "empty ident");
        assert!((1..=lines).contains(&t.line), "line {} outside 1..={lines}", t.line);
        assert!(t.line >= prev_line, "line numbers went backwards");
        prev_end = t.end;
        prev_line = t.line;
    }
}

proptest! {
    #[test]
    fn lexing_fragment_soup_never_panics(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check_invariants(&src);
    }

    #[test]
    fn lexing_byte_soup_never_panics(
        bytes in proptest::collection::vec(0u8..=255u8, 0..200),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_invariants(&src);
    }
}

#[test]
fn every_adversarial_fragment_lexes_alone() {
    for f in FRAGMENTS {
        check_invariants(f);
    }
}
