//! The audit report's own schema golden, plus the self-test that the
//! workspace this crate ships in is itself clean.

use ouro_audit::{audit_sources, audit_workspace, AUDIT_SCHEMA_VERSION, AUDIT_V1_KEYS};
use std::path::Path;

/// A report with one suppressed and one unsuppressed finding, for
/// exercising both shapes of the JSON row.
fn mixed_report() -> ouro_audit::AuditReport {
    let src = r#"
// audit: allow(default-hash-map, "scratch map (never iterated)")
use std::collections::HashMap;
use std::collections::HashSet;
"#;
    audit_sources(&[("crates/serve/src/x.rs".to_string(), src.to_string())])
}

/// Keys of one flat JSON row, in rendered order. Rows are flat string /
/// number / bool / null objects, so scanning top-level `"key":` pairs is a
/// complete parser.
fn row_keys(row: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = row.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while bytes[j] != b'"' || bytes[j - 1] == b'\\' {
                j += 1;
            }
            // A key is a quoted string immediately followed by a colon.
            if bytes.get(j + 1) == Some(&b':') {
                keys.push(row[start..j].to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    keys
}

#[test]
fn audit_v1_rows_have_the_pinned_key_set() {
    assert_eq!(AUDIT_SCHEMA_VERSION, 1);
    assert_eq!(AUDIT_V1_KEYS, &["schema_version", "rule", "path", "line", "message", "suppressed", "reason"]);
    let report = mixed_report();
    assert_eq!(report.findings.len(), 2);
    assert_eq!(report.violations(), 1);
    let rows = report.json_rows();
    for row in &rows {
        assert_eq!(row_keys(row), AUDIT_V1_KEYS, "key set drifted in {row}");
        assert!(
            row.starts_with(&format!("{{\"schema_version\": {AUDIT_SCHEMA_VERSION},")),
            "schema_version must lead: {row}"
        );
    }
    // Null-padding: the suppressed row carries its reason, the open row
    // carries an explicit null.
    let suppressed = rows.iter().find(|r| r.contains("\"suppressed\": true")).unwrap();
    assert!(suppressed.contains("\"reason\": \"scratch map (never iterated)\""), "{suppressed}");
    let open = rows.iter().find(|r| r.contains("\"suppressed\": false")).unwrap();
    assert!(open.ends_with("\"reason\": null}"), "{open}");
}

#[test]
fn json_document_wraps_rows_and_empty_report_is_empty_array() {
    let report = mixed_report();
    let doc = report.json();
    assert!(doc.starts_with("[\n") && doc.ends_with("\n]\n"), "{doc}");
    assert_eq!(doc.matches("\"schema_version\"").count(), report.findings.len());
    let empty = audit_sources(&[]);
    assert_eq!(empty.json(), "[]\n");
}

#[test]
fn this_workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 100, "scan looks truncated: {} files", report.files_scanned);
    assert_eq!(report.violations(), 0, "unsuppressed violations:\n{}", report.fix_list());
    assert!(report.unused_allows.is_empty(), "stale allow directives: {:?}", report.unused_allows);
    // The suppression inventory only ever shrinks without a deliberate
    // decision; growing it means a new exemption slipped in.
    assert!(report.suppressed() <= 7, "suppression inventory grew: {}", report.suppressed());
}
