//! Fixture proof that every rule in the catalog is live: for each rule, a
//! violating snippet fires it, the corrected/out-of-scope spelling does
//! not, and an `audit: allow` directive suppresses it without hiding it.
//!
//! Every fixture lives in a raw string literal, so the workspace audit
//! scanning *this* file sees only string tokens — the fixtures can spell
//! `HashMap` or directives freely without tripping the real run.

use ouro_audit::{audit_sources, AuditReport};

fn audit_one(rel: &str, src: &str) -> AuditReport {
    audit_sources(&[(rel.to_string(), src.to_string())])
}

/// Unsuppressed `(rule, line)` pairs of a report.
fn open(r: &AuditReport) -> Vec<(&'static str, u32)> {
    r.findings.iter().filter(|f| f.suppressed.is_none()).map(|f| (f.rule, f.line)).collect()
}

#[test]
fn default_hash_map_fires_in_sim_crates_only() {
    let src = r#"
use std::collections::HashMap;
"#;
    assert_eq!(open(&audit_one("crates/serve/src/x.rs", src)), vec![("default-hash-map", 2)]);
    assert_eq!(open(&audit_one("crates/kvcache/src/x.rs", src)), vec![("default-hash-map", 2)]);
    // The model crate computes static shapes — out of the bit-identity scope.
    assert_eq!(open(&audit_one("crates/model/src/x.rs", src)), vec![]);
    // The deterministic replacements never fire.
    let clean = r#"
use std::collections::{BTreeMap, BTreeSet};
use ouro_kvcache::fasthash::FastMap;
"#;
    assert_eq!(open(&audit_one("crates/serve/src/x.rs", clean)), vec![]);
}

#[test]
fn default_hash_map_allow_suppresses_but_still_reports() {
    let src = r#"
// audit: allow(default-hash-map, "scratch map never iterated")
use std::collections::HashMap;
"#;
    let r = audit_one("crates/serve/src/x.rs", src);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.suppressed(), 1);
    assert_eq!(r.findings[0].suppressed.as_deref(), Some("scratch map never iterated"));
    assert!(r.unused_allows.is_empty());
}

#[test]
fn wall_clock_fires_outside_bench_code() {
    let src = r#"
fn t() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
fn s() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
"#;
    let hits = open(&audit_one("crates/serve/src/x.rs", src));
    assert_eq!(hits, vec![("wall-clock", 3), ("wall-clock", 6), ("wall-clock", 7)]);
    // Bench code measures wall time on purpose: the bench crate and any
    // `benches/` directory are exempt.
    assert_eq!(open(&audit_one("crates/bench/src/x.rs", src)), vec![]);
    assert_eq!(open(&audit_one("crates/serve/benches/x.rs", src)), vec![]);
    // `Instant` without `::now` (e.g. a stored timestamp type) is fine.
    assert_eq!(open(&audit_one("crates/serve/src/x.rs", "use std::time::Instant;\n")), vec![]);
}

#[test]
fn wall_clock_trailing_allow_covers_its_own_line() {
    let src = r#"
fn t(profiling: bool) {
    let _t0 = profiling.then(std::time::Instant::now); // audit: allow(wall-clock, "profile-gated")
}
"#;
    let r = audit_one("crates/serve/src/x.rs", src);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.suppressed(), 1);
}

#[test]
fn deprecated_submit_fires_on_call_shapes_only() {
    let src = r#"
fn drive(e: &mut Engine, q: Request) {
    e.submit(q, 0.0, 0, 0);
    Engine::submit_imported(e, q, 0.0, 0.001, 1, 0);
    e.submit_prefill_only(q, 0.0, 2, 0);
}
"#;
    let hits = open(&audit_one("crates/disagg/src/x.rs", src));
    assert_eq!(hits, vec![("deprecated-submit", 3), ("deprecated-submit", 4), ("deprecated-submit", 5)]);
    // Definitions, bare words, and the blessed `submit_with` do not match.
    let clean = r#"
fn submit(x: u32) -> u32 { x }
fn drive(e: &mut Engine, q: Request) {
    e.submit_with(q, 0.0, Admission::Local, 0, 0);
}
"#;
    assert_eq!(open(&audit_one("crates/disagg/src/x.rs", clean)), vec![]);
}

#[test]
fn deprecated_submit_allow_suppresses() {
    let src = r#"
fn drive(e: &mut Engine, q: Request) {
    // audit: allow(deprecated-submit, "exercises the removed wrapper path")
    e.submit(q, 0.0, 0, 0);
}
"#;
    let r = audit_one("crates/disagg/src/x.rs", src);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.suppressed(), 1);
}

#[test]
fn stage_emit_requires_the_stage_variant_receiver() {
    let src = r#"
fn run(tracer: &mut Tracer, t_s: f64) {
    tracer.emit(t_s, None, EventKind::Complete);
    tracer.emit_for(0, t_s, None, EventKind::Complete);
}
"#;
    let hits = open(&audit_one("crates/serve/src/stage/x.rs", src));
    assert_eq!(hits, vec![("stage-emit", 3), ("stage-emit", 4)]);
    // The blessed shape routes through the ownership-checked Stage method.
    let clean = r#"
fn run(tracer: &mut Tracer, t_s: f64) {
    Stage::Decode.emit(tracer, t_s, None, EventKind::Complete);
    Stage::Arrival.emit_for(0, tracer, t_s, None, EventKind::Complete);
}
"#;
    assert_eq!(open(&audit_one("crates/serve/src/stage/x.rs", clean)), vec![]);
    // Outside crates/serve/src/stage/ the rule does not apply at all.
    assert_eq!(open(&audit_one("crates/serve/src/scenario.rs", src)), vec![]);
}

#[test]
fn stage_emit_allow_suppresses() {
    let src = r#"
fn run(tracer: &mut Tracer, t_s: f64) {
    // audit: allow(stage-emit, "the forwarding site itself")
    tracer.emit(t_s, None, EventKind::Complete);
}
"#;
    let r = audit_one("crates/serve/src/stage/x.rs", src);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.suppressed(), 1);
}

#[test]
fn float_sort_fires_on_panicking_comparators() {
    let src = r#"
fn order(v: &mut Vec<f64>, w: &mut Vec<(f64, u32)>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    w.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
}
"#;
    let hits = open(&audit_one("crates/workload/src/x.rs", src));
    assert_eq!(hits, vec![("float-sort", 3), ("float-sort", 4)]);
    // total_cmp and non-unwrapped partial_cmp are fine; so is the same
    // code outside the sim crates.
    let clean = r#"
fn order(v: &mut Vec<f64>) -> bool {
    v.sort_by(|a, b| a.total_cmp(b));
    v[0].partial_cmp(&v[1]) == Some(std::cmp::Ordering::Less)
}
"#;
    assert_eq!(open(&audit_one("crates/workload/src/x.rs", clean)), vec![]);
    assert_eq!(open(&audit_one("crates/pipeline/src/x.rs", src)), vec![]);
}

#[test]
fn float_sort_allow_suppresses() {
    let src = r#"
fn order(v: &mut Vec<f64>) {
    // audit: allow(float-sort, "inputs are clamped to finite above")
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
"#;
    let r = audit_one("crates/workload/src/x.rs", src);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.suppressed(), 1);
}

#[test]
fn schema_pin_requires_a_test_reference() {
    let def = r#"
pub const X_SCHEMA_VERSION: u32 = 3;
"#;
    // Unreferenced: fires at the definition.
    assert_eq!(open(&audit_one("crates/trace/src/x.rs", def)), vec![("schema-pin", 2)]);
    // A tests/ file referencing the const pins it.
    let golden = r#"
fn key_set_is_pinned() {
    assert_eq!(ouro_trace::X_SCHEMA_VERSION, 3);
}
"#;
    let r = audit_sources(&[
        ("crates/trace/src/x.rs".to_string(), def.to_string()),
        ("crates/trace/tests/golden.rs".to_string(), golden.to_string()),
    ]);
    assert_eq!(r.violations(), 0, "{:?}", r.findings);
    // So does a #[cfg(test)] module in the defining file itself.
    let inline = r#"
pub const Y_SCHEMA_VERSION: u32 = 1;
mod tests {
    fn pinned() {
        assert_eq!(super::Y_SCHEMA_VERSION, 1);
    }
}
"#;
    assert_eq!(open(&audit_one("crates/trace/src/y.rs", inline)), vec![]);
    // A reference from ordinary (non-test) code does not count.
    let non_test_use = r#"
fn stamp() -> u32 { crate::x::X_SCHEMA_VERSION }
"#;
    let r = audit_sources(&[
        ("crates/trace/src/x.rs".to_string(), def.to_string()),
        ("crates/trace/src/stamp.rs".to_string(), non_test_use.to_string()),
    ]);
    assert_eq!(r.violations(), 1);
}

#[test]
fn schema_pin_allow_suppresses_at_the_definition() {
    let def = r#"
// audit: allow(schema-pin, "transitional: golden lands in the next PR")
pub const Z_SCHEMA_VERSION: u32 = 1;
"#;
    let r = audit_one("crates/trace/src/z.rs", def);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.suppressed(), 1);
}

#[test]
fn allow_syntax_reports_malformed_and_unknown_directives() {
    let src = r#"
// audit: allow(default-hash-map)
// audit: allow(no-such-rule, "reason")
// audit: allow(wall-clock, "")
// audit: allowance is not a directive keyword
"#;
    let hits = open(&audit_one("crates/model/src/x.rs", src));
    assert_eq!(
        hits,
        vec![("allow-syntax", 2), ("allow-syntax", 3), ("allow-syntax", 4), ("allow-syntax", 5)]
    );
}

#[test]
fn doc_comments_and_strings_never_parse_as_directives() {
    let src = r#"
/// audit: allow(default-hash-map)
//! audit: allow(not-even-a-rule
fn f() -> &'static str {
    "// audit: allow(broken"
}
"#;
    assert_eq!(open(&audit_one("crates/model/src/x.rs", src)), vec![]);
}

#[test]
fn unused_allows_are_surfaced() {
    let src = r#"
// audit: allow(default-hash-map, "nothing here uses one")
fn f() {}
"#;
    let r = audit_one("crates/serve/src/x.rs", src);
    assert_eq!(r.violations(), 0);
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.unused_allows.len(), 1);
    assert_eq!(r.unused_allows[0].rule, "default-hash-map");
    assert_eq!(r.unused_allows[0].line, 2);
}

#[test]
fn standalone_allow_covers_the_next_line_only() {
    let src = r#"
// audit: allow(default-hash-map, "first one only")
use std::collections::HashMap;
use std::collections::HashSet;
"#;
    let r = audit_one("crates/serve/src/x.rs", src);
    assert_eq!(r.suppressed(), 1);
    assert_eq!(open(&r), vec![("default-hash-map", 4)]);
}
