//! Distributed dynamic KV-cache management (§4.4).
//!
//! Ouroboros has no HBM: the KV cache lives inside the same SRAM crossbars
//! that compute attention. This crate implements the paper's management
//! scheme:
//!
//! * crossbars in *attention mode* are carved into eight logical blocks that
//!   are dynamically allocated to sequences ([`block`]),
//! * a three-level address translation — page table (sequence → per-head core),
//!   per-core bitmap (sequence → logical block), per-crossbar free-block
//!   registers (valid rows/columns) — lets a group of cores manage their KV
//!   storage without centralized control ([`translate`]),
//! * heads of a sequence are spread over consecutive cores of a ring so that
//!   writes for the next token never collide with in-situ attention for the
//!   current one, K growth prefers *other* crossbars while V growth prefers
//!   the *same* crossbar ([`manager`]),
//! * requests sharing a common prompt prefix (same system prompt,
//!   conversation history) reference refcounted copy-on-write block chains
//!   instead of duplicating the prefix KV; a shared block is freed exactly
//!   when its last sharer releases, and the lifetime block audit counts it
//!   once ([`manager`]),
//! * inter-sequence scheduling is FCFS with preemptible autoregressive
//!   continuations, most-recently-scheduled eviction, and an anti-thrashing
//!   admission threshold ([`scheduler`]),
//! * a static pre-allocation baseline used by the ablation study
//!   ([`static_alloc`]).

pub mod block;
pub mod fasthash;
pub mod manager;
pub mod scheduler;
pub mod static_alloc;
pub mod translate;

pub use block::{BlockAddress, CrossbarBlocks};
pub use fasthash::{FastHasher, FastMap};
pub use manager::{
    BlockAudit, CrossbarSnapshot, KvCoreFailure, KvError, KvManager, KvManagerConfig, KvManagerSnapshot,
    KvTransferStats, SharedChainSnapshot, SnapshotChainNode, SnapshotSeqBlocks, SnapshotSlot,
};
pub use scheduler::{KvScheduler, SchedulerOutcome, SchedulerStats};
pub use static_alloc::StaticKvAllocator;
pub use translate::{CoreBitmap, PageTable};
