//! A deterministic multiply-rotate hasher for the manager's hot maps.
//!
//! The KV manager keys its cursor, residency, and sharing maps by small
//! integers (sequence ids, prefix groups), and the serving engine hits the
//! cursor map several times per resident sequence per step. `std`'s default
//! SipHash is an order of magnitude slower than needed for integer keys and
//! randomly seeded per process; this hasher is the classic Fx-style
//! multiply-rotate mix — fast on word-sized keys and deterministic, which
//! keeps any incidental iteration-order effect identical across runs.
//!
//! Not DoS-resistant — fine here, because every key is simulator-internal.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FastHasher`].
// audit: allow(default-hash-map, "the FastMap definition itself: std HashMap rekeyed through the deterministic FastHasher")
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one word, folded multiplicatively per written word.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "c" and "a" + "bc" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |key: (u64, usize, u8)| {
            let mut h = FastHasher::default();
            std::hash::Hash::hash(&key, &mut h);
            h.finish()
        };
        assert_eq!(hash((7, 3, 1)), hash((7, 3, 1)));
        assert_ne!(hash((7, 3, 1)), hash((7, 3, 0)));
        assert_ne!(hash((7, 3, 1)), hash((3, 7, 1)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, usize> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as usize * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }

    #[test]
    fn byte_slices_with_different_splits_differ() {
        let hash = |bytes: &[u8]| {
            let mut h = FastHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b"abcdefgh1"), hash(b"abcdefgh"));
        assert_ne!(hash(b"a"), hash(b"b"));
    }
}
