//! Inter-sequence scheduling on top of the distributed KV manager (§4.4.4).
//!
//! New requests are admitted first-come-first-serve so none starve;
//! autoregressive continuations are preemptible. When the cache fills up, the
//! most recently scheduled request is evicted (its KV is recomputed when it
//! is re-admitted — the "thrashing" cost) and goes back to the *front* of the
//! waiting queue; admission stays suspended until a resident request
//! completes. The anti-thrashing threshold lives inside the manager: cores
//! whose free space falls below it stop accepting *new* sequences, reserving
//! room for decode growth.

use crate::manager::{KvError, KvManager, KvManagerConfig};
use ouro_workload::Trace;
use std::collections::VecDeque;

/// Statistics gathered while replaying a trace through the KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedulerStats {
    /// Requests admitted (including re-admissions after eviction).
    pub admissions: u64,
    /// Evictions triggered by capacity exhaustion.
    pub evictions: u64,
    /// Tokens whose K/V had to be recomputed because their sequence was
    /// evicted mid-flight.
    pub recomputed_tokens: u64,
    /// Maximum number of simultaneously resident sequences.
    pub peak_resident: usize,
    /// Time-averaged number of resident sequences (in decode-step units).
    pub avg_resident: f64,
    /// Number of decode steps simulated.
    pub steps: u64,
    /// Requests fully completed.
    pub completed: u64,
}

/// Outcome of a scheduling run: the statistics plus derived quality metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerOutcome {
    /// Raw counters.
    pub stats: SchedulerStats,
    /// Total useful tokens (prompt + decode) of the trace.
    pub useful_tokens: u64,
    /// Fraction of extra work caused by thrashing:
    /// `recomputed / (useful + recomputed)`.
    pub waste_fraction: f64,
}

/// Replays request traces against a [`KvManager`].
#[derive(Debug)]
pub struct KvScheduler {
    manager: KvManager,
}

/// A resident sequence being decoded.
#[derive(Debug, Clone, Copy)]
struct Active {
    request_index: usize,
    decoded: usize,
    /// Tokens already spent on this attempt (for recompute accounting).
    tokens_this_attempt: usize,
    admission_order: u64,
}

impl KvScheduler {
    /// Creates a scheduler over a fresh manager.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] from the manager.
    pub fn new(config: KvManagerConfig) -> Result<KvScheduler, KvError> {
        Ok(KvScheduler { manager: KvManager::new(config)? })
    }

    /// Read access to the underlying manager (capacity queries).
    pub fn manager(&self) -> &KvManager {
        &self.manager
    }

    /// Replays `trace` in arrival order: each step every resident sequence
    /// decodes one token; requests are admitted FCFS whenever capacity
    /// permits; capacity exhaustion evicts the most recently admitted
    /// sequence.
    pub fn run_trace(&mut self, trace: &Trace) -> SchedulerOutcome {
        let mut waiting: VecDeque<usize> = (0..trace.len()).collect();
        let mut active: Vec<Active> = Vec::new();
        let mut stats = SchedulerStats::default();
        let mut admissions_suspended = false;
        let mut resident_integral = 0.0f64;
        let mut order_counter = 0u64;
        let max_steps = 10_000_000u64;

        while (!waiting.is_empty() || !active.is_empty()) && stats.steps < max_steps {
            // Admission phase (FCFS).
            while !admissions_suspended {
                let Some(&req_idx) = waiting.front() else { break };
                let req = &trace.requests[req_idx];
                match self.manager.admit(req_idx as u64, req.prompt_len) {
                    Ok(()) => {
                        waiting.pop_front();
                        stats.admissions += 1;
                        active.push(Active {
                            request_index: req_idx,
                            decoded: 0,
                            tokens_this_attempt: req.prompt_len,
                            admission_order: order_counter,
                        });
                        order_counter += 1;
                    }
                    Err(KvError::OutOfCapacity) => {
                        // Clean up any partial allocation of the failed admit.
                        self.manager.release(req_idx as u64);
                        // Evict the most recently scheduled request if any.
                        if let Some(victim_pos) =
                            active.iter().enumerate().max_by_key(|(_, a)| a.admission_order).map(|(i, _)| i)
                        {
                            let victim = active.swap_remove(victim_pos);
                            stats.evictions += 1;
                            stats.recomputed_tokens += victim.tokens_this_attempt as u64;
                            self.manager.release(victim.request_index as u64);
                            waiting.push_front(victim.request_index);
                            // Suspend new admissions until a request completes.
                            admissions_suspended = true;
                        }
                        break;
                    }
                    Err(e) => panic!("unexpected kv error during admission: {e}"),
                }
            }

            if active.is_empty() {
                // Nothing resident (pathological: a single request larger
                // than the cache). Drop the offending request to guarantee
                // progress.
                if let Some(req) = waiting.pop_front() {
                    self.manager.release(req as u64);
                    stats.steps += 1;
                    continue;
                }
                break;
            }

            // Decode phase: every resident sequence produces one token.
            stats.peak_resident = stats.peak_resident.max(active.len());
            resident_integral += active.len() as f64;
            stats.steps += 1;
            let mut finished: Vec<usize> = Vec::new();
            let mut evicted_now: Vec<usize> = Vec::new();
            for (i, a) in active.iter_mut().enumerate() {
                let req = &trace.requests[a.request_index];
                if a.decoded >= req.decode_len {
                    finished.push(i);
                    continue;
                }
                match self.manager.append_tokens(a.request_index as u64, 1) {
                    Ok(()) => {
                        a.decoded += 1;
                        a.tokens_this_attempt += 1;
                        if a.decoded >= req.decode_len {
                            finished.push(i);
                        }
                    }
                    Err(KvError::OutOfCapacity) => evicted_now.push(i),
                    Err(e) => panic!("unexpected kv error during decode: {e}"),
                }
            }
            // Handle decode-time evictions (growth failed).
            for &i in evicted_now.iter().rev() {
                let victim = active.swap_remove(i);
                stats.evictions += 1;
                stats.recomputed_tokens += victim.tokens_this_attempt as u64;
                self.manager.release(victim.request_index as u64);
                waiting.push_front(victim.request_index);
            }
            // Retire completed requests; completion re-enables admission.
            // Recompute indices because swap_remove above may have moved them.
            let mut retired = 0;
            active.retain(|a| {
                let req = &trace.requests[a.request_index];
                if a.decoded >= req.decode_len {
                    retired += 1;
                    self.manager.release(a.request_index as u64);
                    false
                } else {
                    true
                }
            });
            if retired > 0 {
                stats.completed += retired;
                admissions_suspended = false;
            }
        }

        stats.avg_resident = if stats.steps > 0 { resident_integral / stats.steps as f64 } else { 0.0 };
        let useful = trace.total_tokens();
        let waste = stats.recomputed_tokens as f64 / (useful + stats.recomputed_tokens).max(1) as f64;
        SchedulerOutcome { stats, useful_tokens: useful, waste_fraction: waste }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::CoreId;
    use ouro_workload::{LengthConfig, TraceGenerator};

    fn config(cores: usize, heads: usize, threshold: f64) -> KvManagerConfig {
        let mut c = KvManagerConfig::new((0..cores).map(CoreId).collect(), heads, 128);
        c.threshold = threshold;
        c
    }

    #[test]
    fn small_trace_completes_without_evictions() {
        let trace = TraceGenerator::new(1).generate(&LengthConfig::fixed(64, 32), 4);
        let mut s = KvScheduler::new(config(8, 2, 0.0)).unwrap();
        let out = s.run_trace(&trace);
        assert_eq!(out.stats.completed, 4);
        assert_eq!(out.stats.evictions, 0);
        assert_eq!(out.stats.recomputed_tokens, 0);
        assert_eq!(out.waste_fraction, 0.0);
        assert!(out.stats.peak_resident >= 1);
    }

    #[test]
    fn oversubscribed_cache_evicts_and_still_completes() {
        // 2 cores / 1 head: tight capacity forces evictions with many long
        // requests.
        let trace = TraceGenerator::new(2).generate(&LengthConfig::fixed(512, 512), 12);
        let mut s = KvScheduler::new(config(2, 1, 0.0)).unwrap();
        let out = s.run_trace(&trace);
        assert_eq!(out.stats.completed, 12, "all requests should eventually finish");
        assert!(out.stats.admissions >= 12);
    }

    #[test]
    fn zero_threshold_thrashes_more_than_moderate_threshold() {
        let trace = TraceGenerator::new(3).generate(&LengthConfig::fixed(200, 900), 24);
        let mut none = KvScheduler::new(config(2, 1, 0.0)).unwrap();
        let mut some = KvScheduler::new(config(2, 1, 0.25)).unwrap();
        let out_none = none.run_trace(&trace);
        let out_some = some.run_trace(&trace);
        assert!(
            out_none.stats.recomputed_tokens >= out_some.stats.recomputed_tokens,
            "threshold should reduce thrashing: {} vs {}",
            out_none.stats.recomputed_tokens,
            out_some.stats.recomputed_tokens
        );
    }

    #[test]
    fn excessive_threshold_reduces_concurrency() {
        let trace = TraceGenerator::new(4).generate(&LengthConfig::fixed(128, 128), 16);
        let mut low = KvScheduler::new(config(4, 1, 0.05)).unwrap();
        let mut high = KvScheduler::new(config(4, 1, 0.9)).unwrap();
        let out_low = low.run_trace(&trace);
        let out_high = high.run_trace(&trace);
        assert!(
            out_high.stats.avg_resident <= out_low.stats.avg_resident + 1e-9,
            "a 0.9 threshold should not increase residency ({} vs {})",
            out_high.stats.avg_resident,
            out_low.stats.avg_resident
        );
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let trace = ouro_workload::Trace { requests: vec![] };
        let mut s = KvScheduler::new(config(2, 1, 0.1)).unwrap();
        let out = s.run_trace(&trace);
        assert_eq!(out.stats.steps, 0);
        assert_eq!(out.stats.completed, 0);
        assert_eq!(out.stats.avg_resident, 0.0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let trace = TraceGenerator::new(5).generate(&LengthConfig::wikitext2_like(), 10);
        let mut s = KvScheduler::new(config(8, 2, 0.1)).unwrap();
        let out = s.run_trace(&trace);
        assert!(out.stats.admissions >= out.stats.completed);
        assert!(out.stats.peak_resident as f64 >= out.stats.avg_resident);
        assert!(out.waste_fraction >= 0.0 && out.waste_fraction < 1.0);
    }
}
