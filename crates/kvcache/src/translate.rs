//! The three-level address translation of the distributed KV cache
//! (Fig. 12): page table → per-core bitmap → per-crossbar free-block
//! registers.
//!
//! The point of the scheme is that no centralized controller is needed: the
//! page table (held in an amortised storage core) maps a sequence to the
//! cores holding each of its heads, each core's bitmap maps the sequence to
//! the logical blocks it occupies inside that core, and the crossbar
//! controller's registers know how many rows/columns of each block are
//! valid. The last level lives in [`crate::block`]; this module implements
//! the first two.

use crate::fasthash::FastMap;
use ouro_hw::CoreId;

/// First level: sequence → the ordered list of cores storing its heads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTable {
    entries: FastMap<u64, Vec<CoreId>>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Registers the per-head core assignment of a sequence. Head `h` of the
    /// sequence lives on `cores[h]`.
    pub fn insert(&mut self, seq: u64, cores: Vec<CoreId>) {
        self.entries.insert(seq, cores);
    }

    /// Core holding head `head` of sequence `seq`, if the sequence is mapped.
    pub fn lookup(&self, seq: u64, head: usize) -> Option<CoreId> {
        self.entries.get(&seq).and_then(|cores| cores.get(head)).copied()
    }

    /// All cores of a sequence (one per head), if mapped.
    pub fn cores_of(&self, seq: u64) -> Option<&[CoreId]> {
        self.entries.get(&seq).map(Vec::as_slice)
    }

    /// Removes a sequence's mapping (on completion or eviction).
    pub fn remove(&mut self, seq: u64) -> Option<Vec<CoreId>> {
        self.entries.remove(&seq)
    }

    /// Iterates every `(sequence, per-head cores)` mapping, in arbitrary
    /// order (checkpointing sorts by sequence id before serializing).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Vec<CoreId>)> {
        self.entries.iter()
    }

    /// Number of mapped sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no sequences are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Second level: the 256 × 256 bitmap held in a core's controller. Entry
/// `(m, n) = 1` means sequence slot `m` occupies logical block `n` of this
/// core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreBitmap {
    seq_slots: usize,
    blocks: usize,
    bits: Vec<bool>,
    /// Sequence id occupying each slot (the paper indexes slots; we keep the
    /// reverse map so tests can assert against real sequence ids).
    slot_owner: Vec<Option<u64>>,
}

impl CoreBitmap {
    /// Creates the paper-sized 256 × 256 bitmap.
    pub fn paper() -> CoreBitmap {
        CoreBitmap::new(256, 256)
    }

    /// Creates a bitmap with `seq_slots` sequence rows and `blocks` block
    /// columns.
    pub fn new(seq_slots: usize, blocks: usize) -> CoreBitmap {
        CoreBitmap {
            seq_slots,
            blocks,
            bits: vec![false; seq_slots * blocks],
            slot_owner: vec![None; seq_slots],
        }
    }

    fn index(&self, slot: usize, block: usize) -> usize {
        assert!(slot < self.seq_slots && block < self.blocks, "bitmap index out of range");
        slot * self.blocks + block
    }

    /// Finds (or assigns) the slot for a sequence. Returns `None` when all
    /// slots are taken by other sequences.
    pub fn slot_for(&mut self, seq: u64) -> Option<usize> {
        if let Some(slot) = self.slot_owner.iter().position(|o| *o == Some(seq)) {
            return Some(slot);
        }
        let free = self.slot_owner.iter().position(Option::is_none)?;
        self.slot_owner[free] = Some(seq);
        Some(free)
    }

    /// Marks block `block` as occupied by the sequence in `slot`.
    pub fn set(&mut self, slot: usize, block: usize) {
        let i = self.index(slot, block);
        self.bits[i] = true;
    }

    /// Whether block `block` is occupied by the sequence in `slot`.
    pub fn get(&self, slot: usize, block: usize) -> bool {
        self.bits[self.index(slot, block)]
    }

    /// Blocks occupied by the sequence in `slot`.
    pub fn blocks_of(&self, slot: usize) -> Vec<usize> {
        (0..self.blocks).filter(|&b| self.get(slot, b)).collect()
    }

    /// Clears a sequence's slot and all its block bits; returns the number of
    /// blocks released.
    pub fn clear_sequence(&mut self, seq: u64) -> usize {
        let Some(slot) = self.slot_owner.iter().position(|o| *o == Some(seq)) else {
            return 0;
        };
        let mut released = 0;
        for b in 0..self.blocks {
            let i = self.index(slot, b);
            if self.bits[i] {
                self.bits[i] = false;
                released += 1;
            }
        }
        self.slot_owner[slot] = None;
        released
    }

    /// Number of occupied (sequence, block) pairs.
    pub fn occupied(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_table_roundtrip() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.insert(5, vec![CoreId(10), CoreId(11), CoreId(12)]);
        assert_eq!(pt.lookup(5, 1), Some(CoreId(11)));
        assert_eq!(pt.lookup(5, 3), None);
        assert_eq!(pt.lookup(6, 0), None);
        assert_eq!(pt.cores_of(5).unwrap().len(), 3);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.remove(5), Some(vec![CoreId(10), CoreId(11), CoreId(12)]));
        assert!(pt.is_empty());
    }

    #[test]
    fn bitmap_paper_dimensions() {
        let bm = CoreBitmap::paper();
        assert_eq!(bm.seq_slots, 256);
        assert_eq!(bm.blocks, 256);
        assert_eq!(bm.occupied(), 0);
    }

    #[test]
    fn bitmap_slot_assignment_is_stable() {
        let mut bm = CoreBitmap::new(4, 8);
        let a = bm.slot_for(100).unwrap();
        let b = bm.slot_for(200).unwrap();
        assert_ne!(a, b);
        assert_eq!(bm.slot_for(100), Some(a));
    }

    #[test]
    fn bitmap_set_get_clear() {
        let mut bm = CoreBitmap::new(4, 8);
        let slot = bm.slot_for(9).unwrap();
        bm.set(slot, 2);
        bm.set(slot, 5);
        assert!(bm.get(slot, 2));
        assert!(!bm.get(slot, 3));
        assert_eq!(bm.blocks_of(slot), vec![2, 5]);
        assert_eq!(bm.occupied(), 2);
        assert_eq!(bm.clear_sequence(9), 2);
        assert_eq!(bm.occupied(), 0);
        assert_eq!(bm.clear_sequence(9), 0);
    }

    #[test]
    fn bitmap_runs_out_of_slots() {
        let mut bm = CoreBitmap::new(2, 4);
        assert!(bm.slot_for(1).is_some());
        assert!(bm.slot_for(2).is_some());
        assert!(bm.slot_for(3).is_none());
        bm.clear_sequence(1);
        assert!(bm.slot_for(3).is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_bounds_checked() {
        let bm = CoreBitmap::new(2, 4);
        bm.get(2, 0);
    }
}
