//! Static KV allocation baseline (used by the "+KV Cache" ablation of
//! Fig. 15).
//!
//! Conventional accelerators reserve the worst-case context window for every
//! admitted sequence up front. On a capacity-constrained all-SRAM system this
//! wastes most of the reservation (requests rarely reach the maximum length),
//! which directly reduces how many sequences can be resident and therefore
//! how full the token-grained pipeline can be kept.

/// Static (worst-case) KV allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticKvAllocator {
    /// Total KV token capacity of the system (per K/V side).
    pub capacity_tokens: usize,
    /// Context window reserved for every sequence.
    pub reserved_per_sequence: usize,
}

impl StaticKvAllocator {
    /// Creates an allocator reserving `reserved_per_sequence` tokens per
    /// admitted sequence out of `capacity_tokens` total.
    ///
    /// # Panics
    ///
    /// Panics if the reservation is zero.
    pub fn new(capacity_tokens: usize, reserved_per_sequence: usize) -> StaticKvAllocator {
        assert!(reserved_per_sequence > 0, "static reservation must be positive");
        StaticKvAllocator { capacity_tokens, reserved_per_sequence }
    }

    /// Maximum number of simultaneously resident sequences.
    pub fn max_resident_sequences(&self) -> usize {
        self.capacity_tokens / self.reserved_per_sequence
    }

    /// Utilisation achieved when resident sequences actually use
    /// `actual_tokens` tokens on average: `actual / reserved`.
    pub fn utilization(&self, actual_tokens: usize) -> f64 {
        (actual_tokens as f64 / self.reserved_per_sequence as f64).min(1.0)
    }

    /// Tokens wasted per sequence for an actual usage of `actual_tokens`.
    pub fn wasted_tokens(&self, actual_tokens: usize) -> usize {
        self.reserved_per_sequence.saturating_sub(actual_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_allocation_quantises_residency() {
        let a = StaticKvAllocator::new(100_000, 4096);
        assert_eq!(a.max_resident_sequences(), 24);
    }

    #[test]
    fn utilization_reflects_actual_usage() {
        let a = StaticKvAllocator::new(100_000, 4096);
        assert!((a.utilization(1024) - 0.25).abs() < 1e-12);
        assert_eq!(a.utilization(8192), 1.0);
        assert_eq!(a.wasted_tokens(1024), 3072);
        assert_eq!(a.wasted_tokens(8192), 0);
    }

    #[test]
    fn dynamic_allocation_fits_more_short_sequences() {
        // With 2176-token average requests and a 4096 reservation, static
        // allocation leaves almost half the capacity idle.
        let a = StaticKvAllocator::new(1_000_000, 4096);
        let static_resident = a.max_resident_sequences();
        let dynamic_resident = 1_000_000 / 2176;
        assert!(dynamic_resident > static_resident);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_reservation_rejected() {
        StaticKvAllocator::new(1000, 0);
    }
}
