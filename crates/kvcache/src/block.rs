//! Logical KV blocks and the per-crossbar free-block table.
//!
//! In attention mode a crossbar's 1024 × 1024 SRAM array is partitioned into
//! eight logical blocks (Fig. 10 / Fig. 12c). Each block holds the K or V
//! vectors of one sequence for one head; per-block registers record how many
//! rows/columns are already valid so the controller can mask the rest during
//! in-situ computation.

use ouro_hw::CrossbarConfig;

/// Address of one logical KV block: which crossbar of the core, and which of
/// its logical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAddress {
    /// Crossbar index within the core (0..32).
    pub crossbar: usize,
    /// Logical block index within the crossbar (0..8).
    pub block: usize,
}

/// State of the logical blocks of a single attention-mode crossbar, mirroring
/// the free-block table and the per-block valid-row/column registers of the
/// crossbar controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarBlocks {
    tokens_per_block: usize,
    /// `None` for a free block, `Some(owner)` for a block allocated to a
    /// sequence, together with how many token slots are already used.
    blocks: Vec<Option<(u64, usize)>>,
    /// A crossbar absorbed by a runtime replacement chain: it accepts no
    /// new allocations and contributes no capacity. Blocks still resident
    /// at failure time stay visible to the audit until released.
    failed: bool,
    /// Count of `None` entries in `blocks`, maintained incrementally so
    /// the admission paths' capacity queries are O(1) instead of a scan.
    free: usize,
    /// Sum of used token slots across all blocks, maintained incrementally
    /// for the same reason.
    used: usize,
}

impl CrossbarBlocks {
    /// Creates the block table for one crossbar of the given configuration,
    /// storing vectors of `head_dim` elements at `bytes_per_elem` precision.
    pub fn new(config: &CrossbarConfig, head_dim: usize, bytes_per_elem: u64) -> CrossbarBlocks {
        CrossbarBlocks {
            tokens_per_block: config.tokens_per_logical_block(head_dim, bytes_per_elem),
            blocks: vec![None; config.logical_blocks],
            failed: false,
            free: config.logical_blocks,
            used: 0,
        }
    }

    /// Rebuilds a crossbar block table from checkpointed state: the
    /// per-block `(owner, used)` entries plus the failed flag. The
    /// incremental `free` / `used` counters are recomputed from `blocks`.
    pub fn from_snapshot(
        tokens_per_block: usize,
        blocks: Vec<Option<(u64, usize)>>,
        failed: bool,
    ) -> CrossbarBlocks {
        let free = blocks.iter().filter(|b| b.is_none()).count();
        let used = blocks.iter().flatten().map(|(_, used)| *used).sum();
        CrossbarBlocks { tokens_per_block, blocks, failed, free, used }
    }

    /// The raw per-block `(owner, used_tokens)` table, for checkpointing.
    /// `None` entries are free blocks.
    pub fn block_table(&self) -> &[Option<(u64, usize)>] {
        &self.blocks
    }

    /// Number of logical blocks in the crossbar.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Token capacity of each logical block.
    pub fn tokens_per_block(&self) -> usize {
        self.tokens_per_block
    }

    /// Number of logical blocks available for allocation (0 once failed, so
    /// every allocation path skips the crossbar without a special case).
    pub fn free_blocks(&self) -> usize {
        if self.failed {
            return 0;
        }
        self.raw_free_blocks()
    }

    /// Unallocated blocks regardless of the failed flag — the audit's view,
    /// which must keep counting blocks awaiting post-fault eviction.
    pub fn raw_free_blocks(&self) -> usize {
        debug_assert_eq!(self.free, self.blocks.iter().filter(|b| b.is_none()).count());
        self.free
    }

    /// Whether a runtime fault has taken this crossbar.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Marks the crossbar failed (runtime fault injection): no further
    /// allocations land here and its capacity drops to zero.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Whether a specific sequence owns any block in this crossbar.
    pub fn owns_any(&self, seq: u64) -> bool {
        self.blocks.iter().flatten().any(|(owner, _)| *owner == seq)
    }

    /// Allocates one free block to `seq`, returning its index (`None` on a
    /// full or failed crossbar).
    pub fn allocate(&mut self, seq: u64) -> Option<usize> {
        if self.failed || self.free == 0 {
            return None;
        }
        let idx = self.blocks.iter().position(|b| b.is_none())?;
        self.blocks[idx] = Some((seq, 0));
        self.free -= 1;
        Some(idx)
    }

    /// Appends `tokens` token slots into the sequence's block `idx`,
    /// returning how many slots did not fit (the caller must allocate another
    /// block for the remainder).
    ///
    /// # Panics
    ///
    /// Panics if the block is free or owned by a different sequence.
    pub fn append(&mut self, idx: usize, seq: u64, tokens: usize) -> usize {
        let slot = self.blocks[idx].as_mut().expect("appending into a free logical block");
        assert_eq!(slot.0, seq, "logical block owned by a different sequence");
        let space = self.tokens_per_block - slot.1;
        let taken = tokens.min(space);
        slot.1 += taken;
        self.used += taken;
        tokens - taken
    }

    /// Remaining token slots in block `idx` (0 for free blocks of other
    /// owners).
    pub fn remaining(&self, idx: usize, seq: u64) -> usize {
        match &self.blocks[idx] {
            Some((owner, used)) if *owner == seq => self.tokens_per_block - used,
            _ => 0,
        }
    }

    /// Frees block `idx` whoever owns it, returning whether it was
    /// allocated. The manager uses this for refcounted shared-prefix blocks,
    /// whose owner is a prefix group rather than a sequence and which must
    /// therefore not be swept by [`CrossbarBlocks::release`].
    pub fn free_at(&mut self, idx: usize) -> bool {
        match self.blocks[idx].take() {
            Some((_, used)) => {
                self.free += 1;
                self.used -= used;
                true
            }
            None => false,
        }
    }

    /// Frees every block owned by `seq`, returning how many blocks were
    /// released.
    pub fn release(&mut self, seq: u64) -> usize {
        let mut released = 0;
        for b in &mut self.blocks {
            if let Some((owner, used)) = b {
                if *owner == seq {
                    self.free += 1;
                    self.used -= *used;
                    *b = None;
                    released += 1;
                }
            }
        }
        released
    }

    /// Total token slots used across all blocks.
    pub fn used_tokens(&self) -> usize {
        debug_assert_eq!(self.used, self.blocks.iter().flatten().map(|(_, used)| *used).sum::<usize>());
        self.used
    }

    /// Total token capacity of the crossbar (0 once failed).
    pub fn capacity_tokens(&self) -> usize {
        if self.failed {
            return 0;
        }
        self.tokens_per_block * self.blocks.len()
    }

    /// Storage utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_tokens() == 0 {
            return 0.0;
        }
        self.used_tokens() as f64 / self.capacity_tokens() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::CrossbarConfig;
    use proptest::prelude::*;

    fn blocks() -> CrossbarBlocks {
        CrossbarBlocks::new(&CrossbarConfig::paper(), 128, 1)
    }

    #[test]
    fn paper_crossbar_has_8_blocks_of_128_tokens() {
        let b = blocks();
        assert_eq!(b.num_blocks(), 8);
        assert_eq!(b.tokens_per_block(), 128);
        assert_eq!(b.capacity_tokens(), 1024);
        assert_eq!(b.free_blocks(), 8);
    }

    #[test]
    fn allocate_append_release_roundtrip() {
        let mut b = blocks();
        let idx = b.allocate(7).expect("block available");
        assert!(b.owns_any(7));
        let overflow = b.append(idx, 7, 100);
        assert_eq!(overflow, 0);
        assert_eq!(b.remaining(idx, 7), 28);
        assert_eq!(b.used_tokens(), 100);
        assert_eq!(b.release(7), 1);
        assert_eq!(b.used_tokens(), 0);
        assert!(!b.owns_any(7));
    }

    #[test]
    fn append_overflow_reports_leftover_tokens() {
        let mut b = blocks();
        let idx = b.allocate(1).unwrap();
        let leftover = b.append(idx, 1, 200);
        assert_eq!(leftover, 72);
        assert_eq!(b.remaining(idx, 1), 0);
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut b = blocks();
        for s in 0..8 {
            assert!(b.allocate(s).is_some());
        }
        assert!(b.allocate(99).is_none());
        assert_eq!(b.free_blocks(), 0);
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut b = blocks();
        assert_eq!(b.utilization(), 0.0);
        let idx = b.allocate(3).unwrap();
        b.append(idx, 3, 128);
        assert!((b.utilization() - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different sequence")]
    fn appending_into_foreign_block_panics() {
        let mut b = blocks();
        let idx = b.allocate(1).unwrap();
        b.append(idx, 2, 10);
    }

    #[test]
    fn a_failed_crossbar_accepts_nothing_but_keeps_resident_blocks_visible() {
        let mut b = blocks();
        let idx = b.allocate(4).unwrap();
        b.append(idx, 4, 50);
        b.fail();
        assert!(b.is_failed());
        assert_eq!(b.free_blocks(), 0, "a failed crossbar advertises no capacity");
        assert_eq!(b.capacity_tokens(), 0);
        assert_eq!(b.allocate(5), None, "no new allocation lands on a failed crossbar");
        // The audit view still sees the resident block and the raw frees.
        assert_eq!(b.raw_free_blocks(), 7);
        assert_eq!(b.used_tokens(), 50);
        assert_eq!(b.release(4), 1);
        assert_eq!(b.raw_free_blocks(), 8);
    }

    #[test]
    fn remaining_is_zero_for_non_owner() {
        let mut b = blocks();
        let idx = b.allocate(5).unwrap();
        assert_eq!(b.remaining(idx, 6), 0);
    }

    #[test]
    fn free_at_releases_one_block_regardless_of_owner() {
        let mut b = blocks();
        let idx = b.allocate(9).unwrap();
        b.append(idx, 9, 40);
        assert!(b.free_at(idx), "an allocated block frees");
        assert!(!b.free_at(idx), "a second free is a no-op");
        assert_eq!(b.used_tokens(), 0);
        assert_eq!(b.free_blocks(), 8);
    }

    proptest! {
        #[test]
        fn used_tokens_never_exceed_capacity(ops in proptest::collection::vec((0u64..4, 1usize..300), 0..50)) {
            let mut b = blocks();
            let mut cursor: crate::fasthash::FastMap<u64, usize> = Default::default();
            for (seq, tokens) in ops {
                let idx = match cursor.get(&seq) {
                    Some(&i) if b.remaining(i, seq) > 0 => i,
                    _ => match b.allocate(seq) {
                        Some(i) => { cursor.insert(seq, i); i }
                        None => continue,
                    },
                };
                let _ = b.append(idx, seq, tokens.min(b.remaining(idx, seq)));
                prop_assert!(b.used_tokens() <= b.capacity_tokens());
                prop_assert!(b.utilization() <= 1.0);
            }
        }
    }
}
