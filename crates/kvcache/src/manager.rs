//! The distributed dynamic KV manager (§4.4.2–§4.4.3).
//!
//! The cores left over after weight mapping are split equally between the
//! `Q·Kᵀ` (score) computation and the `S·V` (context) computation; K vectors
//! live on score cores and V vectors on context cores. Heads of one sequence
//! are spread over consecutive cores of a ring (so that consecutive sequences
//! never write into the core another sequence is computing on), and growth
//! follows the K/V-specific policies: K prefers a free block in a *different*
//! crossbar (it grows along the output-channel dimension, which cannot be
//! accumulated within one crossbar), V prefers the *same* crossbar.
//!
//! On top of the per-sequence allocation the manager keeps a radix-style
//! **shared-prefix index**: requests tagged with a
//! [`ouro_workload::SharedPrefix`]-like `(group, tokens)` pair share the
//! whole-block portion of their common prompt prefix. Shared blocks are
//! refcounted and copy-on-write in the append-only sense — divergence after
//! the shared prefix (the unique prompt tail and all decode growth) lands in
//! private per-sequence blocks, so a shared block is never mutated once
//! full. A shared block is freed exactly when its last sharer releases; the
//! [`BlockAudit`] counts shared blocks once, so `allocated − freed == live`
//! holds under sharing too.

use crate::block::CrossbarBlocks;
use crate::fasthash::FastMap;
use crate::translate::{CoreBitmap, PageTable};
use ouro_hw::{CoreId, CrossbarConfig};

/// Which half of the attention computation a KV core serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KvRole {
    /// Stores K and computes `Q·Kᵀ`.
    Key,
    /// Stores V and computes `S·V`.
    Value,
}

/// Errors returned by the KV manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Not enough free blocks (or sequence slots) to admit / grow the
    /// sequence; the caller should evict or defer.
    OutOfCapacity,
    /// The sequence is not resident.
    UnknownSequence(u64),
    /// The manager was built with no KV cores at all.
    NoKvCores,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfCapacity => write!(f, "kv cache out of capacity"),
            KvError::UnknownSequence(s) => write!(f, "sequence {s} is not resident"),
            KvError::NoKvCores => write!(f, "no cores were assigned to the kv cache"),
        }
    }
}

impl std::error::Error for KvError {}

/// Configuration of the distributed KV manager for one transformer block's
/// attention.
#[derive(Debug, Clone, PartialEq)]
pub struct KvManagerConfig {
    /// Cores assigned to KV storage / in-situ attention, in ring order.
    pub kv_cores: Vec<CoreId>,
    /// Number of attention-mode crossbars per KV core.
    pub crossbars_per_core: usize,
    /// Crossbar geometry (logical blocks, tokens per block).
    pub crossbar: CrossbarConfig,
    /// Number of attention heads.
    pub heads: usize,
    /// Head dimension in elements.
    pub head_dim: usize,
    /// Bytes per KV element (1 for int8).
    pub bytes_per_elem: u64,
    /// Anti-thrashing threshold (§4.4.4): when the fraction of free token
    /// slots on the core currently being allocated from drops below this
    /// value, the core is considered full for *new* sequences, reserving the
    /// residual capacity for decode-phase growth of already-resident ones.
    pub threshold: f64,
}

impl KvManagerConfig {
    /// A configuration with the paper's crossbar and a simple list of cores.
    pub fn new(kv_cores: Vec<CoreId>, heads: usize, head_dim: usize) -> KvManagerConfig {
        KvManagerConfig {
            kv_cores,
            crossbars_per_core: 32,
            crossbar: CrossbarConfig::paper(),
            heads,
            head_dim,
            bytes_per_elem: 1,
            threshold: 0.1,
        }
    }
}

/// Per-core KV state.
#[derive(Debug, Clone)]
struct CoreState {
    id: CoreId,
    crossbars: Vec<CrossbarBlocks>,
    bitmap: CoreBitmap,
}

impl CoreState {
    fn free_tokens(&self) -> usize {
        self.crossbars.iter().map(|c| c.free_blocks() * c.tokens_per_block()).sum()
    }

    fn capacity_tokens(&self) -> usize {
        self.crossbars.iter().map(CrossbarBlocks::capacity_tokens).sum()
    }

    fn used_tokens(&self) -> usize {
        self.crossbars.iter().map(CrossbarBlocks::used_tokens).sum()
    }

    /// Logical blocks currently allocated on this core, counted raw — the
    /// audit must see blocks awaiting post-fault eviction on failed
    /// crossbars too.
    fn live_blocks(&self) -> u64 {
        self.crossbars.iter().map(|c| (c.num_blocks() - c.raw_free_blocks()) as u64).sum()
    }

    fn healthy_crossbars(&self) -> usize {
        self.crossbars.iter().filter(|c| !c.is_failed()).count()
    }
}

/// Cursor of the block a (sequence, head, role) tuple is currently appending
/// into.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    core_index: usize,
    crossbar: usize,
    block: usize,
}

/// Owner tag of shared-prefix blocks in the per-crossbar block tables:
/// `SHARED_OWNER_TAG | group` lives in a namespace disjoint from sequence
/// ids, so [`CrossbarBlocks::release`] sweeps for a sequence never touch
/// shared blocks.
const SHARED_OWNER_TAG: u64 = 1 << 63;

/// Physical location of one shared block (within the role-side core list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SharedSlot {
    core_index: usize,
    crossbar: usize,
    block: usize,
}

/// One whole-block link of a shared prefix chain: the per-head K and V
/// blocks holding `tokens_per_block` tokens of the prefix, plus how many
/// resident sequences currently reference it.
#[derive(Debug, Clone)]
struct SharedNode {
    refs: usize,
    k_slots: Vec<SharedSlot>,
    v_slots: Vec<SharedSlot>,
}

/// The shared block chain of one prefix group. Sequences always reference a
/// *leading* run of nodes, so refcounts are non-increasing along the chain
/// and zero-ref nodes form a suffix (freed as soon as they appear).
#[derive(Debug, Clone)]
struct SharedChain {
    /// Per-head core picks on the key side (chains grow on fixed cores).
    k_cores: Vec<usize>,
    /// Per-head core picks on the value side.
    v_cores: Vec<usize>,
    nodes: Vec<SharedNode>,
}

/// Counters of KV state handed across wafer boundaries (prefill/decode
/// disaggregation). Token counts are whole-sequence tokens; byte accounting
/// is the caller's job because the manager does not know the model's head
/// layout across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvTransferStats {
    /// Sequences whose KV was exported (released for migration elsewhere).
    pub exported_sequences: u64,
    /// Tokens resident at export time, summed over exported sequences.
    pub exported_tokens: u64,
    /// Sequences admitted with KV computed on another wafer.
    pub imported_sequences: u64,
    /// Tokens of imported (not recomputed) KV, summed over imports.
    pub imported_tokens: u64,
}

/// Lifetime block accounting of one manager, the basis of the workspace's
/// conservation invariant: every block ever allocated is either freed or
/// still live, so `allocated − freed == live` at every observation instant.
/// A double-free would drive `freed` past `allocated` (and `live` negative
/// in the identity), which the audit makes immediately visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockAudit {
    /// Logical blocks allocated since construction.
    pub allocated: u64,
    /// Logical blocks freed since construction.
    pub freed: u64,
    /// Logical blocks currently allocated somewhere in the cache.
    pub live: u64,
    /// Of `live`, the blocks held by shared prefix chains — each counted
    /// once, however many sequences currently reference it.
    pub shared_live: u64,
}

impl BlockAudit {
    /// The conservation identity `allocated − freed == live`, with every
    /// shared block accounted inside `live` exactly once.
    pub fn is_conserved(&self) -> bool {
        self.freed <= self.allocated
            && self.allocated - self.freed == self.live
            && self.shared_live <= self.live
    }
}

/// Outcome of one runtime KV failure. The failure quantum is a single
/// attention-mode *crossbar*: the serving managers are per-head-scaled
/// (one scaled core stands for `heads` physical cores), so one crossbar of
/// a scaled core is the nearest allocation unit to one physical KV core's
/// worth of cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCoreFailure {
    /// Flat index of the struck core (key side first, then value side).
    pub index: usize,
    /// The struck core's id.
    pub core: CoreId,
    /// The failed crossbar within the core.
    pub crossbar: usize,
    /// Resident sequences that lost KV to the failure, in ascending order:
    /// those holding a private block on the failed crossbar, plus every
    /// sharer of a prefix chain with a node there (a sharer loses its
    /// prefix even when its own blocks sit on healthy crossbars). The
    /// caller must evict (release) them — their KV is partially gone and
    /// must be recomputed.
    pub evicted_sequences: Vec<u64>,
    /// Token slots lost to the failure: everything resident on the failed
    /// crossbar, plus the slots of struck prefix chains freed on healthy
    /// crossbars (the whole chain dies with any of its nodes).
    pub evicted_tokens: usize,
}

/// Serialized state of one crossbar block table inside a
/// [`KvManagerSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarSnapshot {
    /// Per-block `(owner, used_tokens)` entries; `None` is a free block.
    pub blocks: Vec<Option<(u64, usize)>>,
    /// Whether a runtime fault absorbed this crossbar.
    pub failed: bool,
}

/// A block slot `(core_index, crossbar, block)` within a role-side core
/// list, as serialized by [`KvManagerSnapshot`].
pub type SnapshotSlot = (usize, usize, usize);

/// One node of a serialized shared-prefix chain: `(refs, k_slots, v_slots)`.
pub type SnapshotChainNode = (usize, Vec<SnapshotSlot>, Vec<SnapshotSlot>);

/// A sequence's private block list inside a [`KvManagerSnapshot`]:
/// `(seq, [(role, core_index, crossbar, block)])` with per-sequence
/// allocation order preserved. Role 0 is K, 1 is V.
pub type SnapshotSeqBlocks = (u64, Vec<(u8, usize, usize, usize)>);

/// One shared-prefix chain inside a [`KvManagerSnapshot`]. Slots are
/// `(core_index, crossbar, block)` triples within the role-side core list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedChainSnapshot {
    /// Per-head core picks on the key side.
    pub k_cores: Vec<usize>,
    /// Per-head core picks on the value side.
    pub v_cores: Vec<usize>,
    /// Chain nodes in order: `(refs, k_slots, v_slots)`.
    pub nodes: Vec<SnapshotChainNode>,
}

/// Complete mutable state of a [`KvManager`], captured by
/// [`KvManager::snapshot`] and rebuilt by [`KvManager::restore`] against the
/// same configuration. Map-backed state is stored as key-sorted vectors so
/// the serialized form is deterministic regardless of hash-map history.
///
/// The per-core [`CoreBitmap`]s are deliberately *not* captured: they are
/// write-only observability state (never read back for allocation or
/// reporting decisions), so a restored manager starts with fresh bitmaps.
#[derive(Debug, Clone, PartialEq)]
pub struct KvManagerSnapshot {
    /// Ring pointer per role (`[key, value]`).
    pub ring_next: [usize; 2],
    /// Lifetime logical-block allocations.
    pub allocated_blocks: u64,
    /// Lifetime logical-block frees.
    pub freed_blocks: u64,
    /// Export/import counters.
    pub transfers: KvTransferStats,
    /// Key-side crossbar tables, per core in order.
    pub key_cores: Vec<Vec<CrossbarSnapshot>>,
    /// Value-side crossbar tables, per core in order.
    pub value_cores: Vec<Vec<CrossbarSnapshot>>,
    /// Page-table entries `(seq, per-head key-side core ids)`, key-sorted.
    pub page_table: Vec<(u64, Vec<u64>)>,
    /// Append cursors `(seq, head, role, core_index, crossbar, block)`,
    /// key-sorted. Role 0 is K, 1 is V.
    pub cursors: Vec<(u64, usize, u8, usize, usize, usize)>,
    /// Private block index ([`SnapshotSeqBlocks`] entries), key-sorted with
    /// per-sequence allocation order preserved.
    pub seq_blocks: Vec<SnapshotSeqBlocks>,
    /// Resident token counts `(seq, tokens)`, key-sorted.
    pub resident_tokens: Vec<(u64, usize)>,
    /// Shared prefix chains `(group, chain)`, key-sorted.
    pub shared: Vec<(u64, SharedChainSnapshot)>,
    /// Sequence → `(group, referenced leading nodes)`, key-sorted.
    pub seq_shared: Vec<(u64, u64, usize)>,
}

/// The distributed dynamic KV cache manager.
#[derive(Debug, Clone)]
pub struct KvManager {
    config: KvManagerConfig,
    key_cores: Vec<CoreState>,
    value_cores: Vec<CoreState>,
    page_table: PageTable,
    /// Ring pointer per role: index of the core after the last one assigned.
    ring_next: [usize; 2],
    cursors: FastMap<(u64, usize, u8), Cursor>,
    /// Every private block allocated to each sequence, recorded at
    /// allocation time so [`KvManager::release`] frees exactly the
    /// sequence's blocks instead of sweeping every crossbar of every
    /// core. Shared prefix blocks are owned by their group, not the
    /// sequence, and are not indexed here.
    seq_blocks: FastMap<u64, Vec<(KvRole, Cursor)>>,
    resident_tokens: FastMap<u64, usize>,
    transfers: KvTransferStats,
    /// Shared prefix chains by group id.
    shared: FastMap<u64, SharedChain>,
    /// How many leading chain nodes each resident sequence references.
    seq_shared: FastMap<u64, (u64, usize)>,
    /// Lifetime logical-block allocations (audit counter).
    allocated_blocks: u64,
    /// Lifetime logical-block frees (audit counter).
    freed_blocks: u64,
}

impl KvManager {
    /// Builds the manager, splitting the KV cores equally between the score
    /// (K) and context (V) halves.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoKvCores`] when the core list is empty.
    pub fn new(config: KvManagerConfig) -> Result<KvManager, KvError> {
        if config.kv_cores.is_empty() {
            return Err(KvError::NoKvCores);
        }
        let mk_core = |id: CoreId| CoreState {
            id,
            crossbars: (0..config.crossbars_per_core)
                .map(|_| CrossbarBlocks::new(&config.crossbar, config.head_dim, config.bytes_per_elem))
                .collect(),
            bitmap: CoreBitmap::paper(),
        };
        let half = (config.kv_cores.len() / 2).max(1);
        let key_cores: Vec<CoreState> = config.kv_cores[..half].iter().copied().map(mk_core).collect();
        let value_cores: Vec<CoreState> =
            config.kv_cores[half.min(config.kv_cores.len())..].iter().copied().map(mk_core).collect();
        let value_cores = if value_cores.is_empty() { key_cores.clone() } else { value_cores };
        Ok(KvManager {
            config,
            key_cores,
            value_cores,
            page_table: PageTable::new(),
            ring_next: [0, 0],
            cursors: FastMap::default(),
            seq_blocks: FastMap::default(),
            resident_tokens: FastMap::default(),
            transfers: KvTransferStats::default(),
            shared: FastMap::default(),
            seq_shared: FastMap::default(),
            allocated_blocks: 0,
            freed_blocks: 0,
        })
    }

    /// Captures the manager's complete mutable state for checkpointing.
    /// Restoring the snapshot with [`KvManager::restore`] against the same
    /// configuration yields a manager whose every observable behavior —
    /// admission, growth, eviction, faults, audits — continues exactly as
    /// this one's would.
    pub fn snapshot(&self) -> KvManagerSnapshot {
        let side = |cores: &[CoreState]| -> Vec<Vec<CrossbarSnapshot>> {
            cores
                .iter()
                .map(|core| {
                    core.crossbars
                        .iter()
                        .map(|xb| CrossbarSnapshot {
                            blocks: xb.block_table().to_vec(),
                            failed: xb.is_failed(),
                        })
                        .collect()
                })
                .collect()
        };
        let mut page_table: Vec<(u64, Vec<u64>)> = self
            .page_table
            .iter()
            .map(|(&seq, cores)| (seq, cores.iter().map(|c| c.0 as u64).collect()))
            .collect();
        page_table.sort_unstable_by_key(|(seq, _)| *seq);
        let mut cursors: Vec<(u64, usize, u8, usize, usize, usize)> = self
            .cursors
            .iter()
            .map(|(&(seq, head, role), c)| (seq, head, role, c.core_index, c.crossbar, c.block))
            .collect();
        cursors.sort_unstable_by_key(|&(seq, head, role, ..)| (seq, head, role));
        let mut seq_blocks: Vec<SnapshotSeqBlocks> = self
            .seq_blocks
            .iter()
            .map(|(&seq, blocks)| {
                (
                    seq,
                    blocks.iter().map(|&(role, c)| (role as u8, c.core_index, c.crossbar, c.block)).collect(),
                )
            })
            .collect();
        seq_blocks.sort_unstable_by_key(|(seq, _)| *seq);
        let mut resident_tokens: Vec<(u64, usize)> =
            self.resident_tokens.iter().map(|(&seq, &tokens)| (seq, tokens)).collect();
        resident_tokens.sort_unstable_by_key(|(seq, _)| *seq);
        let slot_tuples =
            |slots: &[SharedSlot]| slots.iter().map(|s| (s.core_index, s.crossbar, s.block)).collect();
        let mut shared: Vec<(u64, SharedChainSnapshot)> = self
            .shared
            .iter()
            .map(|(&group, chain)| {
                (
                    group,
                    SharedChainSnapshot {
                        k_cores: chain.k_cores.clone(),
                        v_cores: chain.v_cores.clone(),
                        nodes: chain
                            .nodes
                            .iter()
                            .map(|n| (n.refs, slot_tuples(&n.k_slots), slot_tuples(&n.v_slots)))
                            .collect(),
                    },
                )
            })
            .collect();
        shared.sort_unstable_by_key(|(group, _)| *group);
        let mut seq_shared: Vec<(u64, u64, usize)> =
            self.seq_shared.iter().map(|(&seq, &(group, n))| (seq, group, n)).collect();
        seq_shared.sort_unstable_by_key(|&(seq, ..)| seq);
        KvManagerSnapshot {
            ring_next: self.ring_next,
            allocated_blocks: self.allocated_blocks,
            freed_blocks: self.freed_blocks,
            transfers: self.transfers,
            key_cores: side(&self.key_cores),
            value_cores: side(&self.value_cores),
            page_table,
            cursors,
            seq_blocks,
            resident_tokens,
            shared,
            seq_shared,
        }
    }

    /// Rebuilds a manager from a [`KvManagerSnapshot`] and the configuration
    /// it was captured under.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoKvCores`] when the configuration has no KV
    /// cores.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's core/crossbar geometry does not match the
    /// configuration — snapshots are only meaningful against the system that
    /// produced them.
    pub fn restore(config: KvManagerConfig, snap: &KvManagerSnapshot) -> Result<KvManager, KvError> {
        let mut m = KvManager::new(config)?;
        let restore_side = |cores: &mut Vec<CoreState>, side: &[Vec<CrossbarSnapshot>]| {
            assert_eq!(cores.len(), side.len(), "snapshot core count mismatch");
            for (core, xbs) in cores.iter_mut().zip(side) {
                assert_eq!(core.crossbars.len(), xbs.len(), "snapshot crossbar count mismatch");
                for (xb, s) in core.crossbars.iter_mut().zip(xbs) {
                    assert_eq!(xb.num_blocks(), s.blocks.len(), "snapshot block count mismatch");
                    *xb = CrossbarBlocks::from_snapshot(xb.tokens_per_block(), s.blocks.clone(), s.failed);
                }
            }
        };
        restore_side(&mut m.key_cores, &snap.key_cores);
        restore_side(&mut m.value_cores, &snap.value_cores);
        m.ring_next = snap.ring_next;
        m.allocated_blocks = snap.allocated_blocks;
        m.freed_blocks = snap.freed_blocks;
        m.transfers = snap.transfers;
        for (seq, cores) in &snap.page_table {
            m.page_table.insert(*seq, cores.iter().map(|&c| CoreId(c as usize)).collect());
        }
        let role_of = |r: u8| if r == 0 { KvRole::Key } else { KvRole::Value };
        for &(seq, head, role, core_index, crossbar, block) in &snap.cursors {
            m.cursors.insert((seq, head, role), Cursor { core_index, crossbar, block });
        }
        for (seq, blocks) in &snap.seq_blocks {
            m.seq_blocks.insert(
                *seq,
                blocks
                    .iter()
                    .map(|&(role, core_index, crossbar, block)| {
                        (role_of(role), Cursor { core_index, crossbar, block })
                    })
                    .collect(),
            );
        }
        for &(seq, tokens) in &snap.resident_tokens {
            m.resident_tokens.insert(seq, tokens);
        }
        for (group, chain) in &snap.shared {
            let slots = |v: &[(usize, usize, usize)]| {
                v.iter()
                    .map(|&(core_index, crossbar, block)| SharedSlot { core_index, crossbar, block })
                    .collect()
            };
            m.shared.insert(
                *group,
                SharedChain {
                    k_cores: chain.k_cores.clone(),
                    v_cores: chain.v_cores.clone(),
                    nodes: chain
                        .nodes
                        .iter()
                        .map(|(refs, k, v)| SharedNode { refs: *refs, k_slots: slots(k), v_slots: slots(v) })
                        .collect(),
                },
            );
        }
        for &(seq, group, n) in &snap.seq_shared {
            m.seq_shared.insert(seq, (group, n));
        }
        Ok(m)
    }

    fn cores(&self, role: KvRole) -> &[CoreState] {
        match role {
            KvRole::Key => &self.key_cores,
            KvRole::Value => &self.value_cores,
        }
    }

    fn cores_mut(&mut self, role: KvRole) -> &mut Vec<CoreState> {
        match role {
            KvRole::Key => &mut self.key_cores,
            KvRole::Value => &mut self.value_cores,
        }
    }

    /// Total token capacity (per role side; K and V are symmetric).
    pub fn capacity_tokens(&self) -> usize {
        self.key_cores.iter().map(CoreState::capacity_tokens).sum()
    }

    /// Tokens currently stored on the K side.
    pub fn used_tokens(&self) -> usize {
        self.key_cores.iter().map(CoreState::used_tokens).sum()
    }

    /// K-side storage utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity_tokens();
        if cap == 0 {
            0.0
        } else {
            self.used_tokens() as f64 / cap as f64
        }
    }

    /// Number of resident sequences.
    pub fn resident_sequences(&self) -> usize {
        self.resident_tokens.len()
    }

    /// Tokens resident for one sequence (K side), if it is resident.
    pub fn sequence_tokens(&self, seq: u64) -> Option<usize> {
        self.resident_tokens.get(&seq).copied()
    }

    /// Upper bound on how many sequences of `tokens` tokens each could be
    /// resident simultaneously with fully unique prompts (prefix sharing
    /// only raises this; allocation is quantised to logical blocks).
    pub fn max_resident_sequences(&self, tokens: usize) -> usize {
        let per_block =
            self.config.crossbar.tokens_per_logical_block(self.config.head_dim, self.config.bytes_per_elem);
        if per_block == 0 || tokens == 0 {
            return 0;
        }
        let blocks_per_head = tokens.div_ceil(per_block);
        let total_blocks: usize = self
            .key_cores
            .iter()
            .map(|c| c.crossbars.iter().map(CrossbarBlocks::num_blocks).sum::<usize>())
            .sum();
        total_blocks / (blocks_per_head * self.config.heads)
    }

    /// Admits a new sequence with `initial_tokens` of prefilled KV (§4.4.3):
    /// heads are assigned to consecutive ring cores starting at the ring
    /// pointer, skipping cores whose free fraction is below the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfCapacity`] (without partial allocation being
    /// rolled back eagerly — the caller is expected to release, evict, and
    /// retry with the same sequence id) if the cache cannot hold the
    /// sequence.
    pub fn admit(&mut self, seq: u64, initial_tokens: usize) -> Result<(), KvError> {
        self.admit_with_prefix(seq, initial_tokens, None).map(|_| ())
    }

    /// Prefix-aware admission: like [`KvManager::admit`], but when `prefix`
    /// names a shared group, the whole-block portion of the common prefix is
    /// served from the shared chain (allocated on first use, referenced
    /// thereafter) and only the remainder is allocated privately. Returns
    /// how many tokens were satisfied from the shared cache — the caller
    /// skips recomputing exactly those.
    ///
    /// Sharing degrades gracefully: if the chain cannot grow (capacity,
    /// threshold), the sequence simply caches fewer tokens — prefix reuse
    /// never turns an admissible sequence away by itself.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfCapacity`] under the same conditions as
    /// [`KvManager::admit`]. Shared references taken before the failure are
    /// undone by the [`KvManager::release`] the retry protocol performs.
    pub fn admit_with_prefix(
        &mut self,
        seq: u64,
        initial_tokens: usize,
        prefix: Option<(u64, usize)>,
    ) -> Result<usize, KvError> {
        // A stale entry would leak references if the caller re-admits
        // without releasing; drop it first.
        self.detach_shared(seq);
        // `shared` tokens live in shared blocks (reused + newly populated);
        // only the `cached` portion pre-existed and skips prefill — the
        // first sharer computes the prefix KV it deposits in the chain.
        let (shared, cached) = match prefix {
            Some((group, tokens)) => self.attach_shared(seq, group, tokens.min(initial_tokens)),
            None => (0, 0),
        };
        let heads = self.config.heads;
        let head_cores_k = self.pick_head_cores(KvRole::Key, 0)?;
        let head_cores_v = self.pick_head_cores(KvRole::Value, 1)?;
        // Record the page-table entry using the K-side cores (one per head).
        let pt_cores: Vec<CoreId> = head_cores_k.iter().map(|&i| self.key_cores[i].id).collect();
        self.page_table.insert(seq, pt_cores);
        self.resident_tokens.insert(seq, shared);
        // Allocate the private cursors and fill the non-shared tokens.
        for head in 0..heads {
            self.bind_cursor(seq, head, KvRole::Key, head_cores_k[head])?;
            self.bind_cursor(seq, head, KvRole::Value, head_cores_v[head])?;
        }
        if initial_tokens > shared {
            self.append_tokens(seq, initial_tokens - shared)?;
        }
        Ok(cached)
    }

    /// One core pick per head for `role`, walking the ring from the role's
    /// pointer and skipping cores below the anti-thrashing threshold. Used
    /// by both private admission and shared-chain creation, so every
    /// allocation decision follows the same §4.4.3 walk.
    fn pick_head_cores(&mut self, role: KvRole, role_idx: usize) -> Result<Vec<usize>, KvError> {
        let heads = self.config.heads;
        let n = self.cores(role).len();
        let threshold = self.config.threshold;
        let mut picked = Vec::with_capacity(heads);
        let mut scanned = 0;
        let mut idx = self.ring_next[role_idx];
        while picked.len() < heads && scanned < 2 * n * (heads.div_ceil(n) + 1) {
            let core = &self.cores(role)[idx % n];
            let free_frac = core.free_tokens() as f64 / core.capacity_tokens().max(1) as f64;
            if free_frac > threshold {
                picked.push(idx % n);
            }
            idx += 1;
            scanned += 1;
        }
        if picked.len() < heads {
            return Err(KvError::OutOfCapacity);
        }
        self.ring_next[role_idx] = idx % n;
        Ok(picked)
    }

    /// Token capacity of one logical block for this configuration — the
    /// sharing granularity (only whole blocks of a prefix are shared).
    pub fn tokens_per_block(&self) -> usize {
        self.config.crossbar.tokens_per_logical_block(self.config.head_dim, self.config.bytes_per_elem)
    }

    /// Longest cached prefix available to a request of `prefix_tokens`
    /// shared tokens in `group`, in tokens (whole blocks only, 0 when the
    /// group is not resident). Routing layers use this to steer requests
    /// toward the wafer already holding their prefix.
    pub fn prefix_lookup(&self, group: u64, prefix_tokens: usize) -> usize {
        let tpb = self.tokens_per_block();
        if tpb == 0 {
            return 0;
        }
        match self.shared.get(&group) {
            Some(chain) => chain.nodes.len().min(prefix_tokens / tpb) * tpb,
            None => 0,
        }
    }

    /// Number of prefix groups with a resident shared chain.
    pub fn prefix_groups(&self) -> usize {
        self.shared.len()
    }

    /// References the leading `prefix_tokens / tokens_per_block` nodes of
    /// `group`'s chain for `seq`, growing the chain as far as capacity
    /// allows. Returns `(shared_tokens, cached_tokens)`: how many of the
    /// sequence's tokens live in shared blocks, and how many of those
    /// pre-existed (the reusable portion — newly populated nodes are this
    /// sequence's own prefill, stored shared for the next sharer).
    fn attach_shared(&mut self, seq: u64, group: u64, prefix_tokens: usize) -> (usize, usize) {
        let tpb = self.tokens_per_block();
        if tpb == 0 {
            return (0, 0);
        }
        let want = prefix_tokens / tpb;
        if want == 0 {
            return (0, 0);
        }
        if !self.shared.contains_key(&group) {
            // First sharer: pick the chain's per-head cores with the same
            // ring walk as a private admission. Failure here just means no
            // caching for now.
            let Ok(k_cores) = self.pick_head_cores(KvRole::Key, 0) else { return (0, 0) };
            let Ok(v_cores) = self.pick_head_cores(KvRole::Value, 1) else { return (0, 0) };
            self.shared.insert(group, SharedChain { k_cores, v_cores, nodes: Vec::new() });
        }
        let existing = self.shared[&group].nodes.len();
        while self.shared[&group].nodes.len() < want {
            if !self.extend_chain(group) {
                break;
            }
        }
        let chain = self.shared.get_mut(&group).expect("chain ensured above");
        let use_nodes = chain.nodes.len().min(want);
        if use_nodes == 0 {
            if chain.nodes.is_empty() {
                self.shared.remove(&group);
            }
            return (0, 0);
        }
        for node in &mut chain.nodes[..use_nodes] {
            node.refs += 1;
        }
        self.seq_shared.insert(seq, (group, use_nodes));
        (use_nodes * tpb, existing.min(use_nodes) * tpb)
    }

    /// Appends one full node (per-head K and V blocks) to `group`'s chain,
    /// rolling back the partial node on allocation failure. Returns whether
    /// the chain grew.
    fn extend_chain(&mut self, group: u64) -> bool {
        let owner = SHARED_OWNER_TAG | group;
        let tpb = self.tokens_per_block();
        let (k_cores, v_cores) = {
            let chain = &self.shared[&group];
            (chain.k_cores.clone(), chain.v_cores.clone())
        };
        let mut k_slots = Vec::with_capacity(k_cores.len());
        let mut v_slots = Vec::with_capacity(v_cores.len());
        let mut ok = true;
        for &core_index in &k_cores {
            match self.alloc_shared_block(KvRole::Key, core_index, owner, tpb) {
                Some(slot) => k_slots.push(slot),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            for &core_index in &v_cores {
                match self.alloc_shared_block(KvRole::Value, core_index, owner, tpb) {
                    Some(slot) => v_slots.push(slot),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            for slot in k_slots {
                self.free_shared_slot(KvRole::Key, slot);
            }
            for slot in v_slots {
                self.free_shared_slot(KvRole::Value, slot);
            }
            return false;
        }
        self.shared.get_mut(&group).expect("chain exists").nodes.push(SharedNode {
            refs: 0,
            k_slots,
            v_slots,
        });
        true
    }

    /// Allocates and fills one shared block on a fixed core (first healthy
    /// crossbar with a free block).
    fn alloc_shared_block(
        &mut self,
        role: KvRole,
        core_index: usize,
        owner: u64,
        tpb: usize,
    ) -> Option<SharedSlot> {
        let core = &mut self.cores_mut(role)[core_index];
        let xb = core.crossbars.iter().position(|c| c.free_blocks() > 0)?;
        let block = core.crossbars[xb].allocate(owner).expect("free block just checked");
        let leftover = core.crossbars[xb].append(block, owner, tpb);
        debug_assert_eq!(leftover, 0, "a fresh block holds a whole prefix node");
        self.allocated_blocks += 1;
        Some(SharedSlot { core_index, crossbar: xb, block })
    }

    /// Frees one shared block (audit-counted once, whichever path frees it).
    fn free_shared_slot(&mut self, role: KvRole, slot: SharedSlot) {
        let core = &mut self.cores_mut(role)[slot.core_index];
        if core.crossbars[slot.crossbar].free_at(slot.block) {
            self.freed_blocks += 1;
        }
    }

    /// Drops `seq`'s references on its shared chain, freeing every node
    /// whose refcount reaches zero (sequences reference leading runs, so
    /// zero-ref nodes always form a chain suffix).
    fn detach_shared(&mut self, seq: u64) {
        let Some((group, n)) = self.seq_shared.remove(&seq) else { return };
        let mut to_free: Vec<SharedNode> = Vec::new();
        let mut drop_group = false;
        if let Some(chain) = self.shared.get_mut(&group) {
            let n = n.min(chain.nodes.len());
            for node in &mut chain.nodes[..n] {
                node.refs = node.refs.saturating_sub(1);
            }
            while chain.nodes.last().is_some_and(|node| node.refs == 0) {
                to_free.push(chain.nodes.pop().expect("non-empty checked"));
            }
            drop_group = chain.nodes.is_empty();
        }
        if drop_group {
            self.shared.remove(&group);
        }
        for node in to_free {
            for slot in node.k_slots {
                self.free_shared_slot(KvRole::Key, slot);
            }
            for slot in node.v_slots {
                self.free_shared_slot(KvRole::Value, slot);
            }
        }
    }

    fn bind_cursor(&mut self, seq: u64, head: usize, role: KvRole, core_index: usize) -> Result<(), KvError> {
        let cores = self.cores_mut(role);
        let core = &mut cores[core_index];
        // Find a crossbar with a free block.
        let Some(xb) = core.crossbars.iter().position(|c| c.free_blocks() > 0) else {
            return Err(KvError::OutOfCapacity);
        };
        let block = core.crossbars[xb].allocate(seq).expect("free block just checked");
        if let Some(slot) = core.bitmap.slot_for(seq) {
            core.bitmap.set(slot, (xb * core.crossbars[xb].num_blocks() + block) % 256);
        }
        self.allocated_blocks += 1;
        let cursor = Cursor { core_index, crossbar: xb, block };
        self.seq_blocks.entry(seq).or_default().push((role, cursor));
        self.cursors.insert((seq, head, role as u8), cursor);
        Ok(())
    }

    /// Appends `tokens` new tokens of K and V for every head of a resident
    /// sequence (the per-token write that overlaps the attention of the
    /// current token).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UnknownSequence`] if the sequence is not resident or
    /// [`KvError::OutOfCapacity`] if a head cannot grow.
    pub fn append_tokens(&mut self, seq: u64, tokens: usize) -> Result<(), KvError> {
        if !self.resident_tokens.contains_key(&seq) {
            return Err(KvError::UnknownSequence(seq));
        }
        for head in 0..self.config.heads {
            for role in [KvRole::Key, KvRole::Value] {
                self.append_for(seq, head, role, tokens)?;
            }
        }
        *self.resident_tokens.get_mut(&seq).expect("resident") += tokens;
        Ok(())
    }

    fn append_for(&mut self, seq: u64, head: usize, role: KvRole, tokens: usize) -> Result<(), KvError> {
        let key = (seq, head, role as u8);
        let mut remaining = tokens;
        while remaining > 0 {
            let cursor = *self.cursors.get(&key).ok_or(KvError::UnknownSequence(seq))?;
            let cores = self.cores_mut(role);
            let core = &mut cores[cursor.core_index];
            let leftover = core.crossbars[cursor.crossbar].append(cursor.block, seq, remaining);
            let consumed = remaining - leftover;
            remaining = leftover;
            if remaining == 0 {
                break;
            }
            if consumed == 0 || core.crossbars[cursor.crossbar].remaining(cursor.block, seq) == 0 {
                // Need a new block; K prefers a different crossbar, V the same.
                let order: Vec<usize> = match role {
                    KvRole::Key => (0..core.crossbars.len())
                        .map(|i| (cursor.crossbar + 1 + i) % core.crossbars.len())
                        .collect(),
                    KvRole::Value => (0..core.crossbars.len())
                        .map(|i| (cursor.crossbar + i) % core.crossbars.len())
                        .collect(),
                };
                let mut found = None;
                for xb in order {
                    if core.crossbars[xb].free_blocks() > 0 {
                        let block = core.crossbars[xb].allocate(seq).expect("free block");
                        found = Some(Cursor { core_index: cursor.core_index, crossbar: xb, block });
                        break;
                    }
                }
                match found {
                    Some(c) => {
                        self.allocated_blocks += 1;
                        self.seq_blocks.entry(seq).or_default().push((role, c));
                        self.cursors.insert(key, c);
                    }
                    None => return Err(KvError::OutOfCapacity),
                }
            }
        }
        Ok(())
    }

    /// Releases every block of a sequence (completion or eviction), returning
    /// how many tokens were resident. Shared prefix blocks are dereferenced
    /// rather than freed; a shared block is freed only when its last sharer
    /// releases.
    pub fn release(&mut self, seq: u64) -> usize {
        let tokens = self.resident_tokens.remove(&seq).unwrap_or(0);
        // Free exactly the blocks the allocation paths indexed for this
        // sequence — the only paths that ever free private blocks run
        // through here, so every indexed block is still owned by `seq`.
        for (role, c) in self.seq_blocks.remove(&seq).unwrap_or_default() {
            let core = &mut self.cores_mut(role)[c.core_index];
            if core.crossbars[c.crossbar].free_at(c.block) {
                self.freed_blocks += 1;
            }
        }
        // Bitmap slots and cursors exist only on cores where a cursor was
        // bound; `clear_sequence` is a no-op (returns 0 without mutating)
        // on cores the sequence never touched, so visiting the cursor
        // cores is equivalent to the old every-core sweep.
        for head in 0..self.config.heads {
            for role in [KvRole::Key, KvRole::Value] {
                if let Some(cursor) = self.cursors.remove(&(seq, head, role as u8)) {
                    self.cores_mut(role)[cursor.core_index].bitmap.clear_sequence(seq);
                }
            }
        }
        #[cfg(debug_assertions)]
        for core in self.key_cores.iter().chain(self.value_cores.iter()) {
            for xb in &core.crossbars {
                debug_assert!(!xb.owns_any(seq), "per-sequence block index missed a block");
            }
        }
        self.page_table.remove(seq);
        self.detach_shared(seq);
        tokens
    }

    /// The lifetime block audit (`allocated − freed == live`), with shared
    /// prefix blocks counted once inside both `live` and `shared_live`.
    pub fn block_audit(&self) -> BlockAudit {
        let live: u64 =
            self.key_cores.iter().chain(self.value_cores.iter()).map(CoreState::live_blocks).sum();
        let shared_live: u64 = self
            .shared
            .values()
            .flat_map(|chain| chain.nodes.iter())
            .map(|node| (node.k_slots.len() + node.v_slots.len()) as u64)
            .sum();
        BlockAudit { allocated: self.allocated_blocks, freed: self.freed_blocks, live, shared_live }
    }

    /// One-call occupancy snapshot for periodic samplers:
    /// `(used tokens, capacity tokens, block audit)`. Equivalent to the
    /// three individual accessors, bundled so a telemetry cadence point
    /// walks the core arrays once per wafer instead of three times.
    pub fn occupancy_snapshot(&self) -> (usize, usize, BlockAudit) {
        (self.used_tokens(), self.capacity_tokens(), self.block_audit())
    }

    /// Total KV cores across both roles (key side first, then value side) —
    /// the core-index space of [`KvManager::fail_kv_core`].
    pub fn num_kv_cores(&self) -> usize {
        self.key_cores.len() + self.value_cores.len()
    }

    /// Total failure quanta: attention-mode crossbars across every core of
    /// both roles. A wafer dies after this many faults at the latest.
    pub fn num_kv_units(&self) -> usize {
        self.key_cores.iter().chain(self.value_cores.iter()).map(|c| c.crossbars.len()).sum()
    }

    /// Crossbars absorbed by runtime failures so far.
    pub fn failed_kv_units(&self) -> usize {
        self.key_cores
            .iter()
            .chain(self.value_cores.iter())
            .flat_map(|c| c.crossbars.iter())
            .filter(|xb| xb.is_failed())
            .count()
    }

    /// Fraction of KV crossbars still healthy, in `[0, 1]`.
    pub fn healthy_kv_fraction(&self) -> f64 {
        let n = self.num_kv_units();
        if n == 0 {
            0.0
        } else {
            (n - self.failed_kv_units()) as f64 / n as f64
        }
    }

    /// Whether the cache can still hold sequences: both attention roles need
    /// at least one healthy crossbar (K and V of every head must land
    /// somewhere).
    pub fn is_serviceable(&self) -> bool {
        self.key_cores.iter().any(|c| c.healthy_crossbars() > 0)
            && self.value_cores.iter().any(|c| c.healthy_crossbars() > 0)
    }

    /// Fails one attention-mode crossbar — the physical-KV-core equivalent
    /// in the scaled manager — scanning cores from `preferred` (modulo the
    /// core count, key side first) to the first core with a healthy
    /// crossbar, then failing that core's lowest-indexed healthy crossbar.
    /// The crossbar stops contributing capacity immediately; the returned
    /// failure lists the resident sequences that held blocks on it, which
    /// the caller must release (evict) — their KV is partially lost and
    /// must be recomputed.
    ///
    /// Returns `None` when every crossbar has already failed.
    pub fn fail_kv_core(&mut self, preferred: usize) -> Option<KvCoreFailure> {
        let n = self.num_kv_cores();
        let k = self.key_cores.len();
        let index = (0..n).map(|o| (preferred + o) % n).find(|&i| {
            let core = if i < k { &self.key_cores[i] } else { &self.value_cores[i - k] };
            core.healthy_crossbars() > 0
        })?;
        let failed_role = if index < k { KvRole::Key } else { KvRole::Value };
        let role_core = if index < k { index } else { index - k };
        let core = if index < k { &mut self.key_cores[index] } else { &mut self.value_cores[index - k] };
        let xb_idx =
            core.crossbars.iter().position(|xb| !xb.is_failed()).expect("scan found a healthy crossbar");
        let id = core.id;
        let xb = &mut core.crossbars[xb_idx];
        let mut evicted_tokens = xb.used_tokens();
        xb.fail();
        let xb = &core.crossbars[xb_idx];
        let mut evicted: Vec<u64> =
            self.resident_tokens.keys().copied().filter(|&seq| xb.owns_any(seq)).collect();
        // Shared prefix chains with a node on the failed crossbar lose part
        // of their prefix KV: every sharer must be evicted for recompute,
        // and the whole chain is freed (each block exactly once — sharers'
        // later releases find no chain to dereference).
        let struck_groups: Vec<u64> = self
            .shared
            .iter()
            .filter(|(_, chain)| {
                chain.nodes.iter().any(|node| {
                    let slots = match failed_role {
                        KvRole::Key => &node.k_slots,
                        KvRole::Value => &node.v_slots,
                    };
                    slots.iter().any(|s| s.core_index == role_core && s.crossbar == xb_idx)
                })
            })
            .map(|(&group, _)| group)
            .collect();
        let tpb = self.tokens_per_block();
        for group in struck_groups {
            let chain = self.shared.remove(&group).expect("group collected above");
            for node in chain.nodes {
                // Chain blocks off the failed crossbar are additional
                // losses; those on it are already inside `xb.used_tokens()`.
                let off_failed = |role: KvRole, s: &SharedSlot| {
                    role != failed_role || s.core_index != role_core || s.crossbar != xb_idx
                };
                for slot in node.k_slots {
                    if off_failed(KvRole::Key, &slot) {
                        evicted_tokens += tpb;
                    }
                    self.free_shared_slot(KvRole::Key, slot);
                }
                for slot in node.v_slots {
                    if off_failed(KvRole::Value, &slot) {
                        evicted_tokens += tpb;
                    }
                    self.free_shared_slot(KvRole::Value, slot);
                }
            }
            let sharers: Vec<u64> =
                self.seq_shared.iter().filter(|(_, &(g, _))| g == group).map(|(&s, _)| s).collect();
            for s in sharers {
                self.seq_shared.remove(&s);
                evicted.push(s);
            }
        }
        evicted.sort_unstable();
        evicted.dedup();
        Some(KvCoreFailure { index, core: id, crossbar: xb_idx, evicted_sequences: evicted, evicted_tokens })
    }

    /// Exports a resident sequence's KV for migration to another wafer:
    /// releases every block locally and returns the token count that must
    /// travel. The serving layer charges the byte volume against the
    /// inter-wafer link model.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UnknownSequence`] when the sequence is not
    /// resident.
    pub fn export_sequence(&mut self, seq: u64) -> Result<usize, KvError> {
        if !self.resident_tokens.contains_key(&seq) {
            return Err(KvError::UnknownSequence(seq));
        }
        let tokens = self.release(seq);
        self.transfers.exported_sequences += 1;
        self.transfers.exported_tokens += tokens as u64;
        Ok(tokens)
    }

    /// Admits a sequence whose `tokens` of KV were computed on another wafer
    /// and have arrived over the inter-wafer link: allocation follows the
    /// same ring/threshold rules as [`KvManager::admit`], but the tokens are
    /// counted as imported rather than locally produced.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfCapacity`] under the same conditions as
    /// [`KvManager::admit`] (the caller should release, evict, and retry).
    pub fn import_sequence(&mut self, seq: u64, tokens: usize) -> Result<(), KvError> {
        self.import_with_prefix(seq, tokens, None, tokens).map(|_| ())
    }

    /// Prefix-aware import: the sequence's KV arrives over the link, but
    /// `wire_tokens` of it actually travelled — the rest was deduplicated
    /// against this wafer's shared prefix cache at announce time. Allocation
    /// follows [`KvManager::admit_with_prefix`]; only the wire tokens count
    /// as imported. Returns the tokens served from the local prefix cache at
    /// admission (which can differ from the announce-time figure if the
    /// chain changed while the migration was in flight).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfCapacity`] under the same conditions as
    /// [`KvManager::admit`] (the caller should release, evict, and retry).
    pub fn import_with_prefix(
        &mut self,
        seq: u64,
        tokens: usize,
        prefix: Option<(u64, usize)>,
        wire_tokens: usize,
    ) -> Result<usize, KvError> {
        assert!(wire_tokens <= tokens, "the wire cannot carry more than the sequence holds");
        let cached = self.admit_with_prefix(seq, tokens, prefix)?;
        self.transfers.imported_sequences += 1;
        self.transfers.imported_tokens += wire_tokens as u64;
        Ok(cached)
    }

    /// Counters of exported/imported KV state.
    pub fn transfer_stats(&self) -> &KvTransferStats {
        &self.transfers
    }

    /// The page table (first translation level), for lookups by the
    /// simulator and tests.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The K-side core id a head of a sequence lives on, if resident.
    pub fn core_of(&self, seq: u64, head: usize) -> Option<CoreId> {
        self.page_table.lookup(seq, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(cores: usize, heads: usize) -> KvManager {
        let ids = (0..cores).map(CoreId).collect();
        KvManager::new(KvManagerConfig::new(ids, heads, 128)).unwrap()
    }

    #[test]
    fn snapshot_restore_preserves_every_observable() {
        let mut m = manager(8, 2);
        m.admit_with_prefix(1, 300, Some((42, 256))).unwrap();
        m.admit_with_prefix(2, 280, Some((42, 256))).unwrap();
        m.admit(3, 100).unwrap();
        m.append_tokens(1, 5).unwrap();
        let failure = m.fail_kv_core(1).expect("healthy crossbars remain");
        for seq in failure.evicted_sequences {
            m.release(seq);
        }
        let snap = m.snapshot();
        let mut r = KvManager::restore(m.config.clone(), &snap).unwrap();
        assert_eq!(r.snapshot(), snap, "restore is lossless");
        assert_eq!(r.used_tokens(), m.used_tokens());
        assert_eq!(r.capacity_tokens(), m.capacity_tokens());
        assert_eq!(r.block_audit(), m.block_audit());
        assert_eq!(r.transfer_stats(), m.transfer_stats());
        assert_eq!(r.failed_kv_units(), m.failed_kv_units());
        // Both managers evolve identically from the restored state.
        assert_eq!(
            m.admit_with_prefix(7, 400, Some((42, 256))),
            r.admit_with_prefix(7, 400, Some((42, 256)))
        );
        assert_eq!(m.append_tokens(7, 12), r.append_tokens(7, 12));
        assert_eq!(m.release(3), r.release(3));
        assert_eq!(m.fail_kv_core(0), r.fail_kv_core(0));
        assert_eq!(r.snapshot(), m.snapshot());
    }

    #[test]
    fn no_cores_is_an_error() {
        assert_eq!(KvManager::new(KvManagerConfig::new(vec![], 8, 128)).unwrap_err(), KvError::NoKvCores);
    }

    #[test]
    fn admit_and_release_roundtrip() {
        let mut m = manager(8, 4);
        m.admit(1, 100).unwrap();
        assert_eq!(m.resident_sequences(), 1);
        assert_eq!(m.sequence_tokens(1), Some(100));
        assert!(m.used_tokens() > 0);
        assert_eq!(m.release(1), 100);
        assert_eq!(m.resident_sequences(), 0);
        assert_eq!(m.used_tokens(), 0);
    }

    #[test]
    fn heads_are_spread_across_ring_cores() {
        let mut m = manager(8, 4);
        m.admit(1, 10).unwrap();
        let cores: Vec<_> = (0..4).map(|h| m.core_of(1, h).unwrap()).collect();
        // 4 K-side cores available, 4 heads: all distinct.
        let unique: std::collections::BTreeSet<_> = cores.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn consecutive_sequences_start_at_different_ring_positions() {
        let mut m = manager(16, 2);
        m.admit(1, 10).unwrap();
        m.admit(2, 10).unwrap();
        assert_ne!(m.core_of(1, 0), m.core_of(2, 0));
    }

    #[test]
    fn decode_growth_appends_tokens() {
        let mut m = manager(8, 2);
        m.admit(7, 64).unwrap();
        for _ in 0..32 {
            m.append_tokens(7, 1).unwrap();
        }
        assert_eq!(m.sequence_tokens(7), Some(96));
    }

    #[test]
    fn growth_spills_into_new_blocks() {
        let mut m = manager(4, 1);
        // 200 tokens exceed one 128-token logical block, forcing a second
        // block allocation for both K and V.
        m.admit(3, 200).unwrap();
        assert_eq!(m.sequence_tokens(3), Some(200));
        assert!(m.used_tokens() >= 200);
    }

    #[test]
    fn unknown_sequence_append_fails() {
        let mut m = manager(4, 2);
        assert_eq!(m.append_tokens(9, 1), Err(KvError::UnknownSequence(9)));
    }

    #[test]
    fn capacity_exhaustion_reports_out_of_capacity() {
        let mut m = manager(2, 1);
        // Each side has 1 core = 32 crossbars × 8 blocks × 128 tokens.
        let cap = m.capacity_tokens();
        let mut admitted = 0;
        let mut failed = false;
        for seq in 0..10_000u64 {
            match m.admit(seq, 4096) {
                Ok(()) => admitted += 1,
                Err(KvError::OutOfCapacity) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed, "capacity of {cap} tokens should eventually be exhausted");
        assert!(admitted > 0);
    }

    #[test]
    fn max_resident_sequences_matches_block_arithmetic() {
        let m = manager(8, 4);
        // 4 K cores × 32 crossbars × 8 blocks = 1024 blocks; a 256-token
        // sequence needs 2 blocks per head × 4 heads = 8 blocks.
        assert_eq!(m.max_resident_sequences(256), 1024 / 8);
        assert_eq!(m.max_resident_sequences(0), 0);
    }

    #[test]
    fn utilization_grows_with_admissions() {
        let mut m = manager(8, 2);
        let before = m.utilization();
        m.admit(1, 512).unwrap();
        assert!(m.utilization() > before);
        assert!(m.utilization() <= 1.0);
    }

    #[test]
    fn export_releases_blocks_and_counts_tokens() {
        let mut m = manager(8, 2);
        m.admit(1, 300).unwrap();
        let used_before = m.used_tokens();
        assert!(used_before >= 300);
        assert_eq!(m.export_sequence(1), Ok(300));
        assert_eq!(m.used_tokens(), 0);
        assert_eq!(m.resident_sequences(), 0);
        let s = m.transfer_stats();
        assert_eq!(s.exported_sequences, 1);
        assert_eq!(s.exported_tokens, 300);
        assert_eq!(s.imported_tokens, 0);
    }

    #[test]
    fn export_of_absent_sequence_fails() {
        let mut m = manager(4, 1);
        assert_eq!(m.export_sequence(42), Err(KvError::UnknownSequence(42)));
        assert_eq!(m.transfer_stats().exported_sequences, 0);
    }

    #[test]
    fn import_allocates_like_admit_and_counts() {
        let mut m = manager(8, 2);
        m.import_sequence(5, 200).unwrap();
        assert_eq!(m.sequence_tokens(5), Some(200));
        let s = m.transfer_stats();
        assert_eq!(s.imported_sequences, 1);
        assert_eq!(s.imported_tokens, 200);
        // The imported sequence grows and releases like any other.
        m.append_tokens(5, 8).unwrap();
        assert_eq!(m.release(5), 208);
    }

    #[test]
    fn failed_import_counts_nothing() {
        let mut m = manager(2, 1);
        let cap = m.capacity_tokens();
        assert_eq!(m.import_sequence(9, cap * 2), Err(KvError::OutOfCapacity));
        assert_eq!(m.transfer_stats().imported_sequences, 0);
        assert_eq!(m.transfer_stats().imported_tokens, 0);
    }

    #[test]
    fn export_import_roundtrip_conserves_tokens() {
        // Simulates a migration: export from one manager, import the same
        // token count into another.
        let mut prefill = manager(8, 2);
        let mut decode = manager(8, 2);
        prefill.admit(1, 500).unwrap();
        let tokens = prefill.export_sequence(1).unwrap();
        decode.import_sequence(1, tokens).unwrap();
        assert_eq!(prefill.transfer_stats().exported_tokens, decode.transfer_stats().imported_tokens);
        assert_eq!(decode.sequence_tokens(1), Some(500));
    }

    #[test]
    fn failing_a_crossbar_removes_capacity_and_reports_its_sequences() {
        let mut m = manager(8, 4);
        m.admit(1, 200).unwrap();
        m.admit(2, 200).unwrap();
        let cap_before = m.capacity_tokens();
        // 4 heads over 4 K-side cores, first-fit crossbars: both sequences
        // hold blocks in crossbar 0 of key core 0.
        let failure = m.fail_kv_core(0).expect("healthy crossbars exist");
        assert_eq!(failure.index, 0);
        assert_eq!(failure.crossbar, 0);
        assert_eq!(failure.evicted_sequences, vec![1, 2]);
        assert!(failure.evicted_tokens > 0);
        assert!(m.capacity_tokens() < cap_before, "a failed crossbar stops contributing capacity");
        assert_eq!(m.failed_kv_units(), 1);
        let units = m.num_kv_units() as f64;
        assert!((m.healthy_kv_fraction() - (units - 1.0) / units).abs() < 1e-12);
        assert!(m.is_serviceable());
        // Releasing the evicted sequences restores a conserved, empty audit.
        for seq in failure.evicted_sequences {
            m.release(seq);
        }
        let audit = m.block_audit();
        assert!(audit.is_conserved());
        assert_eq!(audit.live, 0);
    }

    #[test]
    fn a_fully_failed_core_is_skipped_for_new_admissions() {
        let mut m = manager(8, 1);
        // Fail every crossbar of key core 0; the scan stays on the
        // preferred core while it has healthy crossbars.
        let per_core = m.num_kv_units() / m.num_kv_cores();
        let mut failed_core = None;
        for _ in 0..per_core {
            let f = m.fail_kv_core(0).unwrap();
            assert_eq!(f.index, 0, "the scan must drain the preferred core first");
            assert!(f.evicted_sequences.is_empty(), "nothing resident yet");
            failed_core = Some(f.core);
        }
        // New sequences still admit — the ring walks past the failed core.
        for seq in 0..6 {
            m.admit(seq, 64).unwrap();
            assert_ne!(m.core_of(seq, 0), failed_core, "no new head may land on a failed core");
        }
    }

    #[test]
    fn exhausting_every_crossbar_makes_the_manager_unserviceable() {
        let mut m = manager(4, 1);
        let total = m.num_kv_units();
        for i in 0..total {
            assert!(m.fail_kv_core(i).is_some());
        }
        assert!(!m.is_serviceable());
        assert_eq!(m.healthy_kv_fraction(), 0.0);
        assert!(m.fail_kv_core(0).is_none(), "no healthy crossbar left to absorb another fault");
        assert_eq!(m.admit(1, 16), Err(KvError::OutOfCapacity));
    }

    #[test]
    fn audit_tracks_alloc_and_free_across_a_lifecycle() {
        let mut m = manager(8, 2);
        assert_eq!(m.block_audit(), BlockAudit::default());
        m.admit(1, 300).unwrap();
        let mid = m.block_audit();
        assert!(mid.is_conserved());
        assert!(mid.allocated > 0 && mid.live > 0);
        m.append_tokens(1, 500).unwrap();
        m.admit(2, 100).unwrap();
        m.release(1);
        m.release(2);
        let end = m.block_audit();
        assert!(end.is_conserved());
        assert_eq!(end.live, 0);
        assert_eq!(end.allocated, end.freed);
        // Releasing an absent sequence frees nothing (no double-free).
        m.release(1);
        assert_eq!(m.block_audit(), end);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No block is ever double-freed (or leaked) under random
            /// admit / append / release / evict / core-failure
            /// interleavings: the lifetime audit identity
            /// `allocated − freed == live` holds after every operation
            /// (a double-free would push `freed` past `allocated`).
            #[test]
            fn no_double_free_under_random_interleavings(
                ops in proptest::collection::vec((0u8..5, 0u64..6, 1usize..400), 1..60),
            ) {
                let mut m = manager(4, 2);
                for (op, seq, tokens) in ops {
                    match op {
                        0 => { let _ = m.admit(seq, tokens); }
                        1 => { let _ = m.append_tokens(seq, tokens.min(64)); }
                        2 => { m.release(seq); }
                        3 => { m.release(seq); m.release(seq); } // deliberate re-release
                        _ => {
                            if let Some(f) = m.fail_kv_core(tokens) {
                                for s in f.evicted_sequences {
                                    m.release(s);
                                }
                            }
                        }
                    }
                    let audit = m.block_audit();
                    prop_assert!(
                        audit.is_conserved(),
                        "allocated {} − freed {} != live {}",
                        audit.allocated, audit.freed, audit.live
                    );
                }
                // Draining everything returns the audit to zero live blocks.
                let resident: Vec<u64> = (0..6).collect();
                for seq in resident {
                    m.release(seq);
                }
                let audit = m.block_audit();
                prop_assert!(audit.is_conserved());
                prop_assert_eq!(audit.live, 0);
            }
        }
    }

    #[test]
    fn shared_prefix_blocks_are_allocated_once_and_refcounted() {
        let mut m = manager(8, 2);
        let tpb = m.tokens_per_block();
        assert_eq!(tpb, 128);
        // Two sharers of a 256-token prefix (2 whole blocks per head/role)
        // plus unique 100-token tails.
        let cached1 = m.admit_with_prefix(1, 356, Some((7, 256))).unwrap();
        assert_eq!(cached1, 0, "the first sharer computes the prefix it deposits");
        let used_one = m.used_tokens();
        let cached2 = m.admit_with_prefix(2, 356, Some((7, 256))).unwrap();
        assert_eq!(cached2, 256, "the second sharer reuses the deposited prefix");
        // The second sharer adds only its private tail on the K side, not
        // another copy of the prefix.
        assert!(m.used_tokens() < 2 * used_one, "the prefix must be stored once");
        assert_eq!(m.sequence_tokens(1), Some(356));
        assert_eq!(m.sequence_tokens(2), Some(356));
        assert_eq!(m.prefix_lookup(7, 256), 256);
        assert_eq!(m.prefix_lookup(7, 300), 256, "only whole blocks are shared");
        assert_eq!(m.prefix_lookup(8, 256), 0, "unknown group has no cache");
        let audit = m.block_audit();
        assert!(audit.is_conserved());
        assert!(audit.shared_live > 0);
        // First release keeps the chain (one sharer left), second frees it.
        m.release(1);
        assert_eq!(m.prefix_lookup(7, 256), 256);
        assert!(m.block_audit().is_conserved());
        m.release(2);
        assert_eq!(m.prefix_lookup(7, 256), 0, "the last sharer frees the chain");
        assert_eq!(m.prefix_groups(), 0);
        let end = m.block_audit();
        assert!(end.is_conserved());
        assert_eq!(end.live, 0);
        assert_eq!(end.shared_live, 0);
    }

    #[test]
    fn partial_block_prefixes_are_private() {
        let mut m = manager(8, 2);
        // 100 tokens < one 128-token block: nothing is shareable.
        assert_eq!(m.admit_with_prefix(1, 200, Some((3, 100))).unwrap(), 0);
        assert_eq!(m.prefix_groups(), 0);
        assert_eq!(m.block_audit().shared_live, 0);
        m.release(1);
        assert!(m.block_audit().is_conserved());
    }

    #[test]
    fn divergent_sharers_extend_the_chain_for_longer_prefixes() {
        let mut m = manager(8, 2);
        // Sharer A deposits 1 block of the prefix; sharer B reuses it and
        // deposits 2 more.
        assert_eq!(m.admit_with_prefix(1, 200, Some((9, 128))).unwrap(), 0);
        assert_eq!(m.admit_with_prefix(2, 500, Some((9, 384))).unwrap(), 128);
        assert_eq!(m.prefix_lookup(9, 384), 384);
        // B releases: nodes 2 and 3 drop to zero refs and free; node 1 stays
        // for A.
        m.release(2);
        assert_eq!(m.prefix_lookup(9, 384), 128);
        assert!(m.block_audit().is_conserved());
        m.release(1);
        assert_eq!(m.prefix_groups(), 0);
        assert_eq!(m.block_audit().live, 0);
    }

    #[test]
    fn a_fault_on_a_shared_crossbar_evicts_every_sharer_once() {
        let mut m = manager(8, 2);
        m.admit_with_prefix(1, 300, Some((5, 256))).unwrap();
        m.admit_with_prefix(2, 300, Some((5, 256))).unwrap();
        // Walk the cores until the failure strikes a crossbar holding the
        // shared chain (the chain sits on the first ring cores).
        let mut evicted_all: Vec<u64> = Vec::new();
        for preferred in 0..m.num_kv_cores() {
            if let Some(f) = m.fail_kv_core(preferred) {
                if !f.evicted_sequences.is_empty() {
                    evicted_all = f.evicted_sequences;
                    break;
                }
            }
        }
        assert_eq!(evicted_all, vec![1, 2], "both sharers lose their prefix KV");
        assert_eq!(m.prefix_groups(), 0, "the struck chain is gone");
        assert!(m.block_audit().is_conserved());
        // The engine releases the evicted sequences; no double-free of the
        // already-freed chain.
        m.release(1);
        m.release(2);
        let audit = m.block_audit();
        assert!(audit.is_conserved());
        assert_eq!(audit.live, 0);
    }

    #[test]
    fn prefix_aware_import_counts_only_wire_tokens() {
        let mut m = manager(8, 2);
        // A resident sharer keeps the 256-token prefix cached.
        m.admit_with_prefix(1, 300, Some((4, 256))).unwrap();
        // An import that deduplicated the prefix at announce time ships only
        // the 44-token tail.
        let cached = m.import_with_prefix(2, 300, Some((4, 256)), 44).unwrap();
        assert_eq!(cached, 256);
        assert_eq!(m.transfer_stats().imported_tokens, 44);
        assert_eq!(m.sequence_tokens(2), Some(300));
        m.release(1);
        m.release(2);
        assert!(m.block_audit().is_conserved());
        assert_eq!(m.block_audit().live, 0);
    }

    mod prefix_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Prefix-cache refcount safety under random share / diverge /
            /// release / fault interleavings: no double-free (conservation
            /// would break), every chain node's blocks are freed exactly
            /// once (when its refcount reaches zero), and the audit stays
            /// conserved after every operation. Draining every sequence
            /// returns the cache to zero live and zero shared blocks.
            #[test]
            fn refcounts_free_each_block_exactly_once(
                ops in proptest::collection::vec(
                    (0u8..5, 0u64..24, 1usize..600), 1..80),
            ) {
                let mut m = manager(4, 2);
                for (op, draw, tokens) in ops {
                    // One draw encodes both the sequence (0..8) and its
                    // prefix group (0..3), so sharers collide frequently.
                    let seq = draw % 8;
                    let group = draw / 8;
                    match op {
                        // Shared admission: prefix length varies with the
                        // draw so sharers of one group diverge.
                        0 => { let _ = m.admit_with_prefix(
                                seq, tokens, Some((group, tokens / 2 + 128))); }
                        1 => { let _ = m.admit(seq, tokens.min(256)); }
                        2 => { m.release(seq); }
                        3 => { m.release(seq); m.release(seq); } // double release
                        _ => {
                            if let Some(f) = m.fail_kv_core(tokens) {
                                for s in f.evicted_sequences {
                                    m.release(s);
                                }
                            }
                        }
                    }
                    let audit = m.block_audit();
                    prop_assert!(
                        audit.is_conserved(),
                        "allocated {} − freed {} != live {} (shared {})",
                        audit.allocated, audit.freed, audit.live, audit.shared_live
                    );
                }
                for seq in 0..8 {
                    m.release(seq);
                }
                let audit = m.block_audit();
                prop_assert!(audit.is_conserved());
                prop_assert_eq!(audit.live, 0);
                prop_assert_eq!(audit.shared_live, 0);
                prop_assert_eq!(m.prefix_groups(), 0);
            }
        }
    }

    #[test]
    fn threshold_reserves_residual_capacity() {
        let ids: Vec<CoreId> = (0..2).map(CoreId).collect();
        let mut cfg = KvManagerConfig::new(ids, 1, 128);
        cfg.threshold = 0.9; // cores considered full once 10% is used
        let mut m = KvManager::new(cfg).unwrap();
        m.admit(1, 6000).unwrap();
        // The single K core is now beyond the 10% mark, so a new sequence is
        // rejected even though raw capacity remains.
        assert_eq!(m.admit(2, 100), Err(KvError::OutOfCapacity));
        assert!(m.utilization() < 0.5);
    }
}
