//! The distributed dynamic KV manager (§4.4.2–§4.4.3).
//!
//! The cores left over after weight mapping are split equally between the
//! `Q·Kᵀ` (score) computation and the `S·V` (context) computation; K vectors
//! live on score cores and V vectors on context cores. Heads of one sequence
//! are spread over consecutive cores of a ring (so that consecutive sequences
//! never write into the core another sequence is computing on), and growth
//! follows the K/V-specific policies: K prefers a free block in a *different*
//! crossbar (it grows along the output-channel dimension, which cannot be
//! accumulated within one crossbar), V prefers the *same* crossbar.

use crate::block::CrossbarBlocks;
use crate::translate::{CoreBitmap, PageTable};
use ouro_hw::{CoreId, CrossbarConfig};
use std::collections::HashMap;

/// Which half of the attention computation a KV core serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KvRole {
    /// Stores K and computes `Q·Kᵀ`.
    Key,
    /// Stores V and computes `S·V`.
    Value,
}

/// Errors returned by the KV manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Not enough free blocks (or sequence slots) to admit / grow the
    /// sequence; the caller should evict or defer.
    OutOfCapacity,
    /// The sequence is not resident.
    UnknownSequence(u64),
    /// The manager was built with no KV cores at all.
    NoKvCores,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfCapacity => write!(f, "kv cache out of capacity"),
            KvError::UnknownSequence(s) => write!(f, "sequence {s} is not resident"),
            KvError::NoKvCores => write!(f, "no cores were assigned to the kv cache"),
        }
    }
}

impl std::error::Error for KvError {}

/// Configuration of the distributed KV manager for one transformer block's
/// attention.
#[derive(Debug, Clone, PartialEq)]
pub struct KvManagerConfig {
    /// Cores assigned to KV storage / in-situ attention, in ring order.
    pub kv_cores: Vec<CoreId>,
    /// Number of attention-mode crossbars per KV core.
    pub crossbars_per_core: usize,
    /// Crossbar geometry (logical blocks, tokens per block).
    pub crossbar: CrossbarConfig,
    /// Number of attention heads.
    pub heads: usize,
    /// Head dimension in elements.
    pub head_dim: usize,
    /// Bytes per KV element (1 for int8).
    pub bytes_per_elem: u64,
    /// Anti-thrashing threshold (§4.4.4): when the fraction of free token
    /// slots on the core currently being allocated from drops below this
    /// value, the core is considered full for *new* sequences, reserving the
    /// residual capacity for decode-phase growth of already-resident ones.
    pub threshold: f64,
}

impl KvManagerConfig {
    /// A configuration with the paper's crossbar and a simple list of cores.
    pub fn new(kv_cores: Vec<CoreId>, heads: usize, head_dim: usize) -> KvManagerConfig {
        KvManagerConfig {
            kv_cores,
            crossbars_per_core: 32,
            crossbar: CrossbarConfig::paper(),
            heads,
            head_dim,
            bytes_per_elem: 1,
            threshold: 0.1,
        }
    }
}

/// Per-core KV state.
#[derive(Debug, Clone)]
struct CoreState {
    id: CoreId,
    crossbars: Vec<CrossbarBlocks>,
    bitmap: CoreBitmap,
}

impl CoreState {
    fn free_tokens(&self) -> usize {
        self.crossbars.iter().map(|c| c.free_blocks() * c.tokens_per_block()).sum()
    }

    fn capacity_tokens(&self) -> usize {
        self.crossbars.iter().map(CrossbarBlocks::capacity_tokens).sum()
    }

    fn used_tokens(&self) -> usize {
        self.crossbars.iter().map(CrossbarBlocks::used_tokens).sum()
    }

    /// Logical blocks currently allocated on this core, counted raw — the
    /// audit must see blocks awaiting post-fault eviction on failed
    /// crossbars too.
    fn live_blocks(&self) -> u64 {
        self.crossbars.iter().map(|c| (c.num_blocks() - c.raw_free_blocks()) as u64).sum()
    }

    fn healthy_crossbars(&self) -> usize {
        self.crossbars.iter().filter(|c| !c.is_failed()).count()
    }
}

/// Cursor of the block a (sequence, head, role) tuple is currently appending
/// into.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    core_index: usize,
    crossbar: usize,
    block: usize,
}

/// Counters of KV state handed across wafer boundaries (prefill/decode
/// disaggregation). Token counts are whole-sequence tokens; byte accounting
/// is the caller's job because the manager does not know the model's head
/// layout across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvTransferStats {
    /// Sequences whose KV was exported (released for migration elsewhere).
    pub exported_sequences: u64,
    /// Tokens resident at export time, summed over exported sequences.
    pub exported_tokens: u64,
    /// Sequences admitted with KV computed on another wafer.
    pub imported_sequences: u64,
    /// Tokens of imported (not recomputed) KV, summed over imports.
    pub imported_tokens: u64,
}

/// Lifetime block accounting of one manager, the basis of the workspace's
/// conservation invariant: every block ever allocated is either freed or
/// still live, so `allocated − freed == live` at every observation instant.
/// A double-free would drive `freed` past `allocated` (and `live` negative
/// in the identity), which the audit makes immediately visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockAudit {
    /// Logical blocks allocated since construction.
    pub allocated: u64,
    /// Logical blocks freed since construction.
    pub freed: u64,
    /// Logical blocks currently allocated somewhere in the cache.
    pub live: u64,
}

impl BlockAudit {
    /// The conservation identity `allocated − freed == live`.
    pub fn is_conserved(&self) -> bool {
        self.freed <= self.allocated && self.allocated - self.freed == self.live
    }
}

/// Outcome of one runtime KV failure. The failure quantum is a single
/// attention-mode *crossbar*: the serving managers are per-head-scaled
/// (one scaled core stands for `heads` physical cores), so one crossbar of
/// a scaled core is the nearest allocation unit to one physical KV core's
/// worth of cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCoreFailure {
    /// Flat index of the struck core (key side first, then value side).
    pub index: usize,
    /// The struck core's id.
    pub core: CoreId,
    /// The failed crossbar within the core.
    pub crossbar: usize,
    /// Resident sequences that held at least one block on the failed
    /// crossbar, in ascending order. The caller must evict (release) them —
    /// their KV is partially gone and must be recomputed.
    pub evicted_sequences: Vec<u64>,
    /// Token slots resident on the failed crossbar at failure time.
    pub evicted_tokens: usize,
}

/// The distributed dynamic KV cache manager.
#[derive(Debug, Clone)]
pub struct KvManager {
    config: KvManagerConfig,
    key_cores: Vec<CoreState>,
    value_cores: Vec<CoreState>,
    page_table: PageTable,
    /// Ring pointer per role: index of the core after the last one assigned.
    ring_next: [usize; 2],
    cursors: HashMap<(u64, usize, u8), Cursor>,
    resident_tokens: HashMap<u64, usize>,
    transfers: KvTransferStats,
    /// Lifetime logical-block allocations (audit counter).
    allocated_blocks: u64,
    /// Lifetime logical-block frees (audit counter).
    freed_blocks: u64,
}

impl KvManager {
    /// Builds the manager, splitting the KV cores equally between the score
    /// (K) and context (V) halves.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::NoKvCores`] when the core list is empty.
    pub fn new(config: KvManagerConfig) -> Result<KvManager, KvError> {
        if config.kv_cores.is_empty() {
            return Err(KvError::NoKvCores);
        }
        let mk_core = |id: CoreId| CoreState {
            id,
            crossbars: (0..config.crossbars_per_core)
                .map(|_| CrossbarBlocks::new(&config.crossbar, config.head_dim, config.bytes_per_elem))
                .collect(),
            bitmap: CoreBitmap::paper(),
        };
        let half = (config.kv_cores.len() / 2).max(1);
        let key_cores: Vec<CoreState> = config.kv_cores[..half].iter().copied().map(mk_core).collect();
        let value_cores: Vec<CoreState> =
            config.kv_cores[half.min(config.kv_cores.len())..].iter().copied().map(mk_core).collect();
        let value_cores = if value_cores.is_empty() { key_cores.clone() } else { value_cores };
        Ok(KvManager {
            config,
            key_cores,
            value_cores,
            page_table: PageTable::new(),
            ring_next: [0, 0],
            cursors: HashMap::new(),
            resident_tokens: HashMap::new(),
            transfers: KvTransferStats::default(),
            allocated_blocks: 0,
            freed_blocks: 0,
        })
    }

    fn cores(&self, role: KvRole) -> &[CoreState] {
        match role {
            KvRole::Key => &self.key_cores,
            KvRole::Value => &self.value_cores,
        }
    }

    fn cores_mut(&mut self, role: KvRole) -> &mut Vec<CoreState> {
        match role {
            KvRole::Key => &mut self.key_cores,
            KvRole::Value => &mut self.value_cores,
        }
    }

    /// Total token capacity (per role side; K and V are symmetric).
    pub fn capacity_tokens(&self) -> usize {
        self.key_cores.iter().map(CoreState::capacity_tokens).sum()
    }

    /// Tokens currently stored on the K side.
    pub fn used_tokens(&self) -> usize {
        self.key_cores.iter().map(CoreState::used_tokens).sum()
    }

    /// K-side storage utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity_tokens();
        if cap == 0 {
            0.0
        } else {
            self.used_tokens() as f64 / cap as f64
        }
    }

    /// Number of resident sequences.
    pub fn resident_sequences(&self) -> usize {
        self.resident_tokens.len()
    }

    /// Tokens resident for one sequence (K side), if it is resident.
    pub fn sequence_tokens(&self, seq: u64) -> Option<usize> {
        self.resident_tokens.get(&seq).copied()
    }

    /// Upper bound on how many sequences of `tokens` tokens each could be
    /// resident simultaneously (per-head blocks are not shared between
    /// sequences, so allocation is quantised to logical blocks).
    pub fn max_resident_sequences(&self, tokens: usize) -> usize {
        let per_block =
            self.config.crossbar.tokens_per_logical_block(self.config.head_dim, self.config.bytes_per_elem);
        if per_block == 0 || tokens == 0 {
            return 0;
        }
        let blocks_per_head = tokens.div_ceil(per_block);
        let total_blocks: usize = self
            .key_cores
            .iter()
            .map(|c| c.crossbars.iter().map(CrossbarBlocks::num_blocks).sum::<usize>())
            .sum();
        total_blocks / (blocks_per_head * self.config.heads)
    }

    /// Admits a new sequence with `initial_tokens` of prefilled KV (§4.4.3):
    /// heads are assigned to consecutive ring cores starting at the ring
    /// pointer, skipping cores whose free fraction is below the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfCapacity`] (without partial allocation being
    /// rolled back eagerly — the caller is expected to evict and retry with
    /// the same sequence id, which reuses the partially allocated blocks) if
    /// the cache cannot hold the sequence.
    pub fn admit(&mut self, seq: u64, initial_tokens: usize) -> Result<(), KvError> {
        let heads = self.config.heads;
        // Choose one core per head per role, walking the ring.
        let mut head_cores_k = Vec::with_capacity(heads);
        let mut head_cores_v = Vec::with_capacity(heads);
        for (role_idx, role) in [KvRole::Key, KvRole::Value].into_iter().enumerate() {
            let n = self.cores(role).len();
            let threshold = self.config.threshold;
            let mut assigned = 0;
            let mut scanned = 0;
            let mut idx = self.ring_next[role_idx];
            while assigned < heads && scanned < 2 * n * (heads.div_ceil(n) + 1) {
                let core = &self.cores(role)[idx % n];
                let free_frac = core.free_tokens() as f64 / core.capacity_tokens().max(1) as f64;
                if free_frac > threshold {
                    if role == KvRole::Key {
                        head_cores_k.push(idx % n);
                    } else {
                        head_cores_v.push(idx % n);
                    }
                    assigned += 1;
                }
                idx += 1;
                scanned += 1;
            }
            if assigned < heads {
                return Err(KvError::OutOfCapacity);
            }
            self.ring_next[role_idx] = idx % n;
        }
        // Record the page-table entry using the K-side cores (one per head).
        let pt_cores: Vec<CoreId> = head_cores_k.iter().map(|&i| self.key_cores[i].id).collect();
        self.page_table.insert(seq, pt_cores);
        self.resident_tokens.insert(seq, 0);
        // Allocate and fill the initial tokens.
        for head in 0..heads {
            self.bind_cursor(seq, head, KvRole::Key, head_cores_k[head])?;
            self.bind_cursor(seq, head, KvRole::Value, head_cores_v[head])?;
        }
        if initial_tokens > 0 {
            self.append_tokens(seq, initial_tokens)?;
        } else {
            self.resident_tokens.insert(seq, 0);
        }
        Ok(())
    }

    fn bind_cursor(&mut self, seq: u64, head: usize, role: KvRole, core_index: usize) -> Result<(), KvError> {
        let cores = self.cores_mut(role);
        let core = &mut cores[core_index];
        // Find a crossbar with a free block.
        let Some(xb) = core.crossbars.iter().position(|c| c.free_blocks() > 0) else {
            return Err(KvError::OutOfCapacity);
        };
        let block = core.crossbars[xb].allocate(seq).expect("free block just checked");
        if let Some(slot) = core.bitmap.slot_for(seq) {
            core.bitmap.set(slot, (xb * core.crossbars[xb].num_blocks() + block) % 256);
        }
        self.allocated_blocks += 1;
        self.cursors.insert((seq, head, role as u8), Cursor { core_index, crossbar: xb, block });
        Ok(())
    }

    /// Appends `tokens` new tokens of K and V for every head of a resident
    /// sequence (the per-token write that overlaps the attention of the
    /// current token).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UnknownSequence`] if the sequence is not resident or
    /// [`KvError::OutOfCapacity`] if a head cannot grow.
    pub fn append_tokens(&mut self, seq: u64, tokens: usize) -> Result<(), KvError> {
        if !self.resident_tokens.contains_key(&seq) {
            return Err(KvError::UnknownSequence(seq));
        }
        for head in 0..self.config.heads {
            for role in [KvRole::Key, KvRole::Value] {
                self.append_for(seq, head, role, tokens)?;
            }
        }
        *self.resident_tokens.get_mut(&seq).expect("resident") += tokens;
        Ok(())
    }

    fn append_for(&mut self, seq: u64, head: usize, role: KvRole, tokens: usize) -> Result<(), KvError> {
        let key = (seq, head, role as u8);
        let mut remaining = tokens;
        while remaining > 0 {
            let cursor = *self.cursors.get(&key).ok_or(KvError::UnknownSequence(seq))?;
            let cores = self.cores_mut(role);
            let core = &mut cores[cursor.core_index];
            let leftover = core.crossbars[cursor.crossbar].append(cursor.block, seq, remaining);
            let consumed = remaining - leftover;
            remaining = leftover;
            if remaining == 0 {
                break;
            }
            if consumed == 0 || core.crossbars[cursor.crossbar].remaining(cursor.block, seq) == 0 {
                // Need a new block; K prefers a different crossbar, V the same.
                let order: Vec<usize> = match role {
                    KvRole::Key => (0..core.crossbars.len())
                        .map(|i| (cursor.crossbar + 1 + i) % core.crossbars.len())
                        .collect(),
                    KvRole::Value => (0..core.crossbars.len())
                        .map(|i| (cursor.crossbar + i) % core.crossbars.len())
                        .collect(),
                };
                let mut found = None;
                for xb in order {
                    if core.crossbars[xb].free_blocks() > 0 {
                        let block = core.crossbars[xb].allocate(seq).expect("free block");
                        found = Some(Cursor { core_index: cursor.core_index, crossbar: xb, block });
                        break;
                    }
                }
                match found {
                    Some(c) => {
                        self.allocated_blocks += 1;
                        self.cursors.insert(key, c);
                    }
                    None => return Err(KvError::OutOfCapacity),
                }
            }
        }
        Ok(())
    }

    /// Releases every block of a sequence (completion or eviction), returning
    /// how many tokens were resident.
    pub fn release(&mut self, seq: u64) -> usize {
        let tokens = self.resident_tokens.remove(&seq).unwrap_or(0);
        for core in self.key_cores.iter_mut().chain(self.value_cores.iter_mut()) {
            for xb in &mut core.crossbars {
                self.freed_blocks += xb.release(seq) as u64;
            }
            core.bitmap.clear_sequence(seq);
        }
        self.cursors.retain(|(s, _, _), _| *s != seq);
        self.page_table.remove(seq);
        tokens
    }

    /// The lifetime block audit (`allocated − freed == live`).
    pub fn block_audit(&self) -> BlockAudit {
        let live: u64 =
            self.key_cores.iter().chain(self.value_cores.iter()).map(CoreState::live_blocks).sum();
        BlockAudit { allocated: self.allocated_blocks, freed: self.freed_blocks, live }
    }

    /// Total KV cores across both roles (key side first, then value side) —
    /// the core-index space of [`KvManager::fail_kv_core`].
    pub fn num_kv_cores(&self) -> usize {
        self.key_cores.len() + self.value_cores.len()
    }

    /// Total failure quanta: attention-mode crossbars across every core of
    /// both roles. A wafer dies after this many faults at the latest.
    pub fn num_kv_units(&self) -> usize {
        self.key_cores.iter().chain(self.value_cores.iter()).map(|c| c.crossbars.len()).sum()
    }

    /// Crossbars absorbed by runtime failures so far.
    pub fn failed_kv_units(&self) -> usize {
        self.key_cores
            .iter()
            .chain(self.value_cores.iter())
            .flat_map(|c| c.crossbars.iter())
            .filter(|xb| xb.is_failed())
            .count()
    }

    /// Fraction of KV crossbars still healthy, in `[0, 1]`.
    pub fn healthy_kv_fraction(&self) -> f64 {
        let n = self.num_kv_units();
        if n == 0 {
            0.0
        } else {
            (n - self.failed_kv_units()) as f64 / n as f64
        }
    }

    /// Whether the cache can still hold sequences: both attention roles need
    /// at least one healthy crossbar (K and V of every head must land
    /// somewhere).
    pub fn is_serviceable(&self) -> bool {
        self.key_cores.iter().any(|c| c.healthy_crossbars() > 0)
            && self.value_cores.iter().any(|c| c.healthy_crossbars() > 0)
    }

    /// Fails one attention-mode crossbar — the physical-KV-core equivalent
    /// in the scaled manager — scanning cores from `preferred` (modulo the
    /// core count, key side first) to the first core with a healthy
    /// crossbar, then failing that core's lowest-indexed healthy crossbar.
    /// The crossbar stops contributing capacity immediately; the returned
    /// failure lists the resident sequences that held blocks on it, which
    /// the caller must release (evict) — their KV is partially lost and
    /// must be recomputed.
    ///
    /// Returns `None` when every crossbar has already failed.
    pub fn fail_kv_core(&mut self, preferred: usize) -> Option<KvCoreFailure> {
        let n = self.num_kv_cores();
        let k = self.key_cores.len();
        let index = (0..n).map(|o| (preferred + o) % n).find(|&i| {
            let core = if i < k { &self.key_cores[i] } else { &self.value_cores[i - k] };
            core.healthy_crossbars() > 0
        })?;
        let core = if index < k { &mut self.key_cores[index] } else { &mut self.value_cores[index - k] };
        let xb_idx =
            core.crossbars.iter().position(|xb| !xb.is_failed()).expect("scan found a healthy crossbar");
        let id = core.id;
        let xb = &mut core.crossbars[xb_idx];
        let evicted_tokens = xb.used_tokens();
        xb.fail();
        let xb = &core.crossbars[xb_idx];
        let mut evicted: Vec<u64> =
            self.resident_tokens.keys().copied().filter(|&seq| xb.owns_any(seq)).collect();
        evicted.sort_unstable();
        Some(KvCoreFailure { index, core: id, crossbar: xb_idx, evicted_sequences: evicted, evicted_tokens })
    }

    /// Exports a resident sequence's KV for migration to another wafer:
    /// releases every block locally and returns the token count that must
    /// travel. The serving layer charges the byte volume against the
    /// inter-wafer link model.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UnknownSequence`] when the sequence is not
    /// resident.
    pub fn export_sequence(&mut self, seq: u64) -> Result<usize, KvError> {
        if !self.resident_tokens.contains_key(&seq) {
            return Err(KvError::UnknownSequence(seq));
        }
        let tokens = self.release(seq);
        self.transfers.exported_sequences += 1;
        self.transfers.exported_tokens += tokens as u64;
        Ok(tokens)
    }

    /// Admits a sequence whose `tokens` of KV were computed on another wafer
    /// and have arrived over the inter-wafer link: allocation follows the
    /// same ring/threshold rules as [`KvManager::admit`], but the tokens are
    /// counted as imported rather than locally produced.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::OutOfCapacity`] under the same conditions as
    /// [`KvManager::admit`] (the caller should release, evict, and retry).
    pub fn import_sequence(&mut self, seq: u64, tokens: usize) -> Result<(), KvError> {
        self.admit(seq, tokens)?;
        self.transfers.imported_sequences += 1;
        self.transfers.imported_tokens += tokens as u64;
        Ok(())
    }

    /// Counters of exported/imported KV state.
    pub fn transfer_stats(&self) -> &KvTransferStats {
        &self.transfers
    }

    /// The page table (first translation level), for lookups by the
    /// simulator and tests.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The K-side core id a head of a sequence lives on, if resident.
    pub fn core_of(&self, seq: u64, head: usize) -> Option<CoreId> {
        self.page_table.lookup(seq, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(cores: usize, heads: usize) -> KvManager {
        let ids = (0..cores).map(CoreId).collect();
        KvManager::new(KvManagerConfig::new(ids, heads, 128)).unwrap()
    }

    #[test]
    fn no_cores_is_an_error() {
        assert_eq!(KvManager::new(KvManagerConfig::new(vec![], 8, 128)).unwrap_err(), KvError::NoKvCores);
    }

    #[test]
    fn admit_and_release_roundtrip() {
        let mut m = manager(8, 4);
        m.admit(1, 100).unwrap();
        assert_eq!(m.resident_sequences(), 1);
        assert_eq!(m.sequence_tokens(1), Some(100));
        assert!(m.used_tokens() > 0);
        assert_eq!(m.release(1), 100);
        assert_eq!(m.resident_sequences(), 0);
        assert_eq!(m.used_tokens(), 0);
    }

    #[test]
    fn heads_are_spread_across_ring_cores() {
        let mut m = manager(8, 4);
        m.admit(1, 10).unwrap();
        let cores: Vec<_> = (0..4).map(|h| m.core_of(1, h).unwrap()).collect();
        // 4 K-side cores available, 4 heads: all distinct.
        let unique: std::collections::HashSet<_> = cores.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn consecutive_sequences_start_at_different_ring_positions() {
        let mut m = manager(16, 2);
        m.admit(1, 10).unwrap();
        m.admit(2, 10).unwrap();
        assert_ne!(m.core_of(1, 0), m.core_of(2, 0));
    }

    #[test]
    fn decode_growth_appends_tokens() {
        let mut m = manager(8, 2);
        m.admit(7, 64).unwrap();
        for _ in 0..32 {
            m.append_tokens(7, 1).unwrap();
        }
        assert_eq!(m.sequence_tokens(7), Some(96));
    }

    #[test]
    fn growth_spills_into_new_blocks() {
        let mut m = manager(4, 1);
        // 200 tokens exceed one 128-token logical block, forcing a second
        // block allocation for both K and V.
        m.admit(3, 200).unwrap();
        assert_eq!(m.sequence_tokens(3), Some(200));
        assert!(m.used_tokens() >= 200);
    }

    #[test]
    fn unknown_sequence_append_fails() {
        let mut m = manager(4, 2);
        assert_eq!(m.append_tokens(9, 1), Err(KvError::UnknownSequence(9)));
    }

    #[test]
    fn capacity_exhaustion_reports_out_of_capacity() {
        let mut m = manager(2, 1);
        // Each side has 1 core = 32 crossbars × 8 blocks × 128 tokens.
        let cap = m.capacity_tokens();
        let mut admitted = 0;
        let mut failed = false;
        for seq in 0..10_000u64 {
            match m.admit(seq, 4096) {
                Ok(()) => admitted += 1,
                Err(KvError::OutOfCapacity) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed, "capacity of {cap} tokens should eventually be exhausted");
        assert!(admitted > 0);
    }

    #[test]
    fn max_resident_sequences_matches_block_arithmetic() {
        let m = manager(8, 4);
        // 4 K cores × 32 crossbars × 8 blocks = 1024 blocks; a 256-token
        // sequence needs 2 blocks per head × 4 heads = 8 blocks.
        assert_eq!(m.max_resident_sequences(256), 1024 / 8);
        assert_eq!(m.max_resident_sequences(0), 0);
    }

    #[test]
    fn utilization_grows_with_admissions() {
        let mut m = manager(8, 2);
        let before = m.utilization();
        m.admit(1, 512).unwrap();
        assert!(m.utilization() > before);
        assert!(m.utilization() <= 1.0);
    }

    #[test]
    fn export_releases_blocks_and_counts_tokens() {
        let mut m = manager(8, 2);
        m.admit(1, 300).unwrap();
        let used_before = m.used_tokens();
        assert!(used_before >= 300);
        assert_eq!(m.export_sequence(1), Ok(300));
        assert_eq!(m.used_tokens(), 0);
        assert_eq!(m.resident_sequences(), 0);
        let s = m.transfer_stats();
        assert_eq!(s.exported_sequences, 1);
        assert_eq!(s.exported_tokens, 300);
        assert_eq!(s.imported_tokens, 0);
    }

    #[test]
    fn export_of_absent_sequence_fails() {
        let mut m = manager(4, 1);
        assert_eq!(m.export_sequence(42), Err(KvError::UnknownSequence(42)));
        assert_eq!(m.transfer_stats().exported_sequences, 0);
    }

    #[test]
    fn import_allocates_like_admit_and_counts() {
        let mut m = manager(8, 2);
        m.import_sequence(5, 200).unwrap();
        assert_eq!(m.sequence_tokens(5), Some(200));
        let s = m.transfer_stats();
        assert_eq!(s.imported_sequences, 1);
        assert_eq!(s.imported_tokens, 200);
        // The imported sequence grows and releases like any other.
        m.append_tokens(5, 8).unwrap();
        assert_eq!(m.release(5), 208);
    }

    #[test]
    fn failed_import_counts_nothing() {
        let mut m = manager(2, 1);
        let cap = m.capacity_tokens();
        assert_eq!(m.import_sequence(9, cap * 2), Err(KvError::OutOfCapacity));
        assert_eq!(m.transfer_stats().imported_sequences, 0);
        assert_eq!(m.transfer_stats().imported_tokens, 0);
    }

    #[test]
    fn export_import_roundtrip_conserves_tokens() {
        // Simulates a migration: export from one manager, import the same
        // token count into another.
        let mut prefill = manager(8, 2);
        let mut decode = manager(8, 2);
        prefill.admit(1, 500).unwrap();
        let tokens = prefill.export_sequence(1).unwrap();
        decode.import_sequence(1, tokens).unwrap();
        assert_eq!(prefill.transfer_stats().exported_tokens, decode.transfer_stats().imported_tokens);
        assert_eq!(decode.sequence_tokens(1), Some(500));
    }

    #[test]
    fn failing_a_crossbar_removes_capacity_and_reports_its_sequences() {
        let mut m = manager(8, 4);
        m.admit(1, 200).unwrap();
        m.admit(2, 200).unwrap();
        let cap_before = m.capacity_tokens();
        // 4 heads over 4 K-side cores, first-fit crossbars: both sequences
        // hold blocks in crossbar 0 of key core 0.
        let failure = m.fail_kv_core(0).expect("healthy crossbars exist");
        assert_eq!(failure.index, 0);
        assert_eq!(failure.crossbar, 0);
        assert_eq!(failure.evicted_sequences, vec![1, 2]);
        assert!(failure.evicted_tokens > 0);
        assert!(m.capacity_tokens() < cap_before, "a failed crossbar stops contributing capacity");
        assert_eq!(m.failed_kv_units(), 1);
        let units = m.num_kv_units() as f64;
        assert!((m.healthy_kv_fraction() - (units - 1.0) / units).abs() < 1e-12);
        assert!(m.is_serviceable());
        // Releasing the evicted sequences restores a conserved, empty audit.
        for seq in failure.evicted_sequences {
            m.release(seq);
        }
        let audit = m.block_audit();
        assert!(audit.is_conserved());
        assert_eq!(audit.live, 0);
    }

    #[test]
    fn a_fully_failed_core_is_skipped_for_new_admissions() {
        let mut m = manager(8, 1);
        // Fail every crossbar of key core 0; the scan stays on the
        // preferred core while it has healthy crossbars.
        let per_core = m.num_kv_units() / m.num_kv_cores();
        let mut failed_core = None;
        for _ in 0..per_core {
            let f = m.fail_kv_core(0).unwrap();
            assert_eq!(f.index, 0, "the scan must drain the preferred core first");
            assert!(f.evicted_sequences.is_empty(), "nothing resident yet");
            failed_core = Some(f.core);
        }
        // New sequences still admit — the ring walks past the failed core.
        for seq in 0..6 {
            m.admit(seq, 64).unwrap();
            assert_ne!(m.core_of(seq, 0), failed_core, "no new head may land on a failed core");
        }
    }

    #[test]
    fn exhausting_every_crossbar_makes_the_manager_unserviceable() {
        let mut m = manager(4, 1);
        let total = m.num_kv_units();
        for i in 0..total {
            assert!(m.fail_kv_core(i).is_some());
        }
        assert!(!m.is_serviceable());
        assert_eq!(m.healthy_kv_fraction(), 0.0);
        assert!(m.fail_kv_core(0).is_none(), "no healthy crossbar left to absorb another fault");
        assert_eq!(m.admit(1, 16), Err(KvError::OutOfCapacity));
    }

    #[test]
    fn audit_tracks_alloc_and_free_across_a_lifecycle() {
        let mut m = manager(8, 2);
        assert_eq!(m.block_audit(), BlockAudit::default());
        m.admit(1, 300).unwrap();
        let mid = m.block_audit();
        assert!(mid.is_conserved());
        assert!(mid.allocated > 0 && mid.live > 0);
        m.append_tokens(1, 500).unwrap();
        m.admit(2, 100).unwrap();
        m.release(1);
        m.release(2);
        let end = m.block_audit();
        assert!(end.is_conserved());
        assert_eq!(end.live, 0);
        assert_eq!(end.allocated, end.freed);
        // Releasing an absent sequence frees nothing (no double-free).
        m.release(1);
        assert_eq!(m.block_audit(), end);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No block is ever double-freed (or leaked) under random
            /// admit / append / release / evict / core-failure
            /// interleavings: the lifetime audit identity
            /// `allocated − freed == live` holds after every operation
            /// (a double-free would push `freed` past `allocated`).
            #[test]
            fn no_double_free_under_random_interleavings(
                ops in proptest::collection::vec((0u8..5, 0u64..6, 1usize..400), 1..60),
            ) {
                let mut m = manager(4, 2);
                for (op, seq, tokens) in ops {
                    match op {
                        0 => { let _ = m.admit(seq, tokens); }
                        1 => { let _ = m.append_tokens(seq, tokens.min(64)); }
                        2 => { m.release(seq); }
                        3 => { m.release(seq); m.release(seq); } // deliberate re-release
                        _ => {
                            if let Some(f) = m.fail_kv_core(tokens) {
                                for s in f.evicted_sequences {
                                    m.release(s);
                                }
                            }
                        }
                    }
                    let audit = m.block_audit();
                    prop_assert!(
                        audit.is_conserved(),
                        "allocated {} − freed {} != live {}",
                        audit.allocated, audit.freed, audit.live
                    );
                }
                // Draining everything returns the audit to zero live blocks.
                let resident: Vec<u64> = (0..6).collect();
                for seq in resident {
                    m.release(seq);
                }
                let audit = m.block_audit();
                prop_assert!(audit.is_conserved());
                prop_assert_eq!(audit.live, 0);
            }
        }
    }

    #[test]
    fn threshold_reserves_residual_capacity() {
        let ids: Vec<CoreId> = (0..2).map(CoreId).collect();
        let mut cfg = KvManagerConfig::new(ids, 1, 128);
        cfg.threshold = 0.9; // cores considered full once 10% is used
        let mut m = KvManager::new(cfg).unwrap();
        m.admit(1, 6000).unwrap();
        // The single K core is now beyond the 10% mark, so a new sequence is
        // rejected even though raw capacity remains.
        assert_eq!(m.admit(2, 100), Err(KvError::OutOfCapacity));
        assert!(m.utilization() < 0.5);
    }
}
