//! Arrival processes: turning a [`Trace`] into a timed, online workload.
//!
//! The offline evaluation replays a fixed batch of requests with no notion of
//! *when* each request shows up. Online serving instead draws request arrival
//! times from a stochastic process and measures latency against them. Three
//! standard processes are provided (see `DESIGN.md` §3):
//!
//! * [`ArrivalConfig::Poisson`] — the open-loop memoryless process, with
//!   exponential inter-arrival gaps of mean `1/rate`,
//! * [`ArrivalConfig::Bursty`] — Gamma-distributed gaps with a coefficient of
//!   variation above 1, modelling flash crowds at the same average rate,
//! * [`ArrivalConfig::ClosedLoop`] — a fixed population of users who each
//!   submit, wait for the answer, think, and submit again.
//!
//! Open-loop timestamps are generated up front and are fully determined by
//! the seed. Closed-loop arrivals depend on completion times, which only the
//! serving engine knows, so the first `users` requests are stamped at time
//! zero and the remainder are marked [`TimedRequest::GATED`]; the engine
//! releases one gated request per completion after the think time.

use crate::request::Request;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How request arrival times are drawn for a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalConfig {
    /// Open-loop Poisson arrivals at `rate_rps` requests per second.
    Poisson {
        /// Mean offered load in requests per second.
        rate_rps: f64,
    },
    /// Open-loop bursty arrivals: Gamma inter-arrival gaps with mean
    /// `1/rate_rps` and coefficient of variation `cv` (`cv = 1` degenerates
    /// to Poisson, `cv > 1` clusters arrivals into bursts).
    Bursty {
        /// Mean offered load in requests per second.
        rate_rps: f64,
        /// Coefficient of variation of the inter-arrival gaps.
        cv: f64,
    },
    /// Closed loop: `users` concurrent clients, each resubmitting after an
    /// exponentially distributed think time once its previous request
    /// completes.
    ClosedLoop {
        /// Number of concurrent clients.
        users: usize,
        /// Mean think time between a completion and the next submission.
        think_time_s: f64,
    },
}

impl ArrivalConfig {
    /// Mean offered load in requests per second for open-loop processes;
    /// `None` for closed-loop (whose rate is an outcome, not a parameter).
    pub fn offered_rps(&self) -> Option<f64> {
        match self {
            ArrivalConfig::Poisson { rate_rps } | ArrivalConfig::Bursty { rate_rps, .. } => Some(*rate_rps),
            ArrivalConfig::ClosedLoop { .. } => None,
        }
    }

    /// Stamps every request of `trace` with an arrival time. The same seed,
    /// trace and configuration always produce identical timestamps.
    pub fn assign(&self, trace: &Trace, seed: u64) -> TimedTrace {
        // Offset the stream from the length-sampling stream so a shared seed
        // does not correlate lengths with gaps.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa77e_51de_5eed_0001);
        let arrivals = match *self {
            ArrivalConfig::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson arrival rate must be positive");
                open_loop(trace, |rng| exponential(rng, rate_rps), &mut rng)
            }
            ArrivalConfig::Bursty { rate_rps, cv } => {
                assert!(rate_rps > 0.0, "bursty arrival rate must be positive");
                assert!(cv > 0.0, "coefficient of variation must be positive");
                let shape = 1.0 / (cv * cv);
                let scale = 1.0 / (rate_rps * shape);
                open_loop(trace, |rng| gamma(rng, shape) * scale, &mut rng)
            }
            ArrivalConfig::ClosedLoop { users, .. } => {
                assert!(users > 0, "a closed loop needs at least one user");
                trace
                    .requests
                    .iter()
                    .enumerate()
                    .map(|(i, &request)| TimedRequest {
                        request,
                        arrival_s: if i < users { 0.0 } else { TimedRequest::GATED },
                    })
                    .collect()
            }
        };
        TimedTrace { arrivals, config: *self, seed }
    }
}

fn open_loop(trace: &Trace, mut gap: impl FnMut(&mut StdRng) -> f64, rng: &mut StdRng) -> Vec<TimedRequest> {
    let mut clock = 0.0;
    trace
        .requests
        .iter()
        .map(|&request| {
            clock += gap(rng);
            TimedRequest { request, arrival_s: clock }
        })
        .collect()
}

/// Exponential sample with mean `1/rate` (inverse-CDF method). Public so
/// consumers drawing related durations — e.g. closed-loop think times in
/// `ouro-serve` — share one sampler with the arrival processes.
pub fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Unit-scale Gamma(shape) sample via Marsaglia–Tsang squeeze, with the
/// standard `U^{1/k}` boost for shapes below one.
fn gamma(rng: &mut StdRng, shape: f64) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Box–Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * z * z + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

/// One request annotated with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// The request itself.
    pub request: Request,
    /// Seconds since the start of the experiment at which the request
    /// arrives, or [`TimedRequest::GATED`] for closed-loop requests released
    /// by a completion.
    pub arrival_s: f64,
}

impl TimedRequest {
    /// Sentinel arrival time of a closed-loop request that has not been
    /// released yet.
    pub const GATED: f64 = f64::INFINITY;

    /// Whether this request waits behind the closed-loop gate.
    pub fn is_gated(&self) -> bool {
        self.arrival_s == TimedRequest::GATED
    }
}

/// A trace whose requests carry arrival times.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedTrace {
    /// Requests in nondecreasing arrival order (gated requests last).
    pub arrivals: Vec<TimedRequest>,
    /// The process that generated the timestamps.
    pub config: ArrivalConfig,
    /// Seed used for timestamp generation (the engine reuses it for think
    /// times so a run is reproducible end to end).
    pub seed: u64,
}

impl TimedTrace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last open-loop arrival (0 for an empty or fully gated
    /// trace).
    pub fn last_arrival_s(&self) -> f64 {
        self.arrivals.iter().filter(|r| !r.is_gated()).map(|r| r.arrival_s).fold(0.0, f64::max)
    }

    /// Realised open-loop arrival rate: requests per second over the arrival
    /// span (`None` for closed-loop traces, where rate is an outcome).
    pub fn realized_rps(&self) -> Option<f64> {
        let span = self.last_arrival_s();
        let open = self.arrivals.iter().filter(|r| !r.is_gated()).count();
        if span > 0.0 && open > 1 {
            Some(open as f64 / span)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::length::LengthConfig;
    use crate::trace::TraceGenerator;
    use proptest::prelude::*;

    fn trace(n: usize) -> Trace {
        TraceGenerator::new(7).generate(&LengthConfig::fixed(64, 64), n)
    }

    #[test]
    fn poisson_same_seed_same_timestamps() {
        let t = trace(200);
        let cfg = ArrivalConfig::Poisson { rate_rps: 10.0 };
        let a = cfg.assign(&t, 11);
        let b = cfg.assign(&t, 11);
        let c = cfg.assign(&t, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_and_arrivals_deterministic_end_to_end() {
        // Same seed ⇒ identical Trace AND identical arrival timestamps.
        let cfg = LengthConfig::wikitext2_like();
        let arrivals = ArrivalConfig::Poisson { rate_rps: 25.0 };
        let a = arrivals.assign(&TraceGenerator::new(3).generate(&cfg, 150), 3);
        let b = arrivals.assign(&TraceGenerator::new(3).generate(&cfg, 150), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let rate = 40.0;
        let t = trace(4000);
        let timed = ArrivalConfig::Poisson { rate_rps: rate }.assign(&t, 5);
        let mean_gap = timed.last_arrival_s() / timed.len() as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap - expected).abs() < 0.1 * expected,
            "mean inter-arrival {mean_gap:.5}s should be within 10% of {expected:.5}s"
        );
        assert!((timed.realized_rps().unwrap() - rate).abs() < 0.1 * rate);
    }

    #[test]
    fn arrivals_are_sorted_and_positive() {
        let t = trace(300);
        for cfg in
            [ArrivalConfig::Poisson { rate_rps: 100.0 }, ArrivalConfig::Bursty { rate_rps: 100.0, cv: 4.0 }]
        {
            let timed = cfg.assign(&t, 9);
            let mut prev = 0.0;
            for r in &timed.arrivals {
                assert!(r.arrival_s > 0.0);
                assert!(r.arrival_s >= prev, "arrivals must be nondecreasing");
                prev = r.arrival_s;
            }
        }
    }

    #[test]
    fn bursty_has_higher_gap_variance_than_poisson_at_same_rate() {
        let t = trace(3000);
        let gaps = |timed: &TimedTrace| -> Vec<f64> {
            timed.arrivals.windows(2).map(|w| w[1].arrival_s - w[0].arrival_s).collect()
        };
        let cv = |gaps: &[f64]| -> f64 {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let poisson = cv(&gaps(&ArrivalConfig::Poisson { rate_rps: 50.0 }.assign(&t, 1)));
        let bursty = cv(&gaps(&ArrivalConfig::Bursty { rate_rps: 50.0, cv: 4.0 }.assign(&t, 1)));
        assert!((poisson - 1.0).abs() < 0.15, "Poisson gap cv should be ~1, got {poisson}");
        assert!(bursty > 2.0, "cv=4 bursty arrivals should measure cv > 2, got {bursty}");
    }

    #[test]
    fn bursty_mean_rate_matches_poisson() {
        let t = trace(4000);
        let timed = ArrivalConfig::Bursty { rate_rps: 20.0, cv: 3.0 }.assign(&t, 2);
        let realized = timed.realized_rps().unwrap();
        assert!((realized - 20.0).abs() < 0.15 * 20.0, "realised rate {realized} should be ~20");
    }

    #[test]
    fn closed_loop_gates_everything_beyond_the_user_population() {
        let t = trace(10);
        let timed = ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.5 }.assign(&t, 0);
        assert_eq!(timed.arrivals.iter().filter(|r| !r.is_gated()).count(), 4);
        assert_eq!(timed.arrivals.iter().filter(|r| r.is_gated()).count(), 6);
        assert_eq!(timed.realized_rps(), None);
        assert_eq!(ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.5 }.offered_rps(), None);
    }

    #[test]
    fn empty_trace_yields_empty_timed_trace() {
        let t = Trace { requests: vec![] };
        let timed = ArrivalConfig::Poisson { rate_rps: 1.0 }.assign(&t, 0);
        assert!(timed.is_empty());
        assert_eq!(timed.last_arrival_s(), 0.0);
        assert_eq!(timed.realized_rps(), None);
    }

    proptest! {
        #[test]
        fn open_loop_arrival_count_matches_trace(n in 0usize..200, seed in 0u64..50) {
            let t = trace(n);
            let timed = ArrivalConfig::Poisson { rate_rps: 30.0 }.assign(&t, seed);
            prop_assert_eq!(timed.len(), n);
            for (timed, orig) in timed.arrivals.iter().zip(&t.requests) {
                prop_assert_eq!(timed.request, *orig);
            }
        }

        #[test]
        fn gamma_gaps_are_finite_and_positive(seed in 0u64..50, cv_tenths in 2u64..60) {
            let t = trace(50);
            let cfg = ArrivalConfig::Bursty { rate_rps: 10.0, cv: cv_tenths as f64 / 10.0 };
            let timed = cfg.assign(&t, seed);
            for r in &timed.arrivals {
                prop_assert!(r.arrival_s.is_finite() && r.arrival_s > 0.0);
            }
        }

        #[test]
        fn gamma_cv1_statistically_matches_poisson(seed in 0u64..12) {
            // Gamma with cv = 1 is Exponential(rate): its gap statistics
            // must be indistinguishable (in the first two moments and the
            // upper tail) from the Poisson process at the same rate.
            let rate = 50.0;
            let t = trace(4000);
            let gaps = |timed: &TimedTrace| -> Vec<f64> {
                let mut g: Vec<f64> =
                    timed.arrivals.windows(2).map(|w| w[1].arrival_s - w[0].arrival_s).collect();
                g.push(timed.arrivals[0].arrival_s);
                g
            };
            let moments = |g: &[f64]| -> (f64, f64, f64) {
                let mean = g.iter().sum::<f64>() / g.len() as f64;
                let var = g.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / g.len() as f64;
                let mut sorted = g.to_vec();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let p90 = sorted[(0.9 * sorted.len() as f64) as usize];
                (mean, var.sqrt() / mean, p90)
            };
            let poisson = gaps(&ArrivalConfig::Poisson { rate_rps: rate }.assign(&t, seed));
            let gamma1 = gaps(&ArrivalConfig::Bursty { rate_rps: rate, cv: 1.0 }.assign(&t, seed.wrapping_add(1 << 32)));
            let (p_mean, p_cv, p_p90) = moments(&poisson);
            let (g_mean, g_cv, g_p90) = moments(&gamma1);
            prop_assert!((g_mean - p_mean).abs() < 0.1 * p_mean,
                "cv=1 Gamma mean gap {g_mean} vs Poisson {p_mean}");
            prop_assert!((g_cv - 1.0).abs() < 0.15, "cv=1 Gamma gap cv {g_cv} should be ~1");
            prop_assert!((p_cv - 1.0).abs() < 0.15, "Poisson gap cv {p_cv} should be ~1");
            prop_assert!((g_p90 - p_p90).abs() < 0.2 * p_p90,
                "cv=1 Gamma p90 gap {g_p90} vs Poisson {p_p90}");
        }

        #[test]
        fn extreme_burstiness_preserves_the_mean_rate(seed in 0u64..8) {
            // cv = 8 puts the Gamma shape at 1/64 — deep in the boost
            // branch — yet the empirical rate must stay within 10% of the
            // configured rate over a long trace. The gap std is 8× the mean,
            // so the sample must be long: 100k gaps put 10% at four sigmas.
            let rate = 25.0;
            let t = trace(100_000);
            let timed = ArrivalConfig::Bursty { rate_rps: rate, cv: 8.0 }.assign(&t, seed);
            let realized = timed.realized_rps().expect("long open-loop trace has a rate");
            prop_assert!(
                (realized - rate).abs() < 0.1 * rate,
                "cv=8 realised rate {realized} must stay within 10% of {rate}"
            );
        }
    }
}
