//! A single inference request.

/// Identity of a shared prompt prefix: requests carrying the same `group`
/// have byte-identical leading `tokens` tokens (a shared system prompt or
/// common conversation history), which a prefix-caching KV manager can store
/// once and share copy-on-write.
///
/// The simulator never looks at token *values*, so the group id stands in
/// for the content hash chain a real radix cache would compute over the
/// prompt tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedPrefix {
    /// Content identity of the shared prefix (equal group ⇒ equal tokens).
    pub group: u64,
    /// Length of the shared prefix in tokens (never exceeds the prompt).
    pub tokens: usize,
}

/// One inference request: a prompt to prefill and a number of tokens to
/// decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Request identifier (dense, assigned by the trace generator).
    pub id: usize,
    /// Prompt (prefill) length in tokens. Always at least 1.
    pub prompt_len: usize,
    /// Number of tokens to generate (decode). May be 0 for encoder-style
    /// scoring workloads.
    pub decode_len: usize,
    /// The leading portion of the prompt shared with other requests of the
    /// same prefix group (`None` for a fully unique prompt).
    pub shared_prefix: Option<SharedPrefix>,
}

impl Request {
    /// Creates a request with a fully unique prompt.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` is zero.
    pub fn new(id: usize, prompt_len: usize, decode_len: usize) -> Request {
        assert!(prompt_len > 0, "a request needs a non-empty prompt");
        Request { id, prompt_len, decode_len, shared_prefix: None }
    }

    /// Tags the request as sharing its leading `tokens` prompt tokens with
    /// every other request of `group` (clamped to the prompt length).
    pub fn with_shared_prefix(mut self, group: u64, tokens: usize) -> Request {
        self.shared_prefix = Some(SharedPrefix { group, tokens: tokens.min(self.prompt_len) });
        self
    }

    /// Shared-prefix tokens of this request (0 for unique prompts).
    pub fn shared_prefix_tokens(&self) -> usize {
        self.shared_prefix.map_or(0, |p| p.tokens)
    }

    /// Total number of tokens the request will ever hold in the KV cache.
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.decode_len
    }

    /// Number of output tokens (decode tokens) this request produces.
    pub fn output_tokens(&self) -> usize {
        self.decode_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = Request::new(0, 128, 2048);
        assert_eq!(r.total_tokens(), 2176);
        assert_eq!(r.output_tokens(), 2048);
    }

    #[test]
    fn zero_decode_is_allowed() {
        let r = Request::new(1, 512, 0);
        assert_eq!(r.total_tokens(), 512);
    }

    #[test]
    #[should_panic(expected = "non-empty prompt")]
    fn empty_prompt_rejected() {
        Request::new(2, 0, 16);
    }

    #[test]
    fn shared_prefix_is_clamped_to_the_prompt() {
        let r = Request::new(3, 100, 8).with_shared_prefix(7, 400);
        assert_eq!(r.shared_prefix, Some(SharedPrefix { group: 7, tokens: 100 }));
        assert_eq!(r.shared_prefix_tokens(), 100);
        assert_eq!(Request::new(4, 100, 8).shared_prefix_tokens(), 0);
    }
}
