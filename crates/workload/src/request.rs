//! A single inference request.

/// One inference request: a prompt to prefill and a number of tokens to
/// decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Request identifier (dense, assigned by the trace generator).
    pub id: usize,
    /// Prompt (prefill) length in tokens. Always at least 1.
    pub prompt_len: usize,
    /// Number of tokens to generate (decode). May be 0 for encoder-style
    /// scoring workloads.
    pub decode_len: usize,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` is zero.
    pub fn new(id: usize, prompt_len: usize, decode_len: usize) -> Request {
        assert!(prompt_len > 0, "a request needs a non-empty prompt");
        Request { id, prompt_len, decode_len }
    }

    /// Total number of tokens the request will ever hold in the KV cache.
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.decode_len
    }

    /// Number of output tokens (decode tokens) this request produces.
    pub fn output_tokens(&self) -> usize {
        self.decode_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = Request::new(0, 128, 2048);
        assert_eq!(r.total_tokens(), 2176);
        assert_eq!(r.output_tokens(), 2048);
    }

    #[test]
    fn zero_decode_is_allowed() {
        let r = Request::new(1, 512, 0);
        assert_eq!(r.total_tokens(), 512);
    }

    #[test]
    #[should_panic(expected = "non-empty prompt")]
    fn empty_prompt_rejected() {
        Request::new(2, 0, 16);
    }
}
