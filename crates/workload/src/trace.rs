//! Trace generation: turning a [`LengthConfig`] into a concrete, reproducible
//! list of requests.

use crate::length::LengthConfig;
use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A concrete list of requests to run through a system model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Total number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total prompt tokens across all requests.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.prompt_len as u64).sum()
    }

    /// Total decode (output) tokens across all requests.
    pub fn total_decode_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.decode_len as u64).sum()
    }

    /// Total tokens (prompt + decode) across all requests.
    pub fn total_tokens(&self) -> u64 {
        self.total_prompt_tokens() + self.total_decode_tokens()
    }

    /// Longest request (prompt + decode) in the trace, 0 for an empty trace.
    pub fn max_total_tokens(&self) -> usize {
        self.requests.iter().map(Request::total_tokens).max().unwrap_or(0)
    }

    /// Coefficient of variation of the request total lengths (standard
    /// deviation over mean); 0 for fixed-length traces. This is the
    /// "dynamism" that causes sequence-grained pipeline bubbles.
    pub fn length_cv(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let lens: Vec<f64> = self.requests.iter().map(|r| r.total_tokens() as f64).collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = lens.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lens.len() as f64;
        var.sqrt() / mean
    }
}

/// Deterministic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator with an explicit seed; the same seed and
    /// configuration always produce the same trace.
    pub fn new(seed: u64) -> TraceGenerator {
        TraceGenerator { seed }
    }

    /// Generates `n` requests according to `config`.
    pub fn generate(&self, config: &LengthConfig, n: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let requests = (0..n)
            .map(|id| match config {
                LengthConfig::Fixed { prompt, decode } => Request::new(id, (*prompt).max(1), *decode),
                LengthConfig::LogNormal {
                    prompt_mu,
                    prompt_sigma,
                    decode_mu,
                    decode_sigma,
                    min_len,
                    max_len,
                } => {
                    let sample = |rng: &mut StdRng, mu: f64, sigma: f64| -> usize {
                        // Box–Muller standard normal from two uniforms.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        let val = (mu + sigma * z).exp();
                        (val.round() as i64).clamp(*min_len as i64, *max_len as i64) as usize
                    };
                    let prompt = sample(&mut rng, *prompt_mu, *prompt_sigma).max(1);
                    let decode = sample(&mut rng, *decode_mu, *decode_sigma);
                    Request::new(id, prompt, decode)
                }
            })
            .collect();
        Trace { requests }
    }

    /// Generates the paper's standard 1000-request trace for a configuration.
    pub fn paper_trace(&self, config: &LengthConfig) -> Trace {
        self.generate(config, 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_trace_has_uniform_lengths() {
        let t = TraceGenerator::new(1).generate(&LengthConfig::fixed(128, 2048), 50);
        assert_eq!(t.len(), 50);
        assert!(t.requests.iter().all(|r| r.prompt_len == 128 && r.decode_len == 2048));
        assert_eq!(t.length_cv(), 0.0);
        assert_eq!(t.total_tokens(), 50 * 2176);
    }

    #[test]
    fn wikitext_trace_is_variable_and_clipped() {
        let t = TraceGenerator::new(3).generate(&LengthConfig::wikitext2_like(), 500);
        assert!(t.length_cv() > 0.1, "expected variable lengths, cv={}", t.length_cv());
        assert!(t.requests.iter().all(|r| r.prompt_len >= 16 && r.prompt_len <= 2048));
        assert!(t.requests.iter().all(|r| r.decode_len >= 16 && r.decode_len <= 2048));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = LengthConfig::wikitext2_like();
        let a = TraceGenerator::new(7).generate(&cfg, 100);
        let b = TraceGenerator::new(7).generate(&cfg, 100);
        let c = TraceGenerator::new(8).generate(&cfg, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_trace_has_1000_requests() {
        let t = TraceGenerator::new(0).paper_trace(&LengthConfig::fixed(2048, 128));
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn empty_trace_statistics() {
        let t = Trace { requests: vec![] };
        assert!(t.is_empty());
        assert_eq!(t.max_total_tokens(), 0);
        assert_eq!(t.length_cv(), 0.0);
    }

    #[test]
    fn request_ids_are_dense() {
        let t = TraceGenerator::new(5).generate(&LengthConfig::fixed(64, 64), 10);
        for (i, r) in t.requests.iter().enumerate() {
            assert_eq!(r.id, i);
        }
    }

    proptest! {
        #[test]
        fn traces_respect_requested_size(n in 0usize..300, seed in 0u64..100) {
            let t = TraceGenerator::new(seed).generate(&LengthConfig::wikitext2_like(), n);
            prop_assert_eq!(t.len(), n);
            prop_assert_eq!(t.total_tokens(),
                t.total_prompt_tokens() + t.total_decode_tokens());
        }

        #[test]
        fn max_total_tokens_bounds_every_request(seed in 0u64..100) {
            let t = TraceGenerator::new(seed).generate(&LengthConfig::wikitext2_like(), 64);
            let max = t.max_total_tokens();
            for r in &t.requests {
                prop_assert!(r.total_tokens() <= max);
            }
        }
    }
}
