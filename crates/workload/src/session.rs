//! Session traces: shared system prompts and multi-turn conversations.
//!
//! Real serving traffic is dominated by *repeated* prompt content: thousands
//! of concurrent users talk to the same assistant (one shared system prompt
//! per product surface), and each conversation replays its growing history
//! on every turn. The offline trace generators treat every prompt as unique,
//! which makes prefix caching invisible; this module generates traces whose
//! requests carry [`SharedPrefix`](crate::request::SharedPrefix) tags so
//! the serving stack's radix-style KV reuse has something to reuse.
//!
//! A [`SessionConfig`] describes a population of `groups` distinct system
//! prompts. Each generated request is, with probability `share_ratio`, a
//! conversation turn on one of those system prompts: its prompt is the
//! shared prefix plus the (unshared) conversation history accumulated over
//! earlier turns plus a fresh user message, and it is tagged with the
//! group's shared prefix. The remaining requests are cold, fully unique
//! prompts. Everything is drawn from one seeded stream, so the same seed and
//! configuration always produce the same trace.

use crate::request::Request;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a shared-prefix session workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Number of distinct shared system prompts in the population.
    pub groups: usize,
    /// Length of each shared system prompt in tokens.
    pub shared_prefix_tokens: usize,
    /// Fraction of requests that are conversation turns on a shared system
    /// prompt (the rest have fully unique prompts), in `[0, 1]`.
    pub share_ratio: f64,
    /// Maximum turns per conversation; each request draws its turn number
    /// uniformly from `1..=max_turns`, so later turns carry more history.
    pub max_turns: usize,
    /// Mean fresh user tokens added per turn (jittered ±50%).
    pub user_turn_tokens: usize,
    /// Mean decode (assistant answer) tokens per turn (jittered ±50%).
    pub decode_tokens: usize,
}

impl SessionConfig {
    /// A chat-assistant-shaped default: a handful of product system prompts
    /// of 512 tokens, 70% of traffic on them, up to four turns of history.
    pub fn chat(groups: usize, share_ratio: f64) -> SessionConfig {
        SessionConfig {
            groups,
            shared_prefix_tokens: 512,
            share_ratio,
            max_turns: 4,
            user_turn_tokens: 64,
            decode_tokens: 96,
        }
    }

    /// Generates `n` requests under this session mix with a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics when `share_ratio` is outside `[0, 1]`, or when a positive
    /// share ratio is configured with zero groups or a zero-length prefix.
    pub fn generate(&self, n: usize, seed: u64) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.share_ratio),
            "share_ratio must be a probability, got {}",
            self.share_ratio
        );
        if self.share_ratio > 0.0 {
            assert!(self.groups > 0, "a positive share ratio needs at least one prefix group");
            assert!(self.shared_prefix_tokens > 0, "a positive share ratio needs a non-empty prefix");
        }
        // Offset from the plain length-sampling stream so a seed shared with
        // `TraceGenerator` does not correlate the two workloads.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e55_10f5_5eed_0003);
        let jitter = |rng: &mut StdRng, mean: usize| -> usize {
            if mean == 0 {
                return 0;
            }
            let lo = mean - mean / 2;
            let hi = mean + mean / 2;
            rng.gen_range(lo..=hi)
        };
        let requests = (0..n)
            .map(|id| {
                let shared: f64 = rng.gen_range(0.0..1.0);
                let user = jitter(&mut rng, self.user_turn_tokens).max(1);
                let decode = jitter(&mut rng, self.decode_tokens);
                if shared < self.share_ratio {
                    let group = rng.gen_range(0..self.groups as u64);
                    let turn = rng.gen_range(1..=self.max_turns.max(1));
                    // History: earlier turns' user messages and answers are
                    // part of the prompt but unique to this conversation.
                    let history = (turn - 1) * (self.user_turn_tokens + self.decode_tokens);
                    let prompt = self.shared_prefix_tokens + history + user;
                    Request::new(id, prompt, decode).with_shared_prefix(group, self.shared_prefix_tokens)
                } else {
                    // Cold request: a unique prompt of comparable size.
                    let prompt = jitter(&mut rng, self.shared_prefix_tokens.max(2 * user)).max(1) + user;
                    Request::new(id, prompt, decode)
                }
            })
            .collect();
        Trace { requests }
    }
}

/// Fraction of a trace's requests that carry a shared prefix.
pub fn shared_fraction(trace: &Trace) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let shared = trace.requests.iter().filter(|r| r.shared_prefix.is_some()).count();
    shared as f64 / trace.len() as f64
}

/// Total tokens of a trace that are *potentially* cacheable: the sum of
/// shared-prefix lengths over tagged requests. An upper bound on what a
/// prefix cache can save (actual savings depend on residency overlap).
pub fn shareable_tokens(trace: &Trace) -> u64 {
    trace.requests.iter().map(|r| r.shared_prefix_tokens() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SessionConfig::chat(4, 0.7);
        let a = cfg.generate(200, 11);
        let b = cfg.generate(200, 11);
        let c = cfg.generate(200, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn share_ratio_is_respected_statistically() {
        let cfg = SessionConfig::chat(8, 0.6);
        let t = cfg.generate(2000, 3);
        let frac = shared_fraction(&t);
        assert!((frac - 0.6).abs() < 0.05, "shared fraction {frac} should be ~0.6");
        assert!(shareable_tokens(&t) > 0);
    }

    #[test]
    fn shared_requests_cover_every_group_and_clamp_to_prompt() {
        let cfg = SessionConfig::chat(3, 1.0);
        let t = cfg.generate(300, 5);
        let mut groups = std::collections::BTreeSet::new();
        for r in &t.requests {
            let p = r.shared_prefix.expect("share ratio 1.0 tags everything");
            assert!(p.tokens <= r.prompt_len);
            assert_eq!(p.tokens, cfg.shared_prefix_tokens);
            groups.insert(p.group);
        }
        assert_eq!(groups.len(), 3, "every system prompt must appear in a long trace");
    }

    #[test]
    fn later_turns_carry_more_history() {
        let cfg = SessionConfig::chat(1, 1.0);
        let t = cfg.generate(500, 9);
        let max_prompt = t.requests.iter().map(|r| r.prompt_len).max().unwrap();
        let min_prompt = t.requests.iter().map(|r| r.prompt_len).min().unwrap();
        assert!(
            max_prompt >= min_prompt + cfg.user_turn_tokens + cfg.decode_tokens,
            "multi-turn prompts must spread by at least one turn of history"
        );
    }

    #[test]
    fn zero_share_ratio_produces_only_unique_prompts() {
        let cfg = SessionConfig { share_ratio: 0.0, ..SessionConfig::chat(4, 0.0) };
        let t = cfg.generate(100, 1);
        assert_eq!(shared_fraction(&t), 0.0);
        assert_eq!(shareable_tokens(&t), 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_share_ratio_is_rejected() {
        SessionConfig::chat(4, 1.5).generate(10, 0);
    }
}
