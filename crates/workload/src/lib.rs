//! Request-trace generation for the Ouroboros evaluation workloads.
//!
//! The paper evaluates every system on 1000-request traces drawn from four
//! sequence-length configurations (§6.2): a WikiText-2-derived distribution
//! with naturally varying prompt and generation lengths, and three fixed
//! configurations `(L_P, L_D) ∈ {(128, 2048), (2048, 128), (2048, 2048)}`
//! where `L_P` is the prefill (prompt) length and `L_D` the decode length.
//!
//! We do not ship the WikiText-2 text itself (the simulator never looks at
//! token *values*); instead [`LengthConfig::wikitext2_like`] reproduces the
//! statistical shape that matters for scheduling — highly variable prompt
//! lengths mixed with variable generation lengths — via a seeded log-normal
//! sampler, as documented in `DESIGN.md`.

//!
//! For online serving (the `ouro-serve` crate), [`arrival::ArrivalConfig`]
//! additionally stamps each request with an arrival time drawn from a
//! Poisson, bursty-Gamma, or closed-loop process, and
//! [`session::SessionConfig`] generates shared-system-prompt / multi-turn
//! session traces whose requests carry [`request::SharedPrefix`] tags for
//! the prefix-caching KV manager.

pub mod arrival;
pub mod fault;
pub mod length;
pub mod request;
pub mod session;
pub mod trace;

pub use arrival::{ArrivalConfig, TimedRequest, TimedTrace};
pub use fault::{FaultEvent, FaultProcess};
pub use length::LengthConfig;
pub use request::{Request, SharedPrefix};
pub use session::SessionConfig;
pub use trace::{Trace, TraceGenerator};
