//! Sequence-length configurations (the x-axis groups of Fig. 13–15).

/// How prompt and decode lengths are drawn for a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum LengthConfig {
    /// Every request uses exactly `prompt` prefill tokens and `decode`
    /// generated tokens.
    Fixed {
        /// Prefill length `L_P`.
        prompt: usize,
        /// Decode length `L_D`.
        decode: usize,
    },
    /// Log-normally distributed prompt and decode lengths clipped to a range,
    /// approximating the WikiText-2-derived request mix of the paper.
    LogNormal {
        /// Mean of the underlying normal for the prompt length (in ln-tokens).
        prompt_mu: f64,
        /// Standard deviation of the underlying normal for the prompt length.
        prompt_sigma: f64,
        /// Mean of the underlying normal for the decode length.
        decode_mu: f64,
        /// Standard deviation of the underlying normal for the decode length.
        decode_sigma: f64,
        /// Inclusive clipping range for both lengths.
        min_len: usize,
        /// Inclusive upper clip.
        max_len: usize,
    },
}

impl LengthConfig {
    /// Fixed `(L_P, L_D)` configuration.
    pub fn fixed(prompt: usize, decode: usize) -> LengthConfig {
        LengthConfig::Fixed { prompt, decode }
    }

    /// The WikiText-2-like variable-length configuration (see crate docs for
    /// the substitution rationale): median prompt ≈ 250 tokens with a heavy
    /// tail, median generation ≈ 150 tokens.
    pub fn wikitext2_like() -> LengthConfig {
        LengthConfig::LogNormal {
            prompt_mu: 5.5,
            prompt_sigma: 0.9,
            decode_mu: 5.0,
            decode_sigma: 0.7,
            min_len: 16,
            max_len: 2048,
        }
    }

    /// The four workload configurations of the paper's main evaluation, with
    /// their display labels.
    pub fn paper_suite() -> Vec<(String, LengthConfig)> {
        vec![
            ("WikiText-2".to_string(), LengthConfig::wikitext2_like()),
            ("LP=128 LD=2048".to_string(), LengthConfig::fixed(128, 2048)),
            ("LP=2048 LD=128".to_string(), LengthConfig::fixed(2048, 128)),
            ("LP=2048 LD=2048".to_string(), LengthConfig::fixed(2048, 2048)),
        ]
    }

    /// Whether the configuration produces identical lengths for every request.
    pub fn is_fixed(&self) -> bool {
        matches!(self, LengthConfig::Fixed { .. })
    }

    /// Expected total tokens (prompt + decode) of one request, used for quick
    /// capacity estimates. For log-normal configs this is the clipped
    /// distribution's rough mean, not an exact moment.
    pub fn nominal_total_tokens(&self) -> usize {
        match self {
            LengthConfig::Fixed { prompt, decode } => prompt + decode,
            LengthConfig::LogNormal {
                prompt_mu,
                prompt_sigma,
                decode_mu,
                decode_sigma,
                min_len,
                max_len,
            } => {
                let mean = |mu: f64, sigma: f64| (mu + sigma * sigma / 2.0).exp();
                let p = mean(*prompt_mu, *prompt_sigma).clamp(*min_len as f64, *max_len as f64);
                let d = mean(*decode_mu, *decode_sigma).clamp(*min_len as f64, *max_len as f64);
                (p + d).round() as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_four_configs() {
        let suite = LengthConfig::paper_suite();
        assert_eq!(suite.len(), 4);
        assert!(suite[0].1 == LengthConfig::wikitext2_like());
        assert_eq!(suite[1].1, LengthConfig::fixed(128, 2048));
        assert_eq!(suite[2].1, LengthConfig::fixed(2048, 128));
        assert_eq!(suite[3].1, LengthConfig::fixed(2048, 2048));
    }

    #[test]
    fn fixed_nominal_tokens() {
        assert_eq!(LengthConfig::fixed(128, 2048).nominal_total_tokens(), 2176);
        assert!(LengthConfig::fixed(1, 0).is_fixed());
    }

    #[test]
    fn wikitext_nominal_tokens_are_plausible() {
        let n = LengthConfig::wikitext2_like().nominal_total_tokens();
        assert!(n > 100 && n < 2048, "got {n}");
        assert!(!LengthConfig::wikitext2_like().is_fixed());
    }
}
