//! Seeded MTBF-driven runtime fault arrivals for online serving.
//!
//! The paper's resilience story (§4.3.3, Fig. 9) heals a runtime core
//! failure locally with a replacement chain; measuring what that costs a
//! *live* deployment needs faults that arrive while traffic is in flight.
//! This module turns a per-wafer MTBF into a deterministic fault schedule:
//! each wafer gets its own seeded exponential inter-failure stream (the
//! memoryless model standard for hardware failure processes), and every
//! event carries an extra random draw the injector uses to pick the victim
//! core — so the *entire* fault realisation is a pure function of
//! `(seed, mtbf, wafers, horizon)` and a run can be replayed byte for byte.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A per-wafer memoryless failure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProcess {
    /// Mean time between failures of one wafer, in seconds of simulated
    /// time.
    pub mtbf_s: f64,
}

/// One scheduled runtime fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Global wafer index the fault strikes.
    pub wafer: usize,
    /// Simulated instant of the failure.
    pub at_s: f64,
    /// Uniform random draw for victim-core selection, so the consumer does
    /// not need its own RNG stream to stay deterministic.
    pub draw: u64,
}

impl FaultProcess {
    /// A process with the given per-wafer MTBF.
    ///
    /// # Panics
    ///
    /// Panics unless `mtbf_s` is positive and finite.
    pub fn new(mtbf_s: f64) -> FaultProcess {
        assert!(mtbf_s > 0.0 && mtbf_s.is_finite(), "MTBF must be positive and finite, got {mtbf_s}");
        FaultProcess { mtbf_s }
    }

    /// Expands the process into the merged, time-sorted fault schedule for
    /// `wafers` wafers over `[0, horizon_s)`. Each wafer draws from an
    /// independent stream derived from `seed`, so adding a wafer never
    /// perturbs the faults of the others.
    ///
    /// # Panics
    ///
    /// Panics unless `horizon_s` is positive and finite (an open-ended
    /// schedule would be infinite).
    pub fn schedule(&self, wafers: usize, horizon_s: f64, seed: u64) -> Vec<FaultEvent> {
        assert!(
            horizon_s > 0.0 && horizon_s.is_finite(),
            "fault schedules need a finite positive horizon, got {horizon_s}"
        );
        let rate = 1.0 / self.mtbf_s;
        let mut events = Vec::new();
        for wafer in 0..wafers {
            // Offset the stream per wafer (and from the arrival/think-time
            // streams, which use different xor constants on a shared seed).
            let mut rng = StdRng::seed_from_u64(
                seed ^ 0xfa17_0000_0000_0003u64.wrapping_add(wafer as u64 * 0x9e37_79b9),
            );
            let mut clock = 0.0;
            loop {
                clock += crate::arrival::exponential(&mut rng, rate);
                if clock >= horizon_s {
                    break;
                }
                events.push(FaultEvent { wafer, at_s: clock, draw: rand::Rng::gen(&mut rng) });
            }
        }
        // Merge the per-wafer streams into one nondecreasing timeline; ties
        // (measure-zero, but possible with identical seeds) break by wafer.
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.wafer.cmp(&b.wafer)));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let p = FaultProcess::new(0.5);
        let a = p.schedule(3, 20.0, 11);
        let b = p.schedule(3, 20.0, 11);
        let c = p.schedule(3, 20.0, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn events_are_sorted_and_inside_the_horizon() {
        let events = FaultProcess::new(0.2).schedule(4, 10.0, 7);
        let mut prev = 0.0;
        for e in &events {
            assert!(e.at_s > 0.0 && e.at_s < 10.0);
            assert!(e.at_s >= prev, "schedule must be time-sorted");
            assert!(e.wafer < 4);
            prev = e.at_s;
        }
    }

    #[test]
    fn mean_inter_fault_time_tracks_the_mtbf() {
        let mtbf = 0.25;
        let events = FaultProcess::new(mtbf).schedule(1, 2_000.0, 3);
        let mean = 2_000.0 / events.len() as f64;
        assert!(
            (mean - mtbf).abs() < 0.1 * mtbf,
            "mean inter-fault gap {mean:.4}s should be within 10% of the {mtbf}s MTBF"
        );
    }

    #[test]
    fn wafer_streams_are_independent() {
        let p = FaultProcess::new(0.5);
        let one = p.schedule(1, 50.0, 9);
        let two = p.schedule(2, 50.0, 9);
        // Wafer 0's events are identical whether or not wafer 1 exists.
        let w0: Vec<&FaultEvent> = two.iter().filter(|e| e.wafer == 0).collect();
        assert_eq!(w0.len(), one.len());
        for (a, b) in one.iter().zip(w0) {
            assert_eq!(a, b);
        }
        // And wafer 1's stream differs from wafer 0's.
        let t0: Vec<f64> = two.iter().filter(|e| e.wafer == 0).map(|e| e.at_s).collect();
        let t1: Vec<f64> = two.iter().filter(|e| e.wafer == 1).map(|e| e.at_s).collect();
        assert_ne!(t0, t1);
    }

    #[test]
    fn a_long_mtbf_yields_no_faults_in_a_short_window() {
        let events = FaultProcess::new(1e9).schedule(2, 1.0, 5);
        assert!(events.is_empty(), "an MTBF of 1e9 s should not fire within 1 s");
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn zero_mtbf_is_rejected() {
        FaultProcess::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite positive horizon")]
    fn infinite_horizon_is_rejected() {
        FaultProcess::new(1.0).schedule(1, f64::INFINITY, 0);
    }
}
