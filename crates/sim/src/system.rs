//! The assembled Ouroboros system: mapping + pipeline + KV cache + energy.

use crate::config::{BuildError, OuroborosConfig};
use crate::stage_times::HwStageTimes;
use ouro_baselines::{EnergyBreakdown, SystemReport};
use ouro_hw::{CimCore, CoreId, DefectMap};
use ouro_kvcache::{KvManagerConfig, KvScheduler, StaticKvAllocator};
use ouro_mapping::{MappingProblem, MappingSolution, Strategy};
use ouro_model::{BlockCosts, ModelConfig};
use ouro_noc::CommCost;
use ouro_pipeline::{Granularity, PipelineScheduler};
use ouro_workload::Trace;

/// A fully assembled Ouroboros deployment serving one model.
#[derive(Debug, Clone)]
pub struct OuroborosSystem {
    config: OuroborosConfig,
    model: ModelConfig,
    core: CimCore,
    comm: CommCost,
    mapping: MappingSolution,
    stage_times: HwStageTimes,
    /// Cores holding weights across the whole model (all blocks, all wafers).
    weight_cores_total: usize,
    /// Functional cores left for the KV cache of each transformer block.
    kv_cores_per_block: usize,
    defects: DefectMap,
}

impl OuroborosSystem {
    /// Builds the system: draws the defect map, maps one transformer block
    /// onto the wafer, and derives the per-stage hardware timing model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ModelDoesNotFit`] when the model's weights
    /// exceed the wafer(s)' SRAM, and [`BuildError::NoKvCores`] when weight
    /// mapping leaves no cores for KV storage.
    pub fn new(config: OuroborosConfig, model: &ModelConfig) -> Result<OuroborosSystem, BuildError> {
        let core = CimCore::new(config.core.clone());
        let comm = if config.wafer_integration { CommCost::paper() } else { CommCost::chiplet_nvlink() };
        let mut core = core;
        if config.lut_compute {
            core.config.energy = core.config.energy.with_lut_compute();
        }

        let defects = match &config.yield_model {
            Some(y) => DefectMap::generate(&config.geometry, y, config.seed),
            None => DefectMap::pristine(&config.geometry),
        };
        let functional_per_wafer = defects.functional_count();
        let functional_total = functional_per_wafer * config.wafers;

        let weight_bytes = model.total_weight_bytes();
        let available = config.total_sram_bytes();
        if weight_bytes > available {
            return Err(BuildError::ModelDoesNotFit {
                required_bytes: weight_bytes,
                available_bytes: available,
            });
        }

        // Map one transformer block; the mapping repeats for every block.
        let candidate: Vec<CoreId> = defects.functional_cores().collect();
        let problem = MappingProblem::for_block(
            model,
            config.geometry.clone(),
            defects.clone(),
            candidate,
            core.sram_capacity_bytes(),
            comm.noc.cost_inter(),
        );
        let tiles_per_block = problem.num_tiles();
        let weight_cores_total = tiles_per_block * model.blocks;
        if weight_cores_total + model.blocks > functional_total {
            return Err(BuildError::ModelDoesNotFit {
                required_bytes: weight_bytes,
                available_bytes: (functional_total as u64) * core.sram_capacity_bytes(),
            });
        }
        if tiles_per_block > problem.feasible_cores().len() {
            return Err(BuildError::ModelDoesNotFit {
                required_bytes: weight_bytes,
                available_bytes: available,
            });
        }
        let strategy = if config.optimized_mapping {
            Strategy::Anneal { iterations: config.mapping_iterations }
        } else {
            Strategy::WaferLlm
        };
        let mapping = ouro_mapping::solve(&problem, strategy, config.seed);

        let kv_cores_total = functional_total - weight_cores_total;
        let kv_cores_per_block = kv_cores_total / model.blocks;
        if kv_cores_per_block < 2 {
            return Err(BuildError::NoKvCores);
        }

        // Cores per weight-holding stage of one block.
        let mut cores_per_stage = [0usize; 6];
        for layer in &problem.layers {
            cores_per_stage[layer.kind.index()] = layer.cores();
        }
        let stage_times = HwStageTimes {
            model: model.clone(),
            core: core.clone(),
            cores_per_stage,
            comm: comm.clone(),
            mean_hops: mapping.summary.mean_hops,
            inter_wafer_crossings_per_token: if config.wafers > 1 { 1.0 } else { 0.0 },
        };

        Ok(OuroborosSystem {
            config,
            model: model.clone(),
            core,
            comm,
            mapping,
            stage_times,
            weight_cores_total,
            kv_cores_per_block,
            defects,
        })
    }

    /// The deployment configuration this system was built from.
    pub fn config(&self) -> &OuroborosConfig {
        &self.config
    }

    /// The model this system serves.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The mapping of one transformer block.
    pub fn mapping(&self) -> &MappingSolution {
        &self.mapping
    }

    /// The per-stage timing model.
    pub fn stage_times(&self) -> &HwStageTimes {
        &self.stage_times
    }

    /// Number of cores holding weights across the whole model.
    pub fn weight_cores(&self) -> usize {
        self.weight_cores_total
    }

    /// Functional cores available to each block's KV cache.
    pub fn kv_cores_per_block(&self) -> usize {
        self.kv_cores_per_block
    }

    /// The defect map drawn for this system instance.
    pub fn defects(&self) -> &DefectMap {
        &self.defects
    }

    /// The per-head-scaled KV manager configuration used to replay traces
    /// against one transformer block's cache (capacity and demand both shrink
    /// by the head count, preserving the ratio). The online serving engine
    /// (`ouro-serve`) drives a manager built from this same configuration, so
    /// offline and online runs agree on admission capacity.
    pub fn serve_kv_config(&self) -> KvManagerConfig {
        let scaled_cores = (self.kv_cores_per_block / self.model.heads.max(1)).max(2);
        let mut cfg = KvManagerConfig::new((0..scaled_cores).map(CoreId).collect(), 1, self.model.head_dim);
        cfg.crossbars_per_core = self.core.config.crossbars;
        cfg.crossbar = self.core.config.crossbar;
        cfg.threshold = self.config.kv_threshold;
        cfg
    }

    /// Bytes of KV cache that must cross the optical fabric when a sequence
    /// with `tokens` resident tokens migrates to another wafer: K and V for
    /// every head of every block, at the deployment's precision. This is the
    /// payload `ouro-disagg` charges against the [`ouro_noc::InterWaferLink`].
    pub fn kv_migration_bytes(&self, tokens: usize) -> u64 {
        tokens as u64 * self.model.kv_bytes_per_token()
    }

    /// KV concurrency and thrashing for this trace: returns
    /// `(resident_sequences, waste_fraction)`.
    fn kv_behaviour(&self, trace: &Trace) -> (f64, f64) {
        let per_block_tokens = self.kv_block_capacity_tokens();
        if self.config.dynamic_kv {
            match KvScheduler::new(self.serve_kv_config()) {
                Ok(mut sched) => {
                    let out = sched.run_trace(trace);
                    (out.stats.avg_resident.max(1.0), out.waste_fraction)
                }
                Err(_) => (1.0, 0.0),
            }
        } else {
            let alloc = StaticKvAllocator::new(per_block_tokens.max(1), self.model.max_context);
            ((alloc.max_resident_sequences() as f64).max(1.0), 0.0)
        }
    }

    /// Token capacity (per K/V side) of one block's KV cores, in
    /// token × head slots divided by the head count (i.e. whole-sequence
    /// tokens).
    fn kv_block_capacity_tokens(&self) -> usize {
        let per_crossbar = self
            .core
            .config
            .crossbar
            .tokens_per_logical_block(self.model.head_dim, self.model.precision.bytes())
            * self.core.config.crossbar.logical_blocks;
        let half_cores = (self.kv_cores_per_block / 2).max(1);
        half_cores * self.core.config.crossbars * per_crossbar / self.model.heads.max(1)
    }

    /// Runs the trace and produces the common system report.
    pub fn simulate(&self, trace: &Trace) -> SystemReport {
        self.simulate_labeled(trace, "")
    }

    /// Runs the trace with an explicit workload label in the report.
    pub fn simulate_labeled(&self, trace: &Trace, workload: &str) -> SystemReport {
        let scheduler = PipelineScheduler::new(&self.model, &self.stage_times);
        let granularity =
            if self.config.tgp { Granularity::finest_for(&self.model) } else { Granularity::Sequence };
        let report = scheduler.run(trace, granularity);

        let (resident, waste_fraction) = self.kv_behaviour(trace);
        let total_tokens = trace.total_tokens() as f64;
        let decode_tokens = trace.total_decode_tokens() as f64;
        let output_tokens = trace.total_decode_tokens().max(1);
        let n_req = trace.len().max(1) as f64;
        let avg_ctx = ((total_tokens / n_req) * 0.75).max(1.0) as usize;

        // Autoregressive decoding limits in-flight tokens to the number of
        // resident sequences; when that is below the pipeline depth the
        // token-grained pipeline cannot stay full (§6.2's 32B discussion).
        let bottleneck = self.stage_times.bottleneck_stage_s(avg_ctx);
        let pipeline_latency = self.stage_times.token_pipeline_latency_s(avg_ctx);
        // The autoregressive limit applies to every granularity: with fewer
        // resident sequences than the pipeline has stages, the pipeline
        // cannot stay full.
        let per_token_interval_limited = pipeline_latency / resident.max(1.0);
        let decode_penalty_s = decode_tokens * (per_token_interval_limited - bottleneck).max(0.0);
        // Thrashing recomputes tokens at the bottleneck rate.
        let recompute_tokens =
            if waste_fraction < 1.0 { total_tokens * waste_fraction / (1.0 - waste_fraction) } else { 0.0 };
        let recompute_s = recompute_tokens * bottleneck;

        let makespan = report.makespan_s + decode_penalty_s + recompute_s;
        let throughput = output_tokens as f64 / makespan.max(1e-12);

        let energy = self.energy_per_token(trace, makespan, avg_ctx, recompute_tokens);

        SystemReport {
            system: self.config.label(),
            model: self.model.name.clone(),
            workload: workload.to_string(),
            throughput_tokens_per_s: throughput,
            energy_per_token: energy,
            total_time_s: makespan,
            output_tokens,
            fits_in_memory: true,
        }
    }

    /// Energy per output token with the paper's four-way breakdown.
    fn energy_per_token(
        &self,
        trace: &Trace,
        makespan_s: f64,
        avg_ctx: usize,
        recompute_tokens: f64,
    ) -> EnergyBreakdown {
        let e = &self.core.config.energy;
        let model = &self.model;
        let blocks = model.blocks as f64;
        let total_tokens = trace.total_tokens() as f64 + recompute_tokens;
        let output_tokens = trace.total_decode_tokens().max(1) as f64;

        let block = BlockCosts::for_token(model, avg_ctx);
        let per_block = block.total();
        let macs_per_token = per_block.flops as f64 / 2.0 * blocks;
        let sfu_per_token = per_block.sfu_ops as f64 * blocks;
        let act_bytes_per_token = (per_block.act_in_bytes + per_block.act_out_bytes) as f64 * blocks;
        let kv_write_per_token = per_block.kv_write_bytes as f64 * blocks;
        let kv_read_per_token = per_block.kv_read_bytes as f64 * blocks;

        // Compute: in-situ MACs plus SFU work.
        let compute_j_total = total_tokens * (macs_per_token * e.cim_mac_j + sfu_per_token * e.sfu_op_j);

        // On-chip: activation buffers, KV writes, and — when CIM is disabled —
        // reading every used weight byte out of SRAM into the compute units.
        let weight_read_per_token = if self.config.cim {
            0.0
        } else {
            let weights_per_block = model.block_weight_bytes() as f64;
            let reuse = if self.config.tgp {
                1.0
            } else {
                // Sequence-grained processing reuses a fetched weight across
                // the tokens of the resident sequence.
                (trace.total_tokens() as f64 / trace.len().max(1) as f64).max(1.0)
            };
            weights_per_block * blocks / reuse
        };
        let leakage_j = self.config.total_cores() as f64 * e.core_static_w * makespan_s;
        let on_chip_j_total = total_tokens
            * (act_bytes_per_token * e.buffer_j_per_byte
                + kv_write_per_token * e.sram_write_j_per_byte
                + kv_read_per_token * 0.2 * e.sram_read_j_per_byte
                + weight_read_per_token * e.sram_read_j_per_byte)
            + leakage_j;

        // Communication: the mapped block's per-token byte·hop volume on the
        // mesh, plus the optical crossing for multi-wafer deployments.
        let per_hop_energy = if self.config.wafer_integration {
            self.comm.noc.intra_die.energy_j_per_byte
        } else {
            self.comm.noc.inter_die.energy_j_per_byte
        };
        let comm_j_per_token = self.mapping.summary.transmission_volume() * blocks * per_hop_energy
            + if self.config.wafers > 1 {
                model.activation_bytes_per_token() as f64 * self.comm.noc.inter_wafer.energy_j_per_byte
            } else {
                0.0
            };
        let comm_j_total = total_tokens * comm_j_per_token;

        EnergyBreakdown {
            compute_j: compute_j_total / output_tokens,
            on_chip_j: on_chip_j_total / output_tokens,
            off_chip_j: 0.0,
            communication_j: comm_j_total / output_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_workload::{LengthConfig, TraceGenerator};

    fn tiny_model() -> ModelConfig {
        // BERT-Large fits comfortably in the tiny test wafer.
        zoo::bert_large()
    }

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &tiny_model()).unwrap()
    }

    fn small_trace() -> Trace {
        TraceGenerator::new(1).generate(&LengthConfig::fixed(64, 32), 8)
    }

    #[test]
    fn tiny_system_builds_and_simulates() {
        let sys = tiny_system();
        assert!(sys.weight_cores() > 0);
        assert!(sys.kv_cores_per_block() >= 2);
        let r = sys.simulate(&small_trace());
        assert!(r.throughput_tokens_per_s > 0.0 && r.throughput_tokens_per_s.is_finite());
        assert!(r.energy_per_token_j() > 0.0 && r.energy_per_token_j().is_finite());
        assert_eq!(r.energy_per_token.off_chip_j, 0.0, "Ouroboros never touches off-chip memory");
        assert!(r.fits_in_memory);
    }

    #[test]
    fn kv_migration_bytes_match_model_accounting() {
        let sys = tiny_system();
        let m = sys.model();
        assert_eq!(sys.kv_migration_bytes(0), 0);
        assert_eq!(sys.kv_migration_bytes(128), 128 * m.kv_bytes_per_token());
    }

    #[test]
    fn oversized_model_is_rejected() {
        let err = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::llama_65b()).unwrap_err();
        assert!(matches!(err, BuildError::ModelDoesNotFit { .. }));
    }

    #[test]
    fn tgp_beats_sequence_grained() {
        let model = tiny_model();
        let cfg = OuroborosConfig::tiny_for_tests();
        let tgp = OuroborosSystem::new(cfg.clone(), &model).unwrap();
        let seq = OuroborosSystem::new(OuroborosConfig { tgp: false, ..cfg }, &model).unwrap();
        let trace = TraceGenerator::new(3).generate(&LengthConfig::wikitext2_like(), 12);
        let r_tgp = tgp.simulate(&trace);
        let r_seq = seq.simulate(&trace);
        assert!(
            r_tgp.throughput_tokens_per_s > r_seq.throughput_tokens_per_s,
            "TGP {} should beat sequence-grained {}",
            r_tgp.throughput_tokens_per_s,
            r_seq.throughput_tokens_per_s
        );
    }

    #[test]
    fn disabling_cim_raises_energy() {
        let model = tiny_model();
        let cfg = OuroborosConfig::tiny_for_tests();
        let cim = OuroborosSystem::new(cfg.clone(), &model).unwrap();
        let no_cim = OuroborosSystem::new(OuroborosConfig { cim: false, ..cfg }, &model).unwrap();
        let trace = small_trace();
        assert!(no_cim.simulate(&trace).energy_per_token_j() > cim.simulate(&trace).energy_per_token_j());
    }

    #[test]
    fn chiplet_interconnect_raises_communication_energy() {
        let model = tiny_model();
        let cfg = OuroborosConfig::tiny_for_tests();
        let wafer = OuroborosSystem::new(cfg.clone(), &model).unwrap();
        let chiplet =
            OuroborosSystem::new(OuroborosConfig { wafer_integration: false, ..cfg }, &model).unwrap();
        let trace = small_trace();
        let rw = wafer.simulate(&trace);
        let rc = chiplet.simulate(&trace);
        assert!(rc.energy_per_token.communication_j > rw.energy_per_token.communication_j);
    }

    #[test]
    fn lut_cores_save_compute_energy() {
        let model = tiny_model();
        let cfg = OuroborosConfig::tiny_for_tests();
        let plain = OuroborosSystem::new(cfg.clone(), &model).unwrap();
        let lut = OuroborosSystem::new(OuroborosConfig { lut_compute: true, ..cfg }, &model).unwrap();
        let trace = small_trace();
        let rp = plain.simulate(&trace);
        let rl = lut.simulate(&trace);
        assert!(rl.energy_per_token.compute_j < rp.energy_per_token.compute_j);
    }

    #[test]
    fn defective_wafer_still_builds() {
        let mut cfg = OuroborosConfig::tiny_for_tests();
        cfg.yield_model = Some(ouro_hw::YieldModel { d0_per_cm2: 2.0 });
        let sys = OuroborosSystem::new(cfg, &tiny_model()).unwrap();
        assert!(sys.defects().defective_count() > 0);
        let r = sys.simulate(&small_trace());
        assert!(r.throughput_tokens_per_s > 0.0);
    }

    #[test]
    fn reports_carry_labels() {
        let sys = tiny_system();
        let r = sys.simulate_labeled(&small_trace(), "unit-test");
        assert_eq!(r.workload, "unit-test");
        assert_eq!(r.system, "Ours");
        assert_eq!(r.model, "BERT-Large");
    }
}
