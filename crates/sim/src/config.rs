//! Configuration of a simulated Ouroboros deployment.

use ouro_hw::{CoreConfig, WaferGeometry, YieldModel};

/// Errors raised when assembling a system.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The model's weights (plus minimum KV reservation) exceed the SRAM of
    /// the configured number of wafers.
    ModelDoesNotFit {
        /// Bytes required by the model's weights.
        required_bytes: u64,
        /// Bytes of crossbar SRAM available across all wafers.
        available_bytes: u64,
    },
    /// After placing weights there are no cores left for the KV cache.
    NoKvCores,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::ModelDoesNotFit { required_bytes, available_bytes } => write!(
                f,
                "model needs {required_bytes} bytes of weight storage but the wafer(s) provide {available_bytes}"
            ),
            BuildError::NoKvCores => write!(f, "no cores left for the kv cache after weight mapping"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Configuration of an Ouroboros deployment (including every ablation switch
/// of Fig. 15).
#[derive(Debug, Clone, PartialEq)]
pub struct OuroborosConfig {
    /// Wafer geometry (die grid, cores per die).
    pub geometry: WaferGeometry,
    /// Number of wafers ganged together with optical Ethernet (Fig. 19/20).
    pub wafers: usize,
    /// CIM core configuration.
    pub core: CoreConfig,
    /// Wafer-scale integration: `true` uses stitched inter-die links,
    /// `false` models a chiplet mesh interconnected with NVLink-class links
    /// (the ablation baseline).
    pub wafer_integration: bool,
    /// Compute in memory: `true` computes inside the SRAM arrays; `false`
    /// models a conventional datapath that must read weights out of SRAM for
    /// every use.
    pub cim: bool,
    /// Token-grained pipelining: `true` uses TGP (or TGP-with-block for
    /// encoder models), `false` falls back to sequence-grained pipelining.
    pub tgp: bool,
    /// Communication-aware mapping: `true` uses the annealed MIQP mapping,
    /// `false` uses the naive contiguous row-major placement.
    pub optimized_mapping: bool,
    /// Dynamic distributed KV management: `true` uses the paper's scheme,
    /// `false` statically reserves the maximum context per sequence.
    pub dynamic_kv: bool,
    /// Anti-thrashing admission threshold (§4.4.4, Fig. 17).
    pub kv_threshold: f64,
    /// Yield model used to draw the defect map; `None` models a pristine
    /// wafer.
    pub yield_model: Option<YieldModel>,
    /// Seed for defect-map generation and the annealing mapper.
    pub seed: u64,
    /// Simulated-annealing move budget for the mapper.
    pub mapping_iterations: usize,
    /// Use LUT-enhanced CIM cores (Fig. 21 "+LUT" variant).
    pub lut_compute: bool,
}

impl OuroborosConfig {
    /// The paper's single-wafer system with every optimisation enabled.
    pub fn single_wafer() -> OuroborosConfig {
        OuroborosConfig {
            geometry: WaferGeometry::paper(),
            wafers: 1,
            core: CoreConfig::paper(),
            wafer_integration: true,
            cim: true,
            tgp: true,
            optimized_mapping: true,
            dynamic_kv: true,
            kv_threshold: 0.1,
            yield_model: Some(YieldModel::paper()),
            seed: 7,
            mapping_iterations: 2_000,
            lut_compute: false,
        }
    }

    /// A multi-wafer system (Fig. 19/20 uses two wafers for LLaMA-65B).
    pub fn multi_wafer(wafers: usize) -> OuroborosConfig {
        OuroborosConfig { wafers: wafers.max(1), ..OuroborosConfig::single_wafer() }
    }

    /// A reduced-size system for fast unit tests: a single small die grid.
    /// Capacity is far below the real wafer, so pair it with small models.
    pub fn tiny_for_tests() -> OuroborosConfig {
        OuroborosConfig {
            geometry: WaferGeometry::tiny(2, 2, 8, 8),
            yield_model: None,
            mapping_iterations: 300,
            ..OuroborosConfig::single_wafer()
        }
    }

    /// Total crossbar SRAM across all wafers in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        let per_core = self.core.crossbars as u64 * self.core.crossbar.capacity_bytes();
        self.geometry.total_sram_bytes(per_core) * self.wafers as u64
    }

    /// Total number of cores across all wafers.
    pub fn total_cores(&self) -> usize {
        self.geometry.total_cores() * self.wafers
    }

    /// Display label used in reports ("Ours", "Ours (2 wafers)", ...).
    pub fn label(&self) -> String {
        if self.wafers > 1 {
            format!("Ours ({} wafers)", self.wafers)
        } else {
            "Ours".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_has_54_gb_of_sram() {
        let c = OuroborosConfig::single_wafer();
        let gb = c.total_sram_bytes() as f64 / 1e9;
        assert!(gb > 53.0 && gb < 60.0, "got {gb}");
        assert_eq!(c.total_cores(), 13_923);
        assert_eq!(c.label(), "Ours");
    }

    #[test]
    fn multi_wafer_doubles_capacity() {
        let one = OuroborosConfig::single_wafer();
        let two = OuroborosConfig::multi_wafer(2);
        assert_eq!(two.total_sram_bytes(), 2 * one.total_sram_bytes());
        assert_eq!(two.label(), "Ours (2 wafers)");
        assert_eq!(OuroborosConfig::multi_wafer(0).wafers, 1);
    }

    #[test]
    fn build_error_messages_are_informative() {
        let e = BuildError::ModelDoesNotFit { required_bytes: 100, available_bytes: 10 };
        assert!(e.to_string().contains("100"));
        assert!(BuildError::NoKvCores.to_string().contains("kv"));
    }
}
