//! End-to-end Ouroboros simulator.
//!
//! [`OuroborosSystem`] assembles the substrates — the hardware model
//! (`ouro-hw`), the network-on-wafer (`ouro-noc`), the MIQP mapping
//! (`ouro-mapping`), the distributed KV cache (`ouro-kvcache`) and the
//! token-grained pipeline (`ouro-pipeline`) — into a single model that takes
//! a request trace and produces the same [`ouro_baselines::SystemReport`]
//! the baseline systems produce: output-token throughput plus energy per
//! token broken into compute / on-chip / off-chip / communication.
//!
//! The ablation switches of Fig. 15 (wafer integration, CIM, TGP, optimised
//! mapping, dynamic KV management) are all expressed as fields of
//! [`OuroborosConfig`], and [`ablation::ablation_ladder`] builds the
//! cumulative configurations the figure sweeps.

pub mod ablation;
pub mod config;
pub mod stage_times;
pub mod system;

pub use ablation::{ablation_ladder, AblationStep};
pub use config::{BuildError, OuroborosConfig};
pub use stage_times::HwStageTimes;
pub use system::OuroborosSystem;
