//! The cumulative ablation ladder of Fig. 15.
//!
//! The study starts from a chiplet-mesh baseline (64 dies joined by
//! NVLink-class links, conventional non-CIM datapath, sequence-grained
//! pipelining, naive mapping, static KV allocation) and enables the paper's
//! techniques one at a time: wafer-scale integration, CIM, token-grained
//! pipelining, the communication-aware mapping, and finally the distributed
//! dynamic KV management.

use crate::config::OuroborosConfig;

/// One rung of the ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationStep {
    /// Chiplet mesh, no CIM, sequence-grained, naive mapping, static KV.
    Baseline,
    /// Adds wafer-scale integration (stitched inter-die links).
    PlusWafer,
    /// Adds computing-in-memory.
    PlusCim,
    /// Adds token-grained pipelining.
    PlusTgp,
    /// Adds the communication-aware (MIQP) mapping.
    PlusMapping,
    /// Adds distributed dynamic KV cache management.
    PlusKvCache,
}

impl AblationStep {
    /// Every step in presentation order.
    pub const ALL: [AblationStep; 6] = [
        AblationStep::Baseline,
        AblationStep::PlusWafer,
        AblationStep::PlusCim,
        AblationStep::PlusTgp,
        AblationStep::PlusMapping,
        AblationStep::PlusKvCache,
    ];

    /// Display label matching the figure.
    pub fn label(&self) -> &'static str {
        match self {
            AblationStep::Baseline => "Baseline",
            AblationStep::PlusWafer => "+Wafer",
            AblationStep::PlusCim => "+CIM",
            AblationStep::PlusTgp => "+TGP",
            AblationStep::PlusMapping => "+Mapping",
            AblationStep::PlusKvCache => "+KV Cache",
        }
    }

    /// Builds the cumulative configuration for this step, starting from
    /// `base` (which supplies geometry, seeds, thresholds, ...).
    pub fn configure(&self, base: &OuroborosConfig) -> OuroborosConfig {
        let mut cfg = OuroborosConfig {
            wafer_integration: false,
            cim: false,
            tgp: false,
            optimized_mapping: false,
            dynamic_kv: false,
            ..base.clone()
        };
        let rank = AblationStep::ALL.iter().position(|s| s == self).expect("step in ALL");
        if rank >= 1 {
            cfg.wafer_integration = true;
        }
        if rank >= 2 {
            cfg.cim = true;
        }
        if rank >= 3 {
            cfg.tgp = true;
        }
        if rank >= 4 {
            cfg.optimized_mapping = true;
        }
        if rank >= 5 {
            cfg.dynamic_kv = true;
        }
        cfg
    }
}

impl std::fmt::Display for AblationStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The full ladder of (label, configuration) pairs derived from `base`.
pub fn ablation_ladder(base: &OuroborosConfig) -> Vec<(&'static str, OuroborosConfig)> {
    AblationStep::ALL.iter().map(|s| (s.label(), s.configure(base))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_six_cumulative_steps() {
        let ladder = ablation_ladder(&OuroborosConfig::single_wafer());
        assert_eq!(ladder.len(), 6);
        assert_eq!(ladder[0].0, "Baseline");
        assert_eq!(ladder[5].0, "+KV Cache");
        // Each step enables strictly more features than the previous one.
        let count = |c: &OuroborosConfig| {
            [c.wafer_integration, c.cim, c.tgp, c.optimized_mapping, c.dynamic_kv]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for w in ladder.windows(2) {
            assert_eq!(count(&w[1].1), count(&w[0].1) + 1);
        }
    }

    #[test]
    fn baseline_disables_everything() {
        let base = AblationStep::Baseline.configure(&OuroborosConfig::single_wafer());
        assert!(!base.wafer_integration && !base.cim && !base.tgp);
        assert!(!base.optimized_mapping && !base.dynamic_kv);
    }

    #[test]
    fn final_step_matches_the_full_system() {
        let full = OuroborosConfig::single_wafer();
        let last = AblationStep::PlusKvCache.configure(&full);
        assert!(last.wafer_integration && last.cim && last.tgp);
        assert!(last.optimized_mapping && last.dynamic_kv);
        assert_eq!(last.geometry, full.geometry);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> = AblationStep::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
