//! Hardware-derived per-stage token service times.
//!
//! [`HwStageTimes`] prices one token in each of the six pipeline stages on
//! the mapped hardware: crossbar GEMV latency for the weight stages (split
//! across the cores the mapper assigned to the layer), in-situ attention on
//! the KV cores, SFU time for softmax, plus the NoC time to move the stage's
//! output activation to the next stage at the mapping's average hop distance.

use ouro_hw::CimCore;
use ouro_model::{ModelConfig, StageKind};
use ouro_noc::{CommCost, InterWaferLink, Transfer};
use ouro_pipeline::StageTimeModel;

/// Per-stage service-time model derived from the hardware and the mapping.
#[derive(Debug, Clone)]
pub struct HwStageTimes {
    /// The model being served.
    pub model: ModelConfig,
    /// The CIM core every stage runs on.
    pub core: CimCore,
    /// Number of cores the mapper assigned to each weight-holding stage of
    /// one block (indexed by [`StageKind::index`]; attention/softmax entries
    /// are ignored).
    pub cores_per_stage: [usize; 6],
    /// Communication cost model of the wafer.
    pub comm: CommCost,
    /// Average hop distance between producer and consumer cores, from the
    /// mapping's communication summary.
    pub mean_hops: f64,
    /// Extra hop distance charged when crossing to another wafer (0 for a
    /// single-wafer deployment; the paper's multi-wafer study shows the
    /// per-token impact is negligible because only one boundary is crossed).
    pub inter_wafer_crossings_per_token: f64,
}

impl HwStageTimes {
    /// GEMV latency of a weight stage whose `out_dim` outputs are split over
    /// `cores` cores (each holding the full `in_dim` input slice).
    fn weight_gemv_s(&self, in_dim: usize, out_dim: usize, cores: usize) -> f64 {
        let per_core_out = out_dim.div_ceil(cores.max(1)).max(1);
        self.core.gemv_latency_s(in_dim.max(1), per_core_out)
    }

    /// Time for the stage's output activation to reach the next stage.
    fn comm_s(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let hops = self.mean_hops.ceil().max(1.0) as usize;
        let t = Transfer {
            bytes,
            intra_die_hops: hops,
            die_crossings: if self.mean_hops > 4.0 { 1 } else { 0 },
            wafer_crossings: 0,
        };
        // Ganged multi-wafer deployments stream each token's activation
        // across the optical fabric once per pipeline pass; the charge comes
        // from the same link model that prices disaggregated KV migrations.
        let crossing = if self.inter_wafer_crossings_per_token > 0.0 {
            self.inter_wafer_crossings_per_token * self.inter_wafer_link().token_crossing_s(bytes)
        } else {
            0.0
        };
        self.comm.latency_s(&t) + crossing
    }

    /// The aggregated optical fabric between wafers, derived from this
    /// deployment's NoC parameters (shared with `ouro-disagg` so colocated
    /// and disaggregated paths price inter-wafer bytes identically).
    pub fn inter_wafer_link(&self) -> InterWaferLink {
        InterWaferLink::from_noc(&self.comm.noc)
    }
}

impl StageTimeModel for HwStageTimes {
    fn token_time_s(&self, kind: StageKind, attended: usize) -> f64 {
        let m = &self.model;
        let d = m.hidden_dim;
        let qkv = m.heads * m.head_dim;
        let f = m.ffn_dim;
        let b = m.precision.bytes();
        let att = attended.max(1);
        match kind {
            StageKind::QkvGeneration => {
                let compute = self.weight_gemv_s(d, 3 * qkv, self.cores_per_stage[kind.index()]);
                let sfu = self.core.sfu_latency_s(4 * d as u64);
                compute + sfu + self.comm_s(3 * qkv as u64 * b / m.heads.max(1) as u64)
            }
            StageKind::Score => {
                // One head's Q·Kᵀ on its KV core; heads run in parallel on
                // distinct cores. The attended dimension is tiled over the
                // core's crossbars like any other output dimension.
                let compute = self.core.gemv_latency_s(m.head_dim, att);
                compute + self.comm_s(att as u64 * b)
            }
            StageKind::Softmax => self.core.sfu_latency_s(5 * att as u64) + self.comm_s(att as u64 * b),
            StageKind::ContextProjection => {
                // softmax(S)·V on the KV core, then the output projection on
                // the weight cores.
                let sv = self.core.gemv_latency_s(att.min(self.core.config.crossbar.rows), m.head_dim);
                let proj = self.weight_gemv_s(qkv, d, self.cores_per_stage[kind.index()]);
                sv + proj + self.comm_s(d as u64 * b)
            }
            StageKind::Ffn1 => {
                let compute = self.weight_gemv_s(d, f, self.cores_per_stage[kind.index()]);
                compute + self.core.sfu_latency_s((4 * d + f) as u64) + self.comm_s(f as u64 * b / 8)
            }
            StageKind::Ffn2 => {
                let compute = self.weight_gemv_s(f, d, self.cores_per_stage[kind.index()]);
                compute + self.core.sfu_latency_s(d as u64) + self.comm_s(d as u64 * b)
            }
        }
    }

    fn sequence_time_s(&self, kind: StageKind, len: usize, start_ctx: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        // Closed-form approximation: context-scaling stages are priced at the
        // midpoint context, everything else is constant per token.
        let ctx = if kind.scales_with_context() { start_ctx + len.div_ceil(2) } else { 1 };
        len as f64 * self.token_time_s(kind, ctx)
    }
}

impl HwStageTimes {
    /// Total pipeline latency of one token through all `6 × blocks` stages at
    /// the given context length.
    pub fn token_pipeline_latency_s(&self, attended: usize) -> f64 {
        let per_block: f64 = StageKind::ALL.iter().map(|&k| self.token_time_s(k, attended)).sum();
        per_block * self.model.blocks as f64
    }

    /// The slowest single-stage time at the given context length (the
    /// pipeline's steady-state token interval).
    pub fn bottleneck_stage_s(&self, attended: usize) -> f64 {
        StageKind::ALL.iter().map(|&k| self.token_time_s(k, attended)).fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::CimCore;
    use ouro_model::zoo;

    fn times() -> HwStageTimes {
        HwStageTimes {
            model: zoo::llama_13b(),
            core: CimCore::paper(),
            cores_per_stage: [20, 0, 0, 7, 27, 27],
            comm: CommCost::paper(),
            mean_hops: 3.0,
            inter_wafer_crossings_per_token: 0.0,
        }
    }

    #[test]
    fn all_stage_times_are_positive_and_finite() {
        let t = times();
        for kind in StageKind::ALL {
            let v = t.token_time_s(kind, 512);
            assert!(v.is_finite() && v > 0.0, "{kind}: {v}");
        }
    }

    #[test]
    fn attention_stages_grow_with_context() {
        let t = times();
        assert!(t.token_time_s(StageKind::Score, 2048) > t.token_time_s(StageKind::Score, 16));
        assert!(t.token_time_s(StageKind::Softmax, 2048) > t.token_time_s(StageKind::Softmax, 16));
        let ffn_a = t.token_time_s(StageKind::Ffn1, 2048);
        let ffn_b = t.token_time_s(StageKind::Ffn1, 16);
        assert!((ffn_a - ffn_b).abs() < 1e-15);
    }

    #[test]
    fn more_cores_make_weight_stages_faster() {
        let mut few = times();
        few.cores_per_stage = [2, 0, 0, 2, 2, 2];
        let many = times();
        assert!(
            many.token_time_s(StageKind::Ffn1, 64) < few.token_time_s(StageKind::Ffn1, 64),
            "27 cores should beat 2 cores"
        );
    }

    #[test]
    fn sequence_time_close_to_tokenwise_sum() {
        let t = times();
        let len = 64;
        let exact: f64 = (0..len).map(|i| t.token_time_s(StageKind::Score, i + 1)).sum();
        let approx = t.sequence_time_s(StageKind::Score, len, 0);
        let rel = (exact - approx).abs() / exact;
        assert!(rel < 0.25, "closed form off by {rel}");
        assert_eq!(t.sequence_time_s(StageKind::Ffn1, 0, 0), 0.0);
    }

    #[test]
    fn pipeline_latency_and_bottleneck_are_consistent() {
        let t = times();
        let latency = t.token_pipeline_latency_s(256);
        let bottleneck = t.bottleneck_stage_s(256);
        assert!(latency > bottleneck);
        assert!(latency >= bottleneck * t.model.blocks as f64);
    }

    #[test]
    fn inter_wafer_crossing_slows_every_stage_with_activations() {
        let single = times();
        let mut ganged = times();
        ganged.inter_wafer_crossings_per_token = 1.0;
        for kind in StageKind::ALL {
            assert!(
                ganged.token_time_s(kind, 256) > single.token_time_s(kind, 256),
                "{kind} must pay the optical crossing in a ganged deployment"
            );
        }
        // The charge equals the shared link model's single-port crossing.
        let link = single.inter_wafer_link();
        assert_eq!(link, ouro_noc::InterWaferLink::from_noc(&single.comm.noc));
        assert!(link.token_crossing_s(1) > 0.0);
    }

    #[test]
    fn tokens_per_second_is_in_a_plausible_range() {
        // The steady-state pipeline issues one token per bottleneck interval;
        // for LLaMA-13B on the paper hardware this should be at least
        // thousands of tokens/s and below a billion.
        let t = times();
        let rate = 1.0 / t.bottleneck_stage_s(1024);
        assert!(rate > 1e3 && rate < 1e9, "got {rate}");
    }
}
