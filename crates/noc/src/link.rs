//! Link-level parameters of the network-on-wafer.

/// Parameters of one class of link (intra-die mesh, inter-die stitching, or
/// inter-wafer optical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Usable bandwidth in bytes per second (per direction).
    pub bandwidth_bytes_per_s: f64,
    /// Latency contributed by traversing one such link (router + wire), in
    /// seconds.
    pub hop_latency_s: f64,
    /// Energy of moving one byte across the link, in joules.
    pub energy_j_per_byte: f64,
}

impl LinkConfig {
    /// Time to push `bytes` through the link once the head has arrived
    /// (serialisation latency).
    pub fn serialization_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Energy of moving `bytes` across the link.
    pub fn energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_j_per_byte
    }
}

/// Full network-on-wafer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Core-to-core mesh link inside a die: 256-bit bidirectional at the
    /// 1 GHz control clock (≈32 GB/s per direction).
    pub intra_die: LinkConfig,
    /// Die-to-die stitched link. Same width, but stitching adds latency and
    /// energy; the ratio of intra- to inter-die bandwidth is the
    /// `Cost_inter` penalty of the MIQP objective.
    pub inter_die: LinkConfig,
    /// Wafer-to-wafer optical Ethernet, per port (8 × 100 Gb/s ports).
    pub inter_wafer: LinkConfig,
    /// Number of optical Ethernet ports per wafer; bulk transfers (KV
    /// migration) stripe across all of them, point-to-point streams ride
    /// one. Kept here so [`InterWaferLink`] derives its aggregate from the
    /// same configuration that defines the per-port bandwidth.
    pub inter_wafer_ports: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        let intra_bw = 256.0 / 8.0 * 1.0e9; // 256 bit/cycle at 1 GHz => 32 GB/s
        NocConfig {
            intra_die: LinkConfig {
                bandwidth_bytes_per_s: intra_bw,
                hop_latency_s: 2.0e-9, // two router cycles at 1 GHz
                energy_j_per_byte: 0.8e-12,
            },
            inter_die: LinkConfig {
                bandwidth_bytes_per_s: intra_bw / 4.0,
                hop_latency_s: 8.0e-9,
                energy_j_per_byte: 2.4e-12,
            },
            inter_wafer: LinkConfig {
                // One of the eight 100 Gb/s optical Ethernet ports carries a
                // given point-to-point stream (12.5 GB/s).
                bandwidth_bytes_per_s: 100.0e9 / 8.0,
                hop_latency_s: 200.0e-9,
                energy_j_per_byte: 80.0e-12,
            },
            inter_wafer_ports: 8,
        }
    }
}

impl NocConfig {
    /// The paper's network configuration.
    pub fn paper() -> NocConfig {
        NocConfig::default()
    }

    /// A configuration modelling a chiplet system interconnected with
    /// NVLink-class links instead of wafer stitching (the "Baseline" bar of
    /// the Fig. 15 ablation): die-to-die hops are much more expensive in
    /// both latency and energy.
    pub fn chiplet_nvlink() -> NocConfig {
        let paper = NocConfig::paper();
        NocConfig {
            inter_die: LinkConfig {
                bandwidth_bytes_per_s: paper.intra_die.bandwidth_bytes_per_s / 8.0,
                hop_latency_s: 500.0e-9,
                energy_j_per_byte: 10.0e-12,
            },
            ..paper
        }
    }

    /// The MIQP cross-die penalty `Cost_inter`: intra-die bandwidth divided
    /// by inter-die bandwidth (§4.3.1).
    pub fn cost_inter(&self) -> f64 {
        self.intra_die.bandwidth_bytes_per_s / self.inter_die.bandwidth_bytes_per_s
    }
}

/// The inter-wafer optical Ethernet fabric: the eight 100 Gb/s ports of a
/// wafer, aggregated for bulk transfers.
///
/// Two consumers share this model so their byte accounting agrees:
///
/// * the *colocated* multi-wafer path (`ouro-sim`'s stage-time model), which
///   charges every token's activation one optical crossing when a model is
///   ganged across wafers, and
/// * the *disaggregated* path (`ouro-disagg`), which migrates a sequence's
///   entire KV cache from a prefill wafer to a decode wafer and charges the
///   full serialisation of those bytes.
///
/// Point-to-point streams (a single token's activation) ride one port;
/// bulk migrations stripe across all `ports`, so a migration's serialisation
/// time uses the aggregate bandwidth while its head latency still pays
/// `hop_latency_s` per wafer boundary crossed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterWaferLink {
    /// Per-port link parameters (bandwidth is per port, per direction).
    pub link: LinkConfig,
    /// Number of optical Ethernet ports a bulk transfer can stripe across.
    pub ports: usize,
    /// Fixed per-transfer setup cost (protocol handshake, DMA descriptor
    /// setup) paid once per migration regardless of size.
    pub setup_s: f64,
}

impl InterWaferLink {
    /// The paper's configuration: 8 × 100 Gb/s ports, 2 µs setup.
    pub fn paper() -> InterWaferLink {
        InterWaferLink::from_noc(&NocConfig::paper())
    }

    /// Builds the aggregate link from a NoC configuration's per-port
    /// inter-wafer parameters and port count.
    pub fn from_noc(noc: &NocConfig) -> InterWaferLink {
        InterWaferLink { link: noc.inter_wafer, ports: noc.inter_wafer_ports, setup_s: 2.0e-6 }
    }

    /// Aggregate bandwidth of a bulk transfer striped across all ports.
    pub fn aggregate_bandwidth_bytes_per_s(&self) -> f64 {
        self.link.bandwidth_bytes_per_s * self.ports.max(1) as f64
    }

    /// Wall-clock time of one bulk transfer crossing `wafer_hops` wafer
    /// boundaries: setup, per-boundary head latency, and serialisation at
    /// the aggregate bandwidth. Zero-hop transfers (same wafer) are free.
    pub fn transfer_time_s(&self, bytes: u64, wafer_hops: usize) -> f64 {
        if wafer_hops == 0 {
            return 0.0;
        }
        self.setup_s
            + wafer_hops as f64 * self.link.hop_latency_s
            + bytes as f64 / self.aggregate_bandwidth_bytes_per_s()
    }

    /// Energy of a bulk transfer: every byte pays the optical per-byte energy
    /// once per boundary crossed.
    pub fn transfer_energy_j(&self, bytes: u64, wafer_hops: usize) -> f64 {
        bytes as f64 * wafer_hops as f64 * self.link.energy_j_per_byte
    }

    /// Time for one token's activation to cross a single wafer boundary on
    /// one port (the colocated multi-wafer pipeline charge; streams are not
    /// striped).
    pub fn token_crossing_s(&self, activation_bytes: u64) -> f64 {
        self.link.hop_latency_s + self.link.serialization_s(activation_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_die_link_is_32_gb_per_s() {
        let n = NocConfig::paper();
        assert!((n.intra_die.bandwidth_bytes_per_s - 32.0e9).abs() < 1e-3);
    }

    #[test]
    fn cost_inter_is_the_bandwidth_ratio() {
        let n = NocConfig::paper();
        assert!((n.cost_inter() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn serialization_scales_with_bytes() {
        let l = NocConfig::paper().intra_die;
        assert!((l.serialization_s(64_000) - 2.0 * l.serialization_s(32_000)).abs() < 1e-15);
    }

    #[test]
    fn inter_wafer_is_much_slower_than_mesh() {
        let n = NocConfig::paper();
        assert!(n.inter_wafer.hop_latency_s > n.intra_die.hop_latency_s);
        assert!(n.inter_wafer.bandwidth_bytes_per_s < n.intra_die.bandwidth_bytes_per_s);
        assert!(n.inter_wafer.energy_j_per_byte > n.intra_die.energy_j_per_byte);
    }

    #[test]
    fn nvlink_chiplet_baseline_is_worse_across_dies() {
        let wafer = NocConfig::paper();
        let chiplet = NocConfig::chiplet_nvlink();
        assert!(chiplet.inter_die.hop_latency_s > wafer.inter_die.hop_latency_s);
        assert!(chiplet.inter_die.energy_j_per_byte > wafer.inter_die.energy_j_per_byte);
        assert!(chiplet.cost_inter() > wafer.cost_inter());
        // Intra-die links are unchanged.
        assert_eq!(chiplet.intra_die, wafer.intra_die);
    }

    #[test]
    fn link_energy_is_linear() {
        let l = NocConfig::paper().inter_die;
        assert_eq!(l.energy_j(0), 0.0);
        assert!((l.energy_j(1000) - 1000.0 * l.energy_j_per_byte).abs() < 1e-18);
    }

    #[test]
    fn inter_wafer_aggregate_is_100_gbytes_per_s() {
        let iw = InterWaferLink::paper();
        assert_eq!(iw.ports, 8);
        // 8 ports × 12.5 GB/s = 100 GB/s aggregate.
        assert!((iw.aggregate_bandwidth_bytes_per_s() - 100.0e9).abs() < 1.0);
    }

    #[test]
    fn zero_hop_migration_is_free() {
        let iw = InterWaferLink::paper();
        assert_eq!(iw.transfer_time_s(1 << 30, 0), 0.0);
        assert_eq!(iw.transfer_energy_j(1 << 30, 0), 0.0);
    }

    #[test]
    fn migration_time_decomposes_into_setup_head_and_serialisation() {
        let iw = InterWaferLink::paper();
        let bytes = 100_000_000u64; // 100 MB of KV
        let t = iw.transfer_time_s(bytes, 1);
        let expected = iw.setup_s + iw.link.hop_latency_s + bytes as f64 / 100.0e9;
        assert!((t - expected).abs() < 1e-12);
        // Two boundaries pay one more head latency but serialise once.
        let t2 = iw.transfer_time_s(bytes, 2);
        assert!((t2 - t - iw.link.hop_latency_s).abs() < 1e-12);
    }

    #[test]
    fn migration_energy_scales_with_bytes_and_hops() {
        let iw = InterWaferLink::paper();
        let e1 = iw.transfer_energy_j(1000, 1);
        assert!((e1 - 1000.0 * iw.link.energy_j_per_byte).abs() < 1e-15);
        assert!((iw.transfer_energy_j(1000, 3) - 3.0 * e1).abs() < 1e-15);
    }

    #[test]
    fn token_crossing_uses_a_single_port() {
        let iw = InterWaferLink::paper();
        let bytes = 5120;
        let t = iw.token_crossing_s(bytes);
        assert!((t - (iw.link.hop_latency_s + bytes as f64 / iw.link.bandwidth_bytes_per_s)).abs() < 1e-15);
        // A striped bulk transfer of the same payload serialises faster but
        // pays the setup cost.
        assert!(iw.transfer_time_s(bytes, 1) > iw.setup_s);
    }
}
