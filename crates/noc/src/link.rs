//! Link-level parameters of the network-on-wafer.

/// Parameters of one class of link (intra-die mesh, inter-die stitching, or
/// inter-wafer optical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Usable bandwidth in bytes per second (per direction).
    pub bandwidth_bytes_per_s: f64,
    /// Latency contributed by traversing one such link (router + wire), in
    /// seconds.
    pub hop_latency_s: f64,
    /// Energy of moving one byte across the link, in joules.
    pub energy_j_per_byte: f64,
}

impl LinkConfig {
    /// Time to push `bytes` through the link once the head has arrived
    /// (serialisation latency).
    pub fn serialization_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Energy of moving `bytes` across the link.
    pub fn energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_j_per_byte
    }
}

/// Full network-on-wafer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Core-to-core mesh link inside a die: 256-bit bidirectional at the
    /// 1 GHz control clock (≈32 GB/s per direction).
    pub intra_die: LinkConfig,
    /// Die-to-die stitched link. Same width, but stitching adds latency and
    /// energy; the ratio of intra- to inter-die bandwidth is the
    /// `Cost_inter` penalty of the MIQP objective.
    pub inter_die: LinkConfig,
    /// Wafer-to-wafer optical Ethernet (8 × 100 Gb/s ports aggregated).
    pub inter_wafer: LinkConfig,
}

impl Default for NocConfig {
    fn default() -> Self {
        let intra_bw = 256.0 / 8.0 * 1.0e9; // 256 bit/cycle at 1 GHz => 32 GB/s
        NocConfig {
            intra_die: LinkConfig {
                bandwidth_bytes_per_s: intra_bw,
                hop_latency_s: 2.0e-9, // two router cycles at 1 GHz
                energy_j_per_byte: 0.8e-12,
            },
            inter_die: LinkConfig {
                bandwidth_bytes_per_s: intra_bw / 4.0,
                hop_latency_s: 8.0e-9,
                energy_j_per_byte: 2.4e-12,
            },
            inter_wafer: LinkConfig {
                // One of the eight 100 Gb/s optical Ethernet ports carries a
                // given point-to-point stream (12.5 GB/s).
                bandwidth_bytes_per_s: 100.0e9 / 8.0,
                hop_latency_s: 200.0e-9,
                energy_j_per_byte: 80.0e-12,
            },
        }
    }
}

impl NocConfig {
    /// The paper's network configuration.
    pub fn paper() -> NocConfig {
        NocConfig::default()
    }

    /// A configuration modelling a chiplet system interconnected with
    /// NVLink-class links instead of wafer stitching (the "Baseline" bar of
    /// the Fig. 15 ablation): die-to-die hops are much more expensive in
    /// both latency and energy.
    pub fn chiplet_nvlink() -> NocConfig {
        let paper = NocConfig::paper();
        NocConfig {
            inter_die: LinkConfig {
                bandwidth_bytes_per_s: paper.intra_die.bandwidth_bytes_per_s / 8.0,
                hop_latency_s: 500.0e-9,
                energy_j_per_byte: 10.0e-12,
            },
            ..paper
        }
    }

    /// The MIQP cross-die penalty `Cost_inter`: intra-die bandwidth divided
    /// by inter-die bandwidth (§4.3.1).
    pub fn cost_inter(&self) -> f64 {
        self.intra_die.bandwidth_bytes_per_s / self.inter_die.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_die_link_is_32_gb_per_s() {
        let n = NocConfig::paper();
        assert!((n.intra_die.bandwidth_bytes_per_s - 32.0e9).abs() < 1e-3);
    }

    #[test]
    fn cost_inter_is_the_bandwidth_ratio() {
        let n = NocConfig::paper();
        assert!((n.cost_inter() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn serialization_scales_with_bytes() {
        let l = NocConfig::paper().intra_die;
        assert!((l.serialization_s(64_000) - 2.0 * l.serialization_s(32_000)).abs() < 1e-15);
    }

    #[test]
    fn inter_wafer_is_much_slower_than_mesh() {
        let n = NocConfig::paper();
        assert!(n.inter_wafer.hop_latency_s > n.intra_die.hop_latency_s);
        assert!(n.inter_wafer.bandwidth_bytes_per_s < n.intra_die.bandwidth_bytes_per_s);
        assert!(n.inter_wafer.energy_j_per_byte > n.intra_die.energy_j_per_byte);
    }

    #[test]
    fn nvlink_chiplet_baseline_is_worse_across_dies() {
        let wafer = NocConfig::paper();
        let chiplet = NocConfig::chiplet_nvlink();
        assert!(chiplet.inter_die.hop_latency_s > wafer.inter_die.hop_latency_s);
        assert!(chiplet.inter_die.energy_j_per_byte > wafer.inter_die.energy_j_per_byte);
        assert!(chiplet.cost_inter() > wafer.cost_inter());
        // Intra-die links are unchanged.
        assert_eq!(chiplet.intra_die, wafer.intra_die);
    }

    #[test]
    fn link_energy_is_linear() {
        let l = NocConfig::paper().inter_die;
        assert_eq!(l.energy_j(0), 0.0);
        assert!((l.energy_j(1000) - 1000.0 * l.energy_j_per_byte).abs() < 1e-18);
    }
}
