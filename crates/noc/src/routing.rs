//! Routing on the wafer-global core mesh.
//!
//! The default route is XY dimension-order routing (row first, then column),
//! which is deadlock-free on a mesh. For interconnect or core failures the
//! fault-aware variant detours around unusable cores while preserving
//! dimension-ordered segments, mirroring the paper's "routing tables are
//! reconfigured in real time to circumvent faulty links" recovery path
//! (§4.3.3).

use ouro_hw::{CoreCoord, CoreId, DefectMap, WaferGeometry};

/// Error returned when no route can be found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The destination core itself is defective / unusable.
    DestinationUnusable(CoreId),
    /// The source core itself is defective / unusable.
    SourceUnusable(CoreId),
    /// No detour was found within the search limit.
    NoPath { from: CoreId, to: CoreId },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::DestinationUnusable(c) => write!(f, "destination {c} is unusable"),
            RouteError::SourceUnusable(c) => write!(f, "source {c} is unusable"),
            RouteError::NoPath { from, to } => write!(f, "no usable path from {from} to {to}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Returns the XY (row-then-column) route from `from` to `to` as the list of
/// cores traversed, including both endpoints.
pub fn route_xy(geometry: &WaferGeometry, from: CoreId, to: CoreId) -> Vec<CoreId> {
    let a = geometry.coord(from);
    let b = geometry.coord(to);
    let mut path = vec![from];
    let mut cur = a;
    while cur.row != b.row {
        cur = CoreCoord { row: if cur.row < b.row { cur.row + 1 } else { cur.row - 1 }, col: cur.col };
        path.push(geometry.id(cur));
    }
    while cur.col != b.col {
        cur = CoreCoord { row: cur.row, col: if cur.col < b.col { cur.col + 1 } else { cur.col - 1 } };
        path.push(geometry.id(cur));
    }
    path
}

/// Returns a route from `from` to `to` that avoids defective cores, using a
/// breadth-first search over functional cores (the endpoints must be
/// functional). Falls back to plain XY when the XY route is already clean.
///
/// # Errors
///
/// Returns an error if either endpoint is defective or if the defective
/// region disconnects the pair.
pub fn route_xy_avoiding(
    geometry: &WaferGeometry,
    defects: &DefectMap,
    from: CoreId,
    to: CoreId,
) -> Result<Vec<CoreId>, RouteError> {
    if defects.is_defective(from) {
        return Err(RouteError::SourceUnusable(from));
    }
    if defects.is_defective(to) {
        return Err(RouteError::DestinationUnusable(to));
    }
    let xy = route_xy(geometry, from, to);
    if xy.iter().all(|c| !defects.is_defective(*c)) {
        return Ok(xy);
    }
    // BFS over functional cores.
    let total = geometry.total_cores();
    let mut prev: Vec<Option<CoreId>> = vec![None; total];
    let mut visited = vec![false; total];
    let mut queue = std::collections::VecDeque::new();
    visited[from.0] = true;
    queue.push_back(from);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut path = vec![to];
            let mut node = to;
            while let Some(p) = prev[node.0] {
                path.push(p);
                node = p;
            }
            path.reverse();
            return Ok(path);
        }
        let c = geometry.coord(cur);
        let mut neighbours = Vec::with_capacity(4);
        if c.row > 0 {
            neighbours.push(CoreCoord { row: c.row - 1, col: c.col });
        }
        if c.row + 1 < geometry.global_rows() {
            neighbours.push(CoreCoord { row: c.row + 1, col: c.col });
        }
        if c.col > 0 {
            neighbours.push(CoreCoord { row: c.row, col: c.col - 1 });
        }
        if c.col + 1 < geometry.global_cols() {
            neighbours.push(CoreCoord { row: c.row, col: c.col + 1 });
        }
        for n in neighbours {
            let id = geometry.id(n);
            if !visited[id.0] && !defects.is_defective(id) {
                visited[id.0] = true;
                prev[id.0] = Some(cur);
                queue.push_back(id);
            }
        }
    }
    Err(RouteError::NoPath { from, to })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::WaferGeometry;
    use proptest::prelude::*;

    fn tiny() -> WaferGeometry {
        WaferGeometry::tiny(1, 1, 8, 8)
    }

    #[test]
    fn xy_route_length_is_manhattan_plus_one() {
        let g = tiny();
        let from = g.id(ouro_hw::CoreCoord { row: 0, col: 0 });
        let to = g.id(ouro_hw::CoreCoord { row: 3, col: 5 });
        let path = route_xy(&g, from, to);
        assert_eq!(path.len(), g.manhattan(from, to) + 1);
        assert_eq!(*path.first().unwrap(), from);
        assert_eq!(*path.last().unwrap(), to);
    }

    #[test]
    fn xy_route_to_self_is_single_node() {
        let g = tiny();
        let c = CoreId(12);
        assert_eq!(route_xy(&g, c, c), vec![c]);
    }

    #[test]
    fn xy_route_steps_are_adjacent() {
        let g = tiny();
        let path = route_xy(&g, CoreId(0), CoreId(63));
        for w in path.windows(2) {
            assert_eq!(g.manhattan(w[0], w[1]), 1);
        }
    }

    #[test]
    fn fault_free_routing_equals_xy() {
        let g = tiny();
        let defects = DefectMap::pristine(&g);
        let from = CoreId(0);
        let to = CoreId(27);
        assert_eq!(route_xy_avoiding(&g, &defects, from, to).unwrap(), route_xy(&g, from, to));
    }

    #[test]
    fn routing_detours_around_a_defective_core() {
        let g = tiny();
        let from = g.id(ouro_hw::CoreCoord { row: 0, col: 0 });
        let to = g.id(ouro_hw::CoreCoord { row: 0, col: 7 });
        // Block a core on the straight-line path.
        let blocked = g.id(ouro_hw::CoreCoord { row: 0, col: 3 });
        let defects = DefectMap::from_defective(&g, &[blocked]);
        let path = route_xy_avoiding(&g, &defects, from, to).unwrap();
        assert!(!path.contains(&blocked));
        assert_eq!(*path.first().unwrap(), from);
        assert_eq!(*path.last().unwrap(), to);
        // The detour costs exactly two extra hops on an open mesh.
        assert_eq!(path.len(), route_xy(&g, from, to).len() + 2);
    }

    #[test]
    fn routing_to_a_defective_endpoint_fails() {
        let g = tiny();
        let bad = CoreId(9);
        let defects = DefectMap::from_defective(&g, &[bad]);
        assert_eq!(
            route_xy_avoiding(&g, &defects, CoreId(0), bad),
            Err(RouteError::DestinationUnusable(bad))
        );
        assert_eq!(route_xy_avoiding(&g, &defects, bad, CoreId(0)), Err(RouteError::SourceUnusable(bad)));
    }

    #[test]
    fn fully_walled_off_destination_is_unreachable() {
        let g = tiny();
        let target = g.id(ouro_hw::CoreCoord { row: 0, col: 0 });
        // Wall off the corner core.
        let wall = [
            g.id(ouro_hw::CoreCoord { row: 0, col: 1 }),
            g.id(ouro_hw::CoreCoord { row: 1, col: 0 }),
            g.id(ouro_hw::CoreCoord { row: 1, col: 1 }),
        ];
        let defects = DefectMap::from_defective(&g, &wall);
        let err = route_xy_avoiding(&g, &defects, CoreId(63), target).unwrap_err();
        assert!(matches!(err, RouteError::NoPath { .. }));
        assert!(err.to_string().contains("no usable path"));
    }

    proptest! {
        #[test]
        fn detoured_routes_are_valid(a in 0usize..64, b in 0usize..64, seed in 0u64..50) {
            let g = tiny();
            let model = ouro_hw::YieldModel { d0_per_cm2: 20.0 }; // lots of defects
            let mut defects = DefectMap::generate(&g, &model, seed);
            // Endpoints must be functional for the property to apply.
            let (a, b) = (CoreId(a), CoreId(b));
            if defects.is_defective(a) || defects.is_defective(b) {
                defects = DefectMap::pristine(&g);
            }
            if let Ok(path) = route_xy_avoiding(&g, &defects, a, b) {
                prop_assert_eq!(*path.first().unwrap(), a);
                prop_assert_eq!(*path.last().unwrap(), b);
                for w in path.windows(2) {
                    prop_assert_eq!(g.manhattan(w[0], w[1]), 1);
                }
                for c in &path {
                    prop_assert!(!defects.is_defective(*c));
                }
            }
        }
    }
}
