//! Transfer cost model: latency and energy of moving a payload between two
//! cores on the wafer (or between wafers).
//!
//! The model is hop-based: a transfer pays one hop latency per mesh link it
//! traverses (with die-crossing links being slower and more expensive),
//! plus a serialisation term governed by the narrowest link on the path.
//! This is the cost model the MIQP mapper optimises against and the cost the
//! end-to-end simulator charges for inter-stage activation movement and
//! intra-stage reductions.

use crate::link::NocConfig;
use ouro_hw::{CoreId, WaferGeometry};

/// One point-to-point transfer on the wafer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Number of intra-die mesh hops traversed.
    pub intra_die_hops: usize,
    /// Number of die-boundary crossings traversed.
    pub die_crossings: usize,
    /// Number of wafer-boundary crossings traversed (0 or 1 in practice).
    pub wafer_crossings: usize,
}

impl Transfer {
    /// Builds the transfer between two cores of `geometry`, taking the XY
    /// route's hop counts.
    pub fn between(geometry: &WaferGeometry, from: CoreId, to: CoreId, bytes: u64) -> Transfer {
        let hops = geometry.manhattan(from, to);
        let crossings = geometry.die_crossings(from, to);
        Transfer {
            bytes,
            intra_die_hops: hops.saturating_sub(crossings),
            die_crossings: crossings,
            wafer_crossings: 0,
        }
    }

    /// A transfer that crosses to another wafer (used by multi-wafer
    /// scaling): the on-wafer portion is `hops` mesh hops on each side plus
    /// one optical crossing.
    pub fn inter_wafer(bytes: u64, hops: usize) -> Transfer {
        Transfer { bytes, intra_die_hops: hops, die_crossings: 0, wafer_crossings: 1 }
    }

    /// A purely local transfer (same core); zero hops, zero cost.
    pub fn local() -> Transfer {
        Transfer { bytes: 0, intra_die_hops: 0, die_crossings: 0, wafer_crossings: 0 }
    }

    /// Total number of link traversals.
    pub fn total_hops(&self) -> usize {
        self.intra_die_hops + self.die_crossings + self.wafer_crossings
    }
}

/// The communication cost model: combines a [`NocConfig`] with the wafer
/// geometry to price transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCost {
    /// Link parameters.
    pub noc: NocConfig,
}

impl Default for CommCost {
    fn default() -> Self {
        CommCost { noc: NocConfig::paper() }
    }
}

impl CommCost {
    /// Cost model with the paper's NoC parameters.
    pub fn paper() -> CommCost {
        CommCost::default()
    }

    /// Cost model for the chiplet/NVLink ablation baseline.
    pub fn chiplet_nvlink() -> CommCost {
        CommCost { noc: NocConfig::chiplet_nvlink() }
    }

    /// Latency in seconds of a transfer: per-hop head latency plus
    /// serialisation through the narrowest link class used.
    pub fn latency_s(&self, t: &Transfer) -> f64 {
        if t.total_hops() == 0 {
            return 0.0;
        }
        let head = t.intra_die_hops as f64 * self.noc.intra_die.hop_latency_s
            + t.die_crossings as f64 * self.noc.inter_die.hop_latency_s
            + t.wafer_crossings as f64 * self.noc.inter_wafer.hop_latency_s;
        let bottleneck = if t.wafer_crossings > 0 {
            self.noc.inter_wafer
        } else if t.die_crossings > 0 {
            self.noc.inter_die
        } else {
            self.noc.intra_die
        };
        head + bottleneck.serialization_s(t.bytes)
    }

    /// Energy in joules of a transfer: each byte pays for every link class it
    /// traverses.
    pub fn energy_j(&self, t: &Transfer) -> f64 {
        t.bytes as f64
            * (t.intra_die_hops as f64 * self.noc.intra_die.energy_j_per_byte
                + t.die_crossings as f64 * self.noc.inter_die.energy_j_per_byte
                + t.wafer_crossings as f64 * self.noc.inter_wafer.energy_j_per_byte)
    }

    /// Convenience: latency of moving `bytes` between two cores of
    /// `geometry` along the XY route.
    pub fn transfer_latency_s(&self, geometry: &WaferGeometry, from: CoreId, to: CoreId, bytes: u64) -> f64 {
        self.latency_s(&Transfer::between(geometry, from, to, bytes))
    }

    /// Convenience: energy of moving `bytes` between two cores of `geometry`
    /// along the XY route.
    pub fn transfer_energy_j(&self, geometry: &WaferGeometry, from: CoreId, to: CoreId, bytes: u64) -> f64 {
        self.energy_j(&Transfer::between(geometry, from, to, bytes))
    }

    /// The abstract "weighted transmission volume" used by the mapping
    /// studies (Fig. 18): bytes × hops, with die crossings weighted by the
    /// `Cost_inter` penalty. Dimensionless apart from bytes.
    pub fn weighted_volume(&self, t: &Transfer) -> f64 {
        t.bytes as f64
            * (t.intra_die_hops as f64
                + t.die_crossings as f64 * self.noc.cost_inter()
                + t.wafer_crossings as f64 * self.noc.cost_inter() * 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_hw::{CoreCoord, WaferGeometry};
    use proptest::prelude::*;

    #[test]
    fn local_transfer_is_free() {
        let cost = CommCost::paper();
        let t = Transfer::local();
        assert_eq!(cost.latency_s(&t), 0.0);
        assert_eq!(cost.energy_j(&t), 0.0);
    }

    #[test]
    fn same_core_transfer_is_free() {
        let g = WaferGeometry::paper();
        let cost = CommCost::paper();
        assert_eq!(cost.transfer_latency_s(&g, CoreId(5), CoreId(5), 1 << 20), 0.0);
    }

    #[test]
    fn longer_routes_cost_more() {
        let g = WaferGeometry::paper();
        let cost = CommCost::paper();
        let near = cost.transfer_latency_s(&g, CoreId(0), CoreId(1), 4096);
        let far = cost.transfer_latency_s(&g, CoreId(0), CoreId(5000), 4096);
        assert!(far > near);
        assert!(
            cost.transfer_energy_j(&g, CoreId(0), CoreId(5000), 4096)
                > cost.transfer_energy_j(&g, CoreId(0), CoreId(1), 4096)
        );
    }

    #[test]
    fn die_crossings_raise_cost_beyond_hop_count() {
        let g = WaferGeometry::paper();
        let cost = CommCost::paper();
        // Two transfers with identical Manhattan distance, one inside a die
        // and one crossing a die boundary.
        let inside_a = g.id(CoreCoord { row: 0, col: 0 });
        let inside_b = g.id(CoreCoord { row: 0, col: 4 });
        let cross_a = g.id(CoreCoord { row: 0, col: g.core_cols_per_die - 2 });
        let cross_b = g.id(CoreCoord { row: 0, col: g.core_cols_per_die + 2 });
        assert_eq!(g.manhattan(inside_a, inside_b), g.manhattan(cross_a, cross_b));
        let inside = cost.transfer_latency_s(&g, inside_a, inside_b, 8192);
        let cross = cost.transfer_latency_s(&g, cross_a, cross_b, 8192);
        assert!(cross > inside);
    }

    #[test]
    fn inter_wafer_transfer_dominates() {
        let cost = CommCost::paper();
        // Small payload: the comparison is head-latency and per-byte energy,
        // where the optical crossing is strictly worse than staying on-wafer.
        let on_wafer = Transfer { bytes: 256, intra_die_hops: 20, die_crossings: 2, wafer_crossings: 0 };
        let off_wafer = Transfer::inter_wafer(256, 20);
        assert!(cost.latency_s(&off_wafer) > cost.latency_s(&on_wafer));
        assert!(cost.energy_j(&off_wafer) > cost.energy_j(&on_wafer));
    }

    #[test]
    fn weighted_volume_penalises_die_crossings() {
        let cost = CommCost::paper();
        let intra = Transfer { bytes: 1000, intra_die_hops: 4, die_crossings: 0, wafer_crossings: 0 };
        let inter = Transfer { bytes: 1000, intra_die_hops: 3, die_crossings: 1, wafer_crossings: 0 };
        assert!(cost.weighted_volume(&inter) > cost.weighted_volume(&intra));
    }

    #[test]
    fn chiplet_baseline_charges_more_for_crossings() {
        let wafer = CommCost::paper();
        let chiplet = CommCost::chiplet_nvlink();
        let t = Transfer { bytes: 1 << 14, intra_die_hops: 0, die_crossings: 3, wafer_crossings: 0 };
        assert!(chiplet.latency_s(&t) > wafer.latency_s(&t));
        assert!(chiplet.energy_j(&t) > wafer.energy_j(&t));
    }

    #[test]
    fn transfer_between_decomposes_hops() {
        let g = WaferGeometry::paper();
        let a = g.id(CoreCoord { row: 0, col: 0 });
        let b = g.id(CoreCoord { row: 0, col: g.core_cols_per_die + 1 });
        let t = Transfer::between(&g, a, b, 128);
        assert_eq!(t.die_crossings, 1);
        assert_eq!(t.total_hops(), g.manhattan(a, b));
    }

    proptest! {
        #[test]
        fn cost_monotone_in_bytes(bytes1 in 1u64..1_000_000, extra in 1u64..1_000_000,
                                  hops in 1usize..50, crossings in 0usize..5) {
            let cost = CommCost::paper();
            let t1 = Transfer { bytes: bytes1, intra_die_hops: hops, die_crossings: crossings, wafer_crossings: 0 };
            let t2 = Transfer { bytes: bytes1 + extra, ..t1 };
            prop_assert!(cost.latency_s(&t2) > cost.latency_s(&t1));
            prop_assert!(cost.energy_j(&t2) > cost.energy_j(&t1));
            prop_assert!(cost.weighted_volume(&t2) > cost.weighted_volume(&t1));
        }

        #[test]
        fn energy_symmetric_between_cores(a in 0usize..13923, b in 0usize..13923) {
            let g = WaferGeometry::paper();
            let cost = CommCost::paper();
            let e1 = cost.transfer_energy_j(&g, CoreId(a), CoreId(b), 4096);
            let e2 = cost.transfer_energy_j(&g, CoreId(b), CoreId(a), 4096);
            prop_assert!((e1 - e2).abs() < 1e-18);
        }
    }
}
