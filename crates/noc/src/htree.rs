//! The 1024-bit H-tree connecting the 32 crossbars inside one CIM core.
//!
//! The H-tree is a binary reduction/concatenation tree: its leaves are
//! crossbars and every internal node either *reduces* (adds partial sums —
//! data volume stays constant as it moves up) or *concatenates* (stacks
//! outputs — data volume doubles). Concatenation near the leaves therefore
//! stresses the narrow lower levels, which is exactly what the intra-core DP
//! mapping (§4.3.2, implemented in `ouro-mapping`) minimises. This module
//! provides the tree geometry and the bandwidth-pressure accounting that DP
//! optimises.

/// The intra-core H-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HTree {
    /// Number of leaf crossbars (32 in the paper; must be a power of two).
    pub leaves: usize,
    /// Link width in bits at every level (1024 in the paper).
    pub link_bits: usize,
}

impl Default for HTree {
    fn default() -> Self {
        HTree { leaves: 32, link_bits: 1024 }
    }
}

impl HTree {
    /// The paper's 32-leaf, 1024-bit H-tree.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two or is zero.
    pub fn new(leaves: usize, link_bits: usize) -> HTree {
        assert!(leaves > 0 && leaves.is_power_of_two(), "H-tree needs a power-of-two leaf count");
        HTree { leaves, link_bits }
    }

    /// Depth of the tree (number of internal levels): log2(leaves).
    pub fn depth(&self) -> usize {
        self.leaves.trailing_zeros() as usize
    }

    /// Number of internal (non-leaf) nodes.
    pub fn internal_nodes(&self) -> usize {
        self.leaves - 1
    }

    /// Traffic (in partial-sum words) crossing the node at `depth_from_leaf`
    /// when the nodes below it performed `concats` concatenations out of the
    /// `depth_from_leaf` merge steps on the path, for a per-crossbar output
    /// of `words` partial sums.
    ///
    /// Every concatenation on the way up doubles the payload; reductions
    /// keep it constant.
    pub fn node_traffic_words(&self, words: u64, concats: u32) -> u64 {
        words << concats
    }

    /// The DP objective weight of §4.3.2 for a node: `depth × weight` where
    /// weight is 1 for a concatenation node and 0 for a reduction node, and
    /// `depth` is counted from the *root* (deep nodes near the leaves are the
    /// expensive place to concatenate).
    pub fn dp_cost(&self, depth_from_root: usize, is_concat: bool) -> u64 {
        if is_concat {
            depth_from_root as u64
        } else {
            0
        }
    }

    /// Cycles needed to move `words` 32-bit partial-sum words through one
    /// H-tree link.
    pub fn link_cycles(&self, words: u64) -> u64 {
        let bits = words * 32;
        bits.div_ceil(self.link_bits as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_htree_shape() {
        let t = HTree::default();
        assert_eq!(t.leaves, 32);
        assert_eq!(t.depth(), 5);
        assert_eq!(t.internal_nodes(), 31);
        assert_eq!(t.link_bits, 1024);
    }

    #[test]
    fn concatenation_doubles_traffic() {
        let t = HTree::default();
        assert_eq!(t.node_traffic_words(128, 0), 128);
        assert_eq!(t.node_traffic_words(128, 1), 256);
        assert_eq!(t.node_traffic_words(128, 3), 1024);
    }

    #[test]
    fn reduction_nodes_are_free_in_the_dp() {
        let t = HTree::default();
        assert_eq!(t.dp_cost(4, false), 0);
        assert_eq!(t.dp_cost(4, true), 4);
        assert!(t.dp_cost(5, true) > t.dp_cost(1, true));
    }

    #[test]
    fn link_cycles_round_up() {
        let t = HTree::default();
        // 32 words of 32 bits = 1024 bits = exactly one beat.
        assert_eq!(t.link_cycles(32), 1);
        assert_eq!(t.link_cycles(33), 2);
        assert_eq!(t.link_cycles(0), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_leaves_rejected() {
        HTree::new(33, 1024);
    }
}
