//! Network-on-wafer model.
//!
//! Ouroboros connects its 13 923 CIM cores with a per-die 2-D mesh whose
//! links are 256-bit bidirectional (matching the core buffer width), stitches
//! neighbouring dies together with field-stitching links that behave like
//! mesh links with a die-crossing penalty, and scales beyond one wafer with
//! eight 100 Gb/s optical Ethernet ports (§3, §5).
//!
//! The crate provides:
//!
//! * [`link`] — link/bandwidth/latency/energy parameters for intra-die,
//!   inter-die and inter-wafer hops, plus the aggregated [`InterWaferLink`]
//!   optical fabric used for bulk KV migrations between wafers,
//! * [`routing`] — XY dimension-order routing with fault-aware detours
//!   around defective cores and links,
//! * [`cost`] — the transfer cost model (latency and energy of moving a
//!   payload between two cores) used by the mapper and the end-to-end
//!   simulator,
//! * [`htree`] — the 1024-bit H-tree that connects the 32 crossbars inside
//!   one core, whose bandwidth pressure drives the intra-core DP mapping.

pub mod cost;
pub mod htree;
pub mod link;
pub mod routing;

pub use cost::{CommCost, Transfer};
pub use htree::HTree;
pub use link::{InterWaferLink, LinkConfig, NocConfig};
pub use routing::{route_xy, route_xy_avoiding, RouteError};
