//! The common result type every system model produces.

/// Energy per *output token*, split into the four components the paper's
//  energy figures stack (Fig. 14, Fig. 20).
/// Energy breakdown per output token, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Arithmetic (MAC / tensor-core / SFU) energy.
    pub compute_j: f64,
    /// On-chip memory traffic (SRAM buffers, caches, register files).
    pub on_chip_j: f64,
    /// Off-chip memory traffic (HBM / DRAM).
    pub off_chip_j: f64,
    /// Inter-chip / on-wafer network traffic.
    pub communication_j: f64,
}

impl EnergyBreakdown {
    /// Total energy per output token.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.on_chip_j + self.off_chip_j + self.communication_j
    }

    /// Element-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: self.compute_j + other.compute_j,
            on_chip_j: self.on_chip_j + other.on_chip_j,
            off_chip_j: self.off_chip_j + other.off_chip_j,
            communication_j: self.communication_j + other.communication_j,
        }
    }

    /// Element-wise scaling (e.g. per-token normalisation).
    pub fn scale(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: self.compute_j * factor,
            on_chip_j: self.on_chip_j * factor,
            off_chip_j: self.off_chip_j * factor,
            communication_j: self.communication_j * factor,
        }
    }
}

/// End-to-end evaluation of one system on one model and trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Display name of the system ("DGX A100", "Ours", ...).
    pub system: String,
    /// Model evaluated.
    pub model: String,
    /// Workload label ("WikiText-2", "LP=128 LD=2048", ...).
    pub workload: String,
    /// Output-token throughput in tokens per second.
    pub throughput_tokens_per_s: f64,
    /// Energy per output token, with breakdown.
    pub energy_per_token: EnergyBreakdown,
    /// Total wall-clock time for the trace in seconds.
    pub total_time_s: f64,
    /// Output tokens produced by the trace.
    pub output_tokens: u64,
    /// Whether the model (weights + working set) fits the system's first
    /// tier of memory without streaming.
    pub fits_in_memory: bool,
}

impl SystemReport {
    /// Total energy per output token in joules.
    pub fn energy_per_token_j(&self) -> f64 {
        self.energy_per_token.total_j()
    }

    /// Total energy for the whole trace in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy_per_token_j() * self.output_tokens as f64
    }

    /// Speedup of this report over a reference report (same workload).
    pub fn speedup_over(&self, reference: &SystemReport) -> f64 {
        if reference.throughput_tokens_per_s <= 0.0 {
            return f64::INFINITY;
        }
        self.throughput_tokens_per_s / reference.throughput_tokens_per_s
    }

    /// Energy of this report relative to a reference (1.0 = equal, < 1.0 =
    /// this system uses less energy per token).
    pub fn energy_ratio_over(&self, reference: &SystemReport) -> f64 {
        let r = reference.energy_per_token_j();
        if r <= 0.0 {
            return f64::INFINITY;
        }
        self.energy_per_token_j() / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tp: f64, energy: f64) -> SystemReport {
        SystemReport {
            system: "test".into(),
            model: "m".into(),
            workload: "w".into(),
            throughput_tokens_per_s: tp,
            energy_per_token: EnergyBreakdown { compute_j: energy, ..Default::default() },
            total_time_s: 1.0,
            output_tokens: 100,
            fits_in_memory: true,
        }
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = EnergyBreakdown { compute_j: 1.0, on_chip_j: 2.0, off_chip_j: 3.0, communication_j: 4.0 };
        assert_eq!(b.total_j(), 10.0);
        assert_eq!(b.scale(0.5).total_j(), 5.0);
        assert_eq!(b.add(&b).total_j(), 20.0);
    }

    #[test]
    fn speedup_and_energy_ratio() {
        let ours = report(400.0, 0.5);
        let base = report(100.0, 2.0);
        assert!((ours.speedup_over(&base) - 4.0).abs() < 1e-12);
        assert!((ours.energy_ratio_over(&base) - 0.25).abs() < 1e-12);
        assert_eq!(ours.total_energy_j(), 50.0);
    }

    #[test]
    fn degenerate_reference_yields_infinity() {
        let ours = report(10.0, 1.0);
        let zero = report(0.0, 0.0);
        assert!(ours.speedup_over(&zero).is_infinite());
        assert!(ours.energy_ratio_over(&zero).is_infinite());
    }
}
