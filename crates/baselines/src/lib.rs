//! Analytical models of the baseline systems Ouroboros is compared against
//! (§6.1): a DGX A100 node running vLLM, an 8-chip TPU v4 pod, the
//! DGX+AttAcc PIM system, the Cerebras WSE-2 running WaferLLM, and the
//! HBM-backed systems built from the VLSI'22 / ISSCC'22 CIM macros (Fig. 21).
//!
//! Each baseline is a roofline + memory-hierarchy-energy model
//! ([`roofline::RooflineSystem`]) parameterised with published hardware
//! numbers. All systems — including the Ouroboros simulator in `ouro-sim` —
//! report results through the same [`SystemReport`] type, so the experiment
//! harness can normalise and tabulate them uniformly, which is all the
//! paper's figures need (normalised throughput and normalised energy per
//! output token with a component breakdown).

pub mod report;
pub mod roofline;
pub mod systems;

pub use report::{EnergyBreakdown, SystemReport};
pub use roofline::{RooflineConfig, RooflineSystem};
pub use systems::{attacc, cerebras_wse2, dgx_a100, hbm_cim_system, tpu_v4};
