//! Concrete baseline system configurations (published hardware parameters).

use crate::roofline::{RooflineConfig, RooflineSystem};

/// A DGX A100 node with `gpus` 40 GB A100 GPUs connected by NVLink, running a
/// vLLM-style serving stack (continuous batching, FlashAttention,
/// chunked prefill). `gpus` may be 1–8; Fig. 1 sweeps it, the main
/// comparison uses 8.
pub fn dgx_a100(gpus: usize) -> RooflineSystem {
    let gpus = gpus.clamp(1, 8) as f64;
    RooflineSystem::new(RooflineConfig {
        name: if gpus as usize == 8 { "DGX A100".to_string() } else { format!("{}x A100", gpus as usize) },
        peak_flops: 312.0e12 * gpus,
        compute_efficiency: 0.45,
        mem_bandwidth: 1.555e12 * gpus,
        mem_capacity: (40.0e9 * gpus) as u64,
        interconnect_bandwidth: 600.0e9 / 2.0 * gpus,
        chips: gpus as usize,
        precision_bytes: 2,
        max_batch: 256,
        pim_attention: false,
        weights_on_chip: false,
        energy_per_flop: 0.3e-12,
        energy_per_offchip_byte: 15.0e-12,
        energy_per_onchip_byte: 1.2e-12,
        energy_per_link_byte: 10.0e-12,
    })
}

/// An 8-chip TPU v4 pod slice (32 GB HBM per chip, 275 TFLOPS bf16 per chip,
/// ICI torus links).
pub fn tpu_v4() -> RooflineSystem {
    let chips = 8.0;
    RooflineSystem::new(RooflineConfig {
        name: "TPUv4".to_string(),
        peak_flops: 275.0e12 * chips,
        compute_efficiency: 0.5,
        mem_bandwidth: 1.2e12 * chips,
        mem_capacity: (32.0e9 * chips) as u64,
        interconnect_bandwidth: 50.0e9 * chips,
        chips: chips as usize,
        precision_bytes: 2,
        max_batch: 256,
        pim_attention: false,
        weights_on_chip: false,
        energy_per_flop: 0.25e-12,
        energy_per_offchip_byte: 14.0e-12,
        energy_per_onchip_byte: 1.0e-12,
        energy_per_link_byte: 8.0e-12,
    })
}

/// The DGX+AttAcc configuration of \[46\]: a DGX A100 whose HBM stacks perform
/// the attention (score and context) operations in memory, with 320 GB of
/// PIM-enabled HBM. Attention reads stop consuming HBM *bandwidth* at the
/// host and cost near-array energy instead.
pub fn attacc() -> RooflineSystem {
    RooflineSystem::new(RooflineConfig {
        name: "AttAcc".to_string(),
        peak_flops: 312.0e12 * 8.0,
        compute_efficiency: 0.45,
        mem_bandwidth: 1.555e12 * 8.0,
        mem_capacity: 320_000_000_000,
        interconnect_bandwidth: 600.0e9 / 2.0 * 8.0,
        chips: 8,
        precision_bytes: 2,
        max_batch: 384,
        pim_attention: true,
        weights_on_chip: false,
        energy_per_flop: 0.3e-12,
        energy_per_offchip_byte: 15.0e-12,
        energy_per_onchip_byte: 1.5e-12,
        energy_per_link_byte: 10.0e-12,
    })
}

/// The Cerebras WSE-2 running a WaferLLM-style inference engine: 40 GB of
/// on-wafer SRAM, enormous aggregate SRAM bandwidth, but a conventional
/// (non-CIM) datapath, so every weight use still moves bytes from SRAM to the
/// compute units, and models beyond 40 GB must stream weights from off-wafer
/// memory.
pub fn cerebras_wse2() -> RooflineSystem {
    RooflineSystem::new(RooflineConfig {
        name: "Cerebras".to_string(),
        peak_flops: 5.0e15,
        compute_efficiency: 0.25,
        mem_bandwidth: 1.2e12, // off-wafer streaming bandwidth (MemoryX-style)
        mem_capacity: 40_000_000_000,
        interconnect_bandwidth: 10.0e12,
        chips: 1,
        precision_bytes: 2,
        max_batch: 128,
        pim_attention: false,
        weights_on_chip: true,
        energy_per_flop: 0.25e-12,
        energy_per_offchip_byte: 15.0e-12,
        energy_per_onchip_byte: 1.0e-12,
        energy_per_link_byte: 2.0e-12,
    })
}

/// A wafer built from a high-density CIM macro (the VLSI'22 / ISSCC'22 points
/// of Table 2) backed by HBM2 at 1.6 TB/s: superior TOPS/W and TOPS/mm², but
/// the small on-wafer capacity forces weights and KV off chip (§6.9,
/// Fig. 21).
pub fn hbm_cim_system(
    name: &str,
    tops_per_watt: f64,
    tops_per_mm2: f64,
    wafer_capacity_bytes: f64,
) -> RooflineSystem {
    // Tile the macro over the same core silicon area as Ouroboros.
    let core_area_mm2 = 13_923.0 * 2.97;
    let peak_ops = tops_per_mm2 * 1e12 * core_area_mm2;
    RooflineSystem::new(RooflineConfig {
        name: name.to_string(),
        peak_flops: peak_ops,
        compute_efficiency: 0.3,
        mem_bandwidth: 1.6e12,
        mem_capacity: wafer_capacity_bytes as u64,
        interconnect_bandwidth: 10.0e12,
        chips: 1,
        precision_bytes: 1,
        max_batch: 128,
        pim_attention: false,
        weights_on_chip: false,
        energy_per_flop: 1.0 / (tops_per_watt * 1e12),
        energy_per_offchip_byte: 15.0e-12,
        energy_per_onchip_byte: 0.8e-12,
        energy_per_link_byte: 2.0e-12,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ouro_model::zoo;
    use ouro_workload::{LengthConfig, TraceGenerator};

    #[test]
    fn baseline_names_are_stable() {
        assert_eq!(dgx_a100(8).config.name, "DGX A100");
        assert_eq!(dgx_a100(2).config.name, "2x A100");
        assert_eq!(tpu_v4().config.name, "TPUv4");
        assert_eq!(attacc().config.name, "AttAcc");
        assert_eq!(cerebras_wse2().config.name, "Cerebras");
    }

    #[test]
    fn attacc_has_pim_attention_and_big_memory() {
        let a = attacc();
        assert!(a.config.pim_attention);
        assert_eq!(a.config.mem_capacity, 320_000_000_000);
    }

    #[test]
    fn cerebras_keeps_weights_on_chip() {
        assert!(cerebras_wse2().config.weights_on_chip);
        assert!(!dgx_a100(8).config.weights_on_chip);
    }

    #[test]
    fn all_baselines_produce_finite_reports() {
        let trace = TraceGenerator::new(0).generate(&LengthConfig::fixed(256, 256), 16);
        let model = zoo::baichuan_13b();
        for sys in [
            dgx_a100(8),
            tpu_v4(),
            attacc(),
            cerebras_wse2(),
            hbm_cim_system("ISSCC'22", 44.41, 30.55, 11.32e9),
        ] {
            let r = sys.evaluate(&model, &trace, "t");
            assert!(r.throughput_tokens_per_s.is_finite() && r.throughput_tokens_per_s > 0.0, "{}", r.system);
            assert!(r.energy_per_token_j().is_finite() && r.energy_per_token_j() > 0.0, "{}", r.system);
        }
    }

    #[test]
    fn gpu_count_clamped_to_dgx_size() {
        assert_eq!(dgx_a100(0).config.chips, 1);
        assert_eq!(dgx_a100(100).config.chips, 8);
    }
}
