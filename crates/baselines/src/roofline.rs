//! Roofline + memory-hierarchy-energy model used by every baseline system.
//!
//! For the workloads of the paper the two interesting regimes are:
//!
//! * **Prefill** — compute-bound batched GEMMs; time is FLOPs over the
//!   system's sustained compute rate.
//! * **Decode** — memory-bound GEMVs; each decode step must stream the whole
//!   model's weights (and the growing KV cache) through the memory system,
//!   amortised over the resident batch.
//!
//! The energy model charges every byte by the tier it comes from (off-chip
//! HBM/DRAM, on-chip SRAM, inter-chip links) and every FLOP by a per-op
//! compute energy — this is exactly the decomposition shown in the stacked
//! bars of Fig. 1, Fig. 14 and Fig. 20.

use crate::report::{EnergyBreakdown, SystemReport};
use ouro_model::ModelConfig;
use ouro_workload::Trace;

/// Hardware parameters of a roofline-modelled system.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineConfig {
    /// Display name.
    pub name: String,
    /// Sustained compute throughput in FLOP/s (all chips combined).
    pub peak_flops: f64,
    /// Fraction of peak compute actually sustained on large GEMMs.
    pub compute_efficiency: f64,
    /// Aggregate first-tier (HBM/DRAM) bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// First-tier memory capacity in bytes.
    pub mem_capacity: u64,
    /// Aggregate inter-chip interconnect bandwidth in bytes/s.
    pub interconnect_bandwidth: f64,
    /// Number of chips model weights are sharded across (tensor parallel).
    pub chips: usize,
    /// Deployment precision bytes per weight/activation element.
    pub precision_bytes: u64,
    /// Largest batch of concurrent sequences the serving stack will form.
    pub max_batch: usize,
    /// Whether attention (KV-cache reads) is served by in-memory compute
    /// rather than streaming KV through the compute chips (AttAcc).
    pub pim_attention: bool,
    /// Whether weights live in on-chip SRAM (wafer-scale engines) rather
    /// than off-chip HBM/DRAM.
    pub weights_on_chip: bool,
    /// Energy per FLOP in joules.
    pub energy_per_flop: f64,
    /// Energy per byte of off-chip (HBM/DRAM) traffic in joules.
    pub energy_per_offchip_byte: f64,
    /// Energy per byte of on-chip SRAM traffic in joules.
    pub energy_per_onchip_byte: f64,
    /// Energy per byte of inter-chip communication in joules.
    pub energy_per_link_byte: f64,
}

/// A baseline system evaluated with the roofline model.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineSystem {
    /// Hardware parameters.
    pub config: RooflineConfig,
}

impl RooflineSystem {
    /// Wraps a configuration.
    pub fn new(config: RooflineConfig) -> RooflineSystem {
        RooflineSystem { config }
    }

    /// Model weight bytes at the system's deployment precision.
    fn weight_bytes(&self, model: &ModelConfig) -> u64 {
        model.total_params() * self.config.precision_bytes
    }

    /// KV bytes per token at the system's deployment precision.
    fn kv_bytes_per_token(&self, model: &ModelConfig) -> u64 {
        model.kv_bytes_per_token() / model.precision.bytes() * self.config.precision_bytes
    }

    /// Resident decode batch: limited by KV capacity left after weights and
    /// by the serving stack's configured maximum.
    pub fn decode_batch(&self, model: &ModelConfig, avg_seq_tokens: usize) -> usize {
        let weights = self.weight_bytes(model);
        let kv_per_seq = self.kv_bytes_per_token(model) * avg_seq_tokens.max(1) as u64;
        let free = self.config.mem_capacity.saturating_sub(weights);
        let by_capacity = free.checked_div(kv_per_seq).map_or(self.config.max_batch, |b| b as usize);
        by_capacity.clamp(1, self.config.max_batch)
    }

    /// Whether the model's weights fit in the first memory tier.
    pub fn fits(&self, model: &ModelConfig) -> bool {
        self.weight_bytes(model) <= self.config.mem_capacity
    }

    /// Evaluates the system on a trace of requests.
    pub fn evaluate(&self, model: &ModelConfig, trace: &Trace, workload: &str) -> SystemReport {
        let c = &self.config;
        let sustained_flops = c.peak_flops * c.compute_efficiency;
        let weight_bytes = self.weight_bytes(model) as f64;
        let kv_per_token = self.kv_bytes_per_token(model) as f64;

        let total_prompt = trace.total_prompt_tokens() as f64;
        let total_decode = trace.total_decode_tokens() as f64;
        let n_req = trace.len().max(1) as f64;
        let avg_prompt = total_prompt / n_req;
        let avg_decode = total_decode / n_req;
        let avg_total = (avg_prompt + avg_decode).max(1.0);
        let avg_ctx = avg_prompt + avg_decode / 2.0;

        // ---- prefill: compute bound -------------------------------------
        let prefill_flops: f64 =
            trace.requests.iter().map(|r| model.prefill_flops(r.prompt_len) as f64).sum();
        // Weights are streamed once per prefill pass when they do not stay
        // resident on chip (the fits==false streaming penalty).
        let prefill_weight_stream = if self.fits(model) { 0.0 } else { weight_bytes * n_req };
        let prefill_time = prefill_flops / sustained_flops + prefill_weight_stream / c.mem_bandwidth;

        // ---- decode: memory bound ---------------------------------------
        let batch = self.decode_batch(model, avg_total as usize) as f64;
        let decode_flops: f64 =
            trace.requests.iter().map(|r| model.decode_flops(r.prompt_len, r.decode_len) as f64).sum();
        let kv_read_per_step = kv_per_token * avg_ctx * batch;
        let weight_read_per_step = if c.pim_attention || !c.weights_on_chip {
            weight_bytes
        } else {
            // Wafer-scale SRAM systems still read weights from SRAM into the
            // compute units every step, but that traffic is on-chip and does
            // not consume HBM bandwidth; it is charged below in energy.
            0.0
        };
        let attention_read_per_step = if c.pim_attention { 0.0 } else { kv_read_per_step };
        let decode_steps = total_decode / batch;
        let step_mem_time = (weight_read_per_step + attention_read_per_step) / c.mem_bandwidth;
        let step_flops = decode_flops / total_decode.max(1.0) * batch;
        let step_compute_time = step_flops / sustained_flops;
        // Tensor-parallel all-reduce of the hidden state per layer per step.
        let allreduce_bytes = if c.chips > 1 {
            2.0 * model.hidden_dim as f64
                * c.precision_bytes as f64
                * model.blocks as f64
                * batch
                * (c.chips as f64 - 1.0)
                / c.chips as f64
        } else {
            0.0
        };
        let step_comm_time = allreduce_bytes / c.interconnect_bandwidth;
        let step_time = step_mem_time.max(step_compute_time) + step_comm_time;
        let decode_time = decode_steps * step_time;

        let total_time = prefill_time + decode_time;
        let output_tokens = trace.total_decode_tokens();
        let throughput = if total_time > 0.0 { output_tokens as f64 / total_time } else { 0.0 };

        // ---- energy ------------------------------------------------------
        let total_flops = prefill_flops + decode_flops;
        let compute_j = total_flops * c.energy_per_flop;
        // Off-chip traffic: weights per decode step (if off chip), KV reads,
        // plus weight streaming during prefill for systems that do not fit.
        let off_chip_bytes = if c.weights_on_chip {
            if self.fits(model) {
                0.0
            } else {
                weight_bytes * (n_req + decode_steps)
            }
        } else {
            weight_read_per_step * decode_steps
                + prefill_weight_stream
                + if c.pim_attention { 0.0 } else { kv_read_per_step * decode_steps }
        };
        // PIM attention still reads KV, but inside the memory at ~DRAM-array
        // energy (folded into on-chip here).
        let pim_kv_bytes = if c.pim_attention { kv_read_per_step * decode_steps } else { 0.0 };
        // On-chip traffic: activations through SRAM for every FLOP's operands
        // (roughly bytes ≈ flops / arithmetic-intensity), plus on-chip weight
        // reads for wafer-scale SRAM systems, plus PIM KV reads.
        let act_bytes = total_flops / 20.0;
        let on_chip_weight_bytes = if c.weights_on_chip { weight_bytes * decode_steps } else { 0.0 };
        let on_chip_bytes = act_bytes + on_chip_weight_bytes + pim_kv_bytes;
        let comm_bytes = allreduce_bytes * decode_steps
            + if c.chips > 1 {
                total_prompt * model.hidden_dim as f64 * c.precision_bytes as f64
            } else {
                0.0
            };

        let per_token = 1.0 / output_tokens.max(1) as f64;
        let energy = EnergyBreakdown {
            compute_j: compute_j * per_token,
            on_chip_j: on_chip_bytes * c.energy_per_onchip_byte * per_token,
            off_chip_j: off_chip_bytes * c.energy_per_offchip_byte * per_token,
            communication_j: comm_bytes * c.energy_per_link_byte * per_token,
        };

        SystemReport {
            system: c.name.clone(),
            model: model.name.clone(),
            workload: workload.to_string(),
            throughput_tokens_per_s: throughput,
            energy_per_token: energy,
            total_time_s: total_time,
            output_tokens,
            fits_in_memory: self.fits(model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use ouro_model::zoo;
    use ouro_workload::{LengthConfig, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(1).generate(&LengthConfig::fixed(128, 256), 64)
    }

    #[test]
    fn dgx_reports_positive_throughput_and_energy() {
        let r = systems::dgx_a100(8).evaluate(&zoo::llama_13b(), &trace(), "test");
        assert!(r.throughput_tokens_per_s > 0.0);
        assert!(r.energy_per_token_j() > 0.0);
        assert!(r.fits_in_memory);
        assert_eq!(r.output_tokens, 64 * 256);
    }

    #[test]
    fn data_movement_dominates_compute_on_gpus() {
        // The premise of the paper (Fig. 1): data movement, not compute,
        // dominates LLM inference energy on GPU systems, most visibly on
        // decode-heavy workloads.
        let decode_heavy = TraceGenerator::new(9).generate(&LengthConfig::fixed(128, 2048), 32);
        let r = systems::dgx_a100(8).evaluate(&zoo::llama_13b(), &decode_heavy, "test");
        assert!(r.energy_per_token.off_chip_j > r.energy_per_token.compute_j);
        let movement =
            r.energy_per_token.off_chip_j + r.energy_per_token.on_chip_j + r.energy_per_token.communication_j;
        assert!(movement > r.energy_per_token.compute_j);
    }

    #[test]
    fn bigger_models_are_slower_and_hungrier() {
        let sys = systems::dgx_a100(8);
        let small = sys.evaluate(&zoo::llama_13b(), &trace(), "t");
        let large = sys.evaluate(&zoo::llama_65b(), &trace(), "t");
        assert!(large.throughput_tokens_per_s < small.throughput_tokens_per_s);
        assert!(large.energy_per_token_j() > small.energy_per_token_j());
    }

    #[test]
    fn more_gpus_increase_throughput() {
        let one = systems::dgx_a100(1).evaluate(&zoo::llama_13b(), &trace(), "t");
        let eight = systems::dgx_a100(8).evaluate(&zoo::llama_13b(), &trace(), "t");
        assert!(eight.throughput_tokens_per_s > one.throughput_tokens_per_s);
    }

    #[test]
    fn decode_batch_respects_capacity_and_cap() {
        let sys = systems::dgx_a100(8);
        let b = sys.decode_batch(&zoo::llama_13b(), 2176);
        assert!(b >= 1 && b <= sys.config.max_batch);
        // A 65B model leaves less room for KV.
        let b65 = sys.decode_batch(&zoo::llama_65b(), 2176);
        assert!(b65 <= b);
    }

    #[test]
    fn attacc_beats_plain_dgx_on_decode_heavy_workloads() {
        let decode_heavy = TraceGenerator::new(2).generate(&LengthConfig::fixed(128, 2048), 32);
        let model = zoo::llama_13b();
        let dgx = systems::dgx_a100(8).evaluate(&model, &decode_heavy, "t");
        let attacc = systems::attacc().evaluate(&model, &decode_heavy, "t");
        assert!(attacc.throughput_tokens_per_s > dgx.throughput_tokens_per_s);
        assert!(attacc.energy_per_token_j() < dgx.energy_per_token_j());
    }

    #[test]
    fn cerebras_fits_13b_but_not_65b() {
        let wse = systems::cerebras_wse2();
        assert!(wse.fits(&zoo::llama_13b()));
        assert!(!wse.fits(&zoo::llama_65b()));
        let r13 = wse.evaluate(&zoo::llama_13b(), &trace(), "t");
        let r65 = wse.evaluate(&zoo::llama_65b(), &trace(), "t");
        assert!(r13.fits_in_memory);
        assert!(!r65.fits_in_memory);
        assert!(r13.throughput_tokens_per_s > r65.throughput_tokens_per_s);
    }

    #[test]
    fn hbm_cim_systems_have_offchip_cost() {
        let model = zoo::llama_13b();
        let vlsi = systems::hbm_cim_system("VLSI'22", 49.67, 26.0, 2.63e9);
        let r = vlsi.evaluate(&model, &trace(), "t");
        assert!(!r.fits_in_memory);
        assert!(r.energy_per_token.off_chip_j > 0.0);
    }
}
