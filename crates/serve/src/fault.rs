//! Runtime fault injection for the online serving stack (§4.3.3, Fig. 9).
//!
//! The paper's resilience claim is that a core failure is healed *locally*:
//! the cores from the failure to the nearest KV core form a replacement
//! chain, weights shift one hop along it, the terminal KV core's cache is
//! evicted, and the affected sequences are recomputed — all in
//! sub-millisecond time. The offline story ends there; this module measures
//! what that costs a deployment under live traffic.
//!
//! A [`FaultInjector`] expands a seeded MTBF process
//! ([`ouro_workload::FaultProcess`]) into per-wafer fault events and, when
//! the serving event loop reaches one, drives the full healing pipeline:
//!
//! 1. pick a victim core (weight or KV) on the struck wafer from the
//!    event's random draw,
//! 2. run [`ouro_mapping::remap_with_chain`] over the wafer's live
//!    assignment to build the replacement chain,
//! 3. fail the absorbed KV core in the engine's cache manager
//!    ([`Engine::apply_fault`]): resident sequences that lost KV are
//!    evicted and re-enqueued for recompute at real prefill cost, the
//!    remap stall is charged to every in-flight request, and the mean hop
//!    distance of the pipeline grows with the displaced tiles,
//! 4. account everything in a [`FaultReport`] — availability, chains,
//!    evicted KV bytes, recomputed sequences.
//!
//! The engine's KV manager is the *per-head-scaled* model
//! ([`ouro_sim::OuroborosSystem::serve_kv_config`]): one scaled manager
//! core stands for `heads` physical cores, so a physical KV-core loss is
//! quantised to one scaled core — a deliberately pessimistic rounding that
//! keeps capacity loss visible at serving scale.

use crate::engine::Engine;
use crate::metrics::ServingReport;
use ouro_hw::{CoreId, WaferGeometry};
use ouro_mapping::{remap_with_chain, Assignment, RemapError};
use ouro_sim::OuroborosSystem;
use ouro_trace::EventKind;
use ouro_workload::{FaultEvent, FaultProcess};
use std::collections::VecDeque;

/// Tuning of the runtime fault process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-wafer mean time between failures, in simulated seconds.
    pub mtbf_s: f64,
    /// Wafer pause per replacement-chain remap, charged to every in-flight
    /// request on the struck wafer (the paper's repair is sub-millisecond).
    pub remap_stall_s: f64,
    /// Seed of the fault realisation (independent of the arrival seed).
    pub seed: u64,
}

impl FaultConfig {
    /// A configuration with the paper's sub-millisecond remap stall.
    pub fn new(mtbf_s: f64, seed: u64) -> FaultConfig {
        FaultConfig { mtbf_s, remap_stall_s: 0.5e-3, seed }
    }
}

/// Per-wafer remap state: the live weight assignment and the KV cores still
/// available to absorb replacement chains.
#[derive(Debug, Clone)]
struct WaferFaultState {
    assignment: Assignment,
    kv_cores: Vec<CoreId>,
    /// Cores failed on this wafer so far.
    failed: Vec<CoreId>,
    /// Instant the wafer stopped being serviceable (`NaN` while alive).
    death_s: f64,
    /// Stall time charged to this wafer.
    stall_s: f64,
}

impl WaferFaultState {
    fn is_dead(&self) -> bool {
        self.death_s.is_finite()
    }
}

/// One wafer's remap state in a run checkpoint (core ids flattened to
/// integers so the serialized form stays dependency-free).
#[derive(Debug, Clone, PartialEq)]
pub struct WaferFaultSnapshot {
    /// The live weight assignment, as flat core ids.
    pub assignment: Vec<u64>,
    /// KV cores still available to absorb replacement chains.
    pub kv_cores: Vec<u64>,
    /// Cores failed on this wafer so far.
    pub failed: Vec<u64>,
    /// Instant the wafer stopped being serviceable (`NaN` while alive).
    pub death_s: f64,
    /// Stall time charged to this wafer.
    pub stall_s: f64,
}

/// The complete mutable state of a [`FaultInjector`], captured by
/// [`FaultInjector::snapshot`] and reapplied by [`FaultInjector::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjectorSnapshot {
    /// Pending fault events as `(wafer, at_s, draw)`, in schedule order.
    pub events: Vec<(usize, f64, u64)>,
    /// Per-wafer remap state.
    pub wafers: Vec<WaferFaultSnapshot>,
    /// The eight lifetime counters, in declaration order: faults injected,
    /// chains built, tiles moved, chain cores, KV cores lost, sequences
    /// recomputed, KV tokens evicted, unrepaired faults.
    pub counters: [u64; 8],
}

/// Aggregate outcome of one fault-injected serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// The fault process the run was driven by.
    pub config: FaultConfig,
    /// Wafers exposed to the process.
    pub wafers: usize,
    /// Faults injected before the run ended.
    pub faults_injected: u64,
    /// Replacement chains built (successful remaps).
    pub chains_built: u64,
    /// Weight tiles shifted along chains.
    pub tiles_moved: u64,
    /// Sum of chain lengths, for the mean below.
    pub chain_cores: u64,
    /// Physical KV cores absorbed by chains (mapping-level).
    pub kv_cores_lost: u64,
    /// Sequences evicted because a fault took their KV, re-enqueued for
    /// recompute.
    pub sequences_recomputed: u64,
    /// Token slots of KV lost to faulted cores.
    pub kv_tokens_evicted: u64,
    /// The same loss in bytes, at the model's full per-token KV footprint.
    pub kv_bytes_evicted: u64,
    /// Faults that could not be healed (no KV core left to absorb the
    /// chain); the wafer is dead from that instant.
    pub unrepaired_faults: u64,
    /// Wafers unserviceable at the end of the run.
    pub dead_wafers: usize,
    /// Total remap stall across wafers (healing pauses only; outage time
    /// of dead wafers is in `dead_time_s`).
    pub total_stall_s: f64,
    /// Wafer-time lost to dead wafers: from each death to the end of the
    /// run.
    pub dead_time_s: f64,
    /// Wall-clock span the availability is measured over.
    pub duration_s: f64,
    /// Served wafer-time over offered wafer-time: `1 −` (stall + dead
    /// time) / (wafers × duration). Exactly 1.0 only with zero faults.
    pub availability: f64,
}

impl FaultReport {
    /// Mean replacement-chain length over successful remaps (0 with none).
    pub fn mean_chain_len(&self) -> f64 {
        if self.chains_built == 0 {
            0.0
        } else {
            self.chain_cores as f64 / self.chains_built as f64
        }
    }
}

/// What the serving event loop should do about the pending fault, from
/// [`FaultInjector::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoll {
    /// No fault is due before the next arrival or engine event.
    Wait,
    /// Inject the next fault into this wafer's engine now.
    Fire(usize),
    /// Faults remain but all serving work has drained; the loop should
    /// stop.
    Drained,
}

/// Expands a fault process over a cluster's wafers and drives replacement
/// chains + KV eviction when the serving event loop hands it an engine.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    geometry: WaferGeometry,
    events: VecDeque<FaultEvent>,
    wafers: Vec<WaferFaultState>,
    kv_bytes_per_token: u64,
    faults_injected: u64,
    chains_built: u64,
    tiles_moved: u64,
    chain_cores: u64,
    kv_cores_lost: u64,
    sequences_recomputed: u64,
    kv_tokens_evicted: u64,
    unrepaired_faults: u64,
}

impl FaultInjector {
    /// Builds the injector for `wafers` replicas of `system`'s deployment:
    /// every wafer starts from the system's block mapping, with the
    /// functional cores left over from weight mapping as its KV cores, and
    /// draws faults from its own stream over `[0, fault_horizon_s)`.
    ///
    /// # Panics
    ///
    /// Panics when `fault_horizon_s` is not finite and positive, or when
    /// `wafers` is zero.
    pub fn new(
        system: &OuroborosSystem,
        wafers: usize,
        config: FaultConfig,
        fault_horizon_s: f64,
    ) -> FaultInjector {
        assert!(wafers > 0, "fault injection needs at least one wafer");
        let events: VecDeque<FaultEvent> =
            FaultProcess::new(config.mtbf_s).schedule(wafers, fault_horizon_s, config.seed).into();
        let assignment = system.mapping().assignment.clone();
        let kv_cores: Vec<CoreId> = system
            .defects()
            .functional_cores()
            .filter(|c| !assignment.core.contains(c))
            .take(system.kv_cores_per_block())
            .collect();
        let state =
            WaferFaultState { assignment, kv_cores, failed: Vec::new(), death_s: f64::NAN, stall_s: 0.0 };
        FaultInjector {
            config,
            geometry: system.config().geometry.clone(),
            events,
            wafers: vec![state; wafers],
            kv_bytes_per_token: system.kv_migration_bytes(1),
            faults_injected: 0,
            chains_built: 0,
            tiles_moved: 0,
            chain_cores: 0,
            kv_cores_lost: 0,
            sequences_recomputed: 0,
            kv_tokens_evicted: 0,
            unrepaired_faults: 0,
        }
    }

    /// The configured fault process.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of wafers this injector was built for — must match the
    /// cluster it is handed to.
    pub fn wafer_count(&self) -> usize {
        self.wafers.len()
    }

    /// Time and wafer of the next pending fault, if any.
    pub fn next_fault(&self) -> Option<(f64, usize)> {
        self.events.front().map(|e| (e.at_s, e.wafer))
    }

    /// Drops the next pending fault without injecting it (events beyond the
    /// serving horizon).
    pub fn discard_next(&mut self) {
        self.events.pop_front();
    }

    /// Event-loop arbitration shared by the colocated and disaggregated
    /// clusters: faults share the discrete-event timeline with arrivals,
    /// so a pending fault fires only once no earlier arrival or engine
    /// event is due. Events at or beyond the horizon are discarded, and a
    /// cluster with no work left gets [`FaultPoll::Drained`] — an empty
    /// cluster has nothing for a fault to degrade, and injecting it would
    /// stretch the measured duration past the workload.
    pub fn poll(
        &mut self,
        next_arrival_s: Option<f64>,
        next_engine_event_s: Option<f64>,
        horizon_s: f64,
    ) -> FaultPoll {
        loop {
            let Some((t_fault, wafer)) = self.next_fault() else {
                return FaultPoll::Wait;
            };
            if next_arrival_s.is_none() && next_engine_event_s.is_none() {
                return FaultPoll::Drained;
            }
            if t_fault >= horizon_s {
                self.discard_next();
                continue;
            }
            let before_arrival = next_arrival_s.is_none_or(|t| t_fault <= t);
            let before_engines = next_engine_event_s.is_none_or(|t| t_fault <= t);
            return if before_arrival && before_engines { FaultPoll::Fire(wafer) } else { FaultPoll::Wait };
        }
    }

    /// Non-destructive variant of [`FaultInjector::poll`] for pause-point
    /// scheduling ([`crate::scenario::RunState::run_until`]): the instant
    /// the next fault would fire given the same arbitration inputs, or
    /// `None` when the verdict would be [`FaultPoll::Wait`] or
    /// [`FaultPoll::Drained`]. Shares poll's one mutation — events at or
    /// beyond the horizon are discarded — which is idempotent, so peeking
    /// then polling gives the same answer as polling directly.
    pub fn peek_fire_s(
        &mut self,
        next_arrival_s: Option<f64>,
        next_engine_event_s: Option<f64>,
        horizon_s: f64,
    ) -> Option<f64> {
        loop {
            let (t_fault, _) = self.next_fault()?;
            if next_arrival_s.is_none() && next_engine_event_s.is_none() {
                return None; // poll would report Drained
            }
            if t_fault >= horizon_s {
                self.discard_next();
                continue;
            }
            let before_arrival = next_arrival_s.is_none_or(|t| t_fault <= t);
            let before_engines = next_engine_event_s.is_none_or(|t| t_fault <= t);
            return if before_arrival && before_engines { Some(t_fault) } else { None };
        }
    }

    /// The fault window of one serving run: the horizon when it is finite,
    /// otherwise twice the trace's arrival span (bounded below by one
    /// second). Shared by [`FaultComparison::measure`] and `ouro-disagg`'s
    /// shootout so every driver bounds the same schedule the same way.
    pub fn run_window_s(horizon_s: f64, timed: &ouro_workload::TimedTrace) -> f64 {
        if horizon_s.is_finite() {
            horizon_s
        } else {
            (timed.last_arrival_s() * 2.0).max(1.0)
        }
    }

    /// Injects the next pending fault into `engine` (which must be the
    /// wafer named by [`FaultInjector::next_fault`]): picks the victim
    /// core, builds the replacement chain, and applies KV eviction, stall,
    /// and pipeline degradation to the engine.
    ///
    /// # Panics
    ///
    /// Panics when no fault is pending.
    pub fn inject(&mut self, engine: &mut Engine) {
        let event = self.events.pop_front().expect("inject requires a pending fault");
        self.faults_injected += 1;
        let state = &mut self.wafers[event.wafer];
        if state.is_dead() {
            // Dead wafers hold no weights worth healing; the fault only
            // deepens the outage already accounted from `death_s`.
            return;
        }
        // Victim: any core still doing useful work — weight cores (the
        // assignment) plus the remaining KV cores.
        let candidates = state.assignment.core.len() + state.kv_cores.len();
        if candidates == 0 {
            self.unrepaired_faults += 1;
            state.death_s = event.at_s;
            return;
        }
        let pick = (event.draw % candidates as u64) as usize;
        let victim = if pick < state.assignment.core.len() {
            state.assignment.core[pick]
        } else {
            state.kv_cores[pick - state.assignment.core.len()]
        };

        match remap_with_chain(&self.geometry, &state.assignment, &state.kv_cores, victim) {
            Ok(outcome) => {
                state.assignment = outcome.new_assignment;
                state.failed.push(victim);
                self.chains_built += 1;
                self.chain_cores += outcome.chain.len() as u64;
                self.tiles_moved += outcome.moved_tiles as u64;
                crate::stage::Stage::Fault.emit(
                    engine.tracer_mut(),
                    event.at_s,
                    None,
                    EventKind::Remap { chain_len: outcome.chain.len(), moved_tiles: outcome.moved_tiles },
                );
                let Some(absorbed) = outcome.evicted_kv_core else {
                    return; // the victim held neither weights nor KV
                };
                state.kv_cores.retain(|c| *c != absorbed);
                self.kv_cores_lost += 1;
                // Displaced tiles sit one hop further from their pipeline
                // neighbours: a permanent mean-hop penalty proportional to
                // the moved fraction of the block.
                let tiles = state.assignment.core.len().max(1);
                let penalty = outcome.moved_tiles as f64 / tiles as f64;
                match engine.apply_fault(event.at_s, self.config.remap_stall_s, absorbed.0, penalty) {
                    Some(impact) => {
                        state.stall_s += self.config.remap_stall_s;
                        self.sequences_recomputed += impact.evicted_sequences as u64;
                        self.kv_tokens_evicted += impact.evicted_tokens;
                        if !impact.serviceable {
                            state.death_s = event.at_s;
                        }
                    }
                    None => {
                        // The scaled cache already lost every core: the
                        // wafer cannot hold KV any more.
                        state.death_s = event.at_s;
                    }
                }
            }
            Err(RemapError::NoKvCores) => {
                // A weight core failed with no KV core left to absorb the
                // chain: the block mapping cannot be healed locally. Kill
                // the engine's remaining cache so routers (and drops) see
                // the outage immediately; the KV evicted by the outage
                // still counts as recompute work.
                self.unrepaired_faults += 1;
                state.failed.push(victim);
                state.death_s = event.at_s;
                let (seqs, tokens) = engine.decommission(event.at_s);
                self.sequences_recomputed += seqs as u64;
                self.kv_tokens_evicted += tokens;
            }
            Err(e @ RemapError::CoreNotOnWafer(_)) => {
                unreachable!("victims are drawn from live on-wafer cores: {e}");
            }
        }
    }

    /// Captures the injector's complete mutable state for a run
    /// checkpoint: the pending event schedule, every wafer's remap state,
    /// and the lifetime counters. Geometry, per-token KV bytes and the
    /// config are *not* captured — they are pure functions of the system
    /// and scenario, recomputed by [`FaultInjector::restore`].
    pub fn snapshot(&self) -> FaultInjectorSnapshot {
        FaultInjectorSnapshot {
            events: self.events.iter().map(|e| (e.wafer, e.at_s, e.draw)).collect(),
            wafers: self
                .wafers
                .iter()
                .map(|w| WaferFaultSnapshot {
                    assignment: w.assignment.core.iter().map(|c| c.0 as u64).collect(),
                    kv_cores: w.kv_cores.iter().map(|c| c.0 as u64).collect(),
                    failed: w.failed.iter().map(|c| c.0 as u64).collect(),
                    death_s: w.death_s,
                    stall_s: w.stall_s,
                })
                .collect(),
            counters: [
                self.faults_injected,
                self.chains_built,
                self.tiles_moved,
                self.chain_cores,
                self.kv_cores_lost,
                self.sequences_recomputed,
                self.kv_tokens_evicted,
                self.unrepaired_faults,
            ],
        }
    }

    /// Rebuilds an injector from a checkpoint: constructs a fresh injector
    /// over the same system/config/window (restoring the derived geometry
    /// and byte constants), then overwrites the mutable state with the
    /// snapshot's. The resumed injector continues the identical fault
    /// realisation from the checkpoint's pending event.
    pub fn restore(
        system: &OuroborosSystem,
        wafers: usize,
        config: FaultConfig,
        fault_horizon_s: f64,
        snap: &FaultInjectorSnapshot,
    ) -> FaultInjector {
        let mut inj = FaultInjector::new(system, wafers, config, fault_horizon_s);
        inj.events =
            snap.events.iter().map(|&(wafer, at_s, draw)| FaultEvent { wafer, at_s, draw }).collect();
        assert_eq!(snap.wafers.len(), wafers, "snapshot wafer count must match the deployment");
        inj.wafers = snap
            .wafers
            .iter()
            .map(|w| WaferFaultState {
                assignment: Assignment { core: w.assignment.iter().map(|&c| CoreId(c as usize)).collect() },
                kv_cores: w.kv_cores.iter().map(|&c| CoreId(c as usize)).collect(),
                failed: w.failed.iter().map(|&c| CoreId(c as usize)).collect(),
                death_s: w.death_s,
                stall_s: w.stall_s,
            })
            .collect();
        let [fi, cb, tm, cc, kl, sr, te, uf] = snap.counters;
        inj.faults_injected = fi;
        inj.chains_built = cb;
        inj.tiles_moved = tm;
        inj.chain_cores = cc;
        inj.kv_cores_lost = kl;
        inj.sequences_recomputed = sr;
        inj.kv_tokens_evicted = te;
        inj.unrepaired_faults = uf;
        inj
    }

    /// Assembles the fault report after a run spanning `duration_s`.
    pub fn report(&self, duration_s: f64) -> FaultReport {
        let wafers = self.wafers.len();
        let span = duration_s.max(0.0);
        let mut stall_s = 0.0;
        let mut dead_time_s = 0.0;
        let mut dead = 0;
        for w in &self.wafers {
            stall_s += w.stall_s;
            if w.is_dead() {
                dead += 1;
                dead_time_s += (span - w.death_s.min(span)).max(0.0);
            }
        }
        let offered = (wafers as f64 * span).max(f64::MIN_POSITIVE);
        FaultReport {
            config: self.config,
            wafers,
            faults_injected: self.faults_injected,
            chains_built: self.chains_built,
            tiles_moved: self.tiles_moved,
            chain_cores: self.chain_cores,
            kv_cores_lost: self.kv_cores_lost,
            sequences_recomputed: self.sequences_recomputed,
            kv_tokens_evicted: self.kv_tokens_evicted,
            kv_bytes_evicted: self.kv_tokens_evicted * self.kv_bytes_per_token,
            unrepaired_faults: self.unrepaired_faults,
            dead_wafers: dead,
            total_stall_s: stall_s,
            dead_time_s,
            duration_s: span,
            availability: (1.0 - (stall_s + dead_time_s) / offered).clamp(0.0, 1.0),
        }
    }
}

/// One clean-vs-faulty comparison on identical traffic: the same trace,
/// arrival timestamps, cluster and seed, with and without the fault
/// process — the availability / goodput-under-faults lens DistServe-style
/// serving papers report.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultComparison {
    /// The run without faults.
    pub clean: ServingReport,
    /// The run with the fault process active.
    pub faulty: ServingReport,
    /// Fault accounting of the faulty run.
    pub fault: FaultReport,
}

impl FaultComparison {
    /// Runs the same timed trace twice on fresh `wafers`-wide colocated
    /// deployments — once clean, once under `fault` — and pairs the
    /// reports. The fault window follows the serving horizon, or twice the
    /// arrival span when the horizon is open-ended.
    ///
    /// # Errors
    ///
    /// Propagates [`ouro_kvcache::KvError::NoKvCores`] from engine
    /// construction.
    #[allow(clippy::too_many_arguments)]
    pub fn measure(
        system: &OuroborosSystem,
        wafers: usize,
        router: Box<dyn crate::policy::Router>,
        engine: crate::engine::EngineConfig,
        timed: &ouro_workload::TimedTrace,
        slo: &crate::metrics::SloConfig,
        horizon_s: f64,
        fault: FaultConfig,
    ) -> Result<FaultComparison, ouro_kvcache::KvError> {
        let base = crate::scenario::Scenario::colocated(wafers)
            .router(router)
            .engine(engine)
            .slo(*slo)
            .horizon(horizon_s)
            .workload(timed.clone());
        let clean = base.clone().run(system)?.serving;
        let faulty = base.faults(fault).run(system)?;
        let report = faulty.faults.clone().expect("a fault plan was armed");
        Ok(FaultComparison { clean, faulty: faulty.serving, fault: report })
    }

    /// p99 TTFT inflation caused by the faults (1.0 = unchanged).
    pub fn ttft_p99_inflation(&self) -> f64 {
        ratio(self.faulty.ttft.p99_s, self.clean.ttft.p99_s)
    }

    /// p99 TPOT inflation caused by the faults (1.0 = unchanged).
    pub fn tpot_p99_inflation(&self) -> f64 {
        ratio(self.faulty.tpot.p99_s, self.clean.tpot.p99_s)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        if num <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SloConfig;
    use crate::policy::routers;
    use crate::scenario::Scenario;
    use ouro_model::zoo;
    use ouro_sim::{OuroborosConfig, OuroborosSystem};
    use ouro_workload::{ArrivalConfig, LengthConfig, TimedTrace, TraceGenerator};

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    fn slo() -> SloConfig {
        SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
    }

    fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
        let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
        ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
    }

    #[test]
    fn injector_state_starts_from_the_system_mapping() {
        let sys = tiny_system();
        let inj = FaultInjector::new(&sys, 2, FaultConfig::new(0.01, 3), 1.0);
        assert!(inj.next_fault().is_some(), "a 10ms MTBF must fire within 1s");
        let r = inj.report(1.0);
        assert_eq!(r.faults_injected, 0);
        assert_eq!(r.availability, 1.0, "nothing injected yet");
    }

    #[test]
    fn faults_reduce_availability_and_force_recompute() {
        let sys = tiny_system();
        let report = Scenario::colocated(2)
            .router(routers::least_kv_load())
            .slo(slo())
            .faults(FaultConfig::new(0.02, 5))
            .workload(timed(60, 400.0, 5))
            .run(&sys)
            .unwrap();
        assert!(report.is_conserved());
        let faults = report.faults.expect("a fault plan was armed");
        assert!(faults.faults_injected > 0);
        assert!(faults.chains_built > 0);
        assert!(faults.availability < 1.0, "stalls must dent availability");
        assert!(faults.total_stall_s > 0.0);
        assert!(faults.duration_s > 0.0);
    }

    #[test]
    fn same_seed_same_fault_report() {
        let sys = tiny_system();
        let scenario = Scenario::colocated(2)
            .router(routers::join_shortest_queue())
            .slo(slo())
            .faults(FaultConfig::new(0.05, 7))
            .workload(timed(50, 300.0, 7));
        let a = scenario.run(&sys).unwrap();
        let b = scenario.run(&sys).unwrap();
        assert!(a.faults.as_ref().unwrap().faults_injected > 0, "the 50ms MTBF must fire");
        assert_eq!(a, b, "fault-injected reports must be identical under a fixed seed");
    }

    #[test]
    fn zero_fault_rate_equals_the_plain_run() {
        // An MTBF far beyond the window injects nothing; the faulty path
        // must then reproduce the clean run's serving metrics exactly.
        let sys = tiny_system();
        let base =
            Scenario::colocated(2).router(routers::round_robin()).slo(slo()).workload(timed(30, 200.0, 9));
        let clean = base.clone().run(&sys).unwrap();
        let faulty = base.faults(FaultConfig::new(1e12, 9)).run(&sys).unwrap();
        assert_eq!(faulty.serving, clean.serving);
        let faults = faulty.faults.unwrap();
        assert_eq!(faults.faults_injected, 0);
        assert_eq!(faults.availability, 1.0);
    }

    #[test]
    fn block_conservation_holds_after_every_remap() {
        let sys = tiny_system();
        let outcome = Scenario::colocated(2)
            .router(routers::least_kv_load())
            .slo(slo())
            .faults(FaultConfig::new(0.01, 11))
            .workload(timed(40, 500.0, 11))
            .run_full(&sys)
            .unwrap();
        assert!(outcome.report.is_conserved());
        assert!(outcome.report.faults.as_ref().unwrap().faults_injected > 0);
        for e in outcome.engines() {
            let audit = e.kv_audit();
            assert!(
                audit.is_conserved(),
                "allocated {} freed {} live {}",
                audit.allocated,
                audit.freed,
                audit.live
            );
            assert_eq!(audit.live, 0, "a drained engine holds no blocks");
        }
    }
}
