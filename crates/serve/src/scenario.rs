//! The `Scenario` builder: one composable run driver for every serving
//! experiment.
//!
//! The paper evaluates one system under many orthogonal conditions —
//! deployment shape, workload mix, runtime faults, KV sharing — and every
//! combination used to need its own bespoke entry point and report type.
//! A [`Scenario`] composes the conditions instead: pick a deployment
//! ([`Scenario::colocated`] or [`Scenario::disaggregated`]), attach a
//! timed workload, optionally swap the routing/placement policies
//! ([`crate::policy`]), optionally arm a fault plan, tune the engine and
//! SLO — then [`Scenario::run`] drives one shared discrete-event loop and
//! returns one [`RunReport`].
//!
//! The loop is the same for both deployment shapes: arrivals, engine
//! iterations, and faults share a single simulated timeline, with events
//! ordered by next-event time (ties toward the lowest global wafer index)
//! so every run is a pure function of its seeds. The shapes differ only in
//! what entry-pool completions mean — a colocated completion retires the
//! request (and releases the next closed-loop user), a prefill-pool
//! completion ships the finished KV to a decode wafer over the optical
//! fabric and the decode side retires it.
//!
//! The per-stage logic of the loop lives in [`crate::stage`]; the driver
//! here owns only event arbitration. A run can also be held open as an
//! explicit [`RunState`] ([`Scenario::start`]), stepped event by event,
//! checkpointed mid-flight ([`Scenario::checkpoint`]) and resumed
//! ([`Scenario::resume`]) with a byte-identical final [`RunReport`].
//!
//! # Example
//!
//! ```
//! use ouro_model::zoo;
//! use ouro_serve::{routers, Scenario, SloConfig};
//! use ouro_sim::{OuroborosConfig, OuroborosSystem};
//! use ouro_workload::{ArrivalConfig, LengthConfig, TraceGenerator};
//!
//! let system = OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap();
//! let trace = TraceGenerator::new(7).generate(&LengthConfig::fixed(64, 32), 32);
//! let timed = ArrivalConfig::Poisson { rate_rps: 100.0 }.assign(&trace, 7);
//! let report = Scenario::colocated(2)
//!     .router(routers::least_kv_load())
//!     .slo(SloConfig { ttft_s: 0.5, tpot_s: 0.05 })
//!     .workload(timed)
//!     .run(&system)
//!     .unwrap();
//! assert_eq!(report.serving.completed, 32);
//! assert!(report.is_conserved());
//! ```

use crate::arena::F64Key;
use crate::engine::{Engine, EngineConfig};
use crate::fault::{FaultConfig, FaultInjector, FaultPoll};
use crate::metrics::{RequestRecord, RunTotals, ServingReport, SloConfig};
use crate::policy::{placements, routers, Placement, Router};
use crate::report::{DeploymentInfo, Migration, MigrationStats, RunReport, SCHEMA_VERSION};
use crate::snapshot::Snapshot;
use crate::stage::{self, StageQueues};
use ouro_kvcache::fasthash::FastMap;
use ouro_kvcache::KvError;
use ouro_noc::InterWaferLink;
use ouro_sim::OuroborosSystem;
use ouro_trace::{
    Analysis, Counters, LoopProfile, TelemetryConfig, TelemetryRecorder, TelemetrySample, Trace, TraceEvent,
    Tracer,
};
use ouro_workload::TimedTrace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// The pool split of a disaggregated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisaggConfig {
    /// Wafers dedicated to prefill.
    pub prefill_wafers: usize,
    /// Wafers dedicated to decode.
    pub decode_wafers: usize,
}

impl DisaggConfig {
    /// A prefill:decode pool split.
    pub fn new(prefill_wafers: usize, decode_wafers: usize) -> DisaggConfig {
        DisaggConfig { prefill_wafers, decode_wafers }
    }

    /// Total wafer count of the deployment.
    pub fn total_wafers(&self) -> usize {
        self.prefill_wafers + self.decode_wafers
    }
}

/// How the wafers of a scenario are organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// Every wafer holds a full replica serving both phases; the router
    /// spreads arrivals over all of them.
    Colocated {
        /// Number of replica wafers.
        wafers: usize,
    },
    /// DistServe-style phase split: prefill wafers run prompts in
    /// prefill-only mode and migrate the finished KV to decode wafers over
    /// the inter-wafer optical fabric.
    Disaggregated(DisaggConfig),
}

/// One composable serving experiment: deployment × workload × policies ×
/// faults × SLO, run through the shared discrete-event loop.
///
/// Build with [`Scenario::colocated`] or [`Scenario::disaggregated`],
/// chain the setters, then call [`Scenario::run`] (or
/// [`Scenario::run_full`] to also inspect post-run engine state). A
/// scenario is reusable: `run` clones its policy objects, so running the
/// same scenario twice yields byte-identical reports.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) deployment: Deployment,
    pub(crate) workload: Option<TimedTrace>,
    pub(crate) router: Box<dyn Router>,
    pub(crate) placement: Box<dyn Placement>,
    pub(crate) engine: EngineConfig,
    pub(crate) slo: SloConfig,
    pub(crate) horizon_s: f64,
    pub(crate) fault: Option<FaultConfig>,
    pub(crate) trace: bool,
    pub(crate) telemetry: Option<TelemetryConfig>,
    pub(crate) profile: bool,
}

impl Scenario {
    /// A colocated deployment of `wafers` full replicas. Defaults:
    /// least-KV-load routing, default engine tuning, an always-met SLO
    /// (goodput equals throughput until [`Scenario::slo`] is set), no
    /// horizon, no faults.
    pub fn colocated(wafers: usize) -> Scenario {
        assert!(wafers > 0, "a colocated deployment needs at least one wafer");
        Scenario::new(Deployment::Colocated { wafers }, routers::least_kv_load())
    }

    /// A disaggregated deployment with `prefill_wafers` prefill and
    /// `decode_wafers` decode wafers. Defaults: join-shortest-queue
    /// routing over the prefill pool, least-KV-load decode placement, and
    /// otherwise as [`Scenario::colocated`].
    pub fn disaggregated(prefill_wafers: usize, decode_wafers: usize) -> Scenario {
        assert!(prefill_wafers > 0, "disaggregation needs at least one prefill wafer");
        assert!(decode_wafers > 0, "disaggregation needs at least one decode wafer");
        Scenario::new(
            Deployment::Disaggregated(DisaggConfig::new(prefill_wafers, decode_wafers)),
            routers::join_shortest_queue(),
        )
    }

    /// A scenario over an explicit [`Deployment`] value.
    pub fn with_deployment(deployment: Deployment) -> Scenario {
        match deployment {
            Deployment::Colocated { wafers } => Scenario::colocated(wafers),
            Deployment::Disaggregated(cfg) => Scenario::disaggregated(cfg.prefill_wafers, cfg.decode_wafers),
        }
    }

    fn new(deployment: Deployment, router: Box<dyn Router>) -> Scenario {
        Scenario {
            deployment,
            workload: None,
            router,
            placement: placements::least_kv_load(),
            engine: EngineConfig::default(),
            slo: SloConfig { ttft_s: f64::INFINITY, tpot_s: f64::INFINITY },
            horizon_s: f64::INFINITY,
            fault: None,
            trace: false,
            telemetry: None,
            profile: false,
        }
    }

    /// Sets the timed workload (trace + arrival process) the run serves.
    pub fn workload(mut self, timed: TimedTrace) -> Scenario {
        self.workload = Some(timed);
        self
    }

    /// Swaps the routing policy over the entry pool (all wafers when
    /// colocated, the prefill pool when disaggregated).
    pub fn router(mut self, router: Box<dyn Router>) -> Scenario {
        self.router = router;
        self
    }

    /// Swaps the decode-placement policy (disaggregated deployments only;
    /// ignored by colocated runs).
    pub fn placement(mut self, placement: Box<dyn Placement>) -> Scenario {
        self.placement = placement;
        self
    }

    /// Sets the per-engine tuning shared by every wafer.
    pub fn engine(mut self, engine: EngineConfig) -> Scenario {
        self.engine = engine;
        self
    }

    /// Toggles shared-prefix KV caching on every engine (a shorthand for
    /// setting [`EngineConfig::prefix_caching`]).
    pub fn prefix_caching(mut self, enabled: bool) -> Scenario {
        self.engine.prefix_caching = enabled;
        self
    }

    /// Sets the latency SLO goodput is measured against.
    pub fn slo(mut self, slo: SloConfig) -> Scenario {
        self.slo = slo;
        self
    }

    /// Bounds the simulated timeline (arrivals at or past the horizon are
    /// never injected; unfinished work is reported queued/in-flight).
    pub fn horizon(mut self, horizon_s: f64) -> Scenario {
        self.horizon_s = horizon_s;
        self
    }

    /// Arms a runtime fault plan: a seeded MTBF process over every wafer
    /// of the deployment, interleaved on the serving timeline and healed
    /// by replacement-chain remaps. The fault window follows the horizon,
    /// or twice the arrival span when the horizon is open-ended
    /// ([`FaultInjector::run_window_s`]).
    pub fn faults(mut self, config: FaultConfig) -> Scenario {
        self.fault = Some(config);
        self
    }

    /// Toggles request-lifecycle tracing: every engine (and the driver)
    /// records typed events into per-wafer ring sinks, merged into the
    /// [`RunOutcome`]'s [`Trace`] after the run. Strictly observational —
    /// a traced run returns a bit-identical [`RunReport`] to an untraced
    /// one. Off by default (and costless when off).
    pub fn trace(mut self, enabled: bool) -> Scenario {
        self.trace = enabled;
        self
    }

    /// Arms sampled telemetry: per-wafer gauges and cluster counters are
    /// recorded every `config.cadence_s` simulated seconds and returned
    /// via [`RunOutcome::telemetry`]. Off by default.
    pub fn telemetry(mut self, config: TelemetryConfig) -> Scenario {
        self.telemetry = Some(config);
        self
    }

    /// Shorthand for [`Scenario::telemetry`] with a plain cadence.
    pub fn telemetry_every(self, cadence_s: f64) -> Scenario {
        self.telemetry(TelemetryConfig::every(cadence_s))
    }

    /// Toggles loop self-profiling: the driver measures the wall-clock
    /// cost of its own work buckets (arrival routing, engine steps, fault
    /// injection, completion handling) into a [`LoopProfile`], returned
    /// via [`RunOutcome::profile`]. The profile observes the *simulator*,
    /// not the simulation: it never feeds back into the report, so
    /// profiled runs stay deterministic. Off by default.
    pub fn profile(mut self, enabled: bool) -> Scenario {
        self.profile = enabled;
        self
    }

    /// The configured deployment.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Runs the scenario against replicas of `system` and returns the
    /// unified report.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] when the deployment leaves no KV
    /// cores.
    ///
    /// # Panics
    ///
    /// Panics when no workload was set.
    pub fn run(&self, system: &OuroborosSystem) -> Result<RunReport, KvError> {
        Ok(self.run_full(system)?.report)
    }

    /// Like [`Scenario::run`], but also hands back the post-run engine
    /// state and migration log for invariant checks (block audits,
    /// per-wafer record counts, migration timing).
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] when the deployment leaves no KV
    /// cores.
    ///
    /// # Panics
    ///
    /// Panics when no workload was set.
    pub fn run_full(&self, system: &OuroborosSystem) -> Result<RunOutcome, KvError> {
        let mut run = self.start(system)?;
        run.run_to_end();
        Ok(run.finish())
    }

    /// Starts the scenario against replicas of `system` without driving
    /// it: the returned [`RunState`] is the run's complete simulator
    /// state, advanced explicitly via [`RunState::step_once`] /
    /// [`RunState::run_until`] / [`RunState::run_to_end`] and closed with
    /// [`RunState::finish`]. `start → run_to_end → finish` is exactly
    /// [`Scenario::run_full`].
    ///
    /// # Errors
    ///
    /// Propagates [`KvError::NoKvCores`] when the deployment leaves no KV
    /// cores.
    ///
    /// # Panics
    ///
    /// Panics when no workload was set.
    pub fn start(&self, system: &OuroborosSystem) -> Result<RunState, KvError> {
        let timed = self.workload.as_ref().expect("Scenario needs a workload: call .workload(timed) first");
        let (prefill_wafers, total) = match self.deployment {
            Deployment::Colocated { wafers } => (0, wafers),
            Deployment::Disaggregated(cfg) => (cfg.prefill_wafers, cfg.total_wafers()),
        };
        let mut engines = (0..total)
            .map(|_| Engine::new(system.stage_times().clone(), system.serve_kv_config(), self.engine))
            .collect::<Result<Vec<Engine>, KvError>>()?;
        if self.trace {
            for (wafer, engine) in engines.iter_mut().enumerate() {
                engine.set_tracer(Tracer::ring(wafer));
            }
        }
        let engine_gen = vec![0; total];
        let mut driver = Driver {
            engines,
            prefill_wafers,
            disagg: matches!(self.deployment, Deployment::Disaggregated(_)),
            router: self.router.clone(),
            placement: self.placement.clone(),
            link: system.stage_times().inter_wafer_link(),
            kv_bytes_per_token: system.kv_migration_bytes(1),
            migrations: Vec::new(),
            tracer: if self.trace { Tracer::ring(0) } else { Tracer::off() },
            telemetry: self.telemetry.map(TelemetryRecorder::new),
            profile: self.profile.then(LoopProfile::default),
            completed: 0,
            faults_fired: 0,
            calendar: BinaryHeap::new(),
            engine_gen,
        };
        for wafer in 0..total {
            driver.refresh_engine(wafer);
        }
        let injector = self.fault.map(|cfg| {
            FaultInjector::new(system, total, cfg, FaultInjector::run_window_s(self.horizon_s, timed))
        });
        let queues = StageQueues::new(timed);
        Ok(RunState { driver, queues, injector, scenario: self.clone(), horizon_s: self.horizon_s })
    }

    /// Captures a mid-run checkpoint of `run`: the stage queues, every
    /// engine's records, pending arena, active set and KV manager, the
    /// policy and think-stream state, the migration log and the fault
    /// injector — together the *complete* simulator state. Resuming the
    /// snapshot via [`Scenario::resume`] and driving to the end produces a
    /// byte-identical [`RunReport`] to the uninterrupted run.
    ///
    /// Tracing, telemetry and the loop profile are deliberately *not*
    /// captured: they are observational sinks that never feed back into
    /// the simulation, and a resumed run restarts them empty.
    pub fn checkpoint(&self, run: &RunState) -> Snapshot {
        crate::snapshot::capture(self, run)
    }

    /// Rebuilds a [`RunState`] from a [`Scenario::checkpoint`] snapshot
    /// against replicas of `system`, continuing the identical simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError`] from KV-manager reconstruction.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot carries an incompatible schema version or
    /// was captured by a differently-configured scenario (a config hash
    /// guards against resuming foreign state).
    pub fn resume(&self, system: &OuroborosSystem, snapshot: &Snapshot) -> Result<RunState, KvError> {
        crate::snapshot::rebuild(self, system, snapshot)
    }

    fn deployment_info(&self) -> DeploymentInfo {
        match self.deployment {
            Deployment::Colocated { wafers } => DeploymentInfo {
                kind: "colocated".to_string(),
                wafers,
                prefill_wafers: 0,
                decode_wafers: 0,
                router: self.router.name(),
                placement: None,
            },
            Deployment::Disaggregated(cfg) => DeploymentInfo {
                kind: "disaggregated".to_string(),
                wafers: cfg.total_wafers(),
                prefill_wafers: cfg.prefill_wafers,
                decode_wafers: cfg.decode_wafers,
                router: self.router.name(),
                placement: Some(self.placement.name()),
            },
        }
    }
}

/// A finished scenario run: the unified report plus the post-run engine
/// state, for tests and examples that assert engine-level invariants.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The unified report of the run.
    pub report: RunReport,
    trace: Option<Trace>,
    telemetry: Vec<TelemetrySample>,
    profile: Option<LoopProfile>,
    engines: Vec<Engine>,
    prefill_wafers: usize,
    disagg: bool,
    migrations: Vec<Migration>,
}

impl RunOutcome {
    /// Every engine in global wafer order (prefill pool first for
    /// disaggregated deployments).
    pub fn engines(&self) -> &[Engine] {
        &self.engines
    }

    /// The prefill-pool engines (empty for colocated deployments).
    pub fn prefill_engines(&self) -> &[Engine] {
        &self.engines[..self.prefill_wafers]
    }

    /// The decode-side engines: the decode pool for disaggregated
    /// deployments, every engine for colocated ones.
    pub fn decode_engines(&self) -> &[Engine] {
        if self.disagg {
            &self.engines[self.prefill_wafers..]
        } else {
            &self.engines
        }
    }

    /// Every KV migration performed, in prefill-completion order (empty
    /// for colocated deployments).
    pub fn migrations(&self) -> &[Migration] {
        &self.migrations
    }

    /// The merged lifecycle trace (`None` unless [`Scenario::trace`] was
    /// armed).
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The sampled telemetry time series in `(time, wafer)` order (empty
    /// unless [`Scenario::telemetry`] was armed).
    pub fn telemetry(&self) -> &[TelemetrySample] {
        &self.telemetry
    }

    /// The loop self-profile (`None` unless [`Scenario::profile`] was
    /// armed).
    pub fn profile(&self) -> Option<&LoopProfile> {
        self.profile.as_ref()
    }

    /// The post-hoc latency attribution and utilization analysis of the
    /// run, reconstructed from the merged trace plus whatever telemetry
    /// was sampled (`None` unless [`Scenario::trace`] was armed).
    /// Strictly observational: reads the finished run's records and
    /// never feeds back into the report.
    pub fn analysis(&self) -> Option<Analysis> {
        self.trace.as_ref().map(|t| Analysis::from_run(t, &self.telemetry))
    }
}

/// The complete mutable state of one in-flight scenario run: the driver
/// (engines, event calendar, policies, migration log), the arrival-stage
/// queues, and the fault injector. Produced by [`Scenario::start`],
/// advanced by [`RunState::step_once`] / [`RunState::run_until`] /
/// [`RunState::run_to_end`], closed by [`RunState::finish`], and captured
/// whole by [`Scenario::checkpoint`].
#[derive(Debug)]
pub struct RunState {
    pub(crate) driver: Driver,
    pub(crate) queues: StageQueues,
    pub(crate) injector: Option<FaultInjector>,
    /// The configuration the run was started from (cloned, so the state
    /// stays self-contained); `finish` and `checkpoint` read it.
    pub(crate) scenario: Scenario,
    pub(crate) horizon_s: f64,
}

impl RunState {
    /// Processes the single earliest pending event — one fault injection,
    /// one engine iteration, or one arrival routing — exactly as the
    /// uninterrupted loop would. Returns `false` once the run is drained
    /// (no arrivals, engine work or faults left below the horizon);
    /// calling it again then is a no-op.
    pub fn step_once(&mut self) -> bool {
        let horizon_s = self.horizon_s;
        let next_arrival = self.queues.arrivals.front().map(|ev| ev.at_s);
        let next_engine = self.driver.next_event_engine(horizon_s);

        // Faults share the timeline with arrivals (the arbitration
        // protocol lives in [`FaultInjector::poll`]); the injector's wafer
        // index space is global, so a fault can strike either side of a
        // disaggregation split.
        if let Some(inj) = self.injector.as_mut() {
            match inj.poll(next_arrival, next_engine.map(|(_, t)| t), horizon_s) {
                FaultPoll::Fire(wafer) => {
                    // audit: allow(wall-clock, "profile-gated self-timing; elapsed wall time feeds LoopProfile only, never simulated state")
                    let t0 = self.driver.profile.is_some().then(Instant::now);
                    inj.inject(&mut self.driver.engines[wafer]);
                    self.driver.refresh_engine(wafer);
                    if let (Some(p), Some(t0)) = (self.driver.profile.as_mut(), t0) {
                        p.faults.add(t0.elapsed());
                    }
                    self.driver.faults_fired += 1;
                    self.driver.telemetry_tick();
                    return true;
                }
                FaultPoll::Drained => return false,
                FaultPoll::Wait => {}
            }
        }

        let timed = self.scenario.workload.as_ref().expect("a started run always has a workload");
        match (next_arrival, next_engine) {
            (None, None) => false,
            (Some(t_arr), engine) => {
                if t_arr >= horizon_s {
                    // Arrivals beyond the horizon are never injected.
                    let Some((i, _)) = engine else { return false };
                    self.driver.step_engine(i, &mut self.queues);
                    return true;
                }
                match engine {
                    // Route the arrival once every busy engine has
                    // simulated past it, so routing sees current state.
                    Some((i, event_s)) if event_s < t_arr => {
                        self.driver.step_engine(i, &mut self.queues);
                    }
                    _ => stage::arrival::route_next(&mut self.driver, timed, &mut self.queues),
                }
                true
            }
            (None, Some((i, _))) => {
                self.driver.step_engine(i, &mut self.queues);
                true
            }
        }
    }

    /// The simulated instant the *next* [`RunState::step_once`] call will
    /// process (fault, engine iteration, or sub-horizon arrival), or
    /// `None` when the run is drained. Mirrors the arbitration in
    /// `step_once`; its only mutations (lazy calendar scrubbing, discard
    /// of past-horizon fault events) are idempotent, so peeking then
    /// stepping equals stepping directly.
    fn next_event_time(&mut self) -> Option<f64> {
        let next_arrival = self.queues.arrivals.front().map(|ev| ev.at_s);
        let next_engine = self.driver.next_event_engine(self.horizon_s).map(|(_, t)| t);
        if let Some(inj) = self.injector.as_mut() {
            if let Some(fire_s) = inj.peek_fire_s(next_arrival, next_engine, self.horizon_s) {
                return Some(fire_s);
            }
        }
        match (next_arrival, next_engine) {
            (None, None) => None,
            (Some(a), None) => (a < self.horizon_s).then_some(a),
            (None, Some(e)) => Some(e),
            (Some(a), Some(e)) => {
                if a >= self.horizon_s {
                    Some(e)
                } else {
                    Some(a.min(e))
                }
            }
        }
    }

    /// Drives the run until the next pending event would be at or past
    /// `t_s` (or the run drains). The state left behind is exactly the
    /// uninterrupted run's state at that event boundary, so
    /// `run_until(t)` → [`Scenario::checkpoint`] → [`Scenario::resume`] →
    /// [`RunState::run_to_end`] reproduces the full run byte-for-byte.
    pub fn run_until(&mut self, t_s: f64) {
        while let Some(next_s) = self.next_event_time() {
            if next_s >= t_s {
                break;
            }
            self.step_once();
        }
    }

    /// Drives the run until it drains (the whole workload is served, or
    /// the horizon cuts it off).
    pub fn run_to_end(&mut self) {
        while self.step_once() {}
    }

    /// Every engine in global wafer order, for mid-run invariant checks.
    pub fn engines(&self) -> &[Engine] {
        &self.driver.engines
    }

    /// Requests retired so far (decode-side completions).
    pub fn completed(&self) -> u64 {
        self.driver.completed
    }

    /// Requests not yet handed to any engine (open arrivals plus gated
    /// closed-loop users).
    pub fn waiting(&self) -> usize {
        self.queues.waiting()
    }

    /// Closes the run: flushes the telemetry tail, assembles the unified
    /// report, and merges the lifecycle trace.
    pub fn finish(self) -> RunOutcome {
        let RunState { mut driver, injector, scenario, horizon_s, queues: _ } = self;
        let timed = scenario.workload.as_ref().expect("a started run always has a workload");
        driver.telemetry_finish(timed, horizon_s);
        let report = driver.report(timed, &scenario.slo, horizon_s, scenario.deployment_info(), injector);
        let trace = scenario.trace.then(|| {
            // Per-wafer engine streams (in global wafer order) plus the
            // driver's own stream (arrivals, migrations); the merge sorts
            // by time with stream order breaking ties.
            let mut streams: Vec<(&[TraceEvent], u64)> =
                driver.engines.iter().map(|e| (e.tracer().events(), e.tracer().dropped())).collect();
            streams.push((driver.tracer.events(), driver.tracer.dropped()));
            Trace::from_streams(&streams)
        });
        RunOutcome {
            report,
            telemetry: driver.telemetry.map(|r| r.samples().to_vec()).unwrap_or_default(),
            profile: driver.profile,
            trace,
            prefill_wafers: driver.prefill_wafers,
            disagg: driver.disagg,
            engines: driver.engines,
            migrations: driver.migrations,
        }
    }
}

/// The shared discrete-event loop both deployment shapes run through.
#[derive(Debug)]
pub(crate) struct Driver {
    /// All engines in global wafer order: for disaggregated deployments
    /// wafers `0..prefill_wafers` are the prefill pool and the rest the
    /// decode pool (the fault injector's wafer index space matches).
    pub(crate) engines: Vec<Engine>,
    pub(crate) prefill_wafers: usize,
    pub(crate) disagg: bool,
    pub(crate) router: Box<dyn Router>,
    pub(crate) placement: Box<dyn Placement>,
    pub(crate) link: InterWaferLink,
    pub(crate) kv_bytes_per_token: u64,
    pub(crate) migrations: Vec<Migration>,
    /// The driver's own event stream: arrivals and migration endpoints,
    /// stamped onto the wafer they concern via `emit_for`.
    pub(crate) tracer: Tracer,
    pub(crate) telemetry: Option<TelemetryRecorder>,
    pub(crate) profile: Option<LoopProfile>,
    /// Requests retired (decode-side completions), for telemetry counters.
    pub(crate) completed: u64,
    /// Runtime faults fired so far, for telemetry counters.
    pub(crate) faults_fired: u64,
    /// The event calendar: one entry per (engine, generation) holding the
    /// engine's next-event time at refresh. Entries whose generation no
    /// longer matches [`Driver::engine_gen`] are stale and discarded
    /// lazily when they surface at the heap top. Ties on time resolve
    /// toward the lowest wafer index, matching the old linear scan.
    /// Never checkpointed: it is a pure cache over the engines, rebuilt by
    /// [`Driver::refresh_engine`] on resume.
    pub(crate) calendar: BinaryHeap<Reverse<(F64Key, usize, u64)>>,
    /// Per-engine generation counters, bumped by [`Driver::refresh_engine`]
    /// after every engine mutation so earlier calendar entries for that
    /// engine can be recognised as stale.
    pub(crate) engine_gen: Vec<u64>,
}

impl Driver {
    /// Size of the entry pool the router selects over.
    pub(crate) fn entry_len(&self) -> usize {
        if self.disagg {
            self.prefill_wafers
        } else {
            self.engines.len()
        }
    }

    /// The engine whose next event is earliest (and below the horizon);
    /// ties resolve toward the lowest global wafer index, so runs are
    /// deterministic. Ordering by next event — not raw clock — matters:
    /// stepping an idle engine commits its clock to its earliest
    /// admissible pending, so it must wait its global turn or an engine at
    /// an earlier simulated time could still announce a migration that
    /// lands sooner, which would then be admitted late (see
    /// [`Engine::next_event_s`]).
    ///
    /// Answered from the event calendar: stale entries (generation
    /// mismatch) are popped as they surface; the first live top is the
    /// global minimum, because every engine mutation goes through
    /// [`Driver::refresh_engine`]. Debug builds re-derive the answer with
    /// the old linear scan and assert the two agree, so every debug test
    /// run doubles as a differential test of the calendar.
    pub(crate) fn next_event_engine(&mut self, horizon_s: f64) -> Option<(usize, f64)> {
        let best = loop {
            match self.calendar.peek() {
                None => break None,
                Some(&Reverse((F64Key(event_s), i, gen))) => {
                    if gen != self.engine_gen[i] {
                        self.calendar.pop();
                        continue;
                    }
                    break if event_s < horizon_s { Some((i, event_s)) } else { None };
                }
            }
        };
        #[cfg(debug_assertions)]
        {
            let mut naive: Option<(usize, f64)> = None;
            for (i, e) in self.engines.iter().enumerate() {
                let event_s = e.next_event_s();
                if !e.has_work() || event_s >= horizon_s {
                    continue;
                }
                if naive.is_none_or(|(_, c)| event_s.total_cmp(&c).is_lt()) {
                    naive = Some((i, event_s));
                }
            }
            debug_assert_eq!(best, naive, "event calendar diverged from the naive engine scan");
        }
        best
    }

    /// Re-indexes engine `i` in the event calendar after a mutation:
    /// bumps its generation (invalidating every earlier calendar entry for
    /// it) and, if it still has work, pushes a fresh entry at its current
    /// next-event time. Must be called after *every* operation that can
    /// change an engine's `next_event_s`/`has_work` answers — the
    /// debug-build assert in [`Driver::next_event_engine`] catches any
    /// missed site.
    pub(crate) fn refresh_engine(&mut self, i: usize) {
        self.engine_gen[i] += 1;
        if self.engines[i].has_work() {
            self.calendar.push(Reverse((F64Key(self.engines[i].next_event_s()), i, self.engine_gen[i])));
        }
    }

    /// Advances one engine by one iteration. Entry-pool completions of a
    /// disaggregated run become KV migrations ([`crate::stage::migrate`]);
    /// all other completions retire the request and feed closed-loop
    /// releases back into the arrival queues.
    pub(crate) fn step_engine(&mut self, i: usize, queues: &mut StageQueues) {
        // audit: allow(wall-clock, "profile-gated self-timing; elapsed wall time feeds LoopProfile only, never simulated state")
        let t0 = self.profile.is_some().then(Instant::now);
        let completions = self.engines[i].step();
        self.refresh_engine(i);
        if let (Some(p), Some(t0)) = (self.profile.as_mut(), t0) {
            p.engine_steps.add(t0.elapsed());
        }
        // audit: allow(wall-clock, "profile-gated self-timing; elapsed wall time feeds LoopProfile only, never simulated state")
        let t1 = (self.profile.is_some() && !completions.is_empty()).then(Instant::now);
        if self.disagg && i < self.prefill_wafers {
            for (rec, t_done) in completions {
                stage::migrate::migrate(self, i, rec, t_done);
            }
        } else {
            for (_, t_done) in completions {
                self.completed += 1;
                stage::arrival::release_gated(queues, t_done);
            }
        }
        if let (Some(p), Some(t1)) = (self.profile.as_mut(), t1) {
            p.completions.add(t1.elapsed());
        }
        self.telemetry_tick();
    }

    /// Records every telemetry cadence point now owed: simulated time is
    /// the frontier of the engine clocks, and a large jump emits all the
    /// intermediate samples rather than skipping them. A no-op without a
    /// recorder.
    pub(crate) fn telemetry_tick(&mut self) {
        let Some(rec) = self.telemetry.as_mut() else { return };
        let now = self.engines.iter().map(Engine::clock_s).fold(0.0, f64::max);
        while rec.due(now) {
            let t_s = rec.sample_time();
            let counters = Counters {
                completions: self.completed,
                migrations: self.migrations.len() as u64,
                faults: self.faults_fired,
                steps: self.engines.iter().map(|e| e.stats().steps).sum(),
            };
            for (wafer, engine) in self.engines.iter().enumerate() {
                let mut gauges = engine.kv_gauges();
                gauges.link_bytes_in_flight =
                    engine.pending_imported_tokens() as u64 * self.kv_bytes_per_token;
                rec.record(TelemetrySample { t_s, wafer, gauges, counters });
            }
            rec.advance();
        }
    }

    /// Flushes the telemetry tail after the loop drains: any cadence
    /// points still owed at the run's end instant, then — when that
    /// instant sits strictly inside the next cadence window — one final
    /// off-grid sample per wafer stamped at the end instant, so the last
    /// partial window is represented instead of silently dropped. The
    /// end instant is the same one the report uses (engine-clock
    /// frontier, at least the last arrival, capped by the horizon).
    fn telemetry_finish(&mut self, timed: &TimedTrace, horizon_s: f64) {
        self.telemetry_tick();
        let end_s =
            self.engines.iter().map(Engine::clock_s).fold(timed.last_arrival_s(), f64::max).min(horizon_s);
        let Some(rec) = self.telemetry.as_mut() else { return };
        if !rec.tail_due(end_s) {
            return;
        }
        let counters = Counters {
            completions: self.completed,
            migrations: self.migrations.len() as u64,
            faults: self.faults_fired,
            steps: self.engines.iter().map(|e| e.stats().steps).sum(),
        };
        for (wafer, engine) in self.engines.iter().enumerate() {
            let mut gauges = engine.kv_gauges();
            gauges.link_bytes_in_flight = engine.pending_imported_tokens() as u64 * self.kv_bytes_per_token;
            rec.record(TelemetrySample { t_s: end_s, wafer, gauges, counters });
        }
    }

    /// Assembles the unified report. Disaggregated per-request records are
    /// merged across pools (arrival and prefill admission from the prefill
    /// side, first-token and completion from the decode side), and KV
    /// migration accounting is reconciled against both pools' managers.
    fn report(
        &self,
        timed: &TimedTrace,
        slo: &SloConfig,
        horizon_s: f64,
        deployment: DeploymentInfo,
        injector: Option<FaultInjector>,
    ) -> RunReport {
        let records = if self.disagg {
            let mut merged: Vec<RequestRecord> = self.engines[..self.prefill_wafers]
                .iter()
                .flat_map(|e| e.records().iter().copied())
                .collect();
            let decode_by_id: FastMap<usize, &RequestRecord> = self.engines[self.prefill_wafers..]
                .iter()
                .flat_map(|e| e.records().iter())
                .map(|r| (r.id, r))
                .collect();
            for r in &mut merged {
                match decode_by_id.get(&r.id) {
                    Some(d) => {
                        // A completed prefill is not a completed request:
                        // the decode side owns first-token and completion.
                        r.wafer = d.wafer;
                        r.first_token_s = d.first_token_s;
                        r.completed_s = d.completed_s;
                        r.evictions += d.evictions;
                    }
                    None => {
                        r.completed_s = f64::NAN;
                    }
                }
            }
            merged
        } else {
            self.engines.iter().flat_map(|e| e.records().iter().copied()).collect()
        };
        let mut records = records;
        records.sort_by_key(|r| r.id);

        let queued: usize = self.engines.iter().map(Engine::queue_len).sum();
        let in_flight: usize = self.engines.iter().map(Engine::resident).sum();
        let dropped: usize = self.engines.iter().map(|e| e.stats().dropped as usize).sum();
        let evictions: u64 = self.engines.iter().map(|e| e.stats().evictions).sum();
        let prefilled_tokens: u64 = self.engines.iter().map(|e| e.stats().prefilled_tokens).sum();
        let cached_prefix_tokens: u64 = self.engines.iter().map(|e| e.stats().cached_prefix_tokens).sum();
        let end_s =
            self.engines.iter().map(Engine::clock_s).fold(timed.last_arrival_s(), f64::max).min(horizon_s);
        // Degenerate runs (no arrivals, zero horizon) end at `end_s == 0`:
        // guard the span like `metrics.rs` does so per-wafer busy fractions
        // — and with them `utilization` — stay finite in every report.
        let util = |engines: &[Engine]| -> f64 {
            if engines.is_empty() {
                return 0.0;
            }
            let span = end_s.max(1e-12);
            engines.iter().map(|e| e.busy_s().min(end_s) / span).sum::<f64>() / engines.len() as f64
        };
        let (utilization, migration) = if self.disagg {
            let prefill = &self.engines[..self.prefill_wafers];
            let decode = &self.engines[self.prefill_wafers..];
            let prefill_utilization = util(prefill);
            let decode_utilization = util(decode);
            let utilization = (prefill_utilization * prefill.len() as f64
                + decode_utilization * decode.len() as f64)
                / self.engines.len() as f64;

            let exported_tokens: u64 = prefill.iter().map(|e| e.kv_transfers().exported_tokens).sum();
            let imported_tokens: u64 = decode.iter().map(|e| e.kv_transfers().imported_tokens).sum();
            let in_flight_tokens: u64 = decode.iter().map(|e| e.pending_imported_tokens() as u64).sum();
            let dropped_tokens: u64 = decode.iter().map(|e| e.stats().dropped_imported_tokens).sum();
            let deduped_tokens: u64 = self.migrations.iter().map(|m| m.deduped_tokens).sum();
            let migration_times: Vec<f64> = self.migrations.iter().map(|m| m.arrive_s - m.start_s).collect();
            let stats = MigrationStats {
                migrations: self.migrations.len(),
                migrated_tokens: self.migrations.iter().map(|m| m.tokens).sum(),
                exported_kv_bytes: exported_tokens * self.kv_bytes_per_token,
                imported_kv_bytes: imported_tokens * self.kv_bytes_per_token,
                in_flight_kv_bytes: in_flight_tokens * self.kv_bytes_per_token,
                dropped_kv_bytes: dropped_tokens * self.kv_bytes_per_token,
                deduped_kv_bytes: deduped_tokens * self.kv_bytes_per_token,
                mean_migration_s: if migration_times.is_empty() {
                    0.0
                } else {
                    migration_times.iter().sum::<f64>() / migration_times.len() as f64
                },
                max_migration_s: migration_times.iter().fold(0.0, |a: f64, &b| a.max(b)),
                link_energy_j: self.migrations.iter().map(|m| m.energy_j).sum(),
                prefill_utilization,
                decode_utilization,
            };
            (utilization, Some(stats))
        } else {
            (util(&self.engines), None)
        };

        let serving = ServingReport::from_records(
            &records,
            slo,
            timed.config.offered_rps(),
            RunTotals {
                queued_at_horizon: queued,
                in_flight_at_horizon: in_flight,
                dropped,
                evictions,
                prefilled_tokens,
                cached_prefix_tokens,
                duration_s: end_s,
                utilization,
            },
        );
        let faults = injector.map(|inj| inj.report(serving.duration_s));
        RunReport { schema_version: SCHEMA_VERSION, deployment, serving, migration, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{placements, routers};
    use ouro_model::zoo;
    use ouro_sim::OuroborosConfig;
    use ouro_workload::Request;
    use ouro_workload::{ArrivalConfig, LengthConfig, SessionConfig, TraceGenerator};

    fn tiny_system() -> OuroborosSystem {
        OuroborosSystem::new(OuroborosConfig::tiny_for_tests(), &zoo::bert_large()).unwrap()
    }

    fn slo() -> SloConfig {
        SloConfig { ttft_s: 0.5, tpot_s: 0.05 }
    }

    fn timed(n: usize, rate: f64, seed: u64) -> TimedTrace {
        let trace = TraceGenerator::new(seed).generate(&LengthConfig::fixed(64, 32), n);
        ArrivalConfig::Poisson { rate_rps: rate }.assign(&trace, seed)
    }

    // ---- colocated deployments -------------------------------------------

    #[test]
    fn colocated_scenario_completes_a_light_open_loop_workload() {
        let sys = tiny_system();
        let report = Scenario::colocated(2)
            .router(routers::round_robin())
            .slo(slo())
            .workload(timed(40, 50.0, 1))
            .run(&sys)
            .unwrap();
        assert_eq!(report.deployment.kind, "colocated");
        assert_eq!(report.deployment.router, "round-robin");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert!(report.migration.is_none() && report.faults.is_none());
        assert_eq!(report.serving.injected, 40);
        assert_eq!(report.serving.completed, 40);
        assert!(report.is_conserved());
        assert!(report.serving.ttft.count > 0);
        assert!(report.serving.achieved_rps > 0.0);
        assert!(report.serving.utilization > 0.0 && report.serving.utilization <= 1.0);
    }

    #[test]
    fn round_robin_spreads_requests_evenly() {
        let sys = tiny_system();
        let outcome = Scenario::colocated(4)
            .router(routers::round_robin())
            .slo(slo())
            .workload(timed(40, 100.0, 2))
            .run_full(&sys)
            .unwrap();
        assert!(outcome.report.is_conserved());
        for e in outcome.engines() {
            assert_eq!(e.records().len(), 10);
        }
    }

    #[test]
    fn same_seed_same_report_for_every_router() {
        // Regression for deterministic tie-breaking: JoinShortestQueue and
        // LeastKvLoad see frequent exact score ties (idle engines), which
        // must resolve identically run over run. A scenario is reusable:
        // rerunning it clones fresh policy state.
        let sys = tiny_system();
        for router in [
            routers::round_robin(),
            routers::join_shortest_queue(),
            routers::least_kv_load(),
            routers::prefix_affinity(),
        ] {
            let name = router.name();
            let scenario = Scenario::colocated(3).router(router).slo(slo()).workload(timed(90, 500.0, 17));
            assert_eq!(
                scenario.run(&sys).unwrap(),
                scenario.run(&sys).unwrap(),
                "{name} must be deterministic under a fixed seed"
            );
        }
    }

    #[test]
    fn score_ties_break_toward_the_lowest_wafer_index() {
        let sys = tiny_system();
        for router in [routers::join_shortest_queue(), routers::least_kv_load(), routers::prefix_affinity()] {
            let name = router.name();
            // All four engines are idle and identical: a perfect four-way tie.
            let trace = TraceGenerator::new(8).generate(&LengthConfig::fixed(16, 4), 1);
            let t = ArrivalConfig::Poisson { rate_rps: 10.0 }.assign(&trace, 8);
            let outcome =
                Scenario::colocated(4).router(router).slo(slo()).workload(t).run_full(&sys).unwrap();
            assert!(outcome.report.is_conserved());
            assert_eq!(outcome.engines()[0].records().len(), 1, "{name}: a full tie must route to wafer 0");
        }
    }

    #[test]
    fn horizon_truncates_and_conserves() {
        let sys = tiny_system();
        // Absurd overload with a tight horizon: arrivals span ~10ms but the
        // horizon cuts at 5ms, and 50k rps is far beyond one tiny wafer.
        let report = Scenario::colocated(1)
            .router(routers::round_robin())
            .slo(slo())
            .horizon(0.005)
            .workload(timed(500, 50_000.0, 4))
            .run(&sys)
            .unwrap();
        let s = &report.serving;
        assert!(
            report.is_conserved(),
            "injected {} != completed {} + queued {} + in-flight {} + dropped {}",
            s.injected,
            s.completed,
            s.queued_at_horizon,
            s.in_flight_at_horizon,
            s.dropped
        );
        assert!(s.injected < 500, "horizon must cut off late arrivals");
        assert!(s.queued_at_horizon + s.in_flight_at_horizon > 0);
        assert!(s.duration_s <= 0.005 + 1e-9);
    }

    #[test]
    fn closed_loop_serves_every_request() {
        let sys = tiny_system();
        let trace = TraceGenerator::new(9).generate(&LengthConfig::fixed(32, 16), 30);
        let t = ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.01 }.assign(&trace, 9);
        let outcome = Scenario::colocated(2)
            .router(routers::join_shortest_queue())
            .slo(slo())
            .workload(t)
            .run_full(&sys)
            .unwrap();
        assert_eq!(outcome.report.serving.injected, 30);
        assert_eq!(outcome.report.serving.completed, 30);
        assert!(outcome.report.is_conserved());
        // With 4 users the cluster never holds more than 4 requests.
        let peak: usize = outcome.engines().iter().map(|e| e.stats().peak_resident).max().unwrap();
        assert!(peak <= 4, "closed loop caps concurrency, peak {peak}");
    }

    #[test]
    fn prefix_affinity_steers_sharers_to_the_wafer_holding_their_prefix() {
        let sys = tiny_system();
        // One shared system prompt, every request on it, arrivals dense
        // enough that sharers overlap in the cache.
        let cfg = SessionConfig {
            groups: 1,
            shared_prefix_tokens: 256,
            share_ratio: 1.0,
            max_turns: 1,
            user_turn_tokens: 32,
            decode_tokens: 16,
        };
        let trace = cfg.generate(24, 21);
        let t = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, 21);
        let run = |router: Box<dyn Router>| {
            let outcome =
                Scenario::colocated(2).router(router).slo(slo()).workload(t.clone()).run_full(&sys).unwrap();
            let loads: Vec<usize> = outcome.engines().iter().map(|e| e.records().len()).collect();
            (outcome.report, loads)
        };
        let (affinity_report, affinity_loads) = run(routers::prefix_affinity());
        let (spread_report, _) = run(routers::join_shortest_queue());
        assert!(affinity_report.is_conserved() && spread_report.is_conserved());
        assert!(
            affinity_loads[0] > affinity_loads[1],
            "prefix affinity must concentrate sharers on the wafer holding the chain: \
             {affinity_loads:?}"
        );
        assert!(
            affinity_report.serving.cached_prefix_tokens >= spread_report.serving.cached_prefix_tokens,
            "affinity routing cannot hit the prefix cache less than spreading: {} vs {}",
            affinity_report.serving.cached_prefix_tokens,
            spread_report.serving.cached_prefix_tokens
        );
        assert!(affinity_report.serving.cached_prefix_tokens > 0, "overlapping sharers must hit the cache");
        assert!(
            affinity_report.serving.prefilled_tokens < spread_report.serving.prefilled_tokens,
            "prefix hits must cut total prefilled tokens"
        );
    }

    #[test]
    fn routers_route_differently_under_skew() {
        // One giant request pins wafer 0; LeastKvLoad steers followers away,
        // RoundRobin does not.
        let sys = tiny_system();
        let trace = {
            let mut t = TraceGenerator::new(5).generate(&LengthConfig::fixed(48, 24), 12);
            t.requests[0] = Request::new(0, 600, 200);
            t
        };
        let t = ArrivalConfig::Poisson { rate_rps: 5_000.0 }.assign(&trace, 5);
        let run = |router: Box<dyn Router>| {
            let outcome =
                Scenario::colocated(2).router(router).slo(slo()).workload(t.clone()).run_full(&sys).unwrap();
            let loads: Vec<usize> = outcome.engines().iter().map(|e| e.records().len()).collect();
            (outcome.report, loads)
        };
        let (rr_report, rr_loads) = run(routers::round_robin());
        let (lkv_report, lkv_loads) = run(routers::least_kv_load());
        assert!(rr_report.is_conserved() && lkv_report.is_conserved());
        assert_eq!(rr_loads, vec![6, 6], "round-robin splits 12 requests evenly");
        assert!(
            lkv_loads[0] < lkv_loads[1],
            "least-kv-load must shield the wafer pinned by the giant request: {lkv_loads:?}"
        );
    }

    // ---- disaggregated deployments ---------------------------------------

    #[test]
    fn disagg_scenario_serves_a_light_workload() {
        let sys = tiny_system();
        let report = Scenario::disaggregated(1, 1).slo(slo()).workload(timed(30, 50.0, 1)).run(&sys).unwrap();
        assert_eq!(report.deployment.kind, "disaggregated");
        assert_eq!(report.deployment.router, "join-shortest-queue");
        assert_eq!(report.deployment.placement.as_deref(), Some("least-kv-load"));
        assert_eq!(report.serving.injected, 30);
        assert_eq!(report.serving.completed, 30);
        assert!(report.is_conserved());
        let m = report.migration.expect("disaggregated runs report migration stats");
        assert_eq!(m.migrations, 30, "every request migrates exactly once");
        assert!(
            m.kv_bytes_conserved(),
            "exported {} != imported {}",
            m.exported_kv_bytes,
            m.imported_kv_bytes
        );
        assert_eq!(m.exported_kv_bytes, m.imported_kv_bytes);
        assert!(m.mean_migration_s > 0.0, "migrations take link time");
        assert!(m.link_energy_j > 0.0);
    }

    #[test]
    fn ttft_includes_prefill_queueing_and_migration() {
        let sys = tiny_system();
        let outcome =
            Scenario::disaggregated(1, 1).slo(slo()).workload(timed(10, 100.0, 2)).run_full(&sys).unwrap();
        // First token can only appear after the migration lands.
        for m in outcome.migrations() {
            assert!(m.arrive_s > m.start_s);
        }
        assert!(outcome.report.serving.ttft.count > 0);
        assert!(
            outcome.report.serving.ttft.mean_s
                > outcome.migrations()[0].arrive_s - outcome.migrations()[0].start_s
        );
    }

    #[test]
    fn prefix_affinity_placement_dedupes_migration_bytes() {
        let sys = tiny_system();
        let cfg_trace = SessionConfig {
            groups: 1,
            shared_prefix_tokens: 256,
            share_ratio: 1.0,
            max_turns: 1,
            user_turn_tokens: 32,
            decode_tokens: 16,
        };
        let trace = cfg_trace.generate(20, 31);
        let t = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, 31);
        let run = |placement: Box<dyn Placement>| {
            Scenario::disaggregated(1, 2)
                .placement(placement)
                .slo(slo())
                .workload(t.clone())
                .run(&sys)
                .unwrap()
        };
        let affinity = run(placements::prefix_affinity());
        let spread = run(placements::least_kv_load());
        assert!(affinity.is_conserved() && spread.is_conserved());
        assert!(affinity.kv_bytes_conserved(), "dedup must keep the byte identity closed");
        assert!(spread.kv_bytes_conserved());
        let am = affinity.migration.unwrap();
        let sm = spread.migration.unwrap();
        assert!(
            am.deduped_kv_bytes > 0,
            "overlapping sharers placed on one wafer must skip resident prefix bytes"
        );
        assert!(
            am.imported_kv_bytes < am.exported_kv_bytes,
            "deduplicated migrations ship fewer bytes than were exported"
        );
        assert!(
            am.deduped_kv_bytes >= sm.deduped_kv_bytes,
            "prefix-affinity placement cannot dedup less than load-based placement: {} vs {}",
            am.deduped_kv_bytes,
            sm.deduped_kv_bytes
        );
        // Determinism of the prefix-aware run.
        assert_eq!(run(placements::prefix_affinity()), affinity);
    }

    #[test]
    fn same_seed_same_disagg_report_for_every_placement() {
        let sys = tiny_system();
        for placement in [
            placements::least_kv_load(),
            placements::most_free_blocks(),
            placements::locality_aware(),
            placements::prefix_affinity(),
        ] {
            let name = placement.name();
            let scenario =
                Scenario::disaggregated(2, 2).placement(placement).slo(slo()).workload(timed(60, 400.0, 3));
            assert_eq!(
                scenario.run(&sys).unwrap(),
                scenario.run(&sys).unwrap(),
                "{name} must be deterministic under a fixed seed"
            );
        }
    }

    #[test]
    fn disagg_horizon_truncates_and_conserves_requests_and_bytes() {
        let sys = tiny_system();
        let report = Scenario::disaggregated(1, 1)
            .slo(slo())
            .horizon(0.004)
            .workload(timed(300, 20_000.0, 4))
            .run(&sys)
            .unwrap();
        let s = &report.serving;
        assert!(
            report.is_conserved(),
            "injected {} != completed {} + queued {} + in-flight {} + dropped {}",
            s.injected,
            s.completed,
            s.queued_at_horizon,
            s.in_flight_at_horizon,
            s.dropped
        );
        assert!(report.kv_bytes_conserved());
        assert!(s.duration_s <= 0.004 + 1e-9);
    }

    #[test]
    fn closed_loop_disagg_serves_every_request() {
        let sys = tiny_system();
        let trace = TraceGenerator::new(9).generate(&LengthConfig::fixed(32, 16), 24);
        let t = ArrivalConfig::ClosedLoop { users: 4, think_time_s: 0.01 }.assign(&trace, 9);
        let report = Scenario::disaggregated(1, 2).slo(slo()).workload(t).run(&sys).unwrap();
        assert_eq!(report.serving.injected, 24);
        assert_eq!(report.serving.completed, 24);
        assert!(report.is_conserved());
        assert!(report.kv_bytes_conserved());
    }

    #[test]
    fn locality_aware_prefers_near_decode_wafers() {
        let sys = tiny_system();
        let outcome = Scenario::disaggregated(1, 3)
            .placement(placements::locality_aware())
            .slo(slo())
            .workload(timed(12, 30.0, 5))
            .run_full(&sys)
            .unwrap();
        // Light load: every placement lands on the nearest decode wafer.
        let near: usize = outcome.migrations().iter().filter(|m| m.to_wafer == 1).count();
        assert!(
            near > outcome.migrations().len() / 2,
            "locality-aware must favour the nearest decode wafer under light load"
        );
        let hops: Vec<usize> = outcome.migrations().iter().map(|m| m.wafer_hops).collect();
        assert!(hops.iter().all(|&h| h >= 1), "every migration crosses at least one boundary");
    }

    #[test]
    fn placement_policies_spread_load_under_pressure() {
        let sys = tiny_system();
        for placement in [placements::least_kv_load(), placements::most_free_blocks()] {
            let name = placement.name();
            let outcome = Scenario::disaggregated(1, 2)
                .placement(placement)
                .slo(slo())
                .workload(timed(80, 2_000.0, 6))
                .run_full(&sys)
                .unwrap();
            assert!(outcome.report.is_conserved());
            let counts: Vec<usize> = outcome.decode_engines().iter().map(|e| e.records().len()).collect();
            assert!(
                counts.iter().all(|&c| c > 0),
                "{name} must use every decode wafer under sustained load: {counts:?}"
            );
        }
    }

    #[test]
    fn early_landing_migration_is_not_stranded_by_a_prior_announcement() {
        use ouro_workload::TimedRequest;
        let sys = tiny_system();
        let mk_trace = |arrivals: Vec<TimedRequest>| TimedTrace {
            arrivals,
            config: ArrivalConfig::Poisson { rate_rps: 1.0 },
            seed: 0,
        };
        let run = |arrivals| {
            Scenario::disaggregated(2, 1).slo(slo()).workload(mk_trace(arrivals)).run_full(&sys).unwrap()
        };
        // Probe: when does a lone 1500-token prefill announce its migration?
        let probe = run(vec![TimedRequest { request: Request::new(0, 1500, 4), arrival_s: 0.0 }]);
        let announce_s = probe.migrations()[0].start_s;

        // A tiny request arrives just after the bulk migration is announced:
        // its prefill finishes — and its small migration lands — while the
        // 1500-token transfer is still serialising. The decode engine must
        // not have committed its clock to the bulk landing in the meantime.
        let outcome = run(vec![
            TimedRequest { request: Request::new(0, 1500, 4), arrival_s: 0.0 },
            TimedRequest { request: Request::new(1, 32, 4), arrival_s: announce_s * 1.000_001 },
        ]);
        let bulk = outcome.migrations().iter().find(|m| m.id == 0).copied().unwrap();
        let small = outcome.migrations().iter().find(|m| m.id == 1).copied().unwrap();
        assert!(
            small.arrive_s < bulk.arrive_s,
            "scenario guard: the small migration ({} s) must land before the bulk one ({} s)",
            small.arrive_s,
            bulk.arrive_s
        );
        let records = outcome.decode_engines()[0].records();
        let b = records.iter().find(|r| r.id == 1).unwrap();
        assert!(
            b.admitted_s < bulk.arrive_s,
            "the early-landing migration (landed {}) must be admitted before the bulk one lands \
             ({}), not at the decode engine's pre-committed clock: admitted {}",
            small.arrive_s,
            bulk.arrive_s,
            b.admitted_s
        );
    }

    #[test]
    fn decode_wafers_never_recompute_unless_evicted() {
        let sys = tiny_system();
        let outcome =
            Scenario::disaggregated(1, 1).slo(slo()).workload(timed(20, 100.0, 7)).run_full(&sys).unwrap();
        assert!(outcome.report.is_conserved());
        if outcome.report.serving.evictions == 0 {
            for e in outcome.decode_engines() {
                assert_eq!(e.stats().recomputed_tokens, 0, "imported KV must not be recomputed");
            }
        }
    }

    // ---- faults across both shapes ---------------------------------------

    #[test]
    fn faults_on_either_pool_conserve_requests_and_bytes() {
        let sys = tiny_system();
        let scenario = Scenario::disaggregated(2, 2)
            .slo(slo())
            .faults(FaultConfig::new(0.02, 8))
            .workload(timed(50, 400.0, 8));
        let report = scenario.run(&sys).unwrap();
        let faults = report.faults.as_ref().expect("a fault plan was armed");
        assert!(faults.faults_injected > 0, "a 20ms MTBF must fire during this run");
        assert!(faults.availability < 1.0);
        let s = &report.serving;
        assert!(
            report.is_conserved(),
            "faults must not lose requests: injected {} completed {} queued {} in-flight {} dropped {}",
            s.injected,
            s.completed,
            s.queued_at_horizon,
            s.in_flight_at_horizon,
            s.dropped
        );
        assert!(report.kv_bytes_conserved(), "migration bytes stay conserved under faults");
        // Identical seeds reproduce the whole degraded run.
        assert_eq!(scenario.run(&sys).unwrap(), report);
    }

    #[test]
    fn colocated_zero_fault_rate_matches_the_clean_run_metrics() {
        // An MTBF far beyond the window injects nothing; the fault-armed
        // scenario must then reproduce the clean scenario's serving metrics
        // exactly (only the fault section differs: empty vs absent).
        let sys = tiny_system();
        let t = timed(30, 200.0, 9);
        let base = Scenario::colocated(2).router(routers::round_robin()).slo(slo()).workload(t);
        let clean = base.clone().run(&sys).unwrap();
        let faulty = base.faults(FaultConfig::new(1e12, 9)).run(&sys).unwrap();
        assert_eq!(clean.serving, faulty.serving);
        let f = faulty.faults.unwrap();
        assert_eq!(f.faults_injected, 0);
        assert_eq!(f.availability, 1.0);
        assert!(clean.faults.is_none());
    }

    // ---- builder surface --------------------------------------------------

    #[test]
    fn prefix_caching_toggle_reaches_every_engine() {
        let sys = tiny_system();
        let cfg = SessionConfig {
            groups: 1,
            shared_prefix_tokens: 256,
            share_ratio: 1.0,
            max_turns: 1,
            user_turn_tokens: 32,
            decode_tokens: 16,
        };
        let trace = cfg.generate(16, 3);
        let t = ArrivalConfig::Poisson { rate_rps: 2_000.0 }.assign(&trace, 3);
        let run = |caching: bool| {
            Scenario::colocated(2).prefix_caching(caching).slo(slo()).workload(t.clone()).run(&sys).unwrap()
        };
        assert_eq!(run(false).serving.cached_prefix_tokens, 0);
        assert!(run(true).serving.cached_prefix_tokens > 0);
    }

    #[test]
    #[should_panic(expected = "needs a workload")]
    fn running_without_a_workload_panics_with_a_clear_message() {
        let sys = tiny_system();
        let _ = Scenario::colocated(1).run(&sys);
    }

    #[test]
    fn with_deployment_round_trips() {
        let d = Deployment::Disaggregated(DisaggConfig::new(2, 3));
        assert_eq!(Scenario::with_deployment(d).deployment(), d);
        let c = Deployment::Colocated { wafers: 4 };
        assert_eq!(Scenario::with_deployment(c).deployment(), c);
    }
}
