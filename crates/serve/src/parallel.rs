//! A dependency-free scoped worker pool for the embarrassingly-parallel
//! sweep layers.
//!
//! Every sweep point (a load level, a pool ratio, an MTBF setting, a seed
//! replication) is an independent seeded `Scenario` run, so the sweeps
//! parallelise trivially: workers pull point indices from a shared atomic
//! counter and write results into per-point slots, and the caller reads the
//! slots back **in input order**. Determinism therefore survives threading —
//! the set of runs and the order of the returned vector are independent of
//! scheduling, and a `threads = 1` sweep produces byte-identical output to a
//! `threads = N` one (pinned by the workspace determinism tests).

/// Number of worker threads a sweep should use by default: the machine's
/// available parallelism, with a serial fallback when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on `threads` scoped workers, returning the results
/// in input order. `f` receives `(index, item)`. With `threads <= 1` (or a
/// single item) the map runs inline on the caller's thread — the serial
/// path, bit-identical to the parallel one.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once the scope joins.
pub fn parallel_map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let total = items.len();
    let work: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|item| std::sync::Mutex::new(Some(item))).collect();
    let results: Vec<std::sync::Mutex<Option<R>>> = (0..total).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.min(total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let item = work[index].lock().expect("work slot").take().expect("each index claimed once");
                let result = f(index, item);
                *results[index].lock().expect("result slot") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot").expect("every index ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_indexed(items, 4, |i, item| {
            assert_eq!(i, item);
            item * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = parallel_map_indexed((0..33).collect::<Vec<_>>(), 1, |i, x: i32| (i, x * x));
        let parallel = parallel_map_indexed((0..33).collect::<Vec<_>>(), 8, |i, x: i32| (i, x * x));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs_run_inline() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map_indexed(empty, 8, |_, x| x).is_empty());
        assert_eq!(parallel_map_indexed(vec![9u8], 8, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
