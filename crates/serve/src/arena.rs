//! A dense pending-request arena with an index queue over it.
//!
//! The engine's waiting queue used to be a `VecDeque` scanned linearly at
//! every step: `next_ready_s` took a full min-scan and admission took a
//! `position` scan plus an O(n) `remove`. This module replaces both with a
//! slot arena addressed by three lazily-scrubbed binary heaps, so the same
//! three queries are O(log n):
//!
//! * **admission order** — every entry carries an `i64` rank that reproduces
//!   the old deque order exactly: `push_back` takes an increasing back
//!   counter, `push_front` a decreasing front counter (a later `push_front`
//!   sorts *before* an earlier one, just as repeated `push_front`s stack),
//! * **readiness** — entries whose `ready_s` is still in the future wait in
//!   the `unready` heap; [`IndexQueue::peek_ready`] drains everything that
//!   has become admissible at the current clock into the rank-ordered
//!   `admissible` heap and returns its minimum — the earliest-*submitted*
//!   admissible entry, which is what the FCFS scan used to find,
//! * **next event** — the `by_ready` heap holds every live entry keyed by
//!   `ready_s`, so [`IndexQueue::next_ready_s`] answers the idle-engine
//!   fast-forward query by peeking one heap top.
//!
//! The split release design is sound because the engine clock is monotone:
//! once an entry's `ready_s` is at or before the clock, it stays admissible
//! forever, so draining on one clock value never needs to be undone.
//!
//! Removals invalidate heap entries in place; stale entries are discarded
//! when they surface at a heap top, guarded by a per-slot epoch so a reused
//! slot can never satisfy an old heap entry. Every `&mut` operation
//! re-scrubs the `by_ready` top before returning, so the `&self` accessors
//! ([`IndexQueue::next_ready_s`]) always observe a live top.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A total-order key over `f64` (via [`f64::total_cmp`]) so event times can
/// live in a [`BinaryHeap`]. Ties between equal times are broken by the
/// other tuple elements of the heap entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct F64Key(pub f64);

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &F64Key) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &F64Key) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Stable handle of one live entry. Invalidated by the removal of that
/// entry (slots are reused under a fresh epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotId(u32);

#[derive(Debug, Clone)]
struct Slot<T> {
    /// Bumped on every removal so heap entries addressing a previous
    /// occupant of the slot can be recognised as stale.
    epoch: u32,
    entry: Option<Entry<T>>,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    rank: i64,
    /// Read by the checkpoint view ([`IndexQueue::entries`]) and the
    /// debug-build reference view ([`IndexQueue::ordered`]); the heaps
    /// carry their own copy of the readiness key.
    ready_s: f64,
    value: T,
}

/// Heap entry: `(key, slot, epoch)`. The slot index participates in the
/// ordering after the key, which keeps pops deterministic for equal keys.
type HeapEntry<K> = Reverse<(K, u32, u32)>;

/// The pending arena: dense slots, a free list, and the three index heaps.
#[derive(Debug, Clone)]
pub(crate) struct IndexQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    /// Next rank handed to `push_back` (grows upward from 0).
    back_rank: i64,
    /// Next rank handed to `push_front` (grows downward from -1).
    front_rank: i64,
    /// Entries not yet released for admission, keyed by `ready_s`.
    unready: BinaryHeap<HeapEntry<F64Key>>,
    /// Released entries, keyed by queue rank (FCFS order).
    admissible: BinaryHeap<HeapEntry<i64>>,
    /// Every live entry, keyed by `ready_s` — the next-event index.
    by_ready: BinaryHeap<HeapEntry<F64Key>>,
}

impl<T: Copy> IndexQueue<T> {
    pub(crate) fn new() -> IndexQueue<T> {
        IndexQueue {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            back_rank: 0,
            front_rank: -1,
            unready: BinaryHeap::new(),
            admissible: BinaryHeap::new(),
            by_ready: BinaryHeap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an entry at the back of the queue order.
    pub(crate) fn push_back(&mut self, ready_s: f64, value: T) -> SlotId {
        let rank = self.back_rank;
        self.back_rank += 1;
        self.insert(rank, ready_s, value)
    }

    /// Inserts an entry at the front of the queue order (eviction requeue).
    pub(crate) fn push_front(&mut self, ready_s: f64, value: T) -> SlotId {
        let rank = self.front_rank;
        self.front_rank -= 1;
        self.insert(rank, ready_s, value)
    }

    fn insert(&mut self, rank: i64, ready_s: f64, value: T) -> SlotId {
        self.len += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].entry = Some(Entry { rank, ready_s, value });
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("pending arena exceeds u32 slots");
                self.slots.push(Slot { epoch: 0, entry: Some(Entry { rank, ready_s, value }) });
                slot
            }
        };
        let epoch = self.slots[slot as usize].epoch;
        self.unready.push(Reverse((F64Key(ready_s), slot, epoch)));
        self.by_ready.push(Reverse((F64Key(ready_s), slot, epoch)));
        SlotId(slot)
    }

    fn is_live(&self, slot: u32, epoch: u32) -> bool {
        let s = &self.slots[slot as usize];
        s.epoch == epoch && s.entry.is_some()
    }

    /// The earliest-submitted entry admissible at `clock_s` (the entry the
    /// old FCFS `position` scan found), without removing it. Releases
    /// everything that has become ready first.
    pub(crate) fn peek_ready(&mut self, clock_s: f64) -> Option<(SlotId, T)> {
        // Drain newly-ready entries into the rank-ordered admissible heap.
        while let Some(&Reverse((F64Key(ready), slot, epoch))) = self.unready.peek() {
            if self.is_live(slot, epoch) {
                if ready > clock_s {
                    break;
                }
                let rank = self.slots[slot as usize].entry.as_ref().expect("live entry").rank;
                self.admissible.push(Reverse((rank, slot, epoch)));
            }
            self.unready.pop();
        }
        // Scrub stale admissible tops, then peek the minimum rank.
        while let Some(&Reverse((_, slot, epoch))) = self.admissible.peek() {
            if self.is_live(slot, epoch) {
                let value = self.slots[slot as usize].entry.as_ref().expect("live entry").value;
                return Some((SlotId(slot), value));
            }
            self.admissible.pop();
        }
        None
    }

    /// Removes a live entry by handle.
    pub(crate) fn remove(&mut self, id: SlotId) -> T {
        let slot = &mut self.slots[id.0 as usize];
        let entry = slot.entry.take().expect("removing a vacated arena slot");
        slot.epoch = slot.epoch.wrapping_add(1);
        self.free.push(id.0);
        self.len -= 1;
        self.scrub_by_ready();
        entry.value
    }

    /// Earliest `ready_s` over every live entry (`None` when empty). Valid
    /// at any time: every mutating operation re-establishes a live
    /// `by_ready` top before returning.
    pub(crate) fn next_ready_s(&self) -> Option<f64> {
        self.by_ready.peek().map(|&Reverse((F64Key(ready), _, _))| ready)
    }

    /// Drops stale `by_ready` tops so [`IndexQueue::next_ready_s`] stays a
    /// pure peek.
    fn scrub_by_ready(&mut self) {
        while let Some(&Reverse((_, slot, epoch))) = self.by_ready.peek() {
            if self.is_live(slot, epoch) {
                break;
            }
            self.by_ready.pop();
        }
    }

    /// Live entries in queue order with their readiness times — the
    /// checkpoint view. Rebuilding a fresh queue by `push_back`ing these
    /// entries in order reproduces the same admission order (ranks are
    /// renumbered, but their relative order — the only thing any query
    /// observes — is preserved), and the unready/admissible split is
    /// re-derived lazily from `ready_s` against the monotone clock.
    pub(crate) fn entries(&self) -> Vec<(f64, T)> {
        let mut live: Vec<&Entry<T>> = self.slots.iter().filter_map(|s| s.entry.as_ref()).collect();
        live.sort_by_key(|e| e.rank);
        live.iter().map(|e| (e.ready_s, e.value)).collect()
    }

    /// Live entries in queue order — the reference view for the
    /// debug-build differential checks against the old linear scans.
    #[cfg(debug_assertions)]
    pub(crate) fn ordered(&self) -> Vec<(f64, T)> {
        self.entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &mut IndexQueue<u32>, clock: f64) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some((slot, v)) = q.peek_ready(clock) {
            q.remove(slot);
            out.push(v);
        }
        out
    }

    #[test]
    fn fcfs_order_matches_a_deque() {
        let mut q = IndexQueue::new();
        q.push_back(0.0, 1u32);
        q.push_back(0.0, 2);
        q.push_front(0.0, 3);
        q.push_front(0.0, 4); // later push_front is frontmost
        q.push_back(0.0, 5);
        assert_eq!(q.len(), 5);
        assert_eq!(drain_all(&mut q, 1.0), vec![4, 3, 1, 2, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn unready_entries_do_not_block_ready_ones_behind_them() {
        let mut q = IndexQueue::new();
        q.push_back(5.0, 1u32); // head, not ready
        q.push_back(1.0, 2); // behind, ready
        assert_eq!(q.peek_ready(2.0), Some((SlotId(1), 2)));
        // Once the clock reaches the head, FCFS order resumes.
        assert_eq!(drain_all(&mut q, 5.0), vec![1, 2]);
    }

    #[test]
    fn next_ready_is_the_global_minimum() {
        let mut q = IndexQueue::new();
        assert_eq!(q.next_ready_s(), None);
        q.push_back(3.0, 1u32);
        q.push_back(1.0, 2);
        q.push_back(2.0, 3);
        assert_eq!(q.next_ready_s(), Some(1.0));
        let (slot, _) = q.peek_ready(1.5).expect("entry 2 is ready");
        q.remove(slot);
        assert_eq!(q.next_ready_s(), Some(2.0));
    }

    #[test]
    fn peek_does_not_remove_and_removal_reuses_slots() {
        let mut q = IndexQueue::new();
        let a = q.push_back(0.0, 7u32);
        assert_eq!(q.peek_ready(0.0), Some((a, 7)));
        assert_eq!(q.peek_ready(0.0), Some((a, 7)), "peek is idempotent");
        assert_eq!(q.remove(a), 7);
        // The reused slot gets a fresh epoch: stale heap entries for the
        // old occupant can never resolve to the new one.
        let b = q.push_back(4.0, 8);
        assert_eq!(q.next_ready_s(), Some(4.0));
        assert_eq!(q.peek_ready(2.0), None, "new occupant is not ready yet");
        assert_eq!(q.peek_ready(4.0), Some((b, 8)));
    }

    #[test]
    fn ordered_view_matches_queue_order() {
        let mut q = IndexQueue::new();
        q.push_back(1.0, 10u32);
        q.push_front(2.0, 20);
        q.push_back(3.0, 30);
        let order: Vec<u32> = q.ordered().iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![20, 10, 30]);
    }
}
